// Ablation: the admissible-set enumeration cap |A_u| (DESIGN.md §6). The
// paper assumes users bid few events so A_u stays small; this sweep shows how
// aggressively the weight-prioritized cap can truncate before utility drops.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t repeats = bench::Repeats(15);
  gen::SyntheticConfig config;
  config.num_users =
      static_cast<int32_t>(GetEnvInt("IGEPA_ABLATION_USERS", 1000));
  // Heavier bid sets than the default so the cap actually binds.
  config.max_user_capacity = 6;
  config.min_groups_per_user = 2;
  config.max_groups_per_user = 3;
  config.min_conflicts_per_group = 2;
  config.max_conflicts_per_group = 4;

  std::printf("igepa ablation — admissible-set cap "
              "(|V|=%d, |U|=%d, heavy bids, %d repeats)\n\n",
              config.num_events, config.num_users, repeats);
  std::printf("%-8s %14s %12s %12s %12s\n", "cap", "utility", "stddev",
              "columns", "truncated");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  for (int32_t cap : {2, 4, 8, 16, 64, 256, 4096}) {
    RunningStat utility, columns;
    int32_t truncated_runs = 0;
    Rng sweep_master = master;
    for (int32_t rep = 0; rep < repeats; ++rep) {
      Rng rep_rng = sweep_master.Fork();
      auto instance = gen::GenerateSynthetic(config, &rep_rng);
      if (!instance.ok()) return 1;
      Rng alg_rng = rep_rng.Fork();
      core::LpPackingOptions options;
      options.admissible.max_sets_per_user = cap;
      core::LpPackingStats stats;
      auto arrangement = core::LpPacking(*instance, &alg_rng, options, &stats);
      if (!arrangement.ok()) return 1;
      utility.Add(arrangement->Utility(*instance));
      columns.Add(stats.num_columns);
      truncated_runs += stats.admissible_truncated ? 1 : 0;
    }
    std::printf("%-8d %14.2f %12.2f %12.0f %9d/%d\n", cap, utility.mean(),
                utility.stddev(), columns.mean(), truncated_runs, repeats);
  }
  std::printf("\nexpected shape: utility saturates at a small cap because "
              "enumeration is weight-prioritized; columns (LP size) keep "
              "growing with the cap.\n");
  return 0;
}
