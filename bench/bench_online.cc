// Extension bench: the online arrival model (DESIGN.md S13 companion — the
// "variant for online setting" of the paper's related work). Compares online
// greedy / threshold policies under random arrival order against the offline
// algorithms on the same instances, reporting the empirical competitive
// fraction relative to offline LP-packing.

#include <cstdio>

#include "algo/online.h"
#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t repeats = bench::Repeats(20);
  gen::SyntheticConfig config;
  config.num_users =
      static_cast<int32_t>(GetEnvInt("IGEPA_ABLATION_USERS", 1000));
  config.max_event_capacity = 10;  // contention makes arrival order matter

  std::printf("igepa extension — online arrival model "
              "(|V|=%d, |U|=%d, max c_v=%d, %d repeats)\n\n",
              config.num_events, config.num_users, config.max_event_capacity,
              repeats);
  std::printf("%-24s %14s %12s %16s\n", "policy", "utility", "stddev",
              "vs LP-packing");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  RunningStat lp_stat, gg_stat, online_greedy, online_thresh;
  for (int32_t rep = 0; rep < repeats; ++rep) {
    Rng rep_rng = master.Fork();
    auto instance = gen::GenerateSynthetic(config, &rep_rng);
    if (!instance.ok()) return 1;
    Rng lp_rng = rep_rng.Fork();
    auto lp = exp::RunOnInstance(*instance, exp::Algorithm::kLpPacking,
                                 &lp_rng, {});
    if (!lp.ok()) return 1;
    lp_stat.Add(lp->utility);
    Rng gg_rng = rep_rng.Fork();
    auto gg = exp::RunOnInstance(*instance, exp::Algorithm::kGreedyGg,
                                 &gg_rng, {});
    if (!gg.ok()) return 1;
    gg_stat.Add(gg->utility);

    Rng og_rng = rep_rng.Fork();
    auto greedy = algo::OnlineArrangeRandomOrder(*instance, &og_rng, {});
    if (!greedy.ok()) return 1;
    online_greedy.Add(greedy->Utility(*instance));

    Rng ot_rng = rep_rng.Fork();
    algo::OnlineOptions threshold;
    threshold.policy = algo::OnlinePolicy::kThreshold;
    threshold.threshold_fraction = 0.6;
    auto thresh =
        algo::OnlineArrangeRandomOrder(*instance, &ot_rng, threshold);
    if (!thresh.ok()) return 1;
    online_thresh.Add(thresh->Utility(*instance));
  }

  auto row = [&](const char* name, const RunningStat& s) {
    std::printf("%-24s %14.2f %12.2f %15.1f%%\n", name, s.mean(), s.stddev(),
                100.0 * s.mean() / lp_stat.mean());
  };
  row("offline LP-packing", lp_stat);
  row("offline GG", gg_stat);
  row("online greedy", online_greedy);
  row("online threshold(0.6)", online_thresh);
  std::printf("\nexpected shape: online greedy lands close to offline GG; "
              "the threshold policy trades served users for capacity held "
              "back, which only pays off under heavier contention.\n");
  return 0;
}
