// Ablation: the LP tier behind line 1 of Algorithm 1 (DESIGN.md §6) — exact
// dense simplex vs exact revised simplex vs the generic packing dual vs the
// structured block-angular dual — quality (LP objective, realized utility)
// and solve time at a medium scale where all four run.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t repeats = bench::Repeats(10);
  gen::SyntheticConfig config;
  config.num_events = 60;
  config.num_users =
      static_cast<int32_t>(GetEnvInt("IGEPA_ABLATION_USERS", 400));

  struct Tier {
    std::string name;
    core::LpPackingOptions options;
  };
  std::vector<Tier> tiers;
  {
    Tier t;
    t.name = "DenseSimplex";
    t.options.benchmark_solver = core::BenchmarkSolverKind::kLpFacade;
    t.options.solver.kind = lp::SolverKind::kDenseSimplex;
    tiers.push_back(t);
  }
  {
    Tier t;
    t.name = "RevisedSimplex";
    t.options.benchmark_solver = core::BenchmarkSolverKind::kLpFacade;
    t.options.solver.kind = lp::SolverKind::kRevisedSimplex;
    tiers.push_back(t);
  }
  {
    Tier t;
    t.name = "PackingDual";
    t.options.benchmark_solver = core::BenchmarkSolverKind::kLpFacade;
    t.options.solver.kind = lp::SolverKind::kPackingDual;
    tiers.push_back(t);
  }
  {
    Tier t;
    t.name = "StructuredDual";
    t.options.benchmark_solver = core::BenchmarkSolverKind::kStructuredDual;
    tiers.push_back(t);
  }

  std::printf("igepa ablation — benchmark-LP solver tier "
              "(|V|=%d, |U|=%d, %d repeats)\n\n",
              config.num_events, config.num_users, repeats);
  std::printf("%-16s %12s %12s %12s %12s\n", "tier", "lp_obj", "lp_gap",
              "utility", "solve_ms");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  for (const Tier& tier : tiers) {
    RunningStat lp_obj, gap, utility, ms;
    Rng sweep_master = master;  // identical instances across tiers
    for (int32_t rep = 0; rep < repeats; ++rep) {
      Rng rep_rng = sweep_master.Fork();
      auto instance = gen::GenerateSynthetic(config, &rep_rng);
      if (!instance.ok()) return 1;
      Rng alg_rng = rep_rng.Fork();
      core::LpPackingStats stats;
      Stopwatch watch;
      auto arrangement =
          core::LpPacking(*instance, &alg_rng, tier.options, &stats);
      if (!arrangement.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", tier.name.c_str(),
                     arrangement.status().ToString().c_str());
        return 1;
      }
      ms.Add(watch.ElapsedMillis());
      lp_obj.Add(stats.lp_objective);
      gap.Add((stats.lp_upper_bound - stats.lp_objective) /
              std::max(1.0, stats.lp_upper_bound));
      utility.Add(arrangement->Utility(*instance));
    }
    std::printf("%-16s %12.2f %12.4f %12.2f %12.2f\n", tier.name.c_str(),
                lp_obj.mean(), gap.mean(), utility.mean(), ms.mean());
  }
  std::printf("\nexpected shape: all tiers reach near-identical utility; the "
              "approximate tiers trade a certified <=1%% LP gap for orders-"
              "of-magnitude faster solves.\n");
  return 0;
}
