// Empirical Theorem-2 study: with α = 1/2 the expected utility of Algorithm 1
// is at least OPT/4. This bench measures E[ALG]/OPT over tiny instances where
// the exact optimum is computed by branch-and-bound, and reports the minimum
// observed ratio (which must stay >= 0.25 up to Monte-Carlo noise; in
// practice it is far higher).

#include <cstdio>

#include "algo/exact.h"
#include "bench/bench_common.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t instances = static_cast<int32_t>(GetEnvInt("IGEPA_RATIO_INSTANCES", 20));
  const int32_t trials = static_cast<int32_t>(GetEnvInt("IGEPA_RATIO_TRIALS", 200));

  gen::SyntheticConfig config;
  config.num_events = 8;
  config.num_users = 7;
  config.max_event_capacity = 3;
  config.max_user_capacity = 3;

  std::printf("igepa reproduction — Theorem 2 ratio study (alpha = 1/2)\n");
  std::printf("%d tiny instances (|V|=%d, |U|=%d), %d sampling trials each\n\n",
              instances, config.num_events, config.num_users, trials);
  std::printf("%-10s %12s %12s %12s %12s\n", "instance", "OPT", "LP*",
              "E[ALG]", "E[ALG]/OPT");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  RunningStat ratios;
  double min_ratio = 1e9;
  for (int32_t i = 0; i < instances; ++i) {
    Rng gen_rng = master.Fork();
    auto instance = gen::GenerateSynthetic(config, &gen_rng);
    if (!instance.ok()) return 1;
    algo::ExactStats exact_stats;
    auto exact = algo::SolveExact(*instance, {}, &exact_stats);
    if (!exact.ok()) {
      std::fprintf(stderr, "exact failed: %s\n",
                   exact.status().ToString().c_str());
      return 1;
    }
    if (exact_stats.optimum <= 1e-9) continue;

    core::LpPackingOptions options;
    options.alpha = 0.5;
    const auto catalog = core::AdmissibleCatalog::Build(*instance, {});
    auto fractional =
        core::SolveBenchmarkLpForPacking(*instance, catalog, options);
    if (!fractional.ok()) return 1;
    double total = 0.0;
    for (int32_t t = 0; t < trials; ++t) {
      Rng rng = master.Fork();
      auto arrangement = core::RoundFractional(*instance, catalog,
                                               *fractional, &rng, options);
      if (!arrangement.ok()) return 1;
      total += arrangement->Utility(*instance);
    }
    const double expected = total / trials;
    const double ratio = expected / exact_stats.optimum;
    ratios.Add(ratio);
    min_ratio = std::min(min_ratio, ratio);
    std::printf("%-10d %12.4f %12.4f %12.4f %12.4f\n", i,
                exact_stats.optimum, fractional->lp.objective, expected,
                ratio);
  }
  std::printf("\nmean ratio %.4f, min ratio %.4f  (Theorem 2 bound: 0.25)\n",
              ratios.mean(), min_ratio);
  return min_ratio >= 0.25 ? 0 : 2;
}
