// Reproduces Table II of "Interaction-Aware Arrangement for Event-Based
// Social Networks" (ICDE'19): utilities of LP-packing, Random-U, Random-V and
// GG on the (simulated) Meetup San Francisco dataset. The paper's crawl is
// not public; the simulator reproduces every published construction rule —
// see DESIGN.md §5 substitution S10. Absolute utilities therefore differ;
// the comparison target is the ORDERING and relative gaps:
//
//   paper:  LP-packing 2129.86 > GG 2099.88 > Random-U 2019.60 > Random-V 2000.92

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "gen/meetup_sim.h"

int main() {
  using namespace igepa;
  gen::MeetupConfig config;  // paper statistics: 190 events, 2811 users
  exp::HarnessOptions options;
  options.repeats = bench::Repeats();
  options.seed = GetEnvInt("IGEPA_SEED", 20190408);
  options.reuse_instance = true;  // one real dataset, repeated arrangements
  // The Meetup LP benefits from a tight certified gap: the gap is the main
  // driver of LP-packing's margin over GG here (EXPERIMENTS.md).
  options.lp.structured.target_gap = 0.002;
  options.lp.structured.max_iterations = 30000;

  auto factory = [config](Rng* rng) { return gen::GenerateMeetup(config, rng); };

  std::printf(
      "igepa reproduction — Table II (simulated Meetup SF: %d events, "
      "%d users), %d repetitions\n",
      config.num_events, config.num_users, options.repeats);
  Stopwatch watch;
  const auto algorithms = exp::PaperAlgorithms();
  auto summaries = exp::RunComparison(factory, algorithms, options);
  if (!summaries.ok()) {
    std::fprintf(stderr, "FAILED: %s\n",
                 summaries.status().ToString().c_str());
    return 1;
  }
  exp::PrintComparisonTable(std::cout, "Table II — utility on the real "
                                       "(simulated) dataset",
                            algorithms, *summaries);
  std::printf("\npaper reference (actual Meetup SF crawl): "
              "LP-packing 2129.86, GG 2099.88, Random-U 2019.60, "
              "Random-V 2000.92\n");
  std::printf("total wall time: %.1fs\n", watch.ElapsedSeconds());
  return 0;
}
