// google-benchmark microbenchmarks for the LP substrate: the three generic
// engines on random packing LPs and the structured solver on benchmark LPs.

#include <benchmark/benchmark.h>

#include "core/admissible_catalog.h"
#include "core/benchmark_dual.h"
#include "core/benchmark_lp.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "lp/dense_simplex.h"
#include "lp/packing_dual.h"
#include "lp/revised_simplex.h"
#include "util/rng.h"

namespace {

using namespace igepa;

lp::LpModel MakePackingLp(int32_t rows, int32_t cols, uint64_t seed) {
  Rng rng(seed);
  lp::LpModel m;
  for (int32_t i = 0; i < rows; ++i) {
    m.AddRow(lp::Sense::kLe, 1.0 + 4.0 * rng.NextDouble());
  }
  for (int32_t j = 0; j < cols; ++j) {
    const int32_t nnz = 1 + static_cast<int32_t>(rng.NextIndex(3));
    std::vector<lp::ColumnEntry> entries;
    for (size_t r : rng.SampleIndices(static_cast<size_t>(rows),
                                      static_cast<size_t>(nnz))) {
      entries.push_back({static_cast<int32_t>(r),
                         0.05 + 0.95 * rng.NextDouble()});
    }
    m.AddColumn(0.05 + 0.95 * rng.NextDouble(), 0.0, 1.0, std::move(entries));
  }
  return m;
}

void BM_DenseSimplex(benchmark::State& state) {
  const auto m = MakePackingLp(static_cast<int32_t>(state.range(0)),
                               static_cast<int32_t>(state.range(1)), 42);
  for (auto _ : state) {
    auto sol = lp::DenseSimplex().Solve(m);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_DenseSimplex)->Args({20, 60})->Args({50, 200})->Args({100, 500});

void BM_RevisedSimplex(benchmark::State& state) {
  const auto m = MakePackingLp(static_cast<int32_t>(state.range(0)),
                               static_cast<int32_t>(state.range(1)), 42);
  for (auto _ : state) {
    auto sol = lp::RevisedSimplex().Solve(m);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_RevisedSimplex)
    ->Args({20, 60})
    ->Args({50, 200})
    ->Args({100, 500})
    ->Args({200, 2000});

void BM_PackingDual(benchmark::State& state) {
  const auto m = MakePackingLp(static_cast<int32_t>(state.range(0)),
                               static_cast<int32_t>(state.range(1)), 42);
  lp::PackingDualOptions options;
  options.target_gap = 0.01;
  for (auto _ : state) {
    auto sol = lp::PackingDualSolver(options).Solve(m);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_PackingDual)
    ->Args({50, 200})
    ->Args({200, 2000})
    ->Args({1000, 10000});

// Catalog entry point: the solver iterates the shared CSR directly, no
// per-solve model copy.
void BM_StructuredDual_Catalog(benchmark::State& state) {
  Rng rng(7);
  gen::SyntheticConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  auto instance = gen::GenerateSynthetic(config, &rng);
  const auto catalog = core::AdmissibleCatalog::Build(*instance, {});
  for (auto _ : state) {
    auto sol = core::SolveBenchmarkLpStructured(*instance, catalog, {});
    benchmark::DoNotOptimize(sol);
  }
  state.counters["columns"] = static_cast<double>(catalog.num_columns());
}
BENCHMARK(BM_StructuredDual_Catalog)->Arg(500)->Arg(2000)->Arg(5000);

void BM_BuildBenchmarkLp(benchmark::State& state) {
  Rng rng(7);
  gen::SyntheticConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  auto instance = gen::GenerateSynthetic(config, &rng);
  const auto catalog = core::AdmissibleCatalog::Build(*instance, {});
  for (auto _ : state) {
    auto bench = core::BuildBenchmarkLp(*instance, catalog);
    benchmark::DoNotOptimize(bench);
  }
}
BENCHMARK(BM_BuildBenchmarkLp)->Arg(500)->Arg(2000);

void BM_BuildBenchmarkLpFromCatalog(benchmark::State& state) {
  Rng rng(7);
  gen::SyntheticConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  auto instance = gen::GenerateSynthetic(config, &rng);
  const auto catalog = core::AdmissibleCatalog::Build(*instance, {});
  for (auto _ : state) {
    auto bench = core::BuildBenchmarkLp(*instance, catalog);
    benchmark::DoNotOptimize(bench);
  }
}
BENCHMARK(BM_BuildBenchmarkLpFromCatalog)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
