#ifndef IGEPA_BENCH_BENCH_COMMON_H_
#define IGEPA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>

#include "exp/figures.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "util/env.h"
#include "util/stopwatch.h"

namespace igepa {
namespace bench {

/// Repetitions per configuration. The paper averages 50 runs; override with
/// IGEPA_REPEATS for quicker passes.
inline int32_t Repeats(int32_t fallback = 50) {
  return static_cast<int32_t>(GetEnvInt("IGEPA_REPEATS", fallback));
}

/// Harness options shared by the figure benches (paper protocol: fresh
/// synthetic instance per repetition, α = 1, β = 0.5 baked into the
/// generator configs).
inline exp::HarnessOptions FigureOptions() {
  exp::HarnessOptions options;
  options.repeats = Repeats();
  options.seed = GetEnvInt("IGEPA_SEED", 20190408);
  return options;
}

/// Runs one Fig. 1 sweep end to end and prints the utility table plus CSV.
inline int RunFigureBench(const exp::FigureSpec& spec) {
  const exp::HarnessOptions options = FigureOptions();
  const auto algorithms = exp::PaperAlgorithms();
  std::printf("igepa reproduction — %s (%s), %d repetitions per point\n",
              spec.id.c_str(), spec.title.c_str(), options.repeats);
  Stopwatch watch;
  auto rows = exp::RunFigure(spec, algorithms, options);
  if (!rows.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  exp::PrintFigureTable(std::cout, spec, algorithms, *rows);
  std::printf("\nCSV:\n");
  exp::WriteFigureCsv(std::cout, spec, algorithms, *rows);
  std::printf("total wall time: %.1fs\n", watch.ElapsedSeconds());
  return 0;
}

}  // namespace bench
}  // namespace igepa

#endif  // IGEPA_BENCH_BENCH_COMMON_H_
