// Reproduces Fig. 1(c) of "Interaction-Aware Arrangement for Event-Based
// Social Networks" (ICDE'19). See DESIGN.md §4 and EXPERIMENTS.md.

#include "bench/bench_common.h"

int main() { return igepa::bench::RunFigureBench(igepa::exp::Fig1c()); }
