// Ablation: the user sweep order of Algorithm 1's capacity repair (lines
// 4-7, DESIGN.md §6). The paper iterates users in index order; this compares
// index vs random vs heaviest-sampled-set-first under tight event capacities
// (where repair actually fires), plus the optional local-search post-pass.

#include <cstdio>

#include "algo/local_search.h"
#include "bench/bench_common.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t repeats = bench::Repeats(20);
  gen::SyntheticConfig config;
  config.num_users =
      static_cast<int32_t>(GetEnvInt("IGEPA_ABLATION_USERS", 1500));
  config.max_event_capacity = 8;  // tight: repairs are frequent

  struct Variant {
    const char* name;
    core::RepairOrder order;
    bool local_search;
  };
  const Variant variants[] = {
      {"user-index", core::RepairOrder::kUserIndex, false},
      {"random", core::RepairOrder::kRandom, false},
      {"weight-desc", core::RepairOrder::kWeightDesc, false},
      {"user-index+LS", core::RepairOrder::kUserIndex, true},
  };

  std::printf("igepa ablation — capacity-repair sweep order "
              "(|V|=%d, |U|=%d, max c_v=%d, %d repeats)\n\n",
              config.num_events, config.num_users, config.max_event_capacity,
              repeats);
  std::printf("%-16s %14s %12s %14s\n", "variant", "utility", "stddev",
              "pairs_repaired");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  for (const Variant& variant : variants) {
    RunningStat utility, repaired;
    Rng sweep_master = master;
    for (int32_t rep = 0; rep < repeats; ++rep) {
      Rng rep_rng = sweep_master.Fork();
      auto instance = gen::GenerateSynthetic(config, &rep_rng);
      if (!instance.ok()) return 1;
      Rng alg_rng = rep_rng.Fork();
      core::LpPackingOptions options;
      options.repair_order = variant.order;
      core::LpPackingStats stats;
      auto arrangement = core::LpPacking(*instance, &alg_rng, options, &stats);
      if (!arrangement.ok()) return 1;
      if (variant.local_search) {
        auto improved =
            algo::ImproveLocalSearch(*instance, std::move(arrangement).value(),
                                     {});
        if (!improved.ok()) return 1;
        utility.Add(improved->Utility(*instance));
      } else {
        utility.Add(arrangement->Utility(*instance));
      }
      repaired.Add(stats.pairs_repaired);
    }
    std::printf("%-16s %14.2f %12.2f %14.1f\n", variant.name, utility.mean(),
                utility.stddev(), repaired.mean());
  }
  std::printf("\nexpected shape: weight-desc repairs away cheaper pairs and "
              "edges out index order; the local-search post-pass adds the "
              "largest improvement by refilling repaired capacity.\n");
  return 0;
}
