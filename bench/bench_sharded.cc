// Scale benchmark for the two-level sharded solver over the igepa-bin,3
// memory-mapped path: generate a synthetic instance straight to binary
// (bounded memory), materialize it through an InstanceView and run
// ShardedSolve end to end. Default args cover 20k and 100k users; the
// million-user row is opt-in via IGEPA_BENCH_1M=1 (it takes minutes and
// exists for the scaling table in DESIGN.md, not for per-PR tracking).
//
// items_per_second is users/sec — the headline scale metric. Results land in
// BENCH_sharded.json unless the caller picks a --benchmark_out.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_solver.h"
#include "gen/streaming_gen.h"
#include "io/binary_instance.h"
#include "util/rng.h"

namespace {

using namespace igepa;

std::string ScratchPath(int64_t users) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") +
         "/igepa_bench_sharded_" + std::to_string(users) + ".bin";
}

void BM_ShardedSolve(benchmark::State& state) {
  const auto users = state.range(0);
  const std::string path = ScratchPath(users);
  gen::SyntheticConfig config;
  config.num_events = 200;
  config.num_users = static_cast<int32_t>(users);
  Rng gen_rng(11);
  auto gen_stats = gen::GenerateSyntheticBinary(config, &gen_rng,
                                                "interaction_interest", path);
  if (!gen_stats.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  auto view = io::InstanceView::Open(path);
  if (!view.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto instance = io::MaterializeInstance(
      std::make_shared<const io::InstanceView>(std::move(*view)));
  if (!instance.ok()) {
    state.SkipWithError("materialize failed");
    return;
  }

  core::ShardedSolveOptions options;  // default 8192 users per shard
  core::ShardedSolveStats stats;
  for (auto _ : state) {
    Rng rng(3);
    auto arrangement = core::ShardedSolve(*instance, &rng, options, &stats);
    if (!arrangement.ok()) {
      state.SkipWithError("solve failed");
      break;
    }
    benchmark::DoNotOptimize(arrangement);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * users);
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(stats.num_shards));
  state.counters["columns"] =
      benchmark::Counter(static_cast<double>(stats.num_columns));
  state.counters["gap"] = benchmark::Counter(stats.gap);
}

/// Same instance and solve as BM_ShardedSolve, but catalogs spill to the
/// per-run igepa-cat,1 file and level 2 runs on mmapped views under a
/// residency budget sized to roughly half the shard catalogs — in-memory vs
/// budgeted at the same size is the spill overhead, tracked by
/// bench_compare.py alongside the in-memory rows.
void BM_ShardedSolveSpill(benchmark::State& state) {
  const auto users = state.range(0);
  const std::string path = ScratchPath(users);
  gen::SyntheticConfig config;
  config.num_events = 200;
  config.num_users = static_cast<int32_t>(users);
  Rng gen_rng(11);
  auto gen_stats = gen::GenerateSyntheticBinary(config, &gen_rng,
                                                "interaction_interest", path);
  if (!gen_stats.ok()) {
    state.SkipWithError("generate failed");
    return;
  }
  auto view = io::InstanceView::Open(path);
  if (!view.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto instance = io::MaterializeInstance(
      std::make_shared<const io::InstanceView>(std::move(*view)));
  if (!instance.ok()) {
    state.SkipWithError("materialize failed");
    return;
  }

  core::ShardedSolveOptions options;
  core::ShardedSolveStats stats;
  // Probe one run with everything resident to size the budget at half the
  // spilled catalog bytes (min one shard) — enough pressure to exercise
  // eviction without thrashing every acquisition.
  {
    core::ShardedSolveOptions probe = options;
    probe.memory_budget_bytes = uint64_t{1} << 40;
    Rng rng(3);
    auto arrangement = core::ShardedSolve(*instance, &rng, probe, &stats);
    if (!arrangement.ok()) {
      state.SkipWithError("probe solve failed");
      return;
    }
  }
  options.memory_budget_bytes =
      std::max(stats.shard_footprint_bytes, stats.spill_bytes / 2);
  for (auto _ : state) {
    Rng rng(3);
    auto arrangement = core::ShardedSolve(*instance, &rng, options, &stats);
    if (!arrangement.ok()) {
      state.SkipWithError("solve failed");
      break;
    }
    benchmark::DoNotOptimize(arrangement);
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations() * users);
  state.counters["shards"] =
      benchmark::Counter(static_cast<double>(stats.num_shards));
  state.counters["spill_mb"] = benchmark::Counter(
      static_cast<double>(stats.spill_bytes) / (1024.0 * 1024.0));
  state.counters["budget_mb"] = benchmark::Counter(
      static_cast<double>(options.memory_budget_bytes) / (1024.0 * 1024.0));
  state.counters["page_ins"] =
      benchmark::Counter(static_cast<double>(stats.page_ins));
  state.counters["evictions"] =
      benchmark::Counter(static_cast<double>(stats.evictions));
  state.counters["peak_resident_shards"] =
      benchmark::Counter(static_cast<double>(stats.peak_resident_shards));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_sharded.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }

  auto* bench = benchmark::RegisterBenchmark("BM_ShardedSolve",
                                             &BM_ShardedSolve);
  bench->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  auto* spill = benchmark::RegisterBenchmark("BM_ShardedSolveSpill",
                                             &BM_ShardedSolveSpill);
  spill->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  // The million-user rows are opt-in (minutes of wall clock): the nightly
  // bench workflow sets IGEPA_BENCH_1M=1 and archives the artifact.
  const char* want_1m = std::getenv("IGEPA_BENCH_1M");
  if (want_1m != nullptr && std::strcmp(want_1m, "0") != 0) {
    bench->Arg(1000000);
    spill->Arg(1000000);
  }

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::AddCustomContext("igepa_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
