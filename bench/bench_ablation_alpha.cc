// Ablation: the sampling scale α of Algorithm 1 (DESIGN.md §6). Theory wants
// α = 1/2 (worst-case ratio α(1-α)); the paper's experiments use α = 1.
// Sweeps α and reports the realized utility at Table I defaults (scaled down
// via IGEPA_ABLATION_USERS for quick runs).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t repeats = bench::Repeats(20);
  gen::SyntheticConfig config;
  config.num_users =
      static_cast<int32_t>(GetEnvInt("IGEPA_ABLATION_USERS", 2000));

  std::printf("igepa ablation — LP-packing sampling scale alpha "
              "(|V|=%d, |U|=%d, %d repeats)\n\n",
              config.num_events, config.num_users, repeats);
  std::printf("%-8s %14s %12s %14s %14s\n", "alpha", "utility", "stddev",
              "users_sampled", "pairs_repaired");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  for (double alpha : {0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0}) {
    RunningStat utility, sampled, repaired;
    Rng sweep_master = master;  // same instance stream for every alpha
    for (int32_t rep = 0; rep < repeats; ++rep) {
      Rng rep_rng = sweep_master.Fork();
      auto instance = gen::GenerateSynthetic(config, &rep_rng);
      if (!instance.ok()) return 1;
      Rng alg_rng = rep_rng.Fork();
      core::LpPackingOptions options;
      options.alpha = alpha;
      core::LpPackingStats stats;
      auto arrangement = core::LpPacking(*instance, &alg_rng, options, &stats);
      if (!arrangement.ok()) return 1;
      utility.Add(arrangement->Utility(*instance));
      sampled.Add(stats.users_sampled);
      repaired.Add(stats.pairs_repaired);
    }
    std::printf("%-8.2f %14.2f %12.2f %14.1f %14.1f\n", alpha,
                utility.mean(), utility.stddev(), sampled.mean(),
                repaired.mean());
  }
  std::printf("\nexpected shape: utility increases with alpha (the paper "
              "runs alpha = 1); repair volume also grows with alpha.\n");
  return 0;
}
