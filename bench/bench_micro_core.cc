// google-benchmark microbenchmarks for the core pipeline stages: dataset
// generation, admissible-set enumeration, Algorithm 1 rounding, baselines and
// the feasibility validator.

#include <benchmark/benchmark.h>

#include "algo/baselines.h"
#include "conflict/conflict_graph.h"
#include "core/lp_packing.h"
#include "gen/meetup_sim.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace {

using namespace igepa;

core::Instance MakeInstance(int32_t users) {
  Rng rng(11);
  gen::SyntheticConfig config;
  config.num_users = users;
  auto instance = gen::GenerateSynthetic(config, &rng);
  return std::move(instance).value();
}

void BM_GenerateSynthetic(benchmark::State& state) {
  gen::SyntheticConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    auto instance = gen::GenerateSynthetic(config, &rng);
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_GenerateSynthetic)->Arg(500)->Arg(2000);

void BM_GenerateMeetup(benchmark::State& state) {
  gen::MeetupConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  config.num_events = 100;
  Rng rng(1);
  for (auto _ : state) {
    auto instance = gen::GenerateMeetup(config, &rng);
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_GenerateMeetup)->Arg(1000);

void BM_EnumerateAdmissibleSets(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto sets = core::EnumerateAdmissibleSets(instance, {});
    benchmark::DoNotOptimize(sets);
  }
}
BENCHMARK(BM_EnumerateAdmissibleSets)->Arg(500)->Arg(2000);

void BM_RoundFractional(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  const auto admissible = core::EnumerateAdmissibleSets(instance, {});
  auto fractional =
      core::SolveBenchmarkLpForPacking(instance, admissible, {});
  Rng rng(3);
  for (auto _ : state) {
    auto arrangement =
        core::RoundFractional(instance, admissible, *fractional, &rng, {});
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_RoundFractional)->Arg(500)->Arg(2000);

void BM_LpPackingEndToEnd(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    auto arrangement = core::LpPacking(instance, &rng, {});
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_LpPackingEndToEnd)->Arg(500)->Arg(2000);

void BM_GreedyGg(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto arrangement = algo::GreedyGg(instance);
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_GreedyGg)->Arg(500)->Arg(2000);

void BM_RandomU(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    auto arrangement = algo::RandomU(instance, &rng);
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_RandomU)->Arg(2000);

void BM_CheckFeasible(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  auto arrangement = algo::GreedyGg(instance);
  for (auto _ : state) {
    auto status = arrangement->CheckFeasible(instance);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_CheckFeasible)->Arg(2000);

void BM_ErdosRenyi(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto g = graph::ErdosRenyi(static_cast<graph::NodeId>(state.range(0)),
                               0.5, &rng);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ErdosRenyi)->Arg(1000)->Arg(2000);

void BM_ConflictGraphColoring(benchmark::State& state) {
  Rng rng(9);
  const auto m = conflict::MatrixConflict::Bernoulli(
      static_cast<conflict::EventId>(state.range(0)), 0.3, &rng);
  for (auto _ : state) {
    auto colors = conflict::GreedyColoring(m);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_ConflictGraphColoring)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
