// google-benchmark microbenchmarks for the core pipeline stages: dataset
// generation, admissible-set enumeration into the flat catalog, kernel
// re-scoring, Algorithm 1 rounding, baselines and the feasibility validator.
//
// Unless the caller passes --benchmark_out, results are also written to
// BENCH_micro_core.json (google-benchmark's JSON schema) so successive PRs
// have a machine-readable perf trajectory.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "algo/baselines.h"
#include "conflict/conflict_graph.h"
#include "core/admissible_catalog.h"
#include "core/benchmark_dual.h"
#include "core/instance_delta.h"
#include "core/lp_packing.h"
#include "core/sharded_solver.h"
#include "gen/arrival_process.h"
#include "gen/delta_stream.h"
#include "gen/meetup_sim.h"
#include "gen/synthetic.h"
#include "graph/generators.h"
#include "serve/arrangement_service.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace {

using namespace igepa;

core::Instance MakeInstance(int32_t users) {
  Rng rng(11);
  gen::SyntheticConfig config;
  config.num_users = users;
  auto instance = gen::GenerateSynthetic(config, &rng);
  return std::move(instance).value();
}

void BM_GenerateSynthetic(benchmark::State& state) {
  gen::SyntheticConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    auto instance = gen::GenerateSynthetic(config, &rng);
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_GenerateSynthetic)->Arg(500)->Arg(2000);

void BM_GenerateMeetup(benchmark::State& state) {
  gen::MeetupConfig config;
  config.num_users = static_cast<int32_t>(state.range(0));
  config.num_events = 100;
  Rng rng(1);
  for (auto _ : state) {
    auto instance = gen::GenerateMeetup(config, &rng);
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_GenerateMeetup)->Arg(1000);

void BM_BuildAdmissibleCatalog(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  core::AdmissibleOptions options;
  options.num_threads = 1;  // apples-to-apples with the serial legacy path
  for (auto _ : state) {
    auto catalog = core::AdmissibleCatalog::Build(instance, options);
    benchmark::DoNotOptimize(catalog);
  }
}
BENCHMARK(BM_BuildAdmissibleCatalog)->Arg(500)->Arg(1000)->Arg(2000);

// Everything the generic-facade tier must do before the LP solve can start
// on the 1k-user synthetic instance: the catalog's flat arena IS the
// structured solver's input (compare against BM_BuildAdmissibleCatalog/1000);
// only this tier additionally materializes an lp::LpModel.
void BM_CatalogEnumerateAndLpBuildFacade(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  core::AdmissibleOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    auto catalog = core::AdmissibleCatalog::Build(instance, options);
    auto bench = core::BuildBenchmarkLp(instance, catalog);
    benchmark::DoNotOptimize(bench);
  }
}
BENCHMARK(BM_CatalogEnumerateAndLpBuildFacade)->Arg(1000);

void BM_RoundFractionalCatalog(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  const auto catalog = core::AdmissibleCatalog::Build(instance, {});
  auto fractional = core::SolveBenchmarkLpForPacking(instance, catalog, {});
  Rng rng(3);
  for (auto _ : state) {
    auto arrangement =
        core::RoundFractional(instance, catalog, *fractional, &rng, {});
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_RoundFractionalCatalog)->Arg(500)->Arg(2000);

// Parallel-vs-serial counters for the shard-parallel pipeline: the same
// solve at 1, 2 and 8 workers (results are bit-identical; only the wall
// clock moves). The /1 row IS the serial baseline — speedup(t) =
// real_time(/1) / real_time(/t). Every row borrows a pre-spawned pool via
// options.workers, so the curve measures the sharded sweep itself, not the
// per-solve thread spawn the borrowed-pool path exists to avoid.
void BM_StructuredDualThreads(benchmark::State& state) {
  const auto instance = MakeInstance(1000);
  core::AdmissibleOptions enumerate;
  enumerate.num_threads = 1;
  const auto catalog = core::AdmissibleCatalog::Build(instance, enumerate);
  ThreadPool pool(static_cast<int32_t>(state.range(0)));
  core::StructuredDualOptions options;
  options.max_iterations = 400;
  options.workers = &pool;
  for (auto _ : state) {
    auto sol = core::SolveBenchmarkLpStructured(instance, catalog, options);
    benchmark::DoNotOptimize(sol);
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_StructuredDualThreads)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_RoundFractionalCatalogThreads(benchmark::State& state) {
  const auto instance = MakeInstance(2000);
  const auto catalog = core::AdmissibleCatalog::Build(instance, {});
  auto fractional = core::SolveBenchmarkLpForPacking(instance, catalog, {});
  ThreadPool pool(static_cast<int32_t>(state.range(0)));
  core::LpPackingOptions options;
  options.workers = &pool;
  Rng rng(3);
  for (auto _ : state) {
    auto arrangement =
        core::RoundFractional(instance, catalog, *fractional, &rng, options);
    benchmark::DoNotOptimize(arrangement);
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_RoundFractionalCatalogThreads)->Arg(1)->Arg(2)->Arg(8);

// Catalog construction thread curve: enumeration chunks and the SoA scoring
// finalize share one pool. Bit-identical output at every width; the /1 row
// is the serial baseline for the speedup table in DESIGN.md §5 (S18).
void BM_CatalogBuildThreads(benchmark::State& state) {
  const auto instance = MakeInstance(2000);
  core::AdmissibleOptions options;
  options.num_threads = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    auto catalog = core::AdmissibleCatalog::Build(instance, options);
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["threads"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_CatalogBuildThreads)->Arg(1)->Arg(2)->Arg(8);

// The SoA batch-scoring entry point in isolation: a full-catalog Rescore on
// the 1k-user instance with the SIMD dispatch pinned to scalar (/0) vs the
// detected best level (/1 — AVX2 where available, else the same scalar
// path). Identical weights bit for bit; columns_per_s is the headline
// scoring throughput.
void BM_ScoreColumnsSoA(benchmark::State& state) {
  const auto instance = MakeInstance(1000);
  auto catalog = core::AdmissibleCatalog::Build(instance, {});
  util::simd::ForceLevel(state.range(0) != 0 ? util::simd::DetectedLevel()
                                             : util::simd::Level::kScalar);
  int64_t columns = 0;
  for (auto _ : state) {
    columns += catalog.Rescore(instance);
    benchmark::DoNotOptimize(catalog);
  }
  util::simd::ResetLevel();
  state.counters["columns_per_s"] = benchmark::Counter(
      static_cast<double>(columns), benchmark::Counter::kIsRate);
  state.counters["simd"] = benchmark::Counter(
      static_cast<double>(util::simd::DetectedLevel() !=
                              util::simd::Level::kScalar &&
                          state.range(0) != 0));
}
BENCHMARK(BM_ScoreColumnsSoA)->Arg(0)->Arg(1);

// Incremental catalog maintenance: one ApplyDelta tick (re-enumerate ~1% of
// users, tombstone + append + inverted-index patch, auto-compaction at the
// default thresholds) on the 1k-user instance. Compare against
// BM_BuildAdmissibleCatalog/1000 — the full rebuild a delta replaces.
void BM_CatalogApplyDelta(benchmark::State& state) {
  auto instance = MakeInstance(1000);
  auto catalog = core::AdmissibleCatalog::Build(instance, {});
  Rng rng(19);
  gen::DeltaStreamConfig config;
  config.num_ticks = 64;
  config.user_updates_per_tick = static_cast<int32_t>(state.range(0));
  config.event_updates_per_tick = 1;
  const auto stream = gen::GenerateDeltaStream(instance, config, &rng);
  size_t next = 0;
  int64_t compactions = 0;
  for (auto _ : state) {
    const auto& delta = stream[next];
    next = (next + 1) % stream.size();
    auto status = core::ApplyDelta(&instance, delta);
    auto result = catalog.ApplyDelta(instance, delta, {});
    if (!status.ok() || !result.ok()) {
      state.SkipWithError("delta apply failed");
      break;
    }
    compactions += result->compacted ? 1 : 0;
    benchmark::DoNotOptimize(catalog);
  }
  state.counters["touched_users"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["compactions"] =
      benchmark::Counter(static_cast<double>(compactions));
}
BENCHMARK(BM_CatalogApplyDelta)->Arg(10)->Arg(50);

// Kernel re-scoring, the weight half of the incremental engine. Arg 0: a
// full-catalog Rescore on the 1k-user instance — the objective-swap path
// (set_kernel then Rescore), an upper bound on any weight delta and the
// "rebuild replaced" comparison is BM_BuildAdmissibleCatalog/1000. Arg N>0:
// one weight-only ApplyDelta tick with N graph-edge + N interest-drift
// mutations — touched columns only, no tombstones, no re-enumeration.
void BM_KernelRescore(benchmark::State& state) {
  auto instance = MakeInstance(1000);
  auto catalog = core::AdmissibleCatalog::Build(instance, {});
  const auto mutations = static_cast<int32_t>(state.range(0));
  int64_t rescored = 0;
  if (mutations == 0) {
    for (auto _ : state) {
      rescored += catalog.Rescore(instance);
      benchmark::DoNotOptimize(catalog);
    }
  } else {
    Rng rng(23);
    gen::DeltaStreamConfig config;
    config.num_ticks = 64;
    config.user_updates_per_tick = 0;
    config.event_updates_per_tick = 0;
    config.graph_updates_per_tick = mutations;
    config.interest_updates_per_tick = mutations;
    const auto stream = gen::GenerateDeltaStream(instance, config, &rng);
    size_t next = 0;
    for (auto _ : state) {
      const auto& delta = stream[next];
      next = (next + 1) % stream.size();
      auto status = core::ApplyDelta(&instance, delta);
      auto result = catalog.ApplyDelta(instance, delta, {});
      if (!status.ok() || !result.ok()) {
        state.SkipWithError("weight delta failed");
        break;
      }
      rescored += result->columns_rescored;
      benchmark::DoNotOptimize(catalog);
    }
  }
  state.counters["columns_rescored"] =
      benchmark::Counter(static_cast<double>(rescored),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_KernelRescore)->Arg(0)->Arg(4)->Arg(16);

// The S15 acceptance comparison: re-solving the benchmark LP after a small
// delta (10 touched users = 1% of the 1k-user instance), cold (/0) vs warm
// started from the pre-delta optimum (/1). Warm rescans only the touched
// users at its first iteration and usually certifies immediately, so the gap
// between the two rows is the latency the incremental engine saves per tick.
void BM_StructuredDualWarmVsCold(benchmark::State& state) {
  auto instance = MakeInstance(1000);
  auto catalog = core::AdmissibleCatalog::Build(instance, {});
  core::StructuredDualOptions options;
  options.num_threads = 1;
  core::DualWarmStart warm;
  auto base = core::SolveBenchmarkLpStructured(instance, catalog, options,
                                               &warm);
  if (!base.ok()) {
    state.SkipWithError("base solve failed");
    return;
  }
  Rng rng(23);
  gen::DeltaStreamConfig config;
  config.num_ticks = 1;
  config.user_updates_per_tick = 10;  // 1% of users
  config.event_updates_per_tick = 1;
  const auto stream = gen::GenerateDeltaStream(instance, config, &rng);
  if (!core::ApplyDelta(&instance, stream[0]).ok()) {
    state.SkipWithError("instance delta failed");
    return;
  }
  auto delta_result = catalog.ApplyDelta(instance, stream[0], {});
  if (!delta_result.ok()) {
    state.SkipWithError("catalog delta failed");
    return;
  }
  warm.stale.assign(static_cast<size_t>(instance.num_users()), 0);
  for (core::UserId u : delta_result->touched_users) {
    warm.stale[static_cast<size_t>(u)] = 1;
  }
  const bool warm_started = state.range(0) != 0;
  core::StructuredDualOptions solve_options = options;
  if (warm_started) solve_options.warm = &warm;
  int64_t iterations = 0;
  for (auto _ : state) {
    auto sol =
        core::SolveBenchmarkLpStructured(instance, catalog, solve_options);
    if (!sol.ok()) {
      state.SkipWithError("solve failed");
      break;
    }
    iterations = sol->iterations;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["warm"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["iterations"] =
      benchmark::Counter(static_cast<double>(iterations));
}
BENCHMARK(BM_StructuredDualWarmVsCold)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// One serving epoch end to end (S16): coalesce `batch` queued single-mutation
// deltas, run the warm incremental pipeline, publish a snapshot. Sweeping the
// batch size shows the amortization the epoch loop buys — items_per_second is
// the service's sustained delta throughput at that batch size.
void BM_ServeEpoch(benchmark::State& state) {
  const int32_t batch = static_cast<int32_t>(state.range(0));
  const auto instance = MakeInstance(1000);
  Rng rng(27);
  gen::ArrivalProcessConfig config;
  config.num_arrivals = 4096;
  const auto arrivals = gen::GenerateArrivalProcess(instance, config, &rng);
  serve::ServeOptions options;
  options.num_threads = 1;
  options.max_batch = batch;
  options.queue_capacity = batch;
  auto service = serve::ArrangementService::Create(instance, options);
  if (!service.ok()) {
    state.SkipWithError("service bootstrap failed");
    return;
  }
  size_t next = 0;
  for (auto _ : state) {
    for (int32_t i = 0; i < batch; ++i) {
      if (!(*service)->Submit(arrivals[next].delta).ok()) {
        state.SkipWithError("submit rejected");
        return;
      }
      next = (next + 1) % arrivals.size();
    }
    auto metrics = (*service)->RunEpoch();
    if (!metrics.ok()) {
      state.SkipWithError("epoch failed");
      return;
    }
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ServeEpoch)->Arg(1)->Arg(16)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Background serve, submit-to-drain, at pipeline depth D (the --pipeline-depth
// knob): one iteration Start()s the service, bursts a fixed single-mutation
// stream through it and Stop()s (which drains). Depth 1 is the sequential
// background loop; deeper runs overlap coalesce/publish with the solve, so
// items_per_second across the args shows what stage overlap buys on an
// in-memory service (the WAL-fsync amortization on top of this is measured by
// the durable load-smoke harness, not here).
void BM_ServePipelined(benchmark::State& state) {
  const int32_t depth = static_cast<int32_t>(state.range(0));
  constexpr int32_t kDeltas = 64;
  const auto instance = MakeInstance(1000);
  Rng rng(29);
  gen::ArrivalProcessConfig config;
  config.num_arrivals = kDeltas;
  const auto arrivals = gen::GenerateArrivalProcess(instance, config, &rng);
  serve::ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.queue_capacity = kDeltas;
  options.epoch_ms = 0.2;
  options.pipeline_depth = depth;
  auto service = serve::ArrangementService::Create(instance, options);
  if (!service.ok()) {
    state.SkipWithError("service bootstrap failed");
    return;
  }
  for (auto _ : state) {
    if (!(*service)->Start().ok()) {
      state.SkipWithError("start failed");
      return;
    }
    for (const core::ArrivalEvent& arrival : arrivals) {
      while (true) {
        const Status submitted = (*service)->Submit(arrival.delta);
        if (submitted.ok()) break;
        if (submitted.code() != StatusCode::kResourceExhausted) {
          state.SkipWithError("submit failed");
          return;
        }
      }
    }
    if (!(*service)->Stop().ok()) {
      state.SkipWithError("stop failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kDeltas);
}
// Real time, not CPU: the work happens on the service's stage threads while
// the bench thread sleeps in Submit/Stop.
BENCHMARK(BM_ServePipelined)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_GreedyBestSet(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  const auto catalog = core::AdmissibleCatalog::Build(instance, {});
  for (auto _ : state) {
    auto arrangement = algo::GreedyBestSet(instance, catalog);
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_GreedyBestSet)->Arg(2000);

void BM_LpPackingEndToEnd(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    auto arrangement = core::LpPacking(instance, &rng, {});
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_LpPackingEndToEnd)->Arg(500)->Arg(2000);

// The two-level sharded solver end to end (decompose, coordinate, legalize)
// at a fixed 4-shard split — the same pipeline bench_sharded runs at 20k/100k
// users, kept here at micro scale so the tracked trajectory catches
// coordination-loop regressions cheaply. items_per_second is users/sec.
void BM_ShardedSolve(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  core::ShardedSolveOptions options;
  options.num_shards = 4;
  for (auto _ : state) {
    Rng rng(3);
    auto arrangement = core::ShardedSolve(instance, &rng, options);
    benchmark::DoNotOptimize(arrangement);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShardedSolve)->Arg(2000)->Unit(benchmark::kMillisecond);

// The same 4-shard solve with catalogs spilled to the igepa-cat,1 file and a
// pathological one-shard residency budget — every shard acquisition evicts,
// so the tracked trajectory prices the worst-case mmap/munmap overhead of
// the budgeted path against BM_ShardedSolve's in-memory row.
void BM_ShardedSolveSpill(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  core::ShardedSolveStats stats;
  core::ShardedSolveOptions options;
  options.num_shards = 4;
  options.memory_budget_bytes = uint64_t{1} << 40;  // probe: all resident
  {
    Rng rng(3);
    auto arrangement = core::ShardedSolve(instance, &rng, options, &stats);
    benchmark::DoNotOptimize(arrangement);
  }
  options.memory_budget_bytes = stats.shard_footprint_bytes;
  for (auto _ : state) {
    Rng rng(3);
    auto arrangement = core::ShardedSolve(instance, &rng, options, &stats);
    benchmark::DoNotOptimize(arrangement);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["evictions"] =
      benchmark::Counter(static_cast<double>(stats.evictions));
}
BENCHMARK(BM_ShardedSolveSpill)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_GreedyGg(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  for (auto _ : state) {
    auto arrangement = algo::GreedyGg(instance);
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_GreedyGg)->Arg(500)->Arg(2000);

void BM_RandomU(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    auto arrangement = algo::RandomU(instance, &rng);
    benchmark::DoNotOptimize(arrangement);
  }
}
BENCHMARK(BM_RandomU)->Arg(2000);

void BM_CheckFeasible(benchmark::State& state) {
  const auto instance = MakeInstance(static_cast<int32_t>(state.range(0)));
  auto arrangement = algo::GreedyGg(instance);
  for (auto _ : state) {
    auto status = arrangement->CheckFeasible(instance);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_CheckFeasible)->Arg(2000);

void BM_ErdosRenyi(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    auto g = graph::ErdosRenyi(static_cast<graph::NodeId>(state.range(0)),
                               0.5, &rng);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_ErdosRenyi)->Arg(1000)->Arg(2000);

void BM_ConflictGraphColoring(benchmark::State& state) {
  Rng rng(9);
  const auto m = conflict::MatrixConflict::Bernoulli(
      static_cast<conflict::EventId>(state.range(0)), 0.3, &rng);
  for (auto _ : state) {
    auto colors = conflict::GreedyColoring(m);
    benchmark::DoNotOptimize(colors);
  }
}
BENCHMARK(BM_ConflictGraphColoring)->Arg(200);

}  // namespace

// BENCHMARK_MAIN with a default JSON sink: BENCH_micro_core.json in the
// working directory, unless the caller already chose a --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Match only the file-sink flag, not --benchmark_out_format.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  // The library_build_type the JSON reports describes google-benchmark's own
  // build, not this tree's; stamp the igepa compile mode so bench_compare can
  // refuse debug-build baselines.
  benchmark::AddCustomContext("igepa_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
