// Ablation: the interest/interaction balance β of Definition 7. β=1 recovers
// the GEACC objective (pure interest — the paper's NP-hardness reduction,
// Theorem 1); β=0 optimizes social interaction alone. Reports the utility
// decomposition of LP-packing's output across β.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/stats.h"

int main() {
  using namespace igepa;
  const int32_t repeats = bench::Repeats(15);
  gen::SyntheticConfig config;
  config.num_users =
      static_cast<int32_t>(GetEnvInt("IGEPA_ABLATION_USERS", 1000));

  std::printf("igepa ablation — balance parameter beta "
              "(|V|=%d, |U|=%d, %d repeats)\n\n",
              config.num_events, config.num_users, repeats);
  std::printf("%-8s %14s %14s %14s %14s\n", "beta", "utility",
              "sum SI", "sum D", "pairs");

  Rng master(GetEnvInt("IGEPA_SEED", 20190408));
  for (double beta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    RunningStat utility, interest, degree, pairs;
    Rng sweep_master = master;  // identical instance stream across betas
    for (int32_t rep = 0; rep < repeats; ++rep) {
      Rng rep_rng = sweep_master.Fork();
      gen::SyntheticConfig point = config;
      point.beta = beta;
      auto instance = gen::GenerateSynthetic(point, &rep_rng);
      if (!instance.ok()) return 1;
      Rng alg_rng = rep_rng.Fork();
      auto arrangement = core::LpPacking(*instance, &alg_rng, {});
      if (!arrangement.ok()) return 1;
      const auto breakdown = arrangement->Breakdown(*instance);
      utility.Add(breakdown.total);
      interest.Add(breakdown.interest_total);
      degree.Add(breakdown.degree_total);
      pairs.Add(static_cast<double>(arrangement->size()));
    }
    std::printf("%-8.2f %14.2f %14.2f %14.2f %14.1f\n", beta, utility.mean(),
                interest.mean(), degree.mean(), pairs.mean());
  }
  std::printf("\nexpected shape: as beta rises, the arrangement trades total "
              "social degree (sum D) for total interest (sum SI); beta=1 is "
              "the conflict-aware GEACC special case of Theorem 1.\n");
  return 0;
}
