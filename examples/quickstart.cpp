// Quickstart: build a small IGEPA instance by hand through the public API,
// run LP-packing (Algorithm 1) and the GG baseline, and inspect the results.
//
//   $ ./build/examples/quickstart
//
// Scenario: a tech community runs four evening events; the two "evening
// keynote" sessions overlap in time (conflict), so nobody can attend both.

#include <cstdio>
#include <memory>

#include "algo/baselines.h"
#include "conflict/conflict.h"
#include "core/instance.h"
#include "core/lp_packing.h"
#include "graph/generators.h"
#include "graph/interaction_model.h"
#include "interest/interest.h"
#include "util/rng.h"

using namespace igepa;

int main() {
  // ---- Events: capacity + conflicts. --------------------------------------
  // e0 keynote-A (cap 2), e1 keynote-B (cap 2) — overlap in time;
  // e2 workshop (cap 1), e3 social dinner (cap 3).
  std::vector<core::EventDef> events(4);
  events[0].capacity = 2;
  events[1].capacity = 2;
  events[2].capacity = 1;
  events[3].capacity = 3;
  auto conflicts = std::make_shared<conflict::MatrixConflict>(4);
  conflicts->Set(0, 1, true);  // the keynotes clash

  // ---- Users: capacity + bids (the bidding setting of the paper). ---------
  std::vector<core::UserDef> users(5);
  users[0] = {2, {0, 1, 3}};  // wants a keynote and the dinner
  users[1] = {1, {0, 2}};     // one slot: keynote-A or the workshop
  users[2] = {2, {1, 2, 3}};
  users[3] = {2, {0, 1}};     // bids both keynotes (can attend only one)
  users[4] = {3, {0, 2, 3}};

  // ---- Interest SI(l_v, l_u) in [0,1]. -------------------------------------
  auto interest = std::make_shared<interest::TableInterest>(4, 5);
  const double si[5][4] = {{0.9, 0.6, 0.0, 0.7},
                           {0.8, 0.0, 0.9, 0.0},
                           {0.0, 0.7, 0.6, 0.5},
                           {0.6, 0.9, 0.0, 0.0},
                           {0.5, 0.0, 0.8, 0.9}};
  for (int32_t u = 0; u < 5; ++u) {
    for (int32_t v = 0; v < 4; ++v) interest->Set(v, u, si[u][v]);
  }

  // ---- Social network: D(G, u) = degree / (|U|-1). -------------------------
  graph::Graph g(5);
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(0, 2);
  (void)g.AddEdge(1, 2);
  (void)g.AddEdge(3, 4);
  g.Finalize();
  auto interaction = std::make_shared<graph::GraphInteractionModel>(std::move(g));

  // ---- The instance (β balances interest vs interaction). ------------------
  core::Instance instance(std::move(events), std::move(users), conflicts,
                          interest, interaction, /*beta=*/0.5);
  if (Status s = instance.Validate(); !s.ok()) {
    std::fprintf(stderr, "invalid instance: %s\n", s.ToString().c_str());
    return 1;
  }

  // ---- Run Algorithm 1 (LP-packing) and the greedy baseline. ---------------
  Rng rng(2019);
  core::LpPackingStats stats;
  auto lp_result = core::LpPacking(instance, &rng, {}, &stats);
  auto gg_result = algo::GreedyGg(instance);
  if (!lp_result.ok() || !gg_result.ok()) {
    std::fprintf(stderr, "solve failed\n");
    return 1;
  }

  const char* event_names[] = {"keynote-A", "keynote-B", "workshop", "dinner"};
  std::printf("LP-packing arrangement (utility %.3f, LP bound %.3f):\n",
              lp_result->Utility(instance), stats.lp_upper_bound);
  for (core::UserId u = 0; u < instance.num_users(); ++u) {
    std::printf("  user %d ->", u);
    for (core::EventId v : lp_result->EventsOf(u)) {
      std::printf(" %s", event_names[v]);
    }
    if (lp_result->EventsOf(u).empty()) std::printf(" (none)");
    std::printf("\n");
  }
  std::printf("GG greedy utility: %.3f\n", gg_result->Utility(instance));

  // Every arrangement returned by the library is feasible by construction —
  // verify anyway to demonstrate the validator.
  if (Status s = lp_result->CheckFeasible(instance); !s.ok()) {
    std::fprintf(stderr, "BUG: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("feasibility check: OK (bid, capacity and conflict "
              "constraints all hold)\n");
  return 0;
}
