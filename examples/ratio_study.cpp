// Approximation-ratio study (Theorem 2): sweeps the sampling scale α and
// measures the empirical E[ALG]/OPT on tiny instances against the theoretical
// worst-case curve α(1-α) — the quantity the proof of Theorem 2 bounds, which
// is maximized at α = 1/2 giving the paper's 1/4 guarantee. Also shows why
// the experiments use α = 1: in non-adversarial instances the capacity-repair
// loss is tiny, so more sampled mass is simply more utility.
//
//   $ ./build/examples/ratio_study

#include <cstdio>

#include "algo/exact.h"
#include "core/lp_packing.h"
#include "gen/synthetic.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace igepa;

int main() {
  constexpr int kInstances = 12;
  constexpr int kTrials = 300;

  gen::SyntheticConfig config;
  config.num_events = 8;
  config.num_users = 7;
  config.max_event_capacity = 3;
  config.max_user_capacity = 3;

  std::printf("Theorem 2 study: E[LP-packing]/OPT vs alpha "
              "(%d instances x %d trials)\n\n",
              kInstances, kTrials);
  std::printf("%-8s %14s %14s %16s\n", "alpha", "alpha(1-alpha)",
              "mean ratio", "min ratio");

  Rng master(20190408);
  // Pre-generate instances and their exact optima (shared across alphas).
  struct Prepared {
    core::Instance instance;
    double opt;
  };
  std::vector<Prepared> prepared;
  while (prepared.size() < kInstances) {
    Rng gen_rng = master.Fork();
    auto instance = gen::GenerateSynthetic(config, &gen_rng);
    if (!instance.ok()) return 1;
    algo::ExactStats stats;
    auto exact = algo::SolveExact(*instance, {}, &stats);
    if (!exact.ok() || stats.optimum <= 1e-9) continue;
    prepared.push_back({std::move(instance).value(), stats.optimum});
  }

  for (double alpha : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    RunningStat ratios;
    double min_ratio = 1e18;
    for (const Prepared& p : prepared) {
      core::LpPackingOptions options;
      options.alpha = alpha;
      const auto catalog = core::AdmissibleCatalog::Build(p.instance, {});
      auto fractional =
          core::SolveBenchmarkLpForPacking(p.instance, catalog, options);
      if (!fractional.ok()) return 1;
      double total = 0.0;
      for (int t = 0; t < kTrials; ++t) {
        Rng rng = master.Fork();
        auto arrangement = core::RoundFractional(p.instance, catalog,
                                                 *fractional, &rng, options);
        if (!arrangement.ok()) return 1;
        total += arrangement->Utility(p.instance);
      }
      const double ratio = total / kTrials / p.opt;
      ratios.Add(ratio);
      min_ratio = std::min(min_ratio, ratio);
    }
    std::printf("%-8.2f %14.4f %14.4f %16.4f\n", alpha, alpha * (1 - alpha),
                ratios.mean(), min_ratio);
  }
  std::printf("\nreading: every measured ratio sits far above the worst-case "
              "curve; the curve peaks at alpha=1/2 (the 1/4 guarantee), while "
              "realized utility keeps growing to alpha=1 — exactly why the "
              "paper evaluates with alpha=1.\n");
  return 0;
}
