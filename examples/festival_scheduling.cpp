// Festival scheduling scenario: the intro's motivating workload. A weekend
// festival publishes talks/workshops across three stages; sessions on
// different stages overlap in time (interval conflicts), capacities differ
// wildly (keynote hall vs 12-seat masterclass), and attendees bid for
// bundles of alternatives. Demonstrates interval conflicts, cosine interest
// over topic vectors, LP-packing vs greedy, and the local-search post-pass.
//
//   $ ./build/examples/festival_scheduling

#include <cstdio>
#include <memory>
#include <vector>

#include "algo/baselines.h"
#include "algo/local_search.h"
#include "conflict/conflict.h"
#include "core/instance.h"
#include "core/lp_packing.h"
#include "graph/generators.h"
#include "graph/interaction_model.h"
#include "interest/interest.h"
#include "util/rng.h"

using namespace igepa;

int main() {
  Rng rng(777);
  constexpr int32_t kSessions = 36;   // 2 days x 3 stages x 6 slots
  constexpr int32_t kAttendees = 600;
  constexpr int32_t kTopics = 6;      // music, tech, art, food, film, talks

  // ---- Sessions: schedule + capacity + topic profile. ----------------------
  std::vector<conflict::TimeInterval> schedule;
  std::vector<core::EventDef> sessions(kSessions);
  std::vector<std::vector<double>> session_topics;
  for (int32_t s = 0; s < kSessions; ++s) {
    const int64_t day = s / 18;          // 18 sessions per day
    const int64_t slot = (s % 18) / 3;   // 6 time slots
    const int64_t stage = s % 3;
    // Slots are 90 minutes with a 15-minute stagger per stage, so adjacent
    // stages overlap — the classic "which stage do I pick" conflict.
    const int64_t start = day * 1440 + 600 + slot * 90 + stage * 15;
    schedule.push_back({start, start + 90});
    sessions[static_cast<size_t>(s)].capacity =
        stage == 0 ? 200 : (stage == 1 ? 60 : 12);  // hall / tent / masterclass
    std::vector<double> topic(kTopics, 0.05);
    topic[static_cast<size_t>(rng.NextIndex(kTopics))] = 1.0;
    session_topics.push_back(std::move(topic));
  }
  auto conflicts = std::make_shared<conflict::IntervalConflict>(schedule);

  // ---- Attendees: topic tastes, friendship circles, bids. ------------------
  std::vector<std::vector<double>> tastes;
  std::vector<core::UserDef> attendees(kAttendees);
  for (int32_t u = 0; u < kAttendees; ++u) {
    std::vector<double> taste(kTopics, 0.0);
    taste[static_cast<size_t>(rng.NextIndex(kTopics))] = 1.0;
    taste[static_cast<size_t>(rng.NextIndex(kTopics))] += 0.5;
    tastes.push_back(std::move(taste));
    attendees[static_cast<size_t>(u)].capacity =
        static_cast<int32_t>(rng.UniformInt(2, 5));
  }
  auto interest = std::make_shared<interest::CosineInterest>(session_topics,
                                                             tastes);
  // Bids: each attendee picks a time slot they care about and bids the
  // mutually-conflicting stage alternatives in it, twice over.
  for (int32_t u = 0; u < kAttendees; ++u) {
    auto& bids = attendees[static_cast<size_t>(u)].bids;
    for (int round = 0; round < 2; ++round) {
      const int32_t anchor =
          static_cast<int32_t>(rng.NextIndex(kSessions));
      bids.push_back(anchor);
      for (int32_t s = 0; s < kSessions; ++s) {
        if (s != anchor && conflicts->Conflicts(anchor, s) &&
            rng.Bernoulli(0.5)) {
          bids.push_back(s);
        }
      }
    }
  }

  auto friends_graph = graph::ErdosRenyi(kAttendees, 0.02, &rng);
  if (!friends_graph.ok()) return 1;
  auto interaction = std::make_shared<graph::GraphInteractionModel>(
      std::move(friends_graph).value());

  core::Instance festival(std::move(sessions), std::move(attendees),
                          conflicts, interest, interaction, /*beta=*/0.6);
  if (Status s = festival.Validate(); !s.ok()) {
    std::fprintf(stderr, "invalid instance: %s\n", s.ToString().c_str());
    return 1;
  }

  // ---- Arrange. -------------------------------------------------------------
  Rng alg_rng(1);
  core::LpPackingStats stats;
  auto lp = core::LpPacking(festival, &alg_rng, {}, &stats);
  auto gg = algo::GreedyGg(festival);
  if (!lp.ok() || !gg.ok()) return 1;
  algo::LocalSearchStats ls_stats;
  auto lp_polished = algo::ImproveLocalSearch(festival, *lp, {}, &ls_stats);
  if (!lp_polished.ok()) return 1;

  std::printf("festival: %d sessions on 3 stages, %d attendees\n", kSessions,
              kAttendees);
  std::printf("  LP upper bound        : %8.2f\n", stats.lp_upper_bound);
  std::printf("  LP-packing            : %8.2f  (%lld seats filled)\n",
              lp->Utility(festival), static_cast<long long>(lp->size()));
  std::printf("  LP-packing + LS       : %8.2f  (+%d adds, +%d swaps)\n",
              lp_polished->Utility(festival), ls_stats.additions,
              ls_stats.swaps);
  std::printf("  GG greedy             : %8.2f  (%lld seats filled)\n",
              gg->Utility(festival), static_cast<long long>(gg->size()));

  // Seat pressure per stage class: how tight were the masterclasses?
  int64_t used[3] = {0, 0, 0}, cap[3] = {0, 0, 0};
  for (int32_t s = 0; s < kSessions; ++s) {
    const int32_t klass = s % 3;
    used[klass] +=
        static_cast<int64_t>(lp_polished->UsersOf(s).size());
    cap[klass] += festival.event_capacity(s);
  }
  const char* names[3] = {"main hall", "tent", "masterclass"};
  std::printf("\nseat utilization (LP-packing + LS):\n");
  for (int k = 0; k < 3; ++k) {
    std::printf("  %-12s %5lld / %-5lld (%.0f%%)\n", names[k],
                static_cast<long long>(used[k]),
                static_cast<long long>(cap[k]),
                100.0 * static_cast<double>(used[k]) /
                    static_cast<double>(cap[k]));
  }
  return 0;
}
