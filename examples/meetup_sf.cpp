// Meetup San Francisco scenario: generate the paper's real-dataset stand-in
// (190 events with start time + duration, 2811 users, group-based social
// graph — DESIGN.md substitution S10), run all four §IV algorithms on it,
// and export the instance + best arrangement as CSV for inspection.
//
//   $ ./build/examples/meetup_sf [output_dir]

#include <cstdio>
#include <iostream>
#include <string>

#include "exp/harness.h"
#include "exp/report.h"
#include "gen/meetup_sim.h"
#include "io/instance_io.h"

using namespace igepa;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  gen::MeetupConfig config;  // paper statistics by default
  Rng rng(20190408);
  auto instance = gen::GenerateMeetup(config, &rng);
  if (!instance.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated Meetup SF: %s\n\n",
              exp::DescribeInstance(*instance).c_str());

  // Run the four paper algorithms, several repetitions each (the instance is
  // fixed; randomized algorithms vary).
  exp::HarnessOptions options;
  options.repeats = 5;
  options.reuse_instance = true;
  options.lp.structured.target_gap = 0.002;
  options.lp.structured.max_iterations = 30000;
  const auto algorithms = exp::PaperAlgorithms();
  auto summaries = exp::RunComparison(
      [&](Rng*) -> Result<core::Instance> { return *instance; }, algorithms,
      options);
  if (!summaries.ok()) {
    std::fprintf(stderr, "comparison failed: %s\n",
                 summaries.status().ToString().c_str());
    return 1;
  }
  exp::PrintComparisonTable(std::cout, "simulated Meetup SF — Table II "
                                       "protocol",
                            algorithms, *summaries);

  // Export the instance and one LP-packing arrangement.
  Rng round_rng(7);
  core::LpPackingOptions lp_options = options.lp;
  auto arrangement = core::LpPacking(*instance, &round_rng, lp_options);
  if (!arrangement.ok()) return 1;
  const std::string instance_path = out_dir + "/meetup_sf_instance.csv";
  const std::string arrangement_path = out_dir + "/meetup_sf_arrangement.csv";
  if (Status s = io::WriteInstanceCsv(*instance, instance_path); !s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = io::WriteArrangementCsv(*arrangement, arrangement_path);
      !s.ok()) {
    std::fprintf(stderr, "export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nexported:\n  %s\n  %s\n", instance_path.c_str(),
              arrangement_path.c_str());
  return 0;
}
