#include "gen/meetup_sim.h"

#include <algorithm>
#include <memory>
#include <set>

#include "conflict/interval.h"
#include "graph/generators.h"

namespace igepa {
namespace gen {

using conflict::TimeInterval;
using core::EventDef;
using core::EventId;
using core::Instance;
using core::UserDef;
using core::UserId;

namespace {

/// Evening-biased start hour (Meetup events cluster after work): weights over
/// hours 8..22 peaking at 18-20.
int64_t SampleStartHour(Rng* rng) {
  static const std::vector<double> kHourWeights = {
      // 8   9   10  11  12  13  14  15  16  17  18  19  20  21  22
      1.0, 1.5, 2.5, 2.5, 3.0, 2.0, 2.0, 2.0, 2.5, 4.0, 8.0, 9.0, 6.0, 3.0,
      1.5};
  const size_t pick = rng->Discrete(kHourWeights);
  return 8 + static_cast<int64_t>(pick);
}

/// Normalizes a non-negative vector to unit L1 mass (no-op for zero mass).
void NormalizeL1(std::vector<double>* v) {
  double total = 0.0;
  for (double x : *v) total += x;
  if (total <= 0.0) return;
  for (double& x : *v) x /= total;
}

}  // namespace

Result<Instance> GenerateMeetup(const MeetupConfig& config, Rng* rng) {
  if (config.num_events <= 0 || config.num_users <= 0 ||
      config.num_groups <= 0 || config.num_categories <= 0) {
    return Status::InvalidArgument("meetup config dimensions must be positive");
  }
  if (config.min_duration_min <= 0 ||
      config.max_duration_min < config.min_duration_min) {
    return Status::InvalidArgument("invalid duration range");
  }
  if (config.mean_attended < 1.0) {
    return Status::InvalidArgument("mean_attended must be >= 1");
  }
  const int32_t nv = config.num_events;
  const int32_t nu = config.num_users;

  // --- Groups with category profiles. --------------------------------------
  std::vector<std::vector<double>> group_profile(
      static_cast<size_t>(config.num_groups),
      std::vector<double>(static_cast<size_t>(config.num_categories), 0.0));
  for (auto& profile : group_profile) {
    const size_t primary = static_cast<size_t>(
        rng->NextIndex(static_cast<uint64_t>(config.num_categories)));
    profile[primary] = 0.8;
    // Light secondary interests.
    for (auto& x : profile) x += 0.2 * rng->NextDouble() / config.num_categories;
    NormalizeL1(&profile);
  }

  // --- Events: owning group, category vector, schedule, capacity. ----------
  std::vector<int32_t> event_group(static_cast<size_t>(nv));
  std::vector<std::vector<double>> event_attrs(static_cast<size_t>(nv));
  std::vector<TimeInterval> schedule(static_cast<size_t>(nv));
  std::vector<EventDef> events(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) {
    const int32_t g = static_cast<int32_t>(
        rng->Zipf(config.num_groups, config.group_popularity_skew));
    event_group[static_cast<size_t>(v)] = g;
    auto attrs = group_profile[static_cast<size_t>(g)];
    for (auto& x : attrs) {
      x = std::max(0.0, x + rng->UniformDouble(-0.02, 0.02));
    }
    NormalizeL1(&attrs);
    event_attrs[static_cast<size_t>(v)] = std::move(attrs);

    const int64_t day = rng->UniformInt(0, config.horizon_days - 1);
    const int64_t start =
        day * 24 * 60 + SampleStartHour(rng) * 60 + 15 * rng->UniformInt(0, 3);
    const int64_t duration =
        rng->UniformInt(config.min_duration_min, config.max_duration_min);
    schedule[static_cast<size_t>(v)] = TimeInterval{start, start + duration};

    events[static_cast<size_t>(v)].capacity =
        rng->Bernoulli(config.p_explicit_capacity)
            ? static_cast<int32_t>(
                  rng->UniformInt(config.min_capacity, config.max_capacity))
            : nu;  // unspecified capacity -> total number of users (§IV)
  }
  auto conflicts =
      std::make_shared<conflict::IntervalConflict>(std::move(schedule));

  // --- Users: group memberships, category preferences. ---------------------
  std::vector<std::vector<graph::NodeId>> group_members(
      static_cast<size_t>(config.num_groups));
  std::vector<std::vector<int32_t>> user_groups(static_cast<size_t>(nu));
  std::vector<std::vector<double>> user_attrs(static_cast<size_t>(nu));
  for (UserId u = 0; u < nu; ++u) {
    const int64_t count = rng->UniformInt(config.min_groups_per_user,
                                          config.max_groups_per_user);
    std::set<int32_t> joined;
    int64_t guard = 0;
    while (static_cast<int64_t>(joined.size()) < count &&
           guard++ < 16 * count) {
      joined.insert(static_cast<int32_t>(
          rng->Zipf(config.num_groups, config.group_popularity_skew)));
    }
    std::vector<double> prefs(static_cast<size_t>(config.num_categories), 0.0);
    for (int32_t g : joined) {
      group_members[static_cast<size_t>(g)].push_back(u);
      user_groups[static_cast<size_t>(u)].push_back(g);
      const auto& profile = group_profile[static_cast<size_t>(g)];
      for (size_t c = 0; c < prefs.size(); ++c) prefs[c] += profile[c];
    }
    for (auto& x : prefs) {
      x = std::max(0.0, x + rng->UniformDouble(-0.05, 0.05));
    }
    NormalizeL1(&prefs);
    user_attrs[static_cast<size_t>(u)] = std::move(prefs);
  }

  // --- Social graph: edge iff two users share >= 1 group. ------------------
  IGEPA_ASSIGN_OR_RETURN(graph::Graph social,
                         graph::GroupOverlapGraph(nu, group_members));
  auto interaction =
      std::make_shared<graph::GraphInteractionModel>(std::move(social));

  // --- Interest: category cosine similarity as in GEACC [4]. ---------------
  auto interest = std::make_shared<interest::CosineInterest>(
      std::move(event_attrs), std::move(user_attrs));

  // --- Attendance, capacities, bids. ----------------------------------------
  // Events of each user's groups, the candidate pool for attendance.
  std::vector<std::vector<EventId>> group_events(
      static_cast<size_t>(config.num_groups));
  for (EventId v = 0; v < nv; ++v) {
    group_events[static_cast<size_t>(event_group[static_cast<size_t>(v)])]
        .push_back(v);
  }

  std::vector<UserDef> users(static_cast<size_t>(nu));
  std::vector<EventId> all_events(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) all_events[static_cast<size_t>(v)] = v;

  for (UserId u = 0; u < nu; ++u) {
    // Candidate pool: own groups' events first, globally ranked by interest.
    std::set<EventId> pool;
    for (int32_t g : user_groups[static_cast<size_t>(u)]) {
      for (EventId v : group_events[static_cast<size_t>(g)]) pool.insert(v);
    }
    std::vector<EventId> ranked(pool.begin(), pool.end());
    std::stable_sort(ranked.begin(), ranked.end(), [&](EventId a, EventId b) {
      return interest->Interest(a, u) > interest->Interest(b, u);
    });

    const int64_t target =
        1 + rng->Poisson(config.mean_attended - 1.0);
    std::vector<EventId> attended;
    auto try_attend = [&](EventId v) {
      if (static_cast<int64_t>(attended.size()) >= target) return;
      for (EventId held : attended) {
        if (conflicts->Conflicts(held, v)) return;  // cannot attend overlaps
      }
      attended.push_back(v);
    };
    for (EventId v : ranked) try_attend(v);
    if (static_cast<int64_t>(attended.size()) < target) {
      // Fill from the global ranking when the user's groups run dry.
      std::vector<EventId> global = all_events;
      std::stable_sort(global.begin(), global.end(),
                       [&](EventId a, EventId b) {
                         return interest->Interest(a, u) >
                                interest->Interest(b, u);
                       });
      for (EventId v : global) try_attend(v);
    }
    if (attended.empty()) attended.push_back(static_cast<EventId>(
        rng->NextIndex(static_cast<uint64_t>(nv))));

    auto& def = users[static_cast<size_t>(u)];
    def.capacity = 2 * static_cast<int32_t>(attended.size());  // c_u = 2·|att|

    // Bids: attended events + the c_u/2 most interesting other events.
    std::set<EventId> bids(attended.begin(), attended.end());
    const int32_t extra = def.capacity / 2;
    std::vector<EventId> global = all_events;
    std::stable_sort(global.begin(), global.end(), [&](EventId a, EventId b) {
      return interest->Interest(a, u) > interest->Interest(b, u);
    });
    int32_t added = 0;
    for (EventId v : global) {
      if (added >= extra) break;
      if (bids.insert(v).second) ++added;
    }
    def.bids.assign(bids.begin(), bids.end());
  }

  Instance instance(std::move(events), std::move(users), std::move(conflicts),
                    std::move(interest), std::move(interaction), config.beta);
  IGEPA_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

}  // namespace gen
}  // namespace igepa
