#ifndef IGEPA_GEN_MEETUP_SIM_H_
#define IGEPA_GEN_MEETUP_SIM_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace gen {

/// Configuration of the Meetup-San-Francisco dataset *simulator* —
/// substitution S10 in DESIGN.md. The paper's crawl (190 events, 2811 users)
/// is not distributed, so this simulator reproduces every published
/// construction rule of §IV on synthetic entities:
///   * each event has a start time and a duration; overlap ⇒ conflict;
///   * events without an explicit capacity get c_v = |U|;
///   * users join groups; two users sharing ≥ 1 group are social-graph
///     neighbours;
///   * interest is attribute (category) similarity as in GEACC [4];
///   * c_u = 2 × (number of events the user attended);
///   * bids = attended events ∪ the c_u/2 most interesting other events.
struct MeetupConfig {
  int32_t num_events = 190;
  int32_t num_users = 2811;
  int32_t num_groups = 120;
  int32_t num_categories = 12;

  /// Time model: events over `horizon_days`, evening-biased start hours,
  /// durations Uniform{min..max} minutes. Real Meetup events cluster on a
  /// few evening hours, so a short horizon with long durations reproduces
  /// the crawl's overlap-heavy conflict structure.
  int32_t horizon_days = 14;
  int32_t min_duration_min = 90;
  int32_t max_duration_min = 300;

  /// "Only some events specify their capacities": with this probability the
  /// event gets Uniform{min_capacity..max_capacity}, otherwise c_v = |U|.
  double p_explicit_capacity = 0.5;
  int32_t min_capacity = 10;
  int32_t max_capacity = 100;

  /// Group memberships per user (popularity is Zipf-distributed over groups).
  int32_t min_groups_per_user = 1;
  int32_t max_groups_per_user = 6;
  double group_popularity_skew = 0.9;

  /// Mean number of events a user attended (>= 1; Poisson-shifted).
  double mean_attended = 2.0;

  double beta = 0.5;
};

/// Generates the simulated Meetup instance. Deterministic given `rng` seed.
Result<core::Instance> GenerateMeetup(const MeetupConfig& config, Rng* rng);

}  // namespace gen
}  // namespace igepa

#endif  // IGEPA_GEN_MEETUP_SIM_H_
