#include "gen/delta_stream.h"

#include <algorithm>

namespace igepa {
namespace gen {

using core::EventCapacityUpdate;
using core::EventId;
using core::GraphEdgeUpdate;
using core::InstanceDelta;
using core::InterestUpdate;
using core::UserId;
using core::UserUpdate;

std::vector<InstanceDelta> GenerateDeltaStream(const core::Instance& instance,
                                               const DeltaStreamConfig& config,
                                               Rng* rng) {
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  std::vector<InstanceDelta> stream;
  if (config.num_ticks <= 0 || nu == 0 || nv == 0) return stream;
  stream.reserve(static_cast<size_t>(config.num_ticks));

  const int32_t users_per_tick =
      std::min(config.user_updates_per_tick, nu);
  const int32_t events_per_tick =
      std::min(config.event_updates_per_tick, nv);
  const int32_t min_bids = std::max(1, config.min_bids);
  const int32_t max_bids = std::max(min_bids, config.max_bids);
  const int32_t max_cu = std::max(1, config.max_user_capacity);

  for (int32_t tick = 0; tick < config.num_ticks; ++tick) {
    InstanceDelta delta;
    // Distinct users this tick; sorted so the stream (and every consumer's
    // touched-user bookkeeping) is canonical.
    std::vector<size_t> users =
        rng->SampleIndices(static_cast<size_t>(nu),
                           static_cast<size_t>(users_per_tick));
    std::sort(users.begin(), users.end());
    for (size_t uu : users) {
      UserUpdate up;
      up.user = static_cast<UserId>(uu);
      if (rng->Bernoulli(config.p_cancel)) {
        // Cancellation: the slot stays, the registration goes.
        up.capacity = 0;
      } else {
        up.capacity = static_cast<int32_t>(rng->UniformInt(1, max_cu));
        const auto k = static_cast<size_t>(rng->UniformInt(min_bids, max_bids));
        std::vector<size_t> bids =
            rng->SampleIndices(static_cast<size_t>(nv), k);
        up.bids.reserve(bids.size());
        for (size_t v : bids) up.bids.push_back(static_cast<EventId>(v));
        std::sort(up.bids.begin(), up.bids.end());
      }
      delta.user_updates.push_back(std::move(up));
    }
    std::vector<size_t> events =
        rng->SampleIndices(static_cast<size_t>(nv),
                           static_cast<size_t>(events_per_tick));
    std::sort(events.begin(), events.end());
    for (size_t vv : events) {
      EventCapacityUpdate up;
      up.event = static_cast<EventId>(vv);
      const int32_t base = instance.event_capacity(up.event);
      const int32_t half = std::max(1, base / 2);
      up.capacity = static_cast<int32_t>(
          rng->UniformInt(std::max(1, base - half), base + half));
      delta.event_updates.push_back(up);
    }
    // Weight half (v2 streams): drawn only when configured, so legacy
    // configs replay the exact RNG sequence they always did.
    if (config.graph_updates_per_tick > 0 && nu >= 2) {
      for (int32_t e = 0; e < config.graph_updates_per_tick; ++e) {
        GraphEdgeUpdate up;
        std::vector<size_t> ends =
            rng->SampleIndices(static_cast<size_t>(nu), 2);
        std::sort(ends.begin(), ends.end());
        up.a = static_cast<UserId>(ends[0]);
        up.b = static_cast<UserId>(ends[1]);
        up.add = rng->Bernoulli(config.p_edge_add);
        delta.graph_updates.push_back(up);
      }
    }
    if (config.interest_updates_per_tick > 0) {
      for (int32_t e = 0; e < config.interest_updates_per_tick; ++e) {
        InterestUpdate up;
        up.event =
            static_cast<EventId>(rng->NextIndex(static_cast<uint64_t>(nv)));
        up.user =
            static_cast<UserId>(rng->NextIndex(static_cast<uint64_t>(nu)));
        up.value = rng->NextDouble();
        delta.interest_updates.push_back(up);
      }
    }
    stream.push_back(std::move(delta));
  }
  return stream;
}

}  // namespace gen
}  // namespace igepa
