#include "gen/streaming_gen.h"

#include <algorithm>
#include <vector>

#include "conflict/conflict_graph.h"
#include "core/utility_kernel.h"
#include "interest/interest.h"
#include "io/binary_instance.h"

namespace igepa {
namespace gen {

using core::EventId;
using core::UserId;

namespace {

/// SplitMix64-style substream seed for user `u`: Rng's own constructor runs
/// SplitMix64 over the result, so consecutive users land in statistically
/// independent streams.
uint64_t UserSeed(uint64_t base, UserId u) {
  return base ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(u) + 1));
}

/// One user's draws, identical in both passes (each pass constructs a fresh
/// Rng from UserSeed, so replay is exact). Mirrors GenerateSynthetic's bid
/// model: capacity Uniform{1..max}, then `groups` anchor events each pulling
/// a cluster of conflict neighbours. `bids` comes back sorted, deduplicated.
int32_t GenerateUserBids(const SyntheticConfig& config,
                         const std::vector<std::vector<EventId>>& neighbours,
                         Rng* user_rng, std::vector<EventId>* bids) {
  const int32_t nv = config.num_events;
  const int32_t capacity = static_cast<int32_t>(
      user_rng->UniformInt(1, config.max_user_capacity));
  bids->clear();
  const int64_t groups = user_rng->UniformInt(config.min_groups_per_user,
                                              config.max_groups_per_user);
  for (int64_t g = 0; g < groups; ++g) {
    const EventId anchor =
        static_cast<EventId>(user_rng->NextIndex(static_cast<uint64_t>(nv)));
    bids->push_back(anchor);
    const auto& conflict_pool = neighbours[static_cast<size_t>(anchor)];
    const int64_t want = user_rng->UniformInt(config.min_conflicts_per_group,
                                              config.max_conflicts_per_group);
    if (!conflict_pool.empty()) {
      const auto picks = user_rng->SampleIndices(
          conflict_pool.size(),
          static_cast<size_t>(std::min<int64_t>(
              want, static_cast<int64_t>(conflict_pool.size()))));
      for (size_t index : picks) bids->push_back(conflict_pool[index]);
    } else {
      for (int64_t k = 0; k < want; ++k) {
        bids->push_back(static_cast<EventId>(
            user_rng->NextIndex(static_cast<uint64_t>(nv))));
      }
    }
  }
  std::sort(bids->begin(), bids->end());
  bids->erase(std::unique(bids->begin(), bids->end()), bids->end());
  return capacity;
}

}  // namespace

Result<StreamingGenStats> GenerateSyntheticBinary(const SyntheticConfig& config,
                                                  Rng* rng,
                                                  const std::string& kernel_id,
                                                  const std::string& path) {
  if (config.num_events <= 0 || config.num_users <= 0) {
    return Status::InvalidArgument("num_events/num_users must be positive");
  }
  if (config.max_event_capacity < 1 || config.max_user_capacity < 1) {
    return Status::InvalidArgument("capacities must be >= 1");
  }
  if (config.p_conflict < 0.0 || config.p_conflict > 1.0 ||
      config.p_friend < 0.0 || config.p_friend > 1.0) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }
  if (config.min_groups_per_user < 1 ||
      config.max_groups_per_user < config.min_groups_per_user ||
      config.min_conflicts_per_group < 0 ||
      config.max_conflicts_per_group < config.min_conflicts_per_group) {
    return Status::InvalidArgument("invalid bid-model parameters");
  }
  // Fail before touching the output file if the kernel id is unknown.
  IGEPA_RETURN_IF_ERROR(core::MakeUtilityKernel(kernel_id).status());

  const int32_t nv = config.num_events;
  const int32_t nu = config.num_users;

  // |U|-independent state: conflict matrix (O(|V|²) bits), neighbour lists,
  // event capacities. Master-stream draw order is fixed and documented.
  const conflict::MatrixConflict conflicts =
      conflict::MatrixConflict::Bernoulli(nv, config.p_conflict, rng);
  std::vector<std::vector<EventId>> neighbours(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) {
    neighbours[static_cast<size_t>(v)] =
        conflict::ConflictNeighbors(conflicts, v);
  }
  std::vector<int32_t> event_caps(static_cast<size_t>(nv));
  for (auto& cap : event_caps) {
    cap = static_cast<int32_t>(rng->UniformInt(1, config.max_event_capacity));
  }
  const uint64_t user_seed_base = rng->Next();
  const interest::HashUniformInterest interest_fn(
      nv, nu, rng->Next() ^ config.interest_seed_salt);

  // Pass 1 — replay every user just to learn the binding header count.
  StreamingGenStats stats;
  std::vector<EventId> bids;
  for (UserId u = 0; u < nu; ++u) {
    Rng user_rng(UserSeed(user_seed_base, u));
    GenerateUserBids(config, neighbours, &user_rng, &bids);
    stats.num_bids += static_cast<int64_t>(bids.size());
  }
  stats.num_conflicts = conflicts.CountConflicts();

  io::BinaryInstanceHeader header;
  header.num_events = nv;
  header.num_users = nu;
  header.num_bids = stats.num_bids;
  header.num_conflicts = stats.num_conflicts;
  header.beta = config.beta;
  header.kernel_id = kernel_id;
  IGEPA_ASSIGN_OR_RETURN(io::BinaryInstanceWriter writer,
                         io::BinaryInstanceWriter::Create(path, header));
  for (EventId v = 0; v < nv; ++v) {
    IGEPA_RETURN_IF_ERROR(writer.AddEvent(event_caps[static_cast<size_t>(v)]));
  }

  // Pass 2 — replay again, this time streaming each record straight into the
  // writer. Degree uses the binomial model inline (one Binomial draw after
  // the bid draws), so no per-user state outlives its AddUser call.
  const double denom = nu > 1 ? static_cast<double>(nu - 1) : 1.0;
  std::vector<double> interest;
  for (UserId u = 0; u < nu; ++u) {
    Rng user_rng(UserSeed(user_seed_base, u));
    const int32_t capacity =
        GenerateUserBids(config, neighbours, &user_rng, &bids);
    interest.clear();
    interest.reserve(bids.size());
    for (EventId v : bids) interest.push_back(interest_fn.Interest(v, u));
    const double degree =
        nu > 1
            ? static_cast<double>(user_rng.Binomial(nu - 1, config.p_friend)) /
                  denom
            : 0.0;
    IGEPA_RETURN_IF_ERROR(writer.AddUser(capacity, bids, interest, degree));
  }
  for (EventId a = 0; a < nv; ++a) {
    for (EventId b = a + 1; b < nv; ++b) {
      if (conflicts.Conflicts(a, b)) {
        IGEPA_RETURN_IF_ERROR(writer.AddConflict(a, b));
      }
    }
  }
  IGEPA_RETURN_IF_ERROR(writer.Finish());
  return stats;
}

}  // namespace gen
}  // namespace igepa
