#include "gen/synthetic.h"

#include <algorithm>
#include <memory>

#include "conflict/conflict_graph.h"
#include "graph/generators.h"

namespace igepa {
namespace gen {

using core::EventDef;
using core::EventId;
using core::Instance;
using core::UserDef;
using core::UserId;

Result<Instance> GenerateSynthetic(const SyntheticConfig& config, Rng* rng) {
  if (config.num_events <= 0 || config.num_users <= 0) {
    return Status::InvalidArgument("num_events/num_users must be positive");
  }
  if (config.max_event_capacity < 1 || config.max_user_capacity < 1) {
    return Status::InvalidArgument("capacities must be >= 1");
  }
  if (config.p_conflict < 0.0 || config.p_conflict > 1.0 ||
      config.p_friend < 0.0 || config.p_friend > 1.0) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }
  if (config.min_groups_per_user < 1 ||
      config.max_groups_per_user < config.min_groups_per_user ||
      config.min_conflicts_per_group < 0 ||
      config.max_conflicts_per_group < config.min_conflicts_per_group) {
    return Status::InvalidArgument("invalid bid-model parameters");
  }

  const int32_t nv = config.num_events;
  const int32_t nu = config.num_users;

  // --- Conflicts: Bernoulli(p_cf) per pair. --------------------------------
  auto conflicts = std::make_shared<conflict::MatrixConflict>(
      conflict::MatrixConflict::Bernoulli(nv, config.p_conflict, rng));

  // Precompute conflict neighbourhoods once for the bid sampler.
  std::vector<std::vector<EventId>> neighbours(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) {
    neighbours[static_cast<size_t>(v)] =
        conflict::ConflictNeighbors(*conflicts, v);
  }

  // --- Events: capacities Uniform{1..max}. ---------------------------------
  std::vector<EventDef> events(static_cast<size_t>(nv));
  for (auto& e : events) {
    e.capacity =
        static_cast<int32_t>(rng->UniformInt(1, config.max_event_capacity));
  }

  // --- Users: capacities Uniform{1..max}; dependent bids. ------------------
  // Bids collect into one reused scratch vector (sort + unique afterwards)
  // instead of a per-user node-based std::set: every RNG draw below is
  // unconditional on what was already collected, so the random stream — and
  // the resulting sorted deduplicated bid set — is identical to the historic
  // std::set version, without 100k+ users paying an allocation per bid.
  std::vector<UserDef> users(static_cast<size_t>(nu));
  std::vector<EventId> bids;
  bids.reserve(static_cast<size_t>(config.max_groups_per_user) *
               static_cast<size_t>(1 + config.max_conflicts_per_group));
  for (auto& user : users) {
    user.capacity =
        static_cast<int32_t>(rng->UniformInt(1, config.max_user_capacity));
    bids.clear();
    const int64_t groups = rng->UniformInt(config.min_groups_per_user,
                                           config.max_groups_per_user);
    for (int64_t g = 0; g < groups; ++g) {
      // Anchor event, then a cluster of events conflicting with it — the
      // "similar and often conflicting" alternatives the user hedges across.
      const EventId anchor =
          static_cast<EventId>(rng->NextIndex(static_cast<uint64_t>(nv)));
      bids.push_back(anchor);
      const auto& conflict_pool = neighbours[static_cast<size_t>(anchor)];
      const int64_t want = rng->UniformInt(config.min_conflicts_per_group,
                                           config.max_conflicts_per_group);
      if (!conflict_pool.empty()) {
        const auto picks = rng->SampleIndices(
            conflict_pool.size(),
            static_cast<size_t>(std::min<int64_t>(
                want, static_cast<int64_t>(conflict_pool.size()))));
        for (size_t index : picks) bids.push_back(conflict_pool[index]);
      } else {
        // Conflict-free regime (p_cf = 0): fall back to unrelated events so
        // the bid-set size distribution stays comparable.
        for (int64_t k = 0; k < want; ++k) {
          bids.push_back(
              static_cast<EventId>(rng->NextIndex(static_cast<uint64_t>(nv))));
        }
      }
    }
    std::sort(bids.begin(), bids.end());
    bids.erase(std::unique(bids.begin(), bids.end()), bids.end());
    user.bids.assign(bids.begin(), bids.end());
    user.bids.shrink_to_fit();
  }

  // --- Interest: pairwise Uniform[0,1] without storage. --------------------
  auto interest = std::make_shared<interest::HashUniformInterest>(
      nv, nu, rng->Next() ^ config.interest_seed_salt);

  // --- Social interaction: explicit G(n, p_deg) or degree model. -----------
  std::shared_ptr<const graph::InteractionModel> interaction;
  const bool use_degree_model =
      config.interaction_mode == InteractionMode::kDegreeModel ||
      (config.interaction_mode == InteractionMode::kAuto &&
       nu > config.degree_model_threshold);
  if (use_degree_model) {
    interaction =
        std::make_shared<graph::BinomialDegreeModel>(nu, config.p_friend, rng);
  } else {
    IGEPA_ASSIGN_OR_RETURN(graph::Graph g,
                           graph::ErdosRenyi(nu, config.p_friend, rng));
    interaction =
        std::make_shared<graph::GraphInteractionModel>(std::move(g));
  }

  Instance instance(std::move(events), std::move(users), std::move(conflicts),
                    std::move(interest), std::move(interaction), config.beta);
  IGEPA_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

}  // namespace gen
}  // namespace igepa
