#ifndef IGEPA_GEN_DELTA_STREAM_H_
#define IGEPA_GEN_DELTA_STREAM_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/instance_delta.h"
#include "util/rng.h"

namespace igepa {
namespace gen {

/// Configuration of the synthetic mutation stream the replay workload
/// consumes: per tick, a few users cancel or re-register (fresh capacity and
/// bid set) and a few events resize — the churn pattern of a live EBSN
/// (users register/cancel continuously, venues change capacity).
struct DeltaStreamConfig {
  int32_t num_ticks = 10;
  /// Distinct users touched per tick.
  int32_t user_updates_per_tick = 4;
  /// Distinct events whose capacity changes per tick.
  int32_t event_updates_per_tick = 1;
  /// Probability a touched user cancels (empty bid set) instead of
  /// re-registering with fresh bids.
  double p_cancel = 0.2;
  /// Re-registration: bid-set size Uniform{min_bids..max_bids} over distinct
  /// events, capacity Uniform{1..max_user_capacity}.
  int32_t min_bids = 2;
  int32_t max_bids = 6;
  int32_t max_user_capacity = 4;
};

/// Samples a reproducible `num_ticks`-long mutation stream against the base
/// instance. Event capacities jitter around the BASE instance's values (the
/// stream is generated up front, before any delta is applied), within
/// [max(1, c/2), c + max(1, c/2)]. All randomness comes from `rng`.
std::vector<core::InstanceDelta> GenerateDeltaStream(
    const core::Instance& instance, const DeltaStreamConfig& config, Rng* rng);

}  // namespace gen
}  // namespace igepa

#endif  // IGEPA_GEN_DELTA_STREAM_H_
