#ifndef IGEPA_GEN_DELTA_STREAM_H_
#define IGEPA_GEN_DELTA_STREAM_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/instance_delta.h"
#include "util/rng.h"

namespace igepa {
namespace gen {

/// Configuration of the synthetic mutation stream the replay workload
/// consumes: per tick, a few users cancel or re-register (fresh capacity and
/// bid set) and a few events resize — the churn pattern of a live EBSN
/// (users register/cancel continuously, venues change capacity).
struct DeltaStreamConfig {
  int32_t num_ticks = 10;
  /// Distinct users touched per tick.
  int32_t user_updates_per_tick = 4;
  /// Distinct events whose capacity changes per tick.
  int32_t event_updates_per_tick = 1;
  /// Probability a touched user cancels (empty bid set) instead of
  /// re-registering with fresh bids.
  double p_cancel = 0.2;
  /// Re-registration: bid-set size Uniform{min_bids..max_bids} over distinct
  /// events, capacity Uniform{1..max_user_capacity}.
  int32_t min_bids = 2;
  int32_t max_bids = 6;
  int32_t max_user_capacity = 4;
  /// Weight-delta mutations per tick (format v2): friendship edges forming /
  /// dissolving (uniform endpoint pairs, add with probability p_edge_add) and
  /// interest drift (uniform (event, user) pairs, fresh SI Uniform[0,1]).
  /// Edge mutations are memoryless — no edge-existence bookkeeping, so the
  /// touched degrees perform a bounded random walk rather than tracking a
  /// concrete graph (Instance::ApplyGraphEdge documents the contract).
  /// Both default to 0, leaving legacy streams — and their RNG draw sequence
  /// — bit-identical.
  int32_t graph_updates_per_tick = 0;
  int32_t interest_updates_per_tick = 0;
  double p_edge_add = 0.5;
};

/// Samples a reproducible `num_ticks`-long mutation stream against the base
/// instance. Event capacities jitter around the BASE instance's values (the
/// stream is generated up front, before any delta is applied), within
/// [max(1, c/2), c + max(1, c/2)]. All randomness comes from `rng`.
std::vector<core::InstanceDelta> GenerateDeltaStream(
    const core::Instance& instance, const DeltaStreamConfig& config, Rng* rng);

}  // namespace gen
}  // namespace igepa

#endif  // IGEPA_GEN_DELTA_STREAM_H_
