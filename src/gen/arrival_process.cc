#include "gen/arrival_process.h"

#include <algorithm>
#include <cmath>

namespace igepa {
namespace gen {

using core::ArrivalEvent;
using core::EventCapacityUpdate;
using core::EventId;
using core::GraphEdgeUpdate;
using core::InterestUpdate;
using core::UserId;
using core::UserUpdate;

std::vector<ArrivalEvent> GenerateArrivalProcess(
    const core::Instance& instance, const ArrivalProcessConfig& config,
    Rng* rng) {
  std::vector<ArrivalEvent> stream;
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  if (config.num_arrivals <= 0 || config.rate_per_second <= 0 || nu == 0 ||
      nv == 0) {
    return stream;
  }
  const double p_edge_mass =
      nu >= 2 ? std::max(0.0, config.p_graph_edge) : 0.0;
  const double total_mass = std::max(0.0, config.p_register) +
                            std::max(0.0, config.p_cancel) +
                            std::max(0.0, config.p_event_capacity) +
                            p_edge_mass +
                            std::max(0.0, config.p_interest_drift);
  if (total_mass <= 0) return stream;
  const double p_register = std::max(0.0, config.p_register) / total_mass;
  const double p_cancel = std::max(0.0, config.p_cancel) / total_mass;
  const double p_event =
      std::max(0.0, config.p_event_capacity) / total_mass;
  const double p_edge = p_edge_mass / total_mass;
  const int32_t min_bids = std::max(1, config.min_bids);
  const int32_t max_bids = std::max(min_bids, config.max_bids);
  const int32_t max_cu = std::max(1, config.max_user_capacity);

  stream.reserve(static_cast<size_t>(config.num_arrivals));
  const auto sample_event_capacity = [&](core::InstanceDelta* delta) {
    EventCapacityUpdate up;
    up.event =
        static_cast<EventId>(rng->NextIndex(static_cast<uint64_t>(nv)));
    const int32_t base = instance.event_capacity(up.event);
    const int32_t jitter = std::max(1, base / 2);
    up.capacity = static_cast<int32_t>(
        rng->UniformInt(std::max(1, base - jitter), base + jitter));
    delta->event_updates.push_back(up);
  };
  double clock = 0.0;
  for (int32_t i = 0; i < config.num_arrivals; ++i) {
    // Exponential(λ) gap via inversion; 1 - U in (0, 1] keeps log finite.
    clock += -std::log(1.0 - rng->NextDouble()) / config.rate_per_second;
    ArrivalEvent arrival;
    arrival.at_seconds = clock;

    const double kind = rng->NextDouble();
    if (kind < p_register + p_cancel) {
      UserUpdate up;
      up.user = static_cast<UserId>(rng->NextIndex(static_cast<uint64_t>(nu)));
      if (kind < p_register) {
        up.capacity = static_cast<int32_t>(rng->UniformInt(1, max_cu));
        const auto k = static_cast<size_t>(rng->UniformInt(min_bids, max_bids));
        std::vector<size_t> bids =
            rng->SampleIndices(static_cast<size_t>(nv), k);
        up.bids.reserve(bids.size());
        for (size_t v : bids) up.bids.push_back(static_cast<EventId>(v));
        std::sort(up.bids.begin(), up.bids.end());
      }  // else: cancellation — capacity 0, empty bid set.
      arrival.delta.user_updates.push_back(std::move(up));
    } else if (kind < p_register + p_cancel + p_event) {
      sample_event_capacity(&arrival.delta);
    } else if (kind < p_register + p_cancel + p_event + p_edge) {
      GraphEdgeUpdate up;
      std::vector<size_t> ends =
          rng->SampleIndices(static_cast<size_t>(nu), 2);
      std::sort(ends.begin(), ends.end());
      up.a = static_cast<UserId>(ends[0]);
      up.b = static_cast<UserId>(ends[1]);
      up.add = rng->Bernoulli(config.p_edge_add);
      arrival.delta.graph_updates.push_back(up);
    } else if (config.p_interest_drift > 0) {
      InterestUpdate up;
      up.event =
          static_cast<EventId>(rng->NextIndex(static_cast<uint64_t>(nv)));
      up.user =
          static_cast<UserId>(rng->NextIndex(static_cast<uint64_t>(nu)));
      up.value = rng->NextDouble();
      arrival.delta.interest_updates.push_back(up);
    } else {
      // Catch-all for the sub-ulp probability gap the normalized cumulative
      // bounds can leave: fall back to an event-capacity update (the
      // pre-kernel catch-all), so a config with no weight kinds can never
      // emit one.
      sample_event_capacity(&arrival.delta);
    }
    stream.push_back(std::move(arrival));
  }
  return stream;
}

}  // namespace gen
}  // namespace igepa
