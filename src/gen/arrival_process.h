#ifndef IGEPA_GEN_ARRIVAL_PROCESS_H_
#define IGEPA_GEN_ARRIVAL_PROCESS_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/instance_delta.h"
#include "util/rng.h"

namespace igepa {
namespace gen {

/// Configuration of the Poisson arrival process: mutation inter-arrival gaps
/// are Exponential(rate_per_second), and each arrival is independently a user
/// re-registration, a user cancellation, or an event capacity change per the
/// mix probabilities (p_register + p_cancel + p_event_capacity must be
/// positive; they are normalized).
struct ArrivalProcessConfig {
  /// Total arrivals to emit.
  int32_t num_arrivals = 1000;
  /// Mean arrivals per second (the Poisson process intensity λ).
  double rate_per_second = 100.0;
  /// Mutation mix (normalized internally). The weight-delta kinds (graph
  /// edge, interest drift — arrival format v2) default to 0 so legacy
  /// configs keep their exact RNG draw sequence. Edge mutations are
  /// memoryless (no edge-existence bookkeeping — see
  /// Instance::ApplyGraphEdge).
  double p_register = 0.70;
  double p_cancel = 0.15;
  double p_event_capacity = 0.15;
  double p_graph_edge = 0.0;
  double p_interest_drift = 0.0;
  /// Probability a sampled graph-edge mutation forms (vs dissolves) the
  /// friendship.
  double p_edge_add = 0.5;
  /// Re-registration shape: bid-set size Uniform{min_bids..max_bids} over
  /// distinct events, capacity Uniform{1..max_user_capacity}.
  int32_t min_bids = 2;
  int32_t max_bids = 6;
  int32_t max_user_capacity = 4;
};

/// Samples a reproducible Poisson mutation stream against the base instance:
/// `num_arrivals` single-mutation deltas with Exponential(λ) gaps. Targets
/// are drawn uniformly (users for register/cancel, events for capacity
/// changes); event capacities jitter around the BASE instance's values within
/// [max(1, c/2), c + max(1, c/2)], like GenerateDeltaStream. All randomness
/// comes from `rng`. Returns an empty stream for a degenerate config
/// (num_arrivals <= 0, rate <= 0, or an empty instance). Each arrival's
/// delta carries exactly one mutation: one user update (register/cancel) OR
/// one event-capacity update (core::ArrivalEvent).
std::vector<core::ArrivalEvent> GenerateArrivalProcess(
    const core::Instance& instance, const ArrivalProcessConfig& config,
    Rng* rng);

}  // namespace gen
}  // namespace igepa

#endif  // IGEPA_GEN_ARRIVAL_PROCESS_H_
