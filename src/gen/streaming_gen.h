#ifndef IGEPA_GEN_STREAMING_GEN_H_
#define IGEPA_GEN_STREAMING_GEN_H_

#include <cstdint>
#include <string>

#include "gen/synthetic.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace gen {

/// What GenerateSyntheticBinary wrote, for logging and tests.
struct StreamingGenStats {
  int64_t num_bids = 0;
  int64_t num_conflicts = 0;
};

/// Generates a synthetic instance per the §IV protocol straight into an
/// `igepa-bin,3` file (io::BinaryInstanceWriter) in bounded memory: peak RSS
/// depends on |V| (conflict matrix, neighbour lists) and writer buffering but
/// NOT on |U| — the path that synthesizes million-user instances.
///
/// The trick is a restartable per-user RNG: the master `rng` draws the
/// conflict matrix, event capacities and two stream seeds, then every user is
/// generated from its own `Rng(mix(user_seed_base, u))`. Pass 1 replays users
/// only to count total bids (the v3 header is binding), pass 2 replays them
/// again and streams each record into the writer — nothing per-user is ever
/// retained. Byte-deterministic: the same (config, seed, kernel_id) always
/// produces the same file, at any buffer size.
///
/// Differences from GenerateSynthetic (documented in DESIGN.md): the RNG
/// stream layout differs (per-user substreams instead of one sequential
/// stream), so the two paths produce different — each internally
/// deterministic — instances for the same seed; and the social term always
/// uses the binomial degree model (substitution S6), since an explicit
/// Erdős–Rényi graph is exactly the O(|U|²) object this path exists to avoid.
///
/// `kernel_id` must name a registered core::UtilityKernel; it is stored in
/// the header and round-trips through materialization.
Result<StreamingGenStats> GenerateSyntheticBinary(const SyntheticConfig& config,
                                                  Rng* rng,
                                                  const std::string& kernel_id,
                                                  const std::string& path);

}  // namespace gen
}  // namespace igepa

#endif  // IGEPA_GEN_STREAMING_GEN_H_
