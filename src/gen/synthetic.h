#ifndef IGEPA_GEN_SYNTHETIC_H_
#define IGEPA_GEN_SYNTHETIC_H_

#include <cstdint>

#include "core/instance.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace gen {

/// How the social-interaction term D(G, u) is realized.
enum class InteractionMode : uint8_t {
  /// Explicit Erdős–Rényi graph below `degree_model_threshold` users, the
  /// binomial degree model above it (substitution S6 in DESIGN.md).
  kAuto,
  kExplicitGraph,
  kDegreeModel,
};

/// Synthetic-dataset configuration following Table I of the paper. Field
/// defaults ARE the paper's defaults: |V|=200, |U|=2000, max c_v=50,
/// max c_u=4, p_cf=0.3, p_deg=0.5 (and β=0.5 from §IV Metrics).
struct SyntheticConfig {
  int32_t num_events = 200;
  int32_t num_users = 2000;
  /// Capacities are Uniform{1..max} ("generated from uniform distributions").
  int32_t max_event_capacity = 50;
  int32_t max_user_capacity = 4;
  /// Each unordered event pair conflicts independently with this probability.
  double p_conflict = 0.3;
  /// Each unordered user pair is befriended independently with this
  /// probability.
  double p_friend = 0.5;
  double beta = 0.5;

  /// Bid model per §IV: "users tend to bid a group of similar and often
  /// conflicting events ... bids are sampled dependently from several sets of
  /// conflicting events". Each user picks `groups` anchor events and bids the
  /// anchor plus `conflicts_per_group` of its conflict neighbours.
  int32_t min_groups_per_user = 1;
  int32_t max_groups_per_user = 2;
  int32_t min_conflicts_per_group = 1;
  int32_t max_conflicts_per_group = 3;

  InteractionMode interaction_mode = InteractionMode::kAuto;
  /// kAuto switches to the degree model above this many users.
  int32_t degree_model_threshold = 4000;

  /// Seed for the per-pair Uniform[0,1] interest table.
  uint64_t interest_seed_salt = 0x5157;
};

/// Generates a validated IGEPA instance per the synthetic protocol of §IV.
/// All randomness is drawn from `rng`, so instances are reproducible.
Result<core::Instance> GenerateSynthetic(const SyntheticConfig& config,
                                         Rng* rng);

}  // namespace gen
}  // namespace igepa

#endif  // IGEPA_GEN_SYNTHETIC_H_
