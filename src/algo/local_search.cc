#include "algo/local_search.h"

#include <algorithm>
#include <span>
#include <vector>

namespace igepa {
namespace algo {

using core::Arrangement;
using core::EventId;
using core::Instance;
using core::UserId;

namespace {

bool ConflictsWithHeld(const Instance& instance,
                       const std::vector<EventId>& held, EventId v,
                       EventId skip = -1) {
  for (EventId h : held) {
    if (h == skip || h == v) continue;
    if (instance.Conflicts(h, v)) return true;
  }
  return false;
}

}  // namespace

Result<Arrangement> ImproveLocalSearch(const Instance& instance,
                                       Arrangement arrangement,
                                       const LocalSearchOptions& options,
                                       LocalSearchStats* stats,
                                       const core::AdmissibleCatalog* catalog) {
  IGEPA_RETURN_IF_ERROR(arrangement.CheckFeasible(instance));
  if (stats != nullptr) {
    *stats = LocalSearchStats{};
    stats->initial_utility = arrangement.Utility(instance);
  }
  std::vector<int32_t> load(static_cast<size_t>(instance.num_events()), 0);
  for (EventId v = 0; v < instance.num_events(); ++v) {
    load[static_cast<size_t>(v)] =
        static_cast<int32_t>(arrangement.UsersOf(v).size());
  }

  const bool set_moves =
      options.enable_set_moves && catalog != nullptr &&
      catalog->num_users() == instance.num_users();

  for (int32_t round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    for (UserId u = 0; u < instance.num_users(); ++u) {
      const auto& bids = instance.bids(u);
      // --- Set moves: swap the whole assignment for a heavier catalog
      // column whose new events still fit. --------------------------------
      if (set_moves) {
        const std::vector<EventId> held = arrangement.EventsOf(u);  // copy
        // Score the held set through the kernel's SET utility so it is
        // comparable with catalog->weight(j): a non-pair-decomposable
        // kernel (cohesion) otherwise sees the user's own column as a
        // phantom "improvement" every round. The default kernel's batch
        // scorer is the same left-to-right pair sum as before.
        const double held_weight = instance.kernel().ScoreSet(
            instance, u, std::span<const EventId>(held.data(), held.size()));
        int32_t best_col = -1;
        double best_weight = held_weight + 1e-12;
        for (int32_t j = catalog->user_columns_begin(u);
             j < catalog->user_columns_end(u); ++j) {
          if (catalog->weight(j) <= best_weight) continue;
          bool fits = true;
          for (EventId v : catalog->set(j)) {
            if (arrangement.Contains(v, u)) continue;  // already held
            if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) {
              fits = false;
              break;
            }
          }
          if (fits) {
            best_col = j;
            best_weight = catalog->weight(j);
          }
        }
        if (best_col >= 0) {
          const auto target = catalog->set(best_col);
          for (EventId v : held) {
            const bool keep =
                std::binary_search(target.begin(), target.end(), v);
            if (!keep) {
              IGEPA_RETURN_IF_ERROR(arrangement.Remove(v, u));
              --load[static_cast<size_t>(v)];
            }
          }
          for (EventId v : target) {
            if (arrangement.Contains(v, u)) continue;
            IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
            ++load[static_cast<size_t>(v)];
          }
          improved = true;
          if (stats != nullptr) ++stats->set_moves;
        }
      }
      // --- Add moves: any feasible missing bid. ---------------------------
      for (EventId v : bids) {
        if (arrangement.Contains(v, u)) continue;
        if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) {
          continue;
        }
        const auto& held = arrangement.EventsOf(u);
        if (static_cast<int64_t>(held.size()) >= instance.user_capacity(u)) {
          continue;
        }
        if (ConflictsWithHeld(instance, held, v)) continue;
        IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
        ++load[static_cast<size_t>(v)];
        improved = true;
        if (stats != nullptr) ++stats->additions;
      }
      if (!options.enable_swaps) continue;
      // --- Swap moves: replace a held event with a strictly better bid. ----
      bool swapped = true;
      while (swapped) {
        swapped = false;
        const std::vector<EventId> held = arrangement.EventsOf(u);  // copy
        for (EventId old_v : held) {
          const double old_w = instance.PairWeight(old_v, u);
          for (EventId new_v : bids) {
            if (new_v == old_v || arrangement.Contains(new_v, u)) continue;
            if (instance.PairWeight(new_v, u) <= old_w + 1e-12) continue;
            if (load[static_cast<size_t>(new_v)] >=
                instance.event_capacity(new_v)) {
              continue;
            }
            if (ConflictsWithHeld(instance, arrangement.EventsOf(u), new_v,
                                  /*skip=*/old_v)) {
              continue;
            }
            IGEPA_RETURN_IF_ERROR(arrangement.Remove(old_v, u));
            --load[static_cast<size_t>(old_v)];
            IGEPA_RETURN_IF_ERROR(arrangement.Add(new_v, u));
            ++load[static_cast<size_t>(new_v)];
            improved = true;
            swapped = true;
            if (stats != nullptr) ++stats->swaps;
            break;
          }
          if (swapped) break;
        }
      }
    }
    if (stats != nullptr) stats->rounds = round + 1;
    if (!improved) break;
  }
  if (stats != nullptr) stats->final_utility = arrangement.Utility(instance);
  return arrangement;
}

}  // namespace algo
}  // namespace igepa
