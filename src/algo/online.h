#ifndef IGEPA_ALGO_ONLINE_H_
#define IGEPA_ALGO_ONLINE_H_

#include <cstdint>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace algo {

/// Decision policy for the online arrival model.
enum class OnlinePolicy : uint8_t {
  /// Assign each arriving user its maximum-weight admissible set that fits
  /// the residual event capacities.
  kGreedy,
  /// Like kGreedy but only takes pairs whose weight reaches a fraction of the
  /// user's own best pair weight — keeping capacity for later arrivals at the
  /// cost of rejecting lukewarm matches.
  kThreshold,
};

/// Options for the online arrangement.
struct OnlineOptions {
  OnlinePolicy policy = OnlinePolicy::kGreedy;
  /// kThreshold: accept (v, u) only when w(u, v) >= fraction * max_v' w(u, v').
  double threshold_fraction = 0.5;
  /// Cap on per-user set enumeration (same semantics as AdmissibleOptions).
  int32_t max_sets_per_user = 4096;
};

/// Per-run diagnostics.
struct OnlineStats {
  int32_t users_served = 0;
  int32_t users_empty = 0;
  int64_t pairs_rejected_by_threshold = 0;
};

/// Online IGEPA — the arrival model studied by the paper's companion line of
/// work (She et al., TKDE'16 "…and its variant for online setting"): users
/// arrive one at a time and must be irrevocably given a (possibly empty)
/// conflict-free subset of their bids, subject to the residual event
/// capacities at arrival time. Offline algorithms (LP-packing, GG) see the
/// whole instance; this one never looks ahead. Output is always feasible.
///
/// The per-user menus are catalog views (one span per admissible set), the
/// same column representation the offline pipeline consumes — the decision
/// rule only reads the arriving user's own columns and the residual
/// capacities, so precomputing the menus leaks no lookahead. This overload
/// reuses a caller-built catalog (e.g. the incremental engine's, kept fresh
/// by ApplyDelta); dirty catalogs work, since only per-user ranges are read.
///
/// `arrival_order` must be a permutation of the users (checked).
Result<core::Arrangement> OnlineArrange(
    const core::Instance& instance, const core::AdmissibleCatalog& catalog,
    const std::vector<core::UserId>& arrival_order,
    const OnlineOptions& options = {}, OnlineStats* stats = nullptr);

/// OnlineArrange over a catalog built on the fly from
/// `options.max_sets_per_user`.
Result<core::Arrangement> OnlineArrange(const core::Instance& instance,
                                        const std::vector<core::UserId>& arrival_order,
                                        const OnlineOptions& options = {},
                                        OnlineStats* stats = nullptr);

/// OnlineArrange with a uniformly random arrival order drawn from `rng` —
/// the random-order (secretary-style) arrival model.
Result<core::Arrangement> OnlineArrangeRandomOrder(
    const core::Instance& instance, Rng* rng, const OnlineOptions& options = {},
    OnlineStats* stats = nullptr);

}  // namespace algo
}  // namespace igepa

#endif  // IGEPA_ALGO_ONLINE_H_
