#ifndef IGEPA_ALGO_EXACT_H_
#define IGEPA_ALGO_EXACT_H_

#include <cstdint>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"

namespace igepa {
namespace algo {

/// Options for the exact solver.
struct ExactOptions {
  /// Search-node budget; exceeded => ResourceExhausted (instance too large).
  int64_t max_nodes = 50'000'000;
  core::AdmissibleOptions admissible;
};

/// Diagnostics from one exact solve.
struct ExactStats {
  int64_t nodes = 0;
  double optimum = 0.0;
};

/// Exact IGEPA optimum by branch-and-bound over per-user admissible sets
/// (DFS user by user, event-capacity bookkeeping, optimistic suffix bound
/// for pruning). Complete because every feasible per-user assignment IS an
/// admissible set; FailedPrecondition is returned if the admissible-set cap
/// truncated (optimality could not be certified).
///
/// Only for tiny instances (≈ ≤ 12 users with ≤ dozens of sets each); used by
/// the Theorem-2 ratio validation (tests, bench_ratio, examples/ratio_study).
Result<core::Arrangement> SolveExact(const core::Instance& instance,
                                     const ExactOptions& options = {},
                                     ExactStats* stats = nullptr);

}  // namespace algo
}  // namespace igepa

#endif  // IGEPA_ALGO_EXACT_H_
