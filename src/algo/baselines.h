#ifndef IGEPA_ALGO_BASELINES_H_
#define IGEPA_ALGO_BASELINES_H_

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace algo {

/// Random-U baseline (from GEACC [4], as used in §IV): visit users in random
/// order; each user scans its bids in random order and takes every event that
/// is still feasible (residual event capacity, own capacity, no conflict with
/// the events already taken). Output is always feasible.
Result<core::Arrangement> RandomU(const core::Instance& instance, Rng* rng);

/// Random-V baseline: visit events in random order; each event admits its
/// bidders in random order while residual capacity remains and the bidder
/// stays feasible (own capacity, no conflict with the bidder's current
/// events). Output is always feasible.
Result<core::Arrangement> RandomV(const core::Instance& instance, Rng* rng);

/// GG — the paper's extension of Greedy-GEACC [4]: sort all candidate pairs
/// (v, u), u ∈ N_v, by weight w(u, v) = β·SI + (1-β)·D descending (ties by
/// (v, u) for determinism) and insert each pair that keeps the arrangement
/// feasible. Deterministic. Output is always feasible.
Result<core::Arrangement> GreedyGg(const core::Instance& instance);

/// GBS (Greedy-Best-Set) — catalog-native set-level greedy, the library's
/// extension exploiting the AdmissibleCatalog's precomputed column weights:
/// users are visited by descending best-column weight w(u, S) (ties by user
/// id); each user takes its heaviest admissible set whose events all still
/// have residual capacity, whole or not at all. Deterministic; output is
/// always feasible. Upper-mid baseline between GG (pair-greedy) and
/// LP-packing (set-LP) in utility.
Result<core::Arrangement> GreedyBestSet(const core::Instance& instance,
                                        const core::AdmissibleCatalog& catalog);

}  // namespace algo
}  // namespace igepa

#endif  // IGEPA_ALGO_BASELINES_H_
