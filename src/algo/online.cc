#include "algo/online.h"

#include <algorithm>
#include <numeric>

namespace igepa {
namespace algo {

using core::Arrangement;
using core::EventId;
using core::Instance;
using core::UserId;

Result<Arrangement> OnlineArrange(const Instance& instance,
                                  const core::AdmissibleCatalog& catalog,
                                  const std::vector<UserId>& arrival_order,
                                  const OnlineOptions& options,
                                  OnlineStats* stats) {
  const int32_t nu = instance.num_users();
  if (catalog.num_users() != nu) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  if (static_cast<int32_t>(arrival_order.size()) != nu) {
    return Status::InvalidArgument("arrival order size mismatch");
  }
  std::vector<bool> seen(static_cast<size_t>(nu), false);
  for (UserId u : arrival_order) {
    if (u < 0 || u >= nu || seen[static_cast<size_t>(u)]) {
      return Status::InvalidArgument("arrival order is not a permutation");
    }
    seen[static_cast<size_t>(u)] = true;
  }
  if (options.threshold_fraction < 0.0 || options.threshold_fraction > 1.0) {
    return Status::InvalidArgument("threshold_fraction outside [0,1]");
  }
  if (stats != nullptr) *stats = OnlineStats{};

  Arrangement arrangement(instance.num_events(), nu);
  std::vector<int32_t> residual(static_cast<size_t>(instance.num_events()));
  for (EventId v = 0; v < instance.num_events(); ++v) {
    residual[static_cast<size_t>(v)] = instance.event_capacity(v);
  }

  std::vector<EventId> best_set;
  for (UserId u : arrival_order) {
    // The user's feasible menu right now: their catalog columns, with —
    // under the threshold policy — every pair weight at least the fraction
    // of the user's best bid weight.
    double best_bid_weight = 0.0;
    for (EventId v : instance.bids(u)) {
      best_bid_weight = std::max(best_bid_weight, instance.PairWeight(v, u));
    }
    const double cutoff = options.policy == OnlinePolicy::kThreshold
                              ? options.threshold_fraction * best_bid_weight
                              : 0.0;
    // Walk the user's catalog columns (the enumerator's emit order) and take
    // the best set whose events all clear residual capacity and the cutoff.
    // Catalog spans are ascending by event id — the same canonical order the
    // legacy nested enumerator stored — so checking, summing and emitting in
    // span order keeps arrangement, stats and floating-point sums
    // bit-identical to the pre-catalog per-user enumeration loop this
    // replaced (pinned by OnlineTest.CatalogPathBitIdenticalToLegacy…).
    double best_weight = 0.0;
    bool selected = false;
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      const auto span = catalog.set(j);
      bool ok = true;
      double w = 0.0;
      for (EventId v : span) {
        if (residual[static_cast<size_t>(v)] <= 0) {
          ok = false;
          break;
        }
        const double pair_w = instance.PairWeight(v, u);
        if (pair_w < cutoff) {
          ok = false;
          if (stats != nullptr) ++stats->pairs_rejected_by_threshold;
          break;
        }
        w += pair_w;
      }
      if (ok && w > best_weight) {
        best_weight = w;
        best_set.assign(span.begin(), span.end());
        selected = true;
      }
    }
    if (!selected) {
      if (stats != nullptr) ++stats->users_empty;
      continue;
    }
    for (EventId v : best_set) {
      --residual[static_cast<size_t>(v)];
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
    if (stats != nullptr) ++stats->users_served;
  }
  return arrangement;
}

Result<Arrangement> OnlineArrange(const Instance& instance,
                                  const std::vector<UserId>& arrival_order,
                                  const OnlineOptions& options,
                                  OnlineStats* stats) {
  core::AdmissibleOptions admissible_options;
  admissible_options.max_sets_per_user = options.max_sets_per_user;
  const core::AdmissibleCatalog catalog =
      core::AdmissibleCatalog::Build(instance, admissible_options);
  return OnlineArrange(instance, catalog, arrival_order, options, stats);
}

Result<Arrangement> OnlineArrangeRandomOrder(const Instance& instance,
                                             Rng* rng,
                                             const OnlineOptions& options,
                                             OnlineStats* stats) {
  std::vector<UserId> order(static_cast<size_t>(instance.num_users()));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return OnlineArrange(instance, order, options, stats);
}

}  // namespace algo
}  // namespace igepa
