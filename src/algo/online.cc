#include "algo/online.h"

#include <algorithm>
#include <numeric>

#include "core/admissible.h"

namespace igepa {
namespace algo {

using core::Arrangement;
using core::EventId;
using core::Instance;
using core::UserId;

Result<Arrangement> OnlineArrange(const Instance& instance,
                                  const std::vector<UserId>& arrival_order,
                                  const OnlineOptions& options,
                                  OnlineStats* stats) {
  const int32_t nu = instance.num_users();
  if (static_cast<int32_t>(arrival_order.size()) != nu) {
    return Status::InvalidArgument("arrival order size mismatch");
  }
  std::vector<bool> seen(static_cast<size_t>(nu), false);
  for (UserId u : arrival_order) {
    if (u < 0 || u >= nu || seen[static_cast<size_t>(u)]) {
      return Status::InvalidArgument("arrival order is not a permutation");
    }
    seen[static_cast<size_t>(u)] = true;
  }
  if (options.threshold_fraction < 0.0 || options.threshold_fraction > 1.0) {
    return Status::InvalidArgument("threshold_fraction outside [0,1]");
  }
  if (stats != nullptr) *stats = OnlineStats{};

  Arrangement arrangement(instance.num_events(), nu);
  std::vector<int32_t> residual(static_cast<size_t>(instance.num_events()));
  for (EventId v = 0; v < instance.num_events(); ++v) {
    residual[static_cast<size_t>(v)] = instance.event_capacity(v);
  }
  core::AdmissibleOptions admissible_options;
  admissible_options.max_sets_per_user = options.max_sets_per_user;

  for (UserId u : arrival_order) {
    // The user's feasible menu right now: bids with residual capacity, and —
    // under the threshold policy — weight at least the fraction of the
    // user's best bid weight.
    double best_bid_weight = 0.0;
    for (EventId v : instance.bids(u)) {
      best_bid_weight = std::max(best_bid_weight, instance.Weight(v, u));
    }
    const double cutoff = options.policy == OnlinePolicy::kThreshold
                              ? options.threshold_fraction * best_bid_weight
                              : 0.0;
    // Enumerate this user's admissible sets and take the best one whose
    // events all clear residual capacity and the cutoff.
    const core::AdmissibleSets sets =
        core::EnumerateAdmissibleSetsForUser(instance, u, admissible_options);
    double best_weight = 0.0;
    const std::vector<EventId>* best_set = nullptr;
    for (const auto& set : sets.sets) {
      bool ok = true;
      double w = 0.0;
      for (EventId v : set) {
        if (residual[static_cast<size_t>(v)] <= 0) {
          ok = false;
          break;
        }
        const double pair_w = instance.Weight(v, u);
        if (pair_w < cutoff) {
          ok = false;
          if (stats != nullptr) ++stats->pairs_rejected_by_threshold;
          break;
        }
        w += pair_w;
      }
      if (ok && w > best_weight) {
        best_weight = w;
        best_set = &set;
      }
    }
    if (best_set == nullptr) {
      if (stats != nullptr) ++stats->users_empty;
      continue;
    }
    for (EventId v : *best_set) {
      --residual[static_cast<size_t>(v)];
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
    if (stats != nullptr) ++stats->users_served;
  }
  return arrangement;
}

Result<Arrangement> OnlineArrangeRandomOrder(const Instance& instance,
                                             Rng* rng,
                                             const OnlineOptions& options,
                                             OnlineStats* stats) {
  std::vector<UserId> order(static_cast<size_t>(instance.num_users()));
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return OnlineArrange(instance, order, options, stats);
}

}  // namespace algo
}  // namespace igepa
