#include "algo/baselines.h"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace igepa {
namespace algo {

using core::Arrangement;
using core::EventId;
using core::Instance;
using core::UserId;

namespace {

/// True when adding event v to user u's current events keeps u feasible.
bool UserCanTake(const Instance& instance, const Arrangement& arrangement,
                 UserId u, EventId v) {
  const auto& events = arrangement.EventsOf(u);
  if (static_cast<int64_t>(events.size()) >= instance.user_capacity(u)) {
    return false;
  }
  for (EventId held : events) {
    if (instance.Conflicts(held, v)) return false;
  }
  return true;
}

}  // namespace

Result<Arrangement> RandomU(const Instance& instance, Rng* rng) {
  Arrangement arrangement(instance.num_events(), instance.num_users());
  std::vector<UserId> users(static_cast<size_t>(instance.num_users()));
  std::iota(users.begin(), users.end(), 0);
  rng->Shuffle(&users);
  std::vector<int32_t> load(static_cast<size_t>(instance.num_events()), 0);
  for (UserId u : users) {
    std::vector<EventId> bids = instance.bids(u);
    rng->Shuffle(&bids);
    for (EventId v : bids) {
      if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) continue;
      if (!UserCanTake(instance, arrangement, u, v)) continue;
      ++load[static_cast<size_t>(v)];
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  return arrangement;
}

Result<Arrangement> RandomV(const Instance& instance, Rng* rng) {
  Arrangement arrangement(instance.num_events(), instance.num_users());
  std::vector<EventId> events(static_cast<size_t>(instance.num_events()));
  std::iota(events.begin(), events.end(), 0);
  rng->Shuffle(&events);
  for (EventId v : events) {
    std::vector<UserId> bidders = instance.bidders(v);
    rng->Shuffle(&bidders);
    int32_t admitted = 0;
    for (UserId u : bidders) {
      if (admitted >= instance.event_capacity(v)) break;
      if (!UserCanTake(instance, arrangement, u, v)) continue;
      ++admitted;
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  return arrangement;
}

Result<Arrangement> GreedyGg(const Instance& instance) {
  Arrangement arrangement(instance.num_events(), instance.num_users());
  // Candidate pairs: (weight, v, u) for every bid.
  std::vector<std::tuple<double, EventId, UserId>> candidates;
  candidates.reserve(static_cast<size_t>(instance.TotalBids()));
  for (UserId u = 0; u < instance.num_users(); ++u) {
    for (EventId v : instance.bids(u)) {
      candidates.emplace_back(instance.PairWeight(v, u), v, u);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (std::get<0>(a) != std::get<0>(b)) {
                return std::get<0>(a) > std::get<0>(b);
              }
              if (std::get<1>(a) != std::get<1>(b)) {
                return std::get<1>(a) < std::get<1>(b);
              }
              return std::get<2>(a) < std::get<2>(b);
            });
  std::vector<int32_t> load(static_cast<size_t>(instance.num_events()), 0);
  for (const auto& [w, v, u] : candidates) {
    (void)w;
    if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) continue;
    if (!UserCanTake(instance, arrangement, u, v)) continue;
    ++load[static_cast<size_t>(v)];
    IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
  }
  return arrangement;
}

Result<Arrangement> GreedyBestSet(const Instance& instance,
                                  const core::AdmissibleCatalog& catalog) {
  if (catalog.num_users() != instance.num_users()) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();

  // Visit users by the weight of their heaviest column, descending.
  std::vector<UserId> order(static_cast<size_t>(nu));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> best_weight(static_cast<size_t>(nu), 0.0);
  for (UserId u = 0; u < nu; ++u) {
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      best_weight[static_cast<size_t>(u)] =
          std::max(best_weight[static_cast<size_t>(u)], catalog.weight(j));
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return best_weight[static_cast<size_t>(a)] >
           best_weight[static_cast<size_t>(b)];
  });

  Arrangement arrangement(nv, nu);
  std::vector<int32_t> load(static_cast<size_t>(nv), 0);
  std::vector<int32_t> candidates;
  for (UserId u : order) {
    // The user's columns, heaviest first (ties by column id for determinism).
    candidates.clear();
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      candidates.push_back(j);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](int32_t a, int32_t b) {
                       return catalog.weight(a) > catalog.weight(b);
                     });
    for (int32_t j : candidates) {
      const auto set = catalog.set(j);
      bool fits = true;
      for (EventId v : set) {
        if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      for (EventId v : set) {
        ++load[static_cast<size_t>(v)];
        IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
      }
      break;  // whole set taken; one set per user
    }
  }
  return arrangement;
}

}  // namespace algo
}  // namespace igepa
