#ifndef IGEPA_ALGO_LOCAL_SEARCH_H_
#define IGEPA_ALGO_LOCAL_SEARCH_H_

#include <cstdint>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"

namespace igepa {
namespace algo {

/// Options for the local-search improver.
struct LocalSearchOptions {
  /// Full improvement sweeps before giving up (each sweep tries every
  /// candidate move once).
  int32_t max_rounds = 16;
  /// Enable replace moves (swap a user's assigned event for a better bid).
  bool enable_swaps = true;
  /// Enable whole-set replacement moves (only active when a catalog is
  /// supplied): swap a user's entire assignment for a strictly heavier
  /// admissible set from the catalog when the new events fit residual
  /// capacities.
  bool enable_set_moves = true;
};

/// Diagnostics from one local-search run.
struct LocalSearchStats {
  int32_t rounds = 0;
  int32_t additions = 0;
  int32_t swaps = 0;
  /// Whole-set replacements (catalog-driven moves).
  int32_t set_moves = 0;
  double initial_utility = 0.0;
  double final_utility = 0.0;
};

/// Hill-climbing post-processor over feasible arrangements — the library's
/// extension beyond the paper (DESIGN.md §6 ablation): repeatedly applies
/// (a) *set* moves — when `catalog` is non-null, replace a user's whole
/// assignment with a strictly heavier admissible set (the catalog's
/// precomputed column weights make the candidate scan one flat read) —
/// (b) *add* moves — insert any feasible missing (v, u) bid pair — and
/// (c) *swap* moves — replace a user's assigned event v with a strictly
/// heavier bid v' when doing so stays feasible — until a sweep makes no
/// progress. Utility never decreases; feasibility is preserved.
Result<core::Arrangement> ImproveLocalSearch(
    const core::Instance& instance, core::Arrangement start,
    const LocalSearchOptions& options = {}, LocalSearchStats* stats = nullptr,
    const core::AdmissibleCatalog* catalog = nullptr);

}  // namespace algo
}  // namespace igepa

#endif  // IGEPA_ALGO_LOCAL_SEARCH_H_
