#include "algo/exact.h"

#include <algorithm>

#include "core/admissible_catalog.h"

namespace igepa {
namespace algo {

using core::AdmissibleCatalog;
using core::Arrangement;
using core::EventId;
using core::Instance;
using core::UserId;

namespace {

struct SearchState {
  const Instance* instance;
  const AdmissibleCatalog* catalog;
  // Per-user candidate columns sorted by descending weight; -1 is "empty".
  std::vector<std::vector<int32_t>> order;    // global column ids, -1 empty
  std::vector<std::vector<double>> weights;   // parallel to order
  std::vector<double> suffix_best;            // optimistic bound from user u on
  std::vector<int32_t> load;                  // event usage
  std::vector<int32_t> chosen;                // chosen column per user
  std::vector<int32_t> best_chosen;
  double current = 0.0;
  double best = 0.0;
  int64_t nodes = 0;
  int64_t max_nodes = 0;
  bool exhausted = false;

  void Dfs(UserId u) {
    if (exhausted) return;
    if (++nodes > max_nodes) {
      exhausted = true;
      return;
    }
    const int32_t nu = instance->num_users();
    if (u == nu) {
      if (current > best) {
        best = current;
        best_chosen = chosen;
      }
      return;
    }
    // Prune: even taking every remaining user's best set cannot beat best.
    if (current + suffix_best[static_cast<size_t>(u)] <= best + 1e-12) {
      return;
    }
    const auto& ord = order[static_cast<size_t>(u)];
    const auto& wts = weights[static_cast<size_t>(u)];
    for (size_t k = 0; k < ord.size(); ++k) {
      const int32_t column = ord[k];
      if (column < 0) {
        chosen[static_cast<size_t>(u)] = -1;
        Dfs(u + 1);
        if (exhausted) return;
        continue;
      }
      const auto set = catalog->set(column);
      bool fits = true;
      for (EventId v : set) {
        if (load[static_cast<size_t>(v)] >= instance->event_capacity(v)) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      for (EventId v : set) ++load[static_cast<size_t>(v)];
      current += wts[k];
      chosen[static_cast<size_t>(u)] = column;
      Dfs(u + 1);
      current -= wts[k];
      for (EventId v : set) --load[static_cast<size_t>(v)];
      if (exhausted) return;
    }
  }
};

}  // namespace

Result<Arrangement> SolveExact(const Instance& instance,
                               const ExactOptions& options,
                               ExactStats* stats) {
  const AdmissibleCatalog catalog =
      AdmissibleCatalog::Build(instance, options.admissible);
  if (catalog.any_truncated()) {
    return Status::FailedPrecondition(
        "admissible-set enumeration truncated; exact optimum cannot be "
        "certified (raise AdmissibleOptions::max_sets_per_user)");
  }

  SearchState state;
  state.instance = &instance;
  state.catalog = &catalog;
  state.max_nodes = options.max_nodes;
  const int32_t nu = instance.num_users();
  state.order.resize(static_cast<size_t>(nu));
  state.weights.resize(static_cast<size_t>(nu));
  state.suffix_best.assign(static_cast<size_t>(nu) + 1, 0.0);
  state.load.assign(static_cast<size_t>(instance.num_events()), 0);
  state.chosen.assign(static_cast<size_t>(nu), -1);
  state.best_chosen = state.chosen;

  for (UserId u = 0; u < nu; ++u) {
    auto& ord = state.order[static_cast<size_t>(u)];
    auto& wts = state.weights[static_cast<size_t>(u)];
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      ord.push_back(j);
      wts.push_back(catalog.weight(j));
    }
    ord.push_back(-1);  // the empty choice
    wts.push_back(0.0);
    // Descending weight visits promising branches first (better pruning).
    std::vector<size_t> perm(ord.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(),
                     [&](size_t a, size_t b) { return wts[a] > wts[b]; });
    std::vector<int32_t> ord2;
    std::vector<double> wts2;
    for (size_t i : perm) {
      ord2.push_back(ord[i]);
      wts2.push_back(wts[i]);
    }
    ord = std::move(ord2);
    wts = std::move(wts2);
  }
  for (UserId u = nu - 1; u >= 0; --u) {
    const double user_best = state.weights[static_cast<size_t>(u)].empty()
                                 ? 0.0
                                 : state.weights[static_cast<size_t>(u)][0];
    state.suffix_best[static_cast<size_t>(u)] =
        state.suffix_best[static_cast<size_t>(u) + 1] + user_best;
  }

  state.Dfs(0);
  if (state.exhausted) {
    return Status::ResourceExhausted(
        "exact search node budget exceeded (" +
        std::to_string(options.max_nodes) + " nodes)");
  }
  if (stats != nullptr) {
    stats->nodes = state.nodes;
    stats->optimum = state.best;
  }

  Arrangement out(instance.num_events(), nu);
  for (UserId u = 0; u < nu; ++u) {
    const int32_t j = state.best_chosen[static_cast<size_t>(u)];
    if (j < 0) continue;
    for (EventId v : catalog.set(j)) {
      IGEPA_RETURN_IF_ERROR(out.Add(v, u));
    }
  }
  return out;
}

}  // namespace algo
}  // namespace igepa
