#include "lp/packing_dual.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace igepa {
namespace lp {

PackingDualSolver::PackingDualSolver(PackingDualOptions options)
    : options_(options) {}

Result<LpSolution> PackingDualSolver::Solve(const LpModel& model) const {
  LpModel copy = model;
  IGEPA_RETURN_IF_ERROR(copy.Validate());
  if (!copy.IsPackingForm()) {
    return Status::InvalidArgument(
        "PackingDualSolver requires packing canonical form");
  }
  const int32_t m = copy.num_rows();
  const int32_t n = copy.num_cols();

  // Effective upper bounds: finite box, tightened by single-column implied
  // bounds u_j <= min_i b_i / A_ij. Columns touching a zero-rhs row are fixed
  // to zero. Empty columns sit at their best bound directly.
  std::vector<double> ub(static_cast<size_t>(n));
  for (int32_t j = 0; j < n; ++j) {
    double u = copy.upper(j);
    for (const auto& e : copy.column(j)) {
      if (e.value <= 0.0) continue;
      const double implied = copy.row(e.row).rhs / e.value;
      u = std::min(u, implied);
    }
    if (u == kInf) {
      if (copy.objective(j) > 0.0) {
        LpSolution sol;
        sol.status = SolveStatus::kUnbounded;
        sol.x.assign(static_cast<size_t>(n), 0.0);
        return sol;
      }
      u = 0.0;  // c_j <= 0: never profitable, pin to zero
    }
    ub[static_cast<size_t>(j)] = std::max(0.0, u);
  }

  // Row scaling: work with hat-rows A_ij / b_i <= 1. Zero-rhs rows were
  // folded into ub above and are skipped (their dual is irrelevant).
  std::vector<double> inv_b(static_cast<size_t>(m), 0.0);
  for (int32_t i = 0; i < m; ++i) {
    const double b = copy.row(i).rhs;
    inv_b[static_cast<size_t>(i)] = b > 0.0 ? 1.0 / b : 0.0;
  }

  std::vector<double> y(static_cast<size_t>(m), 0.0);  // scaled duals >= 0
  std::vector<double> d(static_cast<size_t>(n), 0.0);  // reduced objectives
  std::vector<double> act(static_cast<size_t>(m), 0.0);
  std::vector<double> xavg(static_cast<size_t>(n), 0.0);
  std::vector<double> xtry(static_cast<size_t>(n), 0.0);
  std::vector<double> best_x(static_cast<size_t>(n), 0.0);
  double best_primal = 0.0;  // x = 0 is always feasible for packing
  double best_ub = kInf;
  std::vector<double> best_y(static_cast<size_t>(m), 0.0);
  int64_t avg_count = 0;
  int64_t avg_started_at = 1;

  double cmax = 0.0;
  for (int32_t j = 0; j < n; ++j) cmax = std::max(cmax, copy.objective(j));
  if (cmax <= 0.0) {
    // Optimal is x = 0.
    LpSolution sol;
    sol.status = SolveStatus::kOptimal;
    sol.objective = 0.0;
    sol.upper_bound = 0.0;
    sol.x.assign(static_cast<size_t>(n), 0.0);
    sol.duals.assign(static_cast<size_t>(m), 0.0);
    return sol;
  }
  const double step0 = options_.step_scale * cmax;

  // Columns sorted by descending objective, for the greedy polish pass.
  std::vector<int32_t> by_objective(static_cast<size_t>(n));
  for (int32_t j = 0; j < n; ++j) by_objective[static_cast<size_t>(j)] = j;
  std::sort(by_objective.begin(), by_objective.end(), [&](int32_t a, int32_t b) {
    const double ca = copy.objective(a);
    const double cb = copy.objective(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });

  // Repairs an arbitrary 0 <= x <= ub point into row feasibility by scaling
  // every column with the worst factor among its rows, then greedily fills
  // any residual row slack by descending objective (primal polish: crucial
  // when constraints are loose and the ergodic average under-uses them).
  // Returns the objective of the repaired point.
  auto repair_and_value = [&](std::vector<double>* x) -> double {
    std::fill(act.begin(), act.end(), 0.0);
    for (int32_t j = 0; j < n; ++j) {
      const double v = (*x)[static_cast<size_t>(j)];
      if (v <= 0.0) continue;
      for (const auto& e : copy.column(j)) {
        act[static_cast<size_t>(e.row)] += e.value * v;
      }
    }
    for (int32_t j = 0; j < n; ++j) {
      double v = (*x)[static_cast<size_t>(j)];
      if (v <= 0.0) {
        (*x)[static_cast<size_t>(j)] = 0.0;
        continue;
      }
      double factor = 1.0;
      for (const auto& e : copy.column(j)) {
        const double a = act[static_cast<size_t>(e.row)];
        const double b = copy.row(e.row).rhs;
        if (a > b) factor = std::min(factor, b / a);
      }
      (*x)[static_cast<size_t>(j)] = v * factor;
    }
    // Recompute exact activities of the scaled point, then fill.
    std::fill(act.begin(), act.end(), 0.0);
    for (int32_t j = 0; j < n; ++j) {
      const double v = (*x)[static_cast<size_t>(j)];
      if (v <= 0.0) continue;
      for (const auto& e : copy.column(j)) {
        act[static_cast<size_t>(e.row)] += e.value * v;
      }
    }
    double value = 0.0;
    for (int32_t jj = 0; jj < n; ++jj) {
      const int32_t j = by_objective[static_cast<size_t>(jj)];
      if (copy.objective(j) <= 0.0) break;  // no further gain possible
      double& v = (*x)[static_cast<size_t>(j)];
      double room = ub[static_cast<size_t>(j)] - v;
      if (room > 1e-15) {
        for (const auto& e : copy.column(j)) {
          if (e.value <= 0.0) continue;
          const double slack =
              copy.row(e.row).rhs - act[static_cast<size_t>(e.row)];
          room = std::min(room, slack / e.value);
          if (room <= 1e-15) break;
        }
        if (room > 1e-15) {
          v += room;
          for (const auto& e : copy.column(j)) {
            act[static_cast<size_t>(e.row)] += e.value * room;
          }
        }
      }
      value += copy.objective(j) * v;
    }
    // Account for any remaining columns (non-positive objectives skipped by
    // the fill loop above still contribute their scaled value).
    for (int32_t jj = 0; jj < n; ++jj) {
      const int32_t j = by_objective[static_cast<size_t>(jj)];
      if (copy.objective(j) > 0.0) continue;
      value += copy.objective(j) * (*x)[static_cast<size_t>(j)];
    }
    return value;
  };

  LpSolution sol;
  const int64_t check_every = 25;
  int64_t t = 1;
  for (; t <= options_.max_iterations; ++t) {
    // Oracle at y: x_j = ub_j iff reduced objective positive.
    double lagrangian = 0.0;
    for (int32_t i = 0; i < m; ++i) {
      lagrangian += y[static_cast<size_t>(i)];  // y_hat · 1
      act[static_cast<size_t>(i)] = 0.0;
    }
    for (int32_t j = 0; j < n; ++j) {
      double dj = copy.objective(j);
      for (const auto& e : copy.column(j)) {
        dj -= y[static_cast<size_t>(e.row)] * e.value *
              inv_b[static_cast<size_t>(e.row)];
      }
      d[static_cast<size_t>(j)] = dj;
      if (dj > 0.0 && ub[static_cast<size_t>(j)] > 0.0) {
        const double v = ub[static_cast<size_t>(j)];
        lagrangian += dj * v;
        for (const auto& e : copy.column(j)) {
          act[static_cast<size_t>(e.row)] +=
              e.value * v * inv_b[static_cast<size_t>(e.row)];
        }
      }
    }
    if (lagrangian < best_ub) {
      best_ub = lagrangian;
      best_y = y;
    }

    // Suffix averaging with doubling restarts: the final average covers the
    // most recent half of the iterations.
    if (t >= 2 * avg_started_at) {
      std::fill(xavg.begin(), xavg.end(), 0.0);
      avg_count = 0;
      avg_started_at = t;
    }
    ++avg_count;
    const double alpha = 1.0 / static_cast<double>(avg_count);
    for (int32_t j = 0; j < n; ++j) {
      const double xt = (d[static_cast<size_t>(j)] > 0.0)
                            ? ub[static_cast<size_t>(j)]
                            : 0.0;
      xavg[static_cast<size_t>(j)] += alpha * (xt - xavg[static_cast<size_t>(j)]);
    }

    // Periodically extract a feasible primal and test the certified gap.
    if (t % check_every == 0 || t == options_.max_iterations) {
      xtry = xavg;
      const double value = repair_and_value(&xtry);
      if (value > best_primal) {
        best_primal = value;
        best_x = xtry;
      }
      const double gap =
          (best_ub - best_primal) / std::max(1.0, std::abs(best_ub));
      if (gap <= options_.target_gap) break;
    }

    // Projected subgradient step on the scaled dual: g_i = 1 - act_i.
    double gnorm2 = 0.0;
    for (int32_t i = 0; i < m; ++i) {
      const double g = 1.0 - act[static_cast<size_t>(i)];
      gnorm2 += g * g;
    }
    if (gnorm2 <= 1e-18) continue;
    const double step = step0 / std::sqrt(static_cast<double>(t) * gnorm2);
    for (int32_t i = 0; i < m; ++i) {
      if (inv_b[static_cast<size_t>(i)] == 0.0) continue;
      const double g = 1.0 - act[static_cast<size_t>(i)];
      y[static_cast<size_t>(i)] =
          std::max(0.0, y[static_cast<size_t>(i)] - step * g);
    }
  }

  sol.iterations = std::min<int64_t>(t, options_.max_iterations);
  sol.x = best_x;
  sol.objective = best_primal;
  sol.upper_bound = best_ub;
  sol.duals.assign(static_cast<size_t>(m), 0.0);
  for (int32_t i = 0; i < m; ++i) {
    sol.duals[static_cast<size_t>(i)] =
        best_y[static_cast<size_t>(i)] * inv_b[static_cast<size_t>(i)];
  }
  const double gap = sol.RelativeGap();
  sol.status = (gap <= options_.target_gap) ? SolveStatus::kApproximate
                                            : SolveStatus::kIterationLimit;
  return sol;
}

}  // namespace lp
}  // namespace igepa
