#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace igepa {
namespace lp {
namespace {

enum class VarStatus : uint8_t { kAtLower, kAtUpper, kBasic };

/// Dense m×m matrix with row-major storage.
class DenseMatrix {
 public:
  explicit DenseMatrix(int32_t m) : m_(m) {
    data_.assign(static_cast<size_t>(m) * static_cast<size_t>(m), 0.0);
  }
  double& At(int32_t i, int32_t j) {
    return data_[static_cast<size_t>(i) * static_cast<size_t>(m_) +
                 static_cast<size_t>(j)];
  }
  double At(int32_t i, int32_t j) const {
    return data_[static_cast<size_t>(i) * static_cast<size_t>(m_) +
                 static_cast<size_t>(j)];
  }
  void SetIdentity() {
    std::fill(data_.begin(), data_.end(), 0.0);
    for (int32_t i = 0; i < m_; ++i) At(i, i) = 1.0;
  }
  int32_t size() const { return m_; }
  double* Row(int32_t i) {
    return data_.data() + static_cast<size_t>(i) * static_cast<size_t>(m_);
  }
  const double* Row(int32_t i) const {
    return data_.data() + static_cast<size_t>(i) * static_cast<size_t>(m_);
  }

 private:
  int32_t m_;
  std::vector<double> data_;
};

}  // namespace

RevisedSimplex::RevisedSimplex(RevisedSimplexOptions options)
    : options_(options) {}

Result<LpSolution> RevisedSimplex::Solve(const LpModel& model) const {
  LpModel copy = model;
  IGEPA_RETURN_IF_ERROR(copy.Validate());
  if (!copy.IsPackingForm()) {
    return Status::InvalidArgument(
        "RevisedSimplex requires packing canonical form "
        "(<= rows, rhs >= 0, coefficients >= 0, 0 <= lower <= upper)");
  }
  const int32_t m = copy.num_rows();
  const int32_t n = copy.num_cols();
  const double tol = options_.tolerance;

  // A variable with positive objective, no entries and infinite upper bound
  // makes the LP unbounded; with finite bound it just sits at its upper bound.
  for (int32_t j = 0; j < n; ++j) {
    if (copy.column(j).empty() && copy.objective(j) > tol &&
        copy.upper(j) == kInf) {
      LpSolution sol;
      sol.status = SolveStatus::kUnbounded;
      sol.x.assign(static_cast<size_t>(n), 0.0);
      return sol;
    }
  }

  // Extended column space: [0, n) structural, [n, n+m) slack of row i.
  const int32_t total = n + m;
  auto obj_of = [&](int32_t j) -> double {
    return j < n ? copy.objective(j) : 0.0;
  };
  auto lower_of = [&](int32_t j) -> double {
    return j < n ? copy.lower(j) : 0.0;
  };
  auto upper_of = [&](int32_t j) -> double {
    return j < n ? copy.upper(j) : kInf;
  };

  std::vector<VarStatus> status(static_cast<size_t>(total),
                                VarStatus::kAtLower);
  std::vector<int32_t> basis(static_cast<size_t>(m));
  std::vector<int32_t> basis_pos(static_cast<size_t>(total), -1);
  for (int32_t i = 0; i < m; ++i) {
    basis[static_cast<size_t>(i)] = n + i;
    basis_pos[static_cast<size_t>(n + i)] = i;
    status[static_cast<size_t>(n + i)] = VarStatus::kBasic;
  }

  DenseMatrix binv(m);
  binv.SetIdentity();

  // Basic variable values. Initially x = lower (=0 in packing form) for all
  // structural vars, so slacks are at b.
  std::vector<double> xb(static_cast<size_t>(m));
  auto recompute_xb = [&]() {
    // xb = Binv * (b - sum_{nonbasic at upper} A_j * u_j).
    std::vector<double> rhs(static_cast<size_t>(m));
    for (int32_t i = 0; i < m; ++i) {
      rhs[static_cast<size_t>(i)] = copy.row(i).rhs;
    }
    for (int32_t j = 0; j < total; ++j) {
      if (status[static_cast<size_t>(j)] != VarStatus::kAtUpper) continue;
      const double u = upper_of(j);
      if (j < n) {
        for (const auto& e : copy.column(j)) {
          rhs[static_cast<size_t>(e.row)] -= e.value * u;
        }
      } else {
        rhs[static_cast<size_t>(j - n)] -= u;
      }
    }
    for (int32_t i = 0; i < m; ++i) {
      double acc = 0.0;
      const double* row = binv.Row(i);
      for (int32_t k = 0; k < m; ++k) acc += row[k] * rhs[static_cast<size_t>(k)];
      xb[static_cast<size_t>(i)] = acc;
    }
  };
  recompute_xb();

  // Rebuilds Binv from scratch by Gauss-Jordan elimination of the basis
  // matrix (numerical hygiene after many product-form updates).
  auto refactor = [&]() -> Status {
    DenseMatrix bmat(m);
    for (int32_t i = 0; i < m; ++i) {
      const int32_t j = basis[static_cast<size_t>(i)];
      if (j < n) {
        for (const auto& e : copy.column(j)) {
          bmat.At(e.row, i) = e.value;
        }
      } else {
        bmat.At(j - n, i) = 1.0;
      }
    }
    binv.SetIdentity();
    // Gauss-Jordan with partial pivoting on the augmented [bmat | binv].
    for (int32_t col = 0; col < m; ++col) {
      int32_t piv = col;
      double best = std::abs(bmat.At(col, col));
      for (int32_t r = col + 1; r < m; ++r) {
        const double v = std::abs(bmat.At(r, col));
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      if (best < 1e-12) {
        return Status::Internal("singular basis during refactorization");
      }
      if (piv != col) {
        for (int32_t k = 0; k < m; ++k) {
          std::swap(bmat.At(piv, k), bmat.At(col, k));
          std::swap(binv.At(piv, k), binv.At(col, k));
        }
      }
      const double inv = 1.0 / bmat.At(col, col);
      for (int32_t k = 0; k < m; ++k) {
        bmat.At(col, k) *= inv;
        binv.At(col, k) *= inv;
      }
      for (int32_t r = 0; r < m; ++r) {
        if (r == col) continue;
        const double f = bmat.At(r, col);
        if (f == 0.0) continue;
        for (int32_t k = 0; k < m; ++k) {
          bmat.At(r, k) -= f * bmat.At(col, k);
          binv.At(r, k) -= f * binv.At(col, k);
        }
      }
    }
    return Status::OK();
  };

  const int64_t dims = static_cast<int64_t>(m) + n;
  const int64_t max_iters = options_.max_iterations > 0
                                ? options_.max_iterations
                                : 64 * dims + 4096;
  const int64_t bland_after = options_.bland_threshold > 0
                                  ? options_.bland_threshold
                                  : 8 * dims + 512;
  int64_t iterations = 0;

  std::vector<double> y(static_cast<size_t>(m));    // duals
  std::vector<double> w(static_cast<size_t>(m));    // Binv * A_enter

  while (iterations < max_iters) {
    // ---- Duals: y^T = c_B^T * Binv. ---------------------------------------
    std::fill(y.begin(), y.end(), 0.0);
    for (int32_t i = 0; i < m; ++i) {
      const double cb = obj_of(basis[static_cast<size_t>(i)]);
      if (cb == 0.0) continue;
      const double* row = binv.Row(i);
      for (int32_t k = 0; k < m; ++k) y[static_cast<size_t>(k)] += cb * row[k];
    }

    // ---- Pricing. ----------------------------------------------------------
    const bool bland = iterations >= bland_after;
    int32_t enter = -1;
    double enter_dir = 1.0;  // +1: increase from lower; -1: decrease from upper
    double best_score = tol;
    for (int32_t j = 0; j < total; ++j) {
      const VarStatus st = status[static_cast<size_t>(j)];
      if (st == VarStatus::kBasic) continue;
      double d = obj_of(j);
      if (j < n) {
        for (const auto& e : copy.column(j)) {
          d -= y[static_cast<size_t>(e.row)] * e.value;
        }
      } else {
        d -= y[static_cast<size_t>(j - n)];
      }
      double score = 0.0;
      double dir = 1.0;
      if (st == VarStatus::kAtLower && d > tol) {
        score = d;
        dir = 1.0;
      } else if (st == VarStatus::kAtUpper && d < -tol) {
        score = -d;
        dir = -1.0;
      } else {
        continue;
      }
      if (score > best_score) {
        enter = j;
        enter_dir = dir;
        best_score = score;
        if (bland) break;
      }
    }
    if (enter < 0) break;  // optimal

    // ---- FTRAN: w = Binv * A_enter. ---------------------------------------
    std::fill(w.begin(), w.end(), 0.0);
    if (enter < n) {
      for (const auto& e : copy.column(enter)) {
        const double v = e.value;
        for (int32_t i = 0; i < m; ++i) {
          w[static_cast<size_t>(i)] += binv.At(i, e.row) * v;
        }
      }
    } else {
      const int32_t r = enter - n;
      for (int32_t i = 0; i < m; ++i) {
        w[static_cast<size_t>(i)] = binv.At(i, r);
      }
    }

    // ---- Bounded ratio test. ----------------------------------------------
    // Entering moves by t >= 0 in direction enter_dir; basic i changes by
    // -enter_dir * w_i * t.
    double t_max = upper_of(enter) - lower_of(enter);  // bound-flip cap
    int32_t leave = -1;  // basis position of leaving variable
    bool leave_to_upper = false;
    for (int32_t i = 0; i < m; ++i) {
      const double delta = enter_dir * w[static_cast<size_t>(i)];
      const int32_t bj = basis[static_cast<size_t>(i)];
      if (delta > tol) {
        // Basic variable decreases toward its lower bound.
        const double room =
            (xb[static_cast<size_t>(i)] - lower_of(bj)) / delta;
        if (room < t_max - tol ||
            (leave >= 0 && room < t_max + tol &&
             bj < basis[static_cast<size_t>(leave)])) {
          t_max = std::max(0.0, room);
          leave = i;
          leave_to_upper = false;
        }
      } else if (delta < -tol) {
        // Basic variable increases toward its upper bound.
        const double ub = upper_of(bj);
        if (ub == kInf) continue;
        const double room = (ub - xb[static_cast<size_t>(i)]) / (-delta);
        if (room < t_max - tol ||
            (leave >= 0 && room < t_max + tol &&
             bj < basis[static_cast<size_t>(leave)])) {
          t_max = std::max(0.0, room);
          leave = i;
          leave_to_upper = true;
        }
      }
    }
    if (t_max == kInf) {
      LpSolution sol;
      sol.status = SolveStatus::kUnbounded;
      sol.x.assign(static_cast<size_t>(n), 0.0);
      return sol;
    }

    // ---- Apply the step. ----------------------------------------------------
    for (int32_t i = 0; i < m; ++i) {
      xb[static_cast<size_t>(i)] -=
          enter_dir * w[static_cast<size_t>(i)] * t_max;
    }
    if (leave < 0) {
      // Bound flip: entering variable runs to its opposite bound.
      status[static_cast<size_t>(enter)] =
          (enter_dir > 0) ? VarStatus::kAtUpper : VarStatus::kAtLower;
    } else {
      const int32_t out = basis[static_cast<size_t>(leave)];
      status[static_cast<size_t>(out)] =
          leave_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      basis_pos[static_cast<size_t>(out)] = -1;
      // Entering variable becomes basic with its new value.
      const double enter_value =
          (enter_dir > 0 ? lower_of(enter) + t_max : upper_of(enter) - t_max);
      basis[static_cast<size_t>(leave)] = enter;
      basis_pos[static_cast<size_t>(enter)] = leave;
      status[static_cast<size_t>(enter)] = VarStatus::kBasic;
      xb[static_cast<size_t>(leave)] = enter_value;
      // Product-form update of Binv: eliminate w to e_leave.
      const double piv = w[static_cast<size_t>(leave)];
      IGEPA_CHECK(std::abs(piv) > 1e-13) << "zero pivot in revised simplex";
      const double inv = 1.0 / piv;
      double* prow = binv.Row(leave);
      for (int32_t k = 0; k < m; ++k) prow[k] *= inv;
      for (int32_t i = 0; i < m; ++i) {
        if (i == leave) continue;
        const double f = w[static_cast<size_t>(i)];
        if (f == 0.0) continue;
        double* row = binv.Row(i);
        for (int32_t k = 0; k < m; ++k) row[k] -= f * prow[k];
      }
    }
    ++iterations;
    if (iterations % options_.refactor_every == 0) {
      IGEPA_RETURN_IF_ERROR(refactor());
      recompute_xb();
    }
  }

  LpSolution sol;
  sol.iterations = iterations;
  sol.x.assign(static_cast<size_t>(n), 0.0);
  for (int32_t j = 0; j < n; ++j) {
    if (status[static_cast<size_t>(j)] == VarStatus::kAtUpper) {
      sol.x[static_cast<size_t>(j)] = copy.upper(j);
    }
  }
  for (int32_t i = 0; i < m; ++i) {
    const int32_t j = basis[static_cast<size_t>(i)];
    if (j < n) {
      sol.x[static_cast<size_t>(j)] =
          std::clamp(xb[static_cast<size_t>(i)], copy.lower(j), copy.upper(j));
    }
  }
  sol.objective = copy.ObjectiveValue(sol.x);
  if (iterations >= max_iters) {
    sol.status = SolveStatus::kIterationLimit;
    sol.upper_bound = kInf;
    return sol;
  }
  sol.status = SolveStatus::kOptimal;
  sol.upper_bound = sol.objective;
  // Final duals.
  sol.duals.assign(static_cast<size_t>(m), 0.0);
  for (int32_t i = 0; i < m; ++i) {
    const double cb = obj_of(basis[static_cast<size_t>(i)]);
    if (cb == 0.0) continue;
    const double* row = binv.Row(i);
    for (int32_t k = 0; k < m; ++k) {
      sol.duals[static_cast<size_t>(k)] += cb * row[k];
    }
  }
  return sol;
}

}  // namespace lp
}  // namespace igepa
