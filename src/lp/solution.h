#ifndef IGEPA_LP_SOLUTION_H_
#define IGEPA_LP_SOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace igepa {
namespace lp {

/// Termination state of an LP solve.
enum class SolveStatus : uint8_t {
  /// Proven optimal (within tolerance).
  kOptimal,
  /// Feasible solution with a certified duality-gap bound (approximate
  /// solvers); `objective >= (1 - gap) * upper_bound`.
  kApproximate,
  kInfeasible,
  kUnbounded,
  /// Iteration budget exhausted; `x` is the best feasible point found (may be
  /// all-zero for packing LPs).
  kIterationLimit,
};

const char* SolveStatusToString(SolveStatus status);

/// Result of an LP solve. `x` is always primal-feasible for terminal states
/// kOptimal/kApproximate (solvers repair before returning).
struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective value of `x`.
  double objective = 0.0;
  /// Certified upper bound on the LP optimum (== objective when kOptimal;
  /// from a feasible dual point otherwise). 0 for infeasible models.
  double upper_bound = 0.0;
  /// Primal values, size = model.num_cols().
  std::vector<double> x;
  /// Row duals (y >= 0 for <= rows under maximization); empty when the solver
  /// does not produce them.
  std::vector<double> duals;
  /// Simplex pivots / dual iterations performed.
  int64_t iterations = 0;

  /// Relative duality gap: (upper_bound - objective) / max(1, |upper_bound|).
  double RelativeGap() const;
};

}  // namespace lp
}  // namespace igepa

#endif  // IGEPA_LP_SOLUTION_H_
