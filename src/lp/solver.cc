#include "lp/solver.h"

namespace igepa {
namespace lp {

const char* SolverKindToString(SolverKind kind) {
  switch (kind) {
    case SolverKind::kAuto:
      return "Auto";
    case SolverKind::kDenseSimplex:
      return "DenseSimplex";
    case SolverKind::kRevisedSimplex:
      return "RevisedSimplex";
    case SolverKind::kPackingDual:
      return "PackingDual";
  }
  return "Unknown";
}

SolverKind ChooseSolver(const LpModel& model, const LpSolverOptions& options) {
  if (options.kind != SolverKind::kAuto) return options.kind;
  const int64_t cells =
      static_cast<int64_t>(model.num_rows()) * model.num_cols();
  if (!model.IsPackingForm()) {
    // DenseSimplex is the only general engine.
    return SolverKind::kDenseSimplex;
  }
  if (cells <= options.dense_cell_limit) return SolverKind::kDenseSimplex;
  if (model.num_rows() <= options.revised_row_limit) {
    return SolverKind::kRevisedSimplex;
  }
  return SolverKind::kPackingDual;
}

Result<LpSolution> SolveLp(const LpModel& model,
                           const LpSolverOptions& options) {
  switch (ChooseSolver(model, options)) {
    case SolverKind::kDenseSimplex:
      return DenseSimplex(options.dense).Solve(model);
    case SolverKind::kRevisedSimplex:
      return RevisedSimplex(options.revised).Solve(model);
    case SolverKind::kPackingDual:
      return PackingDualSolver(options.packing).Solve(model);
    case SolverKind::kAuto:
      break;  // unreachable: ChooseSolver never returns kAuto
  }
  return Status::Internal("unreachable solver kind");
}

}  // namespace lp
}  // namespace igepa
