#ifndef IGEPA_LP_DENSE_SIMPLEX_H_
#define IGEPA_LP_DENSE_SIMPLEX_H_

#include <cstdint>

#include "lp/model.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {
namespace lp {

/// Options for DenseSimplex.
struct DenseSimplexOptions {
  /// Numerical tolerance for reduced costs / pivots / feasibility.
  double tolerance = 1e-9;
  /// Hard pivot budget across both phases; 0 means automatic
  /// (64 * (rows + cols) + 4096).
  int64_t max_iterations = 0;
  /// Pivot count after which the solver switches from Dantzig pricing to
  /// Bland's anti-cycling rule; 0 means automatic (8 * (rows + cols) + 512).
  int64_t bland_threshold = 0;
};

/// General-purpose exact LP solver: two-phase primal simplex on a dense
/// tableau. Supports <=, >=, = rows and arbitrary (including free) variable
/// bounds. Memory is O(rows * cols); intended for small and medium models —
/// unit tests, tiny exact IGEPA instances, and as ground truth for the
/// approximate packing solvers.
///
/// This class is the library's stand-in for the commercial solver used by the
/// paper (substitution S5/1 in DESIGN.md).
class DenseSimplex {
 public:
  explicit DenseSimplex(DenseSimplexOptions options = {});

  /// Solves `model` (maximization). The model must pass Validate().
  /// Returns kOptimal/kInfeasible/kUnbounded/kIterationLimit.
  Result<LpSolution> Solve(const LpModel& model) const;

 private:
  DenseSimplexOptions options_;
};

}  // namespace lp
}  // namespace igepa

#endif  // IGEPA_LP_DENSE_SIMPLEX_H_
