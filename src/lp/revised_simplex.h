#ifndef IGEPA_LP_REVISED_SIMPLEX_H_
#define IGEPA_LP_REVISED_SIMPLEX_H_

#include <cstdint>

#include "lp/model.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {
namespace lp {

/// Options for RevisedSimplex.
struct RevisedSimplexOptions {
  double tolerance = 1e-9;
  /// Hard pivot budget; 0 = automatic (64 * (rows + cols) + 4096).
  int64_t max_iterations = 0;
  /// Pivots between full recomputations of the basis inverse and the basic
  /// values (numerical hygiene).
  int64_t refactor_every = 512;
  /// Switch to Bland's rule after this many pivots; 0 = automatic.
  int64_t bland_threshold = 0;
};

/// Revised primal simplex with bounded variables for LPs in *packing
/// canonical form* (every row `a·x <= b` with `b >= 0`, coefficients >= 0,
/// bounds `0 <= x <= u`). The all-slack basis is primal feasible, so no
/// phase 1 is needed. Column storage stays sparse; the basis inverse is kept
/// dense and updated by product-form pivots — memory O(rows²), per-iteration
/// O(rows² + nnz).
///
/// This is the mid-tier solver of substitution S5: exact like DenseSimplex
/// but scaling to the |U| ≈ 2000 benchmark LPs where a dense tableau
/// (rows × cols) no longer fits.
class RevisedSimplex {
 public:
  explicit RevisedSimplex(RevisedSimplexOptions options = {});

  /// Solves `model`, which must be in packing canonical form (checked).
  /// Upper bounds may be kInf. Returns kOptimal or kIterationLimit
  /// (packing LPs are never infeasible and are unbounded only with an
  /// unbounded zero-column variable, which is rejected up front).
  Result<LpSolution> Solve(const LpModel& model) const;

 private:
  RevisedSimplexOptions options_;
};

}  // namespace lp
}  // namespace igepa

#endif  // IGEPA_LP_REVISED_SIMPLEX_H_
