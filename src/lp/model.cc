#include "lp/model.h"

#include <algorithm>
#include <cmath>

namespace igepa {
namespace lp {

int32_t LpModel::AddRow(Sense sense, double rhs) {
  rows_.push_back(RowDef{sense, rhs});
  return static_cast<int32_t>(rows_.size()) - 1;
}

int32_t LpModel::AddColumn(double objective, double lower, double upper,
                           std::vector<ColumnEntry> entries) {
  obj_.push_back(objective);
  lower_.push_back(lower);
  upper_.push_back(upper);
  num_entries_ += static_cast<int64_t>(entries.size());
  cols_.push_back(std::move(entries));
  return static_cast<int32_t>(cols_.size()) - 1;
}

Status LpModel::Validate() {
  const int32_t m = num_rows();
  for (size_t j = 0; j < cols_.size(); ++j) {
    if (!(lower_[j] <= upper_[j])) {
      return Status::InvalidArgument("column " + std::to_string(j) +
                                     ": lower > upper");
    }
    if (!std::isfinite(obj_[j])) {
      return Status::InvalidArgument("column " + std::to_string(j) +
                                     ": non-finite objective");
    }
    auto& col = cols_[j];
    for (const auto& e : col) {
      if (e.row < 0 || e.row >= m) {
        return Status::InvalidArgument("column " + std::to_string(j) +
                                       ": row index out of range");
      }
      if (!std::isfinite(e.value)) {
        return Status::InvalidArgument("column " + std::to_string(j) +
                                       ": non-finite coefficient");
      }
    }
    // Merge duplicate row entries (sum coefficients).
    std::sort(col.begin(), col.end(),
              [](const ColumnEntry& a, const ColumnEntry& b) {
                return a.row < b.row;
              });
    size_t out = 0;
    for (size_t k = 0; k < col.size(); ++k) {
      if (out > 0 && col[out - 1].row == col[k].row) {
        col[out - 1].value += col[k].value;
      } else {
        col[out++] = col[k];
      }
    }
    if (out != col.size()) {
      num_entries_ -= static_cast<int64_t>(col.size() - out);
      col.resize(out);
    }
  }
  for (const auto& r : rows_) {
    if (!std::isfinite(r.rhs)) {
      return Status::InvalidArgument("non-finite row rhs");
    }
  }
  return Status::OK();
}

bool LpModel::IsPackingForm() const {
  for (const auto& r : rows_) {
    if (r.sense != Sense::kLe || r.rhs < 0.0) return false;
  }
  for (size_t j = 0; j < cols_.size(); ++j) {
    if (lower_[j] < 0.0 || upper_[j] < lower_[j]) return false;
    for (const auto& e : cols_[j]) {
      if (e.value < 0.0) return false;
    }
  }
  return true;
}

double LpModel::ObjectiveValue(const std::vector<double>& x) const {
  double acc = 0.0;
  const size_t n = std::min(x.size(), obj_.size());
  for (size_t j = 0; j < n; ++j) acc += obj_[j] * x[j];
  return acc;
}

std::vector<double> LpModel::RowActivity(const std::vector<double>& x) const {
  std::vector<double> act(rows_.size(), 0.0);
  for (size_t j = 0; j < cols_.size() && j < x.size(); ++j) {
    if (x[j] == 0.0) continue;
    for (const auto& e : cols_[j]) {
      act[static_cast<size_t>(e.row)] += e.value * x[j];
    }
  }
  return act;
}

double LpModel::MaxInfeasibility(const std::vector<double>& x) const {
  double worst = 0.0;
  const std::vector<double> act = RowActivity(x);
  for (size_t i = 0; i < rows_.size(); ++i) {
    const double a = act[i];
    const double b = rows_[i].rhs;
    switch (rows_[i].sense) {
      case Sense::kLe:
        worst = std::max(worst, a - b);
        break;
      case Sense::kGe:
        worst = std::max(worst, b - a);
        break;
      case Sense::kEq:
        worst = std::max(worst, std::abs(a - b));
        break;
    }
  }
  for (size_t j = 0; j < cols_.size() && j < x.size(); ++j) {
    worst = std::max(worst, lower_[j] - x[j]);
    worst = std::max(worst, x[j] - upper_[j]);
  }
  return worst;
}

}  // namespace lp
}  // namespace igepa
