#ifndef IGEPA_LP_MODEL_H_
#define IGEPA_LP_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace igepa {
namespace lp {

/// +infinity sentinel for variable upper bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Row sense of a linear constraint.
enum class Sense : uint8_t { kLe, kGe, kEq };

/// One linear constraint: (a · x) `sense` rhs.
struct RowDef {
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// Sparse entry of a column: coefficient `value` in row `row`.
struct ColumnEntry {
  int32_t row = 0;
  double value = 0.0;
};

/// A linear program in column-oriented sparse form. The objective is always
/// MAXIMIZED (callers negate costs to minimize). Variables carry box bounds
/// [lower, upper] with upper possibly kInf; lower may be -kInf (free/negative
/// variables are supported by DenseSimplex only).
///
/// Columns are the natural unit for the IGEPA benchmark LP: each admissible
/// event set (u, S) is one column touching the user row of u and the event
/// rows of S (see core/benchmark_lp.h).
class LpModel {
 public:
  LpModel() = default;

  /// Adds a constraint row, returns its index.
  int32_t AddRow(Sense sense, double rhs);

  /// Adds a variable with the given objective coefficient, bounds and sparse
  /// row entries; returns the column index. Entries must reference existing
  /// rows; duplicate rows within one column are summed by Canonicalize().
  int32_t AddColumn(double objective, double lower, double upper,
                    std::vector<ColumnEntry> entries);

  int32_t num_rows() const { return static_cast<int32_t>(rows_.size()); }
  int32_t num_cols() const { return static_cast<int32_t>(cols_.size()); }
  int64_t num_entries() const { return num_entries_; }

  const RowDef& row(int32_t i) const { return rows_[static_cast<size_t>(i)]; }
  double objective(int32_t j) const { return obj_[static_cast<size_t>(j)]; }
  double lower(int32_t j) const { return lower_[static_cast<size_t>(j)]; }
  double upper(int32_t j) const { return upper_[static_cast<size_t>(j)]; }
  const std::vector<ColumnEntry>& column(int32_t j) const {
    return cols_[static_cast<size_t>(j)];
  }

  /// Structural validation: in-range row indices, finite coefficients,
  /// lower <= upper. Merges duplicate entries within each column.
  Status Validate();

  /// True when the model is in *packing canonical form*: every row is `<=`
  /// with rhs >= 0, every coefficient is >= 0, and every variable has
  /// 0 <= lower <= upper. RevisedSimplex and PackingDualSolver require this.
  bool IsPackingForm() const;

  /// Evaluates the objective at `x` (size num_cols()).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Row activities (a_i · x) at `x`.
  std::vector<double> RowActivity(const std::vector<double>& x) const;

  /// Maximum constraint/bound violation of `x` (0 when feasible).
  double MaxInfeasibility(const std::vector<double>& x) const;

 private:
  std::vector<RowDef> rows_;
  std::vector<double> obj_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::vector<ColumnEntry>> cols_;
  int64_t num_entries_ = 0;
};

}  // namespace lp
}  // namespace igepa

#endif  // IGEPA_LP_MODEL_H_
