#ifndef IGEPA_LP_PACKING_DUAL_H_
#define IGEPA_LP_PACKING_DUAL_H_

#include <cstdint>

#include "lp/model.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {
namespace lp {

/// Options for PackingDualSolver.
struct PackingDualOptions {
  /// Target relative duality gap; the solver stops early once certified.
  double target_gap = 0.01;
  /// Maximum dual iterations.
  int64_t max_iterations = 4000;
  /// Fraction of the trailing iterations whose oracle solutions are averaged
  /// into the primal (suffix averaging improves the ergodic primal).
  double averaging_fraction = 0.5;
  /// Initial step-size scale (adaptive; this is just the starting point).
  double step_scale = 1.0;
};

/// Approximate solver for packing LPs
///     max c·x   s.t.  A x <= b,  0 <= x <= u,   A >= 0, b > 0,
/// based on Lagrangian decomposition: dualize all rows with multipliers
/// y >= 0; the Lagrangian
///     L(y) = y·b + Σ_j (c_j - y·A_j)⁺ · u_j
/// is an upper bound on the LP optimum for every y >= 0 (it is exactly the
/// LP dual objective with the bound constraints kept in the inner problem).
/// Projected subgradient descent with decaying steps minimizes L; the primal
/// is recovered by suffix-averaging the inner argmax points and repairing
/// feasibility with per-column scaling:
///     x_j ← x_j · min(1, min_{i : A_ij > 0} b_i / (A x)_i),
/// which is always feasible. The solver certifies the result: `objective` is
/// the value of the repaired feasible x, `upper_bound` = min_t L(y_t), and
/// status is kApproximate once the relative gap is below `target_gap`
/// (kIterationLimit otherwise — x is still feasible).
///
/// This is the large-scale tier of substitution S5: the IGEPA benchmark LP at
/// |U| = 10⁴ solves in milliseconds-to-seconds where simplex tableaus and
/// dense inverses are no longer practical. LP-packing consumes the fractional
/// x unchanged, so the paper's guarantee only degrades by the certified (1-ε).
class PackingDualSolver {
 public:
  explicit PackingDualSolver(PackingDualOptions options = {});

  /// Solves `model`, which must be in packing canonical form. Variables with
  /// u_j = kInf are rejected unless their column is empty and c_j <= 0
  /// (the Lagrangian needs finite box bounds).
  Result<LpSolution> Solve(const LpModel& model) const;

 private:
  PackingDualOptions options_;
};

}  // namespace lp
}  // namespace igepa

#endif  // IGEPA_LP_PACKING_DUAL_H_
