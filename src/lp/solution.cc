#include "lp/solution.h"

#include <algorithm>
#include <cmath>

namespace igepa {
namespace lp {

const char* SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kApproximate:
      return "Approximate";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
  }
  return "Unknown";
}

double LpSolution::RelativeGap() const {
  const double denom = std::max(1.0, std::abs(upper_bound));
  return (upper_bound - objective) / denom;
}

}  // namespace lp
}  // namespace igepa
