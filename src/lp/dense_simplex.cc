#include "lp/dense_simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace igepa {
namespace lp {
namespace {

/// How an original variable maps to canonical (shifted, >= 0) variables.
struct VarMap {
  enum class Kind : uint8_t { kShift, kFlip, kSplit };
  Kind kind = Kind::kShift;
  int32_t col = -1;      // primary canonical column
  int32_t col_neg = -1;  // negative part for kSplit
  double shift = 0.0;    // x = shift + x'   (kShift)  /  x = shift - x' (kFlip)
};

/// Role of a canonical tableau column.
enum class ColRole : uint8_t { kStructural, kSlack, kSurplus, kArtificial };

struct Canonical {
  // Dense row-major matrix of structural columns only; slacks etc. appended
  // logically during the solve.
  int32_t num_rows = 0;
  int32_t num_struct = 0;
  std::vector<double> a;        // num_rows x num_struct
  std::vector<double> rhs;      // >= 0 after sign normalization
  std::vector<Sense> sense;     // after sign normalization
  std::vector<double> row_sign; // +1 / -1: multiplier applied to original row
  std::vector<double> obj;      // phase-2 objective of structural columns
  double obj_const = 0.0;       // constant folded out by shifts
  std::vector<VarMap> var_map;  // size = model.num_cols()
  int32_t num_original_rows = 0;
};

double& At(Canonical& c, int32_t i, int32_t j) {
  return c.a[static_cast<size_t>(i) * static_cast<size_t>(c.num_struct) +
             static_cast<size_t>(j)];
}

/// Rewrites the model with all variables shifted to x' >= 0 and finite upper
/// bounds turned into explicit rows, then sign-normalizes rows to rhs >= 0.
Result<Canonical> Canonicalize(const LpModel& model) {
  Canonical c;
  c.num_original_rows = model.num_rows();
  const int32_t n = model.num_cols();

  // Pass 1: decide the variable mapping and count canonical columns/rows.
  c.var_map.resize(static_cast<size_t>(n));
  int32_t next_col = 0;
  int32_t bound_rows = 0;
  for (int32_t j = 0; j < n; ++j) {
    const double lo = model.lower(j);
    const double hi = model.upper(j);
    VarMap& vm = c.var_map[static_cast<size_t>(j)];
    if (std::isfinite(lo)) {
      vm.kind = VarMap::Kind::kShift;
      vm.shift = lo;
      vm.col = next_col++;
      if (std::isfinite(hi)) ++bound_rows;  // x' <= hi - lo
    } else if (std::isfinite(hi)) {
      vm.kind = VarMap::Kind::kFlip;
      vm.shift = hi;
      vm.col = next_col++;
    } else {
      vm.kind = VarMap::Kind::kSplit;
      vm.col = next_col++;
      vm.col_neg = next_col++;
    }
  }
  c.num_struct = next_col;
  c.num_rows = model.num_rows() + bound_rows;
  c.a.assign(static_cast<size_t>(c.num_rows) *
                 static_cast<size_t>(c.num_struct),
             0.0);
  c.rhs.assign(static_cast<size_t>(c.num_rows), 0.0);
  c.sense.assign(static_cast<size_t>(c.num_rows), Sense::kLe);
  c.row_sign.assign(static_cast<size_t>(c.num_rows), 1.0);
  c.obj.assign(static_cast<size_t>(c.num_struct), 0.0);

  for (int32_t i = 0; i < model.num_rows(); ++i) {
    c.rhs[static_cast<size_t>(i)] = model.row(i).rhs;
    c.sense[static_cast<size_t>(i)] = model.row(i).sense;
  }

  // Pass 2: emit columns.
  int32_t next_bound_row = model.num_rows();
  for (int32_t j = 0; j < n; ++j) {
    const VarMap& vm = c.var_map[static_cast<size_t>(j)];
    const double cj = model.objective(j);
    switch (vm.kind) {
      case VarMap::Kind::kShift: {
        c.obj[static_cast<size_t>(vm.col)] = cj;
        c.obj_const += cj * vm.shift;
        for (const auto& e : model.column(j)) {
          At(c, e.row, vm.col) += e.value;
          c.rhs[static_cast<size_t>(e.row)] -= e.value * vm.shift;
        }
        const double hi = model.upper(j);
        if (std::isfinite(hi)) {
          const int32_t r = next_bound_row++;
          At(c, r, vm.col) = 1.0;
          c.rhs[static_cast<size_t>(r)] = hi - vm.shift;
          c.sense[static_cast<size_t>(r)] = Sense::kLe;
        }
        break;
      }
      case VarMap::Kind::kFlip: {
        // x = hi - x'' with x'' >= 0 (no upper bound on x'').
        c.obj[static_cast<size_t>(vm.col)] = -cj;
        c.obj_const += cj * vm.shift;
        for (const auto& e : model.column(j)) {
          At(c, e.row, vm.col) -= e.value;
          c.rhs[static_cast<size_t>(e.row)] -= e.value * vm.shift;
        }
        break;
      }
      case VarMap::Kind::kSplit: {
        c.obj[static_cast<size_t>(vm.col)] = cj;
        c.obj[static_cast<size_t>(vm.col_neg)] = -cj;
        for (const auto& e : model.column(j)) {
          At(c, e.row, vm.col) += e.value;
          At(c, e.row, vm.col_neg) -= e.value;
        }
        break;
      }
    }
  }

  // Pass 3: sign-normalize rows to rhs >= 0.
  for (int32_t i = 0; i < c.num_rows; ++i) {
    if (c.rhs[static_cast<size_t>(i)] < 0.0) {
      c.rhs[static_cast<size_t>(i)] = -c.rhs[static_cast<size_t>(i)];
      c.row_sign[static_cast<size_t>(i)] = -1.0;
      for (int32_t j = 0; j < c.num_struct; ++j) At(c, i, j) = -At(c, i, j);
      if (c.sense[static_cast<size_t>(i)] == Sense::kLe) {
        c.sense[static_cast<size_t>(i)] = Sense::kGe;
      } else if (c.sense[static_cast<size_t>(i)] == Sense::kGe) {
        c.sense[static_cast<size_t>(i)] = Sense::kLe;
      }
    }
  }
  return c;
}

/// Full dense tableau with slack/surplus/artificial columns appended.
class Tableau {
 public:
  Tableau(const Canonical& canon, double tol)
      : canon_(canon), tol_(tol), m_(canon.num_rows) {
    // Column layout: [structural | slack+surplus | artificial].
    role_.assign(static_cast<size_t>(canon.num_struct), ColRole::kStructural);
    slack_col_.assign(static_cast<size_t>(m_), -1);
    art_col_.assign(static_cast<size_t>(m_), -1);
    int32_t next = canon.num_struct;
    for (int32_t i = 0; i < m_; ++i) {
      const Sense s = canon.sense[static_cast<size_t>(i)];
      if (s == Sense::kLe || s == Sense::kGe) {
        slack_col_[static_cast<size_t>(i)] = next++;
        role_.push_back(s == Sense::kLe ? ColRole::kSlack : ColRole::kSurplus);
      }
    }
    for (int32_t i = 0; i < m_; ++i) {
      const Sense s = canon.sense[static_cast<size_t>(i)];
      if (s == Sense::kGe || s == Sense::kEq) {
        art_col_[static_cast<size_t>(i)] = next++;
        role_.push_back(ColRole::kArtificial);
      }
    }
    n_ = next;
    width_ = n_ + 1;
    t_.assign(static_cast<size_t>(m_ + 1) * static_cast<size_t>(width_), 0.0);
    basis_.assign(static_cast<size_t>(m_), -1);

    for (int32_t i = 0; i < m_; ++i) {
      for (int32_t j = 0; j < canon.num_struct; ++j) {
        Cell(i, j) = canon.a[static_cast<size_t>(i) *
                                 static_cast<size_t>(canon.num_struct) +
                             static_cast<size_t>(j)];
      }
      const Sense s = canon.sense[static_cast<size_t>(i)];
      if (slack_col_[static_cast<size_t>(i)] >= 0) {
        Cell(i, slack_col_[static_cast<size_t>(i)]) =
            (s == Sense::kLe) ? 1.0 : -1.0;
      }
      if (art_col_[static_cast<size_t>(i)] >= 0) {
        Cell(i, art_col_[static_cast<size_t>(i)]) = 1.0;
        basis_[static_cast<size_t>(i)] = art_col_[static_cast<size_t>(i)];
      } else {
        basis_[static_cast<size_t>(i)] = slack_col_[static_cast<size_t>(i)];
      }
      Cell(i, n_) = canon.rhs[static_cast<size_t>(i)];
    }
  }

  double& Cell(int32_t i, int32_t j) {
    return t_[static_cast<size_t>(i) * static_cast<size_t>(width_) +
              static_cast<size_t>(j)];
  }
  double Cell(int32_t i, int32_t j) const {
    return t_[static_cast<size_t>(i) * static_cast<size_t>(width_) +
              static_cast<size_t>(j)];
  }

  int32_t num_cols() const { return n_; }
  int32_t num_rows() const { return m_; }
  ColRole role(int32_t j) const { return role_[static_cast<size_t>(j)]; }
  int32_t basis(int32_t i) const { return basis_[static_cast<size_t>(i)]; }
  int32_t art_col(int32_t i) const { return art_col_[static_cast<size_t>(i)]; }
  int32_t slack_col(int32_t i) const {
    return slack_col_[static_cast<size_t>(i)];
  }

  /// Installs a fresh objective row for costs `cost` (size n_) given the
  /// current basis: r_j = c_j - c_B * T_j ; rhs cell = -c_B * b.
  void SetObjective(const std::vector<double>& cost) {
    for (int32_t j = 0; j <= n_; ++j) {
      Cell(m_, j) = (j < n_) ? cost[static_cast<size_t>(j)] : 0.0;
    }
    for (int32_t i = 0; i < m_; ++i) {
      const double cb = cost[static_cast<size_t>(basis_[static_cast<size_t>(i)])];
      if (cb == 0.0) continue;
      for (int32_t j = 0; j <= n_; ++j) {
        Cell(m_, j) -= cb * Cell(i, j);
      }
    }
  }

  void Pivot(int32_t pr, int32_t pc) {
    const double pivot = Cell(pr, pc);
    const double inv = 1.0 / pivot;
    for (int32_t j = 0; j <= n_; ++j) Cell(pr, j) *= inv;
    Cell(pr, pc) = 1.0;  // exactness
    for (int32_t i = 0; i <= m_; ++i) {
      if (i == pr) continue;
      const double f = Cell(i, pc);
      if (f == 0.0) continue;
      for (int32_t j = 0; j <= n_; ++j) Cell(i, j) -= f * Cell(pr, j);
      Cell(i, pc) = 0.0;  // exactness
    }
    basis_[static_cast<size_t>(pr)] = pc;
  }

  /// Runs primal simplex iterations with the current objective row until
  /// optimal / unbounded / budget exhausted. `allow` filters entering columns.
  /// Returns kOptimal / kUnbounded / kIterationLimit.
  template <typename AllowFn>
  SolveStatus Iterate(AllowFn allow, int64_t max_iters, int64_t bland_after,
                      int64_t* iterations) {
    while (*iterations < max_iters) {
      const bool bland = *iterations >= bland_after;
      int32_t pc = -1;
      double best = tol_;
      for (int32_t j = 0; j < n_; ++j) {
        if (!allow(j)) continue;
        const double rc = Cell(m_, j);
        if (rc > best) {
          pc = j;
          if (bland) break;  // first improving column (Bland)
          best = rc;
        }
      }
      if (pc < 0) return SolveStatus::kOptimal;

      int32_t pr = -1;
      double best_ratio = 0.0;
      for (int32_t i = 0; i < m_; ++i) {
        const double a = Cell(i, pc);
        if (a > tol_) {
          const double ratio = Cell(i, n_) / a;
          if (pr < 0 || ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ &&
               basis_[static_cast<size_t>(i)] <
                   basis_[static_cast<size_t>(pr)])) {
            pr = i;
            best_ratio = ratio;
          }
        }
      }
      if (pr < 0) return SolveStatus::kUnbounded;
      Pivot(pr, pc);
      ++(*iterations);
    }
    return SolveStatus::kIterationLimit;
  }

  double ObjectiveValue() const { return -Cell(m_, n_); }

 private:
  const Canonical& canon_;
  double tol_;
  int32_t m_;
  int32_t n_ = 0;
  int32_t width_ = 0;
  std::vector<double> t_;
  std::vector<int32_t> basis_;
  std::vector<ColRole> role_;
  std::vector<int32_t> slack_col_;
  std::vector<int32_t> art_col_;
};

}  // namespace

DenseSimplex::DenseSimplex(DenseSimplexOptions options) : options_(options) {}

Result<LpSolution> DenseSimplex::Solve(const LpModel& model) const {
  LpModel copy = model;  // Validate() may merge duplicate entries
  IGEPA_RETURN_IF_ERROR(copy.Validate());
  IGEPA_ASSIGN_OR_RETURN(Canonical canon, Canonicalize(copy));

  const double tol = options_.tolerance;
  Tableau tab(canon, tol);
  const int64_t dims = tab.num_rows() + tab.num_cols();
  const int64_t max_iters = options_.max_iterations > 0
                                ? options_.max_iterations
                                : 64 * dims + 4096;
  const int64_t bland_after = options_.bland_threshold > 0
                                  ? options_.bland_threshold
                                  : 8 * dims + 512;
  int64_t iterations = 0;

  // ---- Phase 1: drive artificials to zero. -------------------------------
  bool has_artificial = false;
  for (int32_t j = 0; j < tab.num_cols(); ++j) {
    if (tab.role(j) == ColRole::kArtificial) {
      has_artificial = true;
      break;
    }
  }
  if (has_artificial) {
    std::vector<double> phase1(static_cast<size_t>(tab.num_cols()), 0.0);
    for (int32_t j = 0; j < tab.num_cols(); ++j) {
      if (tab.role(j) == ColRole::kArtificial) {
        phase1[static_cast<size_t>(j)] = -1.0;
      }
    }
    tab.SetObjective(phase1);
    const SolveStatus s1 = tab.Iterate([](int32_t) { return true; }, max_iters,
                                       bland_after, &iterations);
    if (s1 == SolveStatus::kIterationLimit) {
      return Status::ResourceExhausted("simplex phase 1 iteration limit");
    }
    // Phase-1 objective is -(sum of artificials) <= 0.
    if (tab.ObjectiveValue() < -1e-7) {
      LpSolution sol;
      sol.status = SolveStatus::kInfeasible;
      sol.x.assign(static_cast<size_t>(model.num_cols()), 0.0);
      return sol;
    }
    // Drive any basic artificial (value 0) out of the basis when possible.
    for (int32_t i = 0; i < tab.num_rows(); ++i) {
      const int32_t b = tab.basis(i);
      if (tab.role(b) != ColRole::kArtificial) continue;
      int32_t pc = -1;
      for (int32_t j = 0; j < tab.num_cols(); ++j) {
        if (tab.role(j) == ColRole::kArtificial) continue;
        if (std::abs(tab.Cell(i, j)) > tol) {
          pc = j;
          break;
        }
      }
      if (pc >= 0) {
        tab.Pivot(i, pc);
        ++iterations;
      }
      // else: redundant row; artificial stays basic at value 0 — harmless
      // because artificial columns are banned from entering in phase 2.
    }
  }

  // ---- Phase 2: original objective. ---------------------------------------
  std::vector<double> phase2(static_cast<size_t>(tab.num_cols()), 0.0);
  for (int32_t j = 0; j < canon.num_struct; ++j) {
    phase2[static_cast<size_t>(j)] = canon.obj[static_cast<size_t>(j)];
  }
  tab.SetObjective(phase2);
  const SolveStatus s2 =
      tab.Iterate([&tab](int32_t j) { return tab.role(j) !=
                                             ColRole::kArtificial; },
                  max_iters, bland_after, &iterations);
  if (s2 == SolveStatus::kIterationLimit) {
    return Status::ResourceExhausted("simplex phase 2 iteration limit");
  }
  if (s2 == SolveStatus::kUnbounded) {
    LpSolution sol;
    sol.status = SolveStatus::kUnbounded;
    sol.x.assign(static_cast<size_t>(model.num_cols()), 0.0);
    return sol;
  }

  // ---- Extract the solution. ----------------------------------------------
  std::vector<double> xc(static_cast<size_t>(canon.num_struct), 0.0);
  for (int32_t i = 0; i < tab.num_rows(); ++i) {
    const int32_t b = tab.basis(i);
    if (b < canon.num_struct) {
      xc[static_cast<size_t>(b)] = tab.Cell(i, tab.num_cols());
    }
  }
  LpSolution sol;
  sol.status = SolveStatus::kOptimal;
  sol.iterations = iterations;
  sol.x.assign(static_cast<size_t>(model.num_cols()), 0.0);
  for (int32_t j = 0; j < model.num_cols(); ++j) {
    const VarMap& vm = canon.var_map[static_cast<size_t>(j)];
    double v = 0.0;
    switch (vm.kind) {
      case VarMap::Kind::kShift:
        v = vm.shift + xc[static_cast<size_t>(vm.col)];
        break;
      case VarMap::Kind::kFlip:
        v = vm.shift - xc[static_cast<size_t>(vm.col)];
        break;
      case VarMap::Kind::kSplit:
        v = xc[static_cast<size_t>(vm.col)] -
            xc[static_cast<size_t>(vm.col_neg)];
        break;
    }
    sol.x[static_cast<size_t>(j)] = v;
  }
  sol.objective = tab.ObjectiveValue() + canon.obj_const;
  sol.upper_bound = sol.objective;

  // Row duals for the original rows, from slack/artificial reduced costs.
  sol.duals.assign(static_cast<size_t>(canon.num_original_rows), 0.0);
  for (int32_t i = 0; i < canon.num_original_rows; ++i) {
    double y = 0.0;
    const int32_t sc = tab.slack_col(i);
    const int32_t ac = tab.art_col(i);
    if (sc >= 0) {
      // slack cost 0: y_i = -reduced_cost(slack) (slack coeff +1 for <=,
      // -1 for >=; the sign is folded below).
      const double sign = canon.sense[static_cast<size_t>(i)] == Sense::kLe
                              ? 1.0
                              : -1.0;
      y = -sign * tab.Cell(tab.num_rows(), sc);
    } else if (ac >= 0) {
      y = -tab.Cell(tab.num_rows(), ac);
    }
    sol.duals[static_cast<size_t>(i)] =
        y * canon.row_sign[static_cast<size_t>(i)];
  }
  return sol;
}

}  // namespace lp
}  // namespace igepa
