#ifndef IGEPA_LP_SOLVER_H_
#define IGEPA_LP_SOLVER_H_

#include <cstdint>

#include "lp/dense_simplex.h"
#include "lp/model.h"
#include "lp/packing_dual.h"
#include "lp/revised_simplex.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {
namespace lp {

/// Which engine a Solve call should use.
enum class SolverKind : uint8_t {
  /// Pick by model shape: dense simplex for small models, revised simplex for
  /// medium packing models, Lagrangian dual for large packing models.
  kAuto,
  kDenseSimplex,
  kRevisedSimplex,
  kPackingDual,
};

const char* SolverKindToString(SolverKind kind);

/// Combined options for the facade.
struct LpSolverOptions {
  SolverKind kind = SolverKind::kAuto;
  DenseSimplexOptions dense;
  RevisedSimplexOptions revised;
  PackingDualOptions packing;

  /// kAuto thresholds: dense tableau is used while rows*cols stays below
  /// this many cells...
  int64_t dense_cell_limit = 4'000'000;
  /// ...and revised simplex while rows stay below this (dense inverse; the
  /// per-pivot O(rows²) cost makes larger models cheaper to solve with the
  /// certified-gap dual solver).
  int32_t revised_row_limit = 600;
};

/// Solves `model` with the selected (or auto-selected) engine. This is the
/// entry point the IGEPA core uses; tests exercise the engines directly.
Result<LpSolution> SolveLp(const LpModel& model,
                           const LpSolverOptions& options = {});

/// The engine kAuto would pick for this model shape.
SolverKind ChooseSolver(const LpModel& model, const LpSolverOptions& options);

}  // namespace lp
}  // namespace igepa

#endif  // IGEPA_LP_SOLVER_H_
