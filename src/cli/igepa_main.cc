// The `igepa` command-line tool: generate, solve, evaluate and describe
// IGEPA instances from the shell. See cli/commands.h for the subcommands.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return igepa::cli::RunCli(args, std::cout, std::cerr);
}
