#ifndef IGEPA_CLI_COMMANDS_H_
#define IGEPA_CLI_COMMANDS_H_

#include <ostream>
#include <string>
#include <vector>

namespace igepa {
namespace cli {

/// Entry point of the `igepa` command-line tool. Subcommands:
///
///   igepa generate --kind=synthetic|meetup --out=FILE [generator flags]
///       Samples an instance and writes it as CSV.
///   igepa solve --in=FILE --algorithm=lp-packing|gg|random-u|random-v|online
///               [--out=ARR_FILE] [--alpha=A] [--seed=S]
///       Arranges the instance and reports utility (optionally saving pairs).
///   igepa evaluate --in=FILE --arrangement=ARR_FILE
///       Checks feasibility and reports the utility breakdown.
///   igepa describe --in=FILE
///       Prints instance statistics.
///   igepa replay [--in=FILE] [--deltas=FILE] --ticks=N [--threads=T]
///                [--check-tolerance=X]
///       Streams an InstanceDelta sequence through the incremental
///       arrangement engine (delta-aware catalog + warm-started duals +
///       localized re-round) and reports per-tick latency and objective
///       drift against a cold re-solve.
///   igepa serve [--in=FILE] [--arrivals=FILE|-] [--epoch-ms=W]
///               [--max-batch=B] [--realtime] [--sweep=1,16,256]
///       Runs the batched long-running arrangement service
///       (serve::ArrangementService) over a timestamped arrival stream and
///       prints per-epoch metrics, or sweeps epoch batch sizes for
///       throughput (exp::RunServeSweep).
///
/// The registered subcommands are listed by `igepa --help`; the listing is
/// derived from the same table the dispatcher uses.
///
/// Returns a process exit code; all human-readable output goes to `out`,
/// errors to `err`. Exposed as a library function so the test suite drives it
/// without spawning processes.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace cli
}  // namespace igepa

#endif  // IGEPA_CLI_COMMANDS_H_
