#include "cli/commands.h"

#include "algo/baselines.h"
#include "algo/online.h"
#include "core/instance_delta.h"
#include "core/lp_packing.h"
#include "exp/replay.h"
#include "exp/report.h"
#include "gen/delta_stream.h"
#include "gen/meetup_sim.h"
#include "gen/synthetic.h"
#include "io/delta_io.h"
#include "io/instance_io.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace igepa {
namespace cli {
namespace {

constexpr const char* kTopUsage =
    "usage: igepa <generate|solve|evaluate|describe|replay> [flags]\n"
    "run `igepa <command> --help` for per-command flags\n";

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

// ---- generate --------------------------------------------------------------

int CmdGenerate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("igepa generate", "sample an IGEPA instance to CSV");
  parser.AddString("kind", "synthetic", "generator: synthetic | meetup");
  parser.AddString("out", "", "output CSV path (required)");
  parser.AddInt("seed", 20190408, "random seed");
  parser.AddInt("events", 200, "number of events |V|");
  parser.AddInt("users", 2000, "number of users |U|");
  parser.AddInt("max-cv", 50, "maximum event capacity (synthetic)");
  parser.AddInt("max-cu", 4, "maximum user capacity (synthetic)");
  parser.AddDouble("pcf", 0.3, "event conflict probability (synthetic)");
  parser.AddDouble("pdeg", 0.5, "friendship probability (synthetic)");
  parser.AddDouble("beta", 0.5, "interest/interaction balance");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("out").empty()) {
    return Fail(err, Status::InvalidArgument("--out is required"));
  }

  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  Result<core::Instance> instance = Status::Internal("unset");
  const std::string& kind = parser.GetString("kind");
  if (kind == "synthetic") {
    gen::SyntheticConfig config;
    config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    config.max_event_capacity = static_cast<int32_t>(parser.GetInt("max-cv"));
    config.max_user_capacity = static_cast<int32_t>(parser.GetInt("max-cu"));
    config.p_conflict = parser.GetDouble("pcf");
    config.p_friend = parser.GetDouble("pdeg");
    config.beta = parser.GetDouble("beta");
    instance = gen::GenerateSynthetic(config, &rng);
  } else if (kind == "meetup") {
    gen::MeetupConfig config;
    if (parser.Provided("events")) {
      config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    }
    if (parser.Provided("users")) {
      config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    }
    config.beta = parser.GetDouble("beta");
    instance = gen::GenerateMeetup(config, &rng);
  } else {
    return Fail(err, Status::InvalidArgument("unknown --kind '" + kind +
                                             "' (synthetic | meetup)"));
  }
  if (!instance.ok()) return Fail(err, instance.status());
  if (Status s = io::WriteInstanceCsv(*instance, parser.GetString("out"));
      !s.ok()) {
    return Fail(err, s);
  }
  out << "wrote " << parser.GetString("out") << ": "
      << exp::DescribeInstance(*instance) << "\n";
  return 0;
}

// ---- solve -----------------------------------------------------------------

int CmdSolve(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  ArgParser parser("igepa solve", "arrange an instance CSV");
  parser.AddString("in", "", "instance CSV path (required)");
  parser.AddString("out", "", "optional arrangement CSV output path");
  parser.AddString("algorithm", "lp-packing",
                   "lp-packing | gg | gbs | random-u | random-v | online");
  parser.AddDouble("alpha", 1.0, "LP-packing sampling scale in (0,1]");
  parser.AddInt("seed", 42, "random seed for randomized algorithms");
  parser.AddInt("threads", 0,
                "worker threads for enumeration, LP solve and rounding "
                "(0 = hardware concurrency; results are identical for every "
                "value)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty()) {
    return Fail(err, Status::InvalidArgument("--in is required"));
  }
  if (parser.GetInt("threads") < 0) {
    return Fail(err, Status::InvalidArgument("--threads must be >= 0"));
  }
  auto instance = io::ReadInstanceCsv(parser.GetString("in"));
  if (!instance.ok()) return Fail(err, instance.status());

  const auto threads = static_cast<int32_t>(parser.GetInt("threads"));
  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  const std::string& algorithm = parser.GetString("algorithm");
  Stopwatch watch;
  Result<core::Arrangement> arrangement = Status::Internal("unset");
  if (algorithm == "lp-packing") {
    core::LpPackingOptions options;
    options.alpha = parser.GetDouble("alpha");
    options.num_threads = threads;
    options.structured.num_threads = threads;
    options.admissible.num_threads = threads;
    arrangement = core::LpPacking(*instance, &rng, options);
  } else if (algorithm == "gg") {
    arrangement = algo::GreedyGg(*instance);
  } else if (algorithm == "gbs") {
    core::AdmissibleOptions admissible;
    admissible.num_threads = threads;
    const core::AdmissibleCatalog catalog =
        core::AdmissibleCatalog::Build(*instance, admissible);
    arrangement = algo::GreedyBestSet(*instance, catalog);
  } else if (algorithm == "random-u") {
    arrangement = algo::RandomU(*instance, &rng);
  } else if (algorithm == "random-v") {
    arrangement = algo::RandomV(*instance, &rng);
  } else if (algorithm == "online") {
    arrangement = algo::OnlineArrangeRandomOrder(*instance, &rng, {});
  } else {
    return Fail(err, Status::InvalidArgument("unknown --algorithm '" +
                                             algorithm + "'"));
  }
  if (!arrangement.ok()) return Fail(err, arrangement.status());
  const double seconds = watch.ElapsedSeconds();
  if (Status s = arrangement->CheckFeasible(*instance); !s.ok()) {
    return Fail(err, s);
  }
  const auto breakdown = arrangement->Breakdown(*instance);
  out << algorithm << ": utility " << FormatDouble(breakdown.total, 4)
      << " (interest " << FormatDouble(breakdown.interest_total, 4)
      << ", degree " << FormatDouble(breakdown.degree_total, 4) << ") over "
      << arrangement->size() << " pairs in "
      << FormatDouble(seconds * 1e3, 1) << " ms\n";
  if (!parser.GetString("out").empty()) {
    if (Status s =
            io::WriteArrangementCsv(*arrangement, parser.GetString("out"));
        !s.ok()) {
      return Fail(err, s);
    }
    out << "wrote " << parser.GetString("out") << "\n";
  }
  return 0;
}

// ---- evaluate ---------------------------------------------------------------

int CmdEvaluate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("igepa evaluate",
                   "check an arrangement against an instance");
  parser.AddString("in", "", "instance CSV path (required)");
  parser.AddString("arrangement", "", "arrangement CSV path (required)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty() ||
      parser.GetString("arrangement").empty()) {
    return Fail(err,
                Status::InvalidArgument("--in and --arrangement are required"));
  }
  auto instance = io::ReadInstanceCsv(parser.GetString("in"));
  if (!instance.ok()) return Fail(err, instance.status());
  auto arrangement = io::ReadArrangementCsv(parser.GetString("arrangement"));
  if (!arrangement.ok()) return Fail(err, arrangement.status());
  const Status feasible = arrangement->CheckFeasible(*instance);
  if (!feasible.ok()) {
    out << "INFEASIBLE: " << feasible.message() << "\n";
    return 2;
  }
  const auto breakdown = arrangement->Breakdown(*instance);
  out << "feasible: yes\n"
      << "pairs: " << arrangement->size() << "\n"
      << "utility: " << FormatDouble(breakdown.total, 4) << "\n"
      << "  interest term (sum SI): "
      << FormatDouble(breakdown.interest_total, 4) << "\n"
      << "  degree term   (sum D) : "
      << FormatDouble(breakdown.degree_total, 4) << "\n";
  return 0;
}

// ---- describe ----------------------------------------------------------------

int CmdDescribe(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("igepa describe", "print instance statistics");
  parser.AddString("in", "", "instance CSV path (required)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty()) {
    return Fail(err, Status::InvalidArgument("--in is required"));
  }
  auto instance = io::ReadInstanceCsv(parser.GetString("in"));
  if (!instance.ok()) return Fail(err, instance.status());
  out << exp::DescribeInstance(*instance) << "\n";
  // Bid-size histogram: a quick shape check for generated datasets.
  std::map<size_t, int32_t> histogram;
  for (core::UserId u = 0; u < instance->num_users(); ++u) {
    ++histogram[instance->bids(u).size()];
  }
  out << "bid-set sizes:";
  for (const auto& [size, count] : histogram) {
    out << " " << size << ":" << count;
  }
  out << "\n";
  return 0;
}

// ---- replay ----------------------------------------------------------------

int CmdReplay(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  ArgParser parser("igepa replay",
                   "stream an InstanceDelta sequence through the incremental "
                   "arrangement engine and report per-tick latency and "
                   "objective drift vs a cold re-solve");
  parser.AddString("in", "",
                   "instance CSV path (omit to generate a synthetic instance)");
  parser.AddString("deltas", "",
                   "delta stream CSV path (omit to generate a synthetic "
                   "stream)");
  parser.AddInt("ticks", 10, "number of delta ticks to replay");
  parser.AddInt("threads", 0,
                "worker threads for the solves (0 = hardware concurrency; "
                "results are identical for every value)");
  parser.AddInt("seed", 20190408, "master seed (generation + rounding)");
  parser.AddInt("events", 60, "synthetic instance: number of events");
  parser.AddInt("users", 400, "synthetic instance: number of users");
  parser.AddInt("updates-per-tick", 4,
                "synthetic stream: users touched per tick");
  parser.AddInt("event-updates-per-tick", 1,
                "synthetic stream: event capacity changes per tick");
  parser.AddDouble("p-cancel", 0.2,
                   "synthetic stream: probability a touched user cancels");
  parser.AddDouble("alpha", 1.0, "LP-packing sampling scale in (0,1]");
  parser.AddDouble("compact-threshold", 0.25,
                   "compact the catalog when tombstoned columns exceed this "
                   "fraction");
  parser.AddInt("compact-min-dead", 256,
                "minimum tombstoned columns before compaction triggers");
  parser.AddDouble("check-tolerance", -1.0,
                   "exit non-zero when max LP drift vs cold exceeds this "
                   "(< 0: report only)");
  parser.AddBool("no-cold", false,
                 "skip the per-tick cold reference (pure warm latency run)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetInt("ticks") <= 0) {
    return Fail(err, Status::InvalidArgument("--ticks must be > 0"));
  }
  if (parser.GetInt("threads") < 0) {
    return Fail(err, Status::InvalidArgument("--threads must be >= 0"));
  }
  if (parser.GetBool("no-cold") && parser.GetDouble("check-tolerance") >= 0) {
    return Fail(err, Status::InvalidArgument(
                         "--check-tolerance needs the cold reference "
                         "(drop --no-cold)"));
  }

  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  Result<core::Instance> instance = Status::Internal("unset");
  if (!parser.GetString("in").empty()) {
    instance = io::ReadInstanceCsv(parser.GetString("in"));
  } else {
    gen::SyntheticConfig config;
    config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    instance = gen::GenerateSynthetic(config, &rng);
  }
  if (!instance.ok()) return Fail(err, instance.status());

  std::vector<core::InstanceDelta> stream;
  if (!parser.GetString("deltas").empty()) {
    auto loaded = io::ReadDeltaStreamCsv(parser.GetString("deltas"));
    if (!loaded.ok()) return Fail(err, loaded.status());
    stream = std::move(*loaded);
    if (static_cast<int64_t>(stream.size()) > parser.GetInt("ticks") &&
        parser.Provided("ticks")) {
      stream.resize(static_cast<size_t>(parser.GetInt("ticks")));
    }
  } else {
    gen::DeltaStreamConfig config;
    config.num_ticks = static_cast<int32_t>(parser.GetInt("ticks"));
    config.user_updates_per_tick =
        static_cast<int32_t>(parser.GetInt("updates-per-tick"));
    config.event_updates_per_tick =
        static_cast<int32_t>(parser.GetInt("event-updates-per-tick"));
    config.p_cancel = parser.GetDouble("p-cancel");
    stream = gen::GenerateDeltaStream(*instance, config, &rng);
  }

  exp::ReplayOptions options;
  options.num_threads = static_cast<int32_t>(parser.GetInt("threads"));
  options.alpha = parser.GetDouble("alpha");
  options.compact_tombstone_fraction = parser.GetDouble("compact-threshold");
  options.compact_min_dead_columns =
      static_cast<int32_t>(parser.GetInt("compact-min-dead"));
  options.seed = static_cast<uint64_t>(parser.GetInt("seed")) ^
                 0x9E3779B97F4A7C15ULL;
  options.compare_cold = !parser.GetBool("no-cold");

  auto report = exp::RunReplay(*instance, stream, options);
  if (!report.ok()) return Fail(err, report.status());

  out << "replay: " << exp::DescribeInstance(*instance) << ", "
      << stream.size() << " ticks\n";
  out << "tick  users  events  cmpct  live-cols  warm-ms  cold-ms  "
         "warm-lp  cold-lp  drift\n";
  for (const exp::ReplayTick& row : report->ticks) {
    out << row.tick << "  " << row.touched_users << "  "
        << row.event_updates << "  " << (row.compacted ? "yes" : "no") << "  "
        << row.live_columns << "  "
        << FormatDouble(row.warm_seconds * 1e3, 2) << "  "
        << (options.compare_cold ? FormatDouble(row.cold_seconds * 1e3, 2)
                                 : std::string("-"))
        << "  " << FormatDouble(row.warm_lp_objective, 4) << "  "
        << (options.compare_cold ? FormatDouble(row.cold_lp_objective, 4)
                                 : std::string("-"))
        << "  "
        << (options.compare_cold ? FormatDouble(row.lp_drift, 6)
                                 : std::string("-"))
        << "\n";
  }
  out << "total warm " << FormatDouble(report->total_warm_seconds * 1e3, 1)
      << " ms";
  if (options.compare_cold) {
    out << ", total cold " << FormatDouble(report->total_cold_seconds * 1e3, 1)
        << " ms (speedup "
        << FormatDouble(report->total_warm_seconds > 0
                            ? report->total_cold_seconds /
                                  report->total_warm_seconds
                            : 0.0,
                        2)
        << "x), max LP drift " << FormatDouble(report->max_lp_drift, 6);
  }
  out << "\n";

  const double tolerance = parser.GetDouble("check-tolerance");
  if (tolerance >= 0.0) {
    if (report->max_lp_drift > tolerance) {
      err << "replay check FAILED: max LP drift "
          << FormatDouble(report->max_lp_drift, 6) << " > tolerance "
          << FormatDouble(tolerance, 6) << "\n";
      return 2;
    }
    out << "replay check OK: max LP drift within "
        << FormatDouble(tolerance, 6) << "\n";
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << kTopUsage;
    return args.empty() ? 1 : 0;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "generate") return CmdGenerate(rest, out, err);
  if (command == "solve") return CmdSolve(rest, out, err);
  if (command == "evaluate") return CmdEvaluate(rest, out, err);
  if (command == "describe") return CmdDescribe(rest, out, err);
  if (command == "replay") return CmdReplay(rest, out, err);
  err << "unknown command '" << command << "'\n" << kTopUsage;
  return 1;
}

}  // namespace cli
}  // namespace igepa
