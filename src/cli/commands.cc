#include "cli/commands.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <thread>

#include "algo/baselines.h"
#include "algo/online.h"
#include "core/instance_delta.h"
#include "core/lp_packing.h"
#include "core/sharded_solver.h"
#include "exp/load_test.h"
#include "exp/replay.h"
#include "exp/report.h"
#include "exp/serve_driver.h"
#include "gen/arrival_process.h"
#include "gen/delta_stream.h"
#include "gen/meetup_sim.h"
#include "gen/streaming_gen.h"
#include "gen/synthetic.h"
#include "io/binary_instance.h"
#include "io/delta_io.h"
#include "io/instance_io.h"
#include "serve/arrangement_service.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace igepa {
namespace cli {
namespace {

int Fail(std::ostream& err, const Status& status) {
  err << "error: " << status.ToString() << "\n";
  return 1;
}

constexpr char kKernelHelp[] =
    "utility kernel scoring w(u,S): interaction_interest | interest_only | "
    "cohesion (default: whatever the instance file pins; v1 files pin the "
    "paper's interaction_interest)";

/// Resolves --kernel and installs it on the instance (before any catalog is
/// built, so every downstream weight comes from the requested objective). An
/// empty flag keeps the instance's kernel — for v2 CSVs the one the file
/// pins, otherwise the default.
Status ApplyKernelFlag(const ArgParser& parser, core::Instance* instance) {
  const std::string& id = parser.GetString("kernel");
  if (id.empty()) return Status::OK();
  auto kernel = core::MakeUtilityKernel(id);
  IGEPA_RETURN_IF_ERROR(kernel.status());
  instance->set_kernel(std::move(*kernel));
  return Status::OK();
}

/// Loads an instance from either on-disk format, auto-detected by magic:
/// `igepa-bin,3` files open through the mmap view (FORMATS.md §8) and
/// materialize without ever allocating a dense interest table; anything else
/// goes through the CSV reader. Every instance-consuming subcommand routes
/// here, so binary instances work wherever CSV ones do.
Result<core::Instance> LoadInstanceAuto(const std::string& path) {
  if (io::SniffBinaryInstance(path)) {
    IGEPA_ASSIGN_OR_RETURN(io::InstanceView view, io::InstanceView::Open(path));
    return io::MaterializeInstance(
        std::make_shared<const io::InstanceView>(std::move(view)));
  }
  return io::ReadInstanceCsv(path);
}

// ---- generate --------------------------------------------------------------

int CmdGenerate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("igepa generate", "sample an IGEPA instance to CSV");
  parser.AddString("kind", "synthetic", "generator: synthetic | meetup");
  parser.AddString("out", "", "output path (required)");
  parser.AddBool("binary", false,
                 "stream an igepa-bin,3 binary instance (FORMATS.md §8) "
                 "instead of CSV — bounded memory at any |U| (synthetic "
                 "only)");
  parser.AddInt("seed", 20190408, "random seed");
  parser.AddInt("events", 200, "number of events |V|");
  parser.AddInt("users", 2000, "number of users |U|");
  parser.AddInt("max-cv", 50, "maximum event capacity (synthetic)");
  parser.AddInt("max-cu", 4, "maximum user capacity (synthetic)");
  parser.AddDouble("pcf", 0.3, "event conflict probability (synthetic)");
  parser.AddDouble("pdeg", 0.5, "friendship probability (synthetic)");
  parser.AddDouble("beta", 0.5, "interest/interaction balance");
  parser.AddString("kernel", "", kKernelHelp);
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("out").empty()) {
    return Fail(err, Status::InvalidArgument("--out is required"));
  }

  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  Result<core::Instance> instance = Status::Internal("unset");
  const std::string& kind = parser.GetString("kind");
  if (kind == "synthetic") {
    gen::SyntheticConfig config;
    config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    config.max_event_capacity = static_cast<int32_t>(parser.GetInt("max-cv"));
    config.max_user_capacity = static_cast<int32_t>(parser.GetInt("max-cu"));
    config.p_conflict = parser.GetDouble("pcf");
    config.p_friend = parser.GetDouble("pdeg");
    config.beta = parser.GetDouble("beta");
    if (parser.GetBool("binary")) {
      // The streaming path: the instance is never held in memory, so this is
      // the only route that reaches |U| in the millions.
      const std::string kernel_id =
          parser.GetString("kernel").empty()
              ? core::DefaultUtilityKernel()->id()
              : parser.GetString("kernel");
      auto written = gen::GenerateSyntheticBinary(config, &rng, kernel_id,
                                                  parser.GetString("out"));
      if (!written.ok()) return Fail(err, written.status());
      out << "wrote " << parser.GetString("out") << ": igepa-bin,3, "
          << config.num_events << " events, " << config.num_users
          << " users, " << written->num_bids << " bids, "
          << written->num_conflicts << " conflicts [" << kernel_id << "]\n";
      return 0;
    }
    instance = gen::GenerateSynthetic(config, &rng);
  } else if (kind == "meetup") {
    if (parser.GetBool("binary")) {
      return Fail(err, Status::InvalidArgument(
                           "--binary supports --kind synthetic only"));
    }
    gen::MeetupConfig config;
    if (parser.Provided("events")) {
      config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    }
    if (parser.Provided("users")) {
      config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    }
    config.beta = parser.GetDouble("beta");
    instance = gen::GenerateMeetup(config, &rng);
  } else {
    return Fail(err, Status::InvalidArgument("unknown --kind '" + kind +
                                             "' (synthetic | meetup)"));
  }
  if (!instance.ok()) return Fail(err, instance.status());
  // A non-default kernel makes the written file format v2 (the kernel record
  // pins the objective for every later solve/replay/serve of the file).
  if (Status s = ApplyKernelFlag(parser, &*instance); !s.ok()) {
    return Fail(err, s);
  }
  if (Status s = io::WriteInstanceCsv(*instance, parser.GetString("out"));
      !s.ok()) {
    return Fail(err, s);
  }
  out << "wrote " << parser.GetString("out") << ": "
      << exp::DescribeInstance(*instance) << "\n";
  return 0;
}

// ---- solve -----------------------------------------------------------------

int CmdSolve(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  ArgParser parser("igepa solve", "arrange an instance CSV");
  parser.AddString("in", "", "instance path, CSV or igepa-bin,3 (required)");
  parser.AddString("out", "", "optional arrangement CSV output path");
  parser.AddString("algorithm", "lp-packing",
                   "lp-packing | gg | gbs | random-u | random-v | online");
  parser.AddDouble("alpha", 1.0, "LP-packing sampling scale in (0,1]");
  parser.AddInt("seed", 42, "random seed for randomized algorithms");
  parser.AddInt("threads", 0,
                "worker threads for enumeration, LP solve and rounding "
                "(0 = hardware concurrency; results are identical for every "
                "value)");
  parser.AddBool("sharded", false,
                 "two-level sharded solve (lp-packing only): per-shard "
                 "catalogs + warm duals, coordinated event prices, one "
                 "global legalize sweep — the 100k+/1M-user path");
  parser.AddInt("shards", 0,
                "sharded solve: shard count (0 = derive from shard width; "
                "results are identical for every thread count at a fixed "
                "shard count)");
  parser.AddInt("memory-budget-mb", 0,
                "sharded solve: catalog residency budget in MB (0 = keep "
                "all shard catalogs in RAM). When set, catalogs spill to a "
                "per-run igepa-cat,1 file after level 1 and level 2 runs on "
                "mmapped views under an LRU manager, bounding peak catalog "
                "RSS by (budget + one shard); results are byte-identical "
                "for any budget");
  parser.AddString("kernel", "", kKernelHelp);
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty()) {
    return Fail(err, Status::InvalidArgument("--in is required"));
  }
  if (parser.GetInt("threads") < 0) {
    return Fail(err, Status::InvalidArgument("--threads must be >= 0"));
  }
  if (parser.GetInt("shards") < 0) {
    return Fail(err, Status::InvalidArgument("--shards must be >= 0"));
  }
  auto instance = LoadInstanceAuto(parser.GetString("in"));
  if (!instance.ok()) return Fail(err, instance.status());
  if (Status s = ApplyKernelFlag(parser, &*instance); !s.ok()) {
    return Fail(err, s);
  }

  const auto threads = static_cast<int32_t>(parser.GetInt("threads"));
  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  const std::string& algorithm = parser.GetString("algorithm");
  if (parser.GetBool("sharded") && algorithm != "lp-packing") {
    return Fail(err, Status::InvalidArgument(
                         "--sharded requires --algorithm lp-packing"));
  }
  const int64_t memory_budget_mb = parser.GetInt("memory-budget-mb");
  if (memory_budget_mb < 0) {
    return Fail(err, Status::InvalidArgument(
                         "--memory-budget-mb must be >= 0"));
  }
  if (memory_budget_mb > 0 && !parser.GetBool("sharded")) {
    return Fail(err, Status::InvalidArgument(
                         "--memory-budget-mb requires --sharded"));
  }
  Stopwatch watch;
  Result<core::Arrangement> arrangement = Status::Internal("unset");
  core::ShardedSolveStats sharded_stats;
  if (algorithm == "lp-packing" && parser.GetBool("sharded")) {
    core::ShardedSolveOptions options;
    options.alpha = parser.GetDouble("alpha");
    options.num_shards = static_cast<int32_t>(parser.GetInt("shards"));
    options.num_threads = threads;
    options.memory_budget_bytes =
        static_cast<uint64_t>(memory_budget_mb) << 20;
    arrangement =
        core::ShardedSolve(*instance, &rng, options, &sharded_stats);
  } else if (algorithm == "lp-packing") {
    core::LpPackingOptions options;
    options.alpha = parser.GetDouble("alpha");
    options.num_threads = threads;
    options.structured.num_threads = threads;
    options.admissible.num_threads = threads;
    arrangement = core::LpPacking(*instance, &rng, options);
  } else if (algorithm == "gg") {
    arrangement = algo::GreedyGg(*instance);
  } else if (algorithm == "gbs") {
    core::AdmissibleOptions admissible;
    admissible.num_threads = threads;
    const core::AdmissibleCatalog catalog =
        core::AdmissibleCatalog::Build(*instance, admissible);
    arrangement = algo::GreedyBestSet(*instance, catalog);
  } else if (algorithm == "random-u") {
    arrangement = algo::RandomU(*instance, &rng);
  } else if (algorithm == "random-v") {
    arrangement = algo::RandomV(*instance, &rng);
  } else if (algorithm == "online") {
    arrangement = algo::OnlineArrangeRandomOrder(*instance, &rng, {});
  } else {
    return Fail(err, Status::InvalidArgument("unknown --algorithm '" +
                                             algorithm + "'"));
  }
  if (!arrangement.ok()) return Fail(err, arrangement.status());
  const double seconds = watch.ElapsedSeconds();
  if (Status s = arrangement->CheckFeasible(*instance); !s.ok()) {
    return Fail(err, s);
  }
  // KernelUtility is the active kernel's SET objective — the quantity the
  // solve actually optimized, including non-pair-decomposable bonuses
  // (cohesion). Under the default kernel it equals the Definition-7
  // breakdown total; the interest/degree terms stay the Definition-7 split.
  const auto breakdown = arrangement->Breakdown(*instance);
  out << algorithm << " [" << instance->kernel().id() << "]: utility "
      << FormatDouble(arrangement->KernelUtility(*instance), 4)
      << " (interest "
      << FormatDouble(breakdown.interest_total, 4) << ", degree "
      << FormatDouble(breakdown.degree_total, 4) << ") over "
      << arrangement->size() << " pairs in "
      << FormatDouble(seconds * 1e3, 1) << " ms\n";
  if (parser.GetBool("sharded")) {
    out << "sharded: " << sharded_stats.num_shards << " shards, "
        << sharded_stats.num_columns << " columns, lp objective "
        << FormatDouble(sharded_stats.lp_objective, 4) << " (ub "
        << FormatDouble(sharded_stats.lp_upper_bound, 4) << ", gap "
        << FormatDouble(sharded_stats.gap, 4) << "), "
        << sharded_stats.coordination_iterations
        << " coordination iterations, " << sharded_stats.pairs_repaired
        << " pairs repaired\n";
    if (memory_budget_mb > 0) {
      out << "residency: spilled " << sharded_stats.spill_bytes
          << " catalog bytes (largest shard "
          << sharded_stats.shard_footprint_bytes << "), "
          << sharded_stats.page_ins << " page-ins, "
          << sharded_stats.evictions << " evictions, peak "
          << sharded_stats.peak_resident_shards << " resident shards ("
          << sharded_stats.peak_resident_bytes << " bytes)\n";
    }
  }
  if (!parser.GetString("out").empty()) {
    if (Status s =
            io::WriteArrangementCsv(*arrangement, parser.GetString("out"));
        !s.ok()) {
      return Fail(err, s);
    }
    out << "wrote " << parser.GetString("out") << "\n";
  }
  return 0;
}

// ---- evaluate ---------------------------------------------------------------

int CmdEvaluate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("igepa evaluate",
                   "check an arrangement against an instance");
  parser.AddString("in", "", "instance path, CSV or igepa-bin,3 (required)");
  parser.AddString("arrangement", "", "arrangement CSV path (required)");
  parser.AddString("kernel", "", kKernelHelp);
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty() ||
      parser.GetString("arrangement").empty()) {
    return Fail(err,
                Status::InvalidArgument("--in and --arrangement are required"));
  }
  auto instance = LoadInstanceAuto(parser.GetString("in"));
  if (!instance.ok()) return Fail(err, instance.status());
  if (Status s = ApplyKernelFlag(parser, &*instance); !s.ok()) {
    return Fail(err, s);
  }
  auto arrangement = io::ReadArrangementCsv(parser.GetString("arrangement"));
  if (!arrangement.ok()) return Fail(err, arrangement.status());
  const Status feasible = arrangement->CheckFeasible(*instance);
  if (!feasible.ok()) {
    out << "INFEASIBLE: " << feasible.message() << "\n";
    return 2;
  }
  const auto breakdown = arrangement->Breakdown(*instance);
  out << "feasible: yes\n"
      << "pairs: " << arrangement->size() << "\n"
      << "utility: " << FormatDouble(arrangement->KernelUtility(*instance), 4)
      << "\n"
      << "  interest term (sum SI): "
      << FormatDouble(breakdown.interest_total, 4) << "\n"
      << "  degree term   (sum D) : "
      << FormatDouble(breakdown.degree_total, 4) << "\n";
  return 0;
}

// ---- describe ----------------------------------------------------------------

int CmdDescribe(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("igepa describe", "print instance statistics");
  parser.AddString("in", "", "instance path, CSV or igepa-bin,3 (required)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty()) {
    return Fail(err, Status::InvalidArgument("--in is required"));
  }
  auto instance = LoadInstanceAuto(parser.GetString("in"));
  if (!instance.ok()) return Fail(err, instance.status());
  out << exp::DescribeInstance(*instance) << "\n";
  // Bid-size histogram: a quick shape check for generated datasets.
  std::map<size_t, int32_t> histogram;
  for (core::UserId u = 0; u < instance->num_users(); ++u) {
    ++histogram[instance->bids(u).size()];
  }
  out << "bid-set sizes:";
  for (const auto& [size, count] : histogram) {
    out << " " << size << ":" << count;
  }
  out << "\n";
  return 0;
}

// ---- convert ---------------------------------------------------------------

int CmdConvert(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  ArgParser parser("igepa convert",
                   "convert an instance between CSV (FORMATS.md §1) and the "
                   "igepa-bin,3 memory-mapped binary format (§8); direction "
                   "is auto-detected from the input's magic");
  parser.AddString("in", "", "input instance path (required)");
  parser.AddString("out", "", "output instance path (required)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetString("in").empty() || parser.GetString("out").empty()) {
    return Fail(err, Status::InvalidArgument("--in and --out are required"));
  }
  const std::string& in_path = parser.GetString("in");
  const std::string& out_path = parser.GetString("out");
  const bool to_csv = io::SniffBinaryInstance(in_path);
  if (Status s = to_csv ? io::ConvertBinaryToCsv(in_path, out_path)
                        : io::ConvertCsvToBinary(in_path, out_path);
      !s.ok()) {
    return Fail(err, s);
  }
  out << "converted " << in_path << " -> " << out_path << " ("
      << (to_csv ? "binary -> csv" : "csv -> binary") << ")\n";
  return 0;
}

// ---- replay ----------------------------------------------------------------

int CmdReplay(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  ArgParser parser("igepa replay",
                   "stream an InstanceDelta sequence through the incremental "
                   "arrangement engine and report per-tick latency and "
                   "objective drift vs a cold re-solve");
  parser.AddString("in", "",
                   "instance CSV path (omit to generate a synthetic instance)");
  parser.AddString("deltas", "",
                   "delta stream CSV path (omit to generate a synthetic "
                   "stream)");
  parser.AddInt("ticks", 10, "number of delta ticks to replay");
  parser.AddInt("threads", 0,
                "worker threads for the solves (0 = hardware concurrency; "
                "results are identical for every value)");
  parser.AddInt("seed", 20190408, "master seed (generation + rounding)");
  parser.AddInt("events", 60, "synthetic instance: number of events");
  parser.AddInt("users", 400, "synthetic instance: number of users");
  parser.AddInt("updates-per-tick", 4,
                "synthetic stream: users touched per tick");
  parser.AddInt("event-updates-per-tick", 1,
                "synthetic stream: event capacity changes per tick");
  parser.AddInt("edge-updates-per-tick", 0,
                "synthetic stream: friendship-edge mutations per tick "
                "(weight-only deltas, re-scored through the kernel)");
  parser.AddInt("interest-updates-per-tick", 0,
                "synthetic stream: interest-drift mutations per tick "
                "(weight-only deltas, re-scored through the kernel)");
  parser.AddDouble("p-cancel", 0.2,
                   "synthetic stream: probability a touched user cancels");
  parser.AddDouble("alpha", 1.0, "LP-packing sampling scale in (0,1]");
  parser.AddDouble("compact-threshold", 0.25,
                   "compact the catalog when tombstoned columns exceed this "
                   "fraction");
  parser.AddInt("compact-min-dead", 256,
                "minimum tombstoned columns before compaction triggers");
  parser.AddDouble("check-tolerance", -1.0,
                   "exit non-zero when max LP drift vs cold exceeds this "
                   "(< 0: report only)");
  parser.AddString("kernel", "", kKernelHelp);
  parser.AddBool("no-cold", false,
                 "skip the per-tick cold reference (pure warm latency run)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetInt("ticks") <= 0) {
    return Fail(err, Status::InvalidArgument("--ticks must be > 0"));
  }
  if (parser.GetInt("threads") < 0) {
    return Fail(err, Status::InvalidArgument("--threads must be >= 0"));
  }
  if (parser.GetBool("no-cold") && parser.GetDouble("check-tolerance") >= 0) {
    return Fail(err, Status::InvalidArgument(
                         "--check-tolerance needs the cold reference "
                         "(drop --no-cold)"));
  }

  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  Result<core::Instance> instance = Status::Internal("unset");
  if (!parser.GetString("in").empty()) {
    instance = io::ReadInstanceCsv(parser.GetString("in"));
  } else {
    gen::SyntheticConfig config;
    config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    instance = gen::GenerateSynthetic(config, &rng);
  }
  if (!instance.ok()) return Fail(err, instance.status());
  if (Status s = ApplyKernelFlag(parser, &*instance); !s.ok()) {
    return Fail(err, s);
  }

  std::vector<core::InstanceDelta> stream;
  if (!parser.GetString("deltas").empty()) {
    auto loaded = io::ReadDeltaStreamCsv(parser.GetString("deltas"));
    if (!loaded.ok()) return Fail(err, loaded.status());
    stream = std::move(*loaded);
    if (static_cast<int64_t>(stream.size()) > parser.GetInt("ticks") &&
        parser.Provided("ticks")) {
      stream.resize(static_cast<size_t>(parser.GetInt("ticks")));
    }
  } else {
    gen::DeltaStreamConfig config;
    config.num_ticks = static_cast<int32_t>(parser.GetInt("ticks"));
    config.user_updates_per_tick =
        static_cast<int32_t>(parser.GetInt("updates-per-tick"));
    config.event_updates_per_tick =
        static_cast<int32_t>(parser.GetInt("event-updates-per-tick"));
    config.graph_updates_per_tick =
        static_cast<int32_t>(parser.GetInt("edge-updates-per-tick"));
    config.interest_updates_per_tick =
        static_cast<int32_t>(parser.GetInt("interest-updates-per-tick"));
    config.p_cancel = parser.GetDouble("p-cancel");
    stream = gen::GenerateDeltaStream(*instance, config, &rng);
  }

  exp::ReplayOptions options;
  options.num_threads = static_cast<int32_t>(parser.GetInt("threads"));
  options.alpha = parser.GetDouble("alpha");
  options.compact_tombstone_fraction = parser.GetDouble("compact-threshold");
  options.compact_min_dead_columns =
      static_cast<int32_t>(parser.GetInt("compact-min-dead"));
  options.seed = static_cast<uint64_t>(parser.GetInt("seed")) ^
                 0x9E3779B97F4A7C15ULL;
  options.compare_cold = !parser.GetBool("no-cold");

  auto report = exp::RunReplay(*instance, stream, options);
  if (!report.ok()) return Fail(err, report.status());

  out << "replay: " << exp::DescribeInstance(*instance) << ", "
      << stream.size() << " ticks\n";
  out << "tick  users  events  cmpct  live-cols  warm-ms  cold-ms  "
         "warm-lp  cold-lp  drift\n";
  for (const exp::ReplayTick& row : report->ticks) {
    out << row.tick << "  " << row.touched_users << "  "
        << row.event_updates << "  " << (row.compacted ? "yes" : "no") << "  "
        << row.live_columns << "  "
        << FormatDouble(row.warm_seconds * 1e3, 2) << "  "
        << (options.compare_cold ? FormatDouble(row.cold_seconds * 1e3, 2)
                                 : std::string("-"))
        << "  " << FormatDouble(row.warm_lp_objective, 4) << "  "
        << (options.compare_cold ? FormatDouble(row.cold_lp_objective, 4)
                                 : std::string("-"))
        << "  "
        << (options.compare_cold ? FormatDouble(row.lp_drift, 6)
                                 : std::string("-"))
        << "\n";
  }
  out << "total warm " << FormatDouble(report->total_warm_seconds * 1e3, 1)
      << " ms";
  if (options.compare_cold) {
    out << ", total cold " << FormatDouble(report->total_cold_seconds * 1e3, 1)
        << " ms (speedup "
        << FormatDouble(report->total_warm_seconds > 0
                            ? report->total_cold_seconds /
                                  report->total_warm_seconds
                            : 0.0,
                        2)
        << "x), max LP drift " << FormatDouble(report->max_lp_drift, 6);
  }
  out << "\n";

  const double tolerance = parser.GetDouble("check-tolerance");
  if (tolerance >= 0.0) {
    if (report->max_lp_drift > tolerance) {
      err << "replay check FAILED: max LP drift "
          << FormatDouble(report->max_lp_drift, 6) << " > tolerance "
          << FormatDouble(tolerance, 6) << "\n";
      return 2;
    }
    out << "replay check OK: max LP drift within "
        << FormatDouble(tolerance, 6) << "\n";
  }
  return 0;
}

// ---- serve -----------------------------------------------------------------

void PrintEpochMetrics(std::ostream& out, const serve::EpochMetrics& row) {
  out << row.epoch << "  " << row.snapshot_version << "  "
      << row.deltas_coalesced << "  " << row.touched_users << "  "
      << row.event_updates << "  " << (row.compacted ? "yes" : "no") << "  "
      << row.live_columns << "  " << FormatDouble(row.epoch_seconds * 1e3, 2)
      << "  " << FormatDouble(row.lp_objective, 4) << "  "
      << FormatDouble(row.utility, 4) << "\n";
}

void PrintServiceStats(std::ostream& out, const serve::ServiceStats& stats) {
  const double throughput =
      stats.total_epoch_seconds > 0
          ? static_cast<double>(stats.deltas_applied) /
                stats.total_epoch_seconds
          : 0.0;
  out << "served " << stats.deltas_applied << " deltas in " << stats.epochs
      << " epochs (" << stats.deltas_rejected << " rejected, "
      << stats.deltas_pending << " pending), "
      << FormatDouble(throughput, 1) << " deltas/sec of epoch time\n"
      << "epoch ms p50/p99 " << FormatDouble(stats.p50_epoch_seconds * 1e3, 2)
      << "/" << FormatDouble(stats.p99_epoch_seconds * 1e3, 2)
      << ", publish-latency ms p50/p99 "
      << FormatDouble(stats.p50_publish_latency_seconds * 1e3, 2) << "/"
      << FormatDouble(stats.p99_publish_latency_seconds * 1e3, 2) << "\n"
      << "stage ms p50/p99 ingest "
      << FormatDouble(stats.p50_ingest_seconds * 1e3, 2) << "/"
      << FormatDouble(stats.p99_ingest_seconds * 1e3, 2) << ", solve "
      << FormatDouble(stats.p50_solve_seconds * 1e3, 2) << "/"
      << FormatDouble(stats.p99_solve_seconds * 1e3, 2) << ", commit "
      << FormatDouble(stats.p50_commit_seconds * 1e3, 2) << "/"
      << FormatDouble(stats.p99_commit_seconds * 1e3, 2)
      << " (pipeline depth " << stats.pipeline_depth << ", queue peaks "
      << stats.engine_queue_peak << "/" << stats.commit_queue_peak
      << ", ingest stalls " << stats.ingest_stalls << ")\n"
      << "snapshot v" << stats.snapshot_version << ": lp "
      << FormatDouble(stats.lp_objective, 4) << ", utility "
      << FormatDouble(stats.utility, 4) << "\n";
}

int CmdServe(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  ArgParser parser(
      "igepa serve",
      "run the long-running batched arrangement service over a timestamped "
      "arrival stream and report per-epoch metrics");
  parser.AddString("in", "",
                   "instance CSV path (omit to generate a synthetic instance)");
  parser.AddString("arrivals", "",
                   "arrival stream CSV path, '-' = stdin (omit to sample a "
                   "Poisson stream)");
  parser.AddInt("count", 200, "synthetic stream: number of arrivals");
  parser.AddDouble("rate", 200.0,
                   "synthetic stream: Poisson arrival rate "
                   "(mutations per second of stream time)");
  parser.AddDouble("p-cancel", 0.15,
                   "synthetic stream: cancellation share of the mutation mix");
  parser.AddDouble("p-event", 0.15,
                   "synthetic stream: event-capacity share of the mutation "
                   "mix (the rest re-registers)");
  parser.AddDouble("p-edge", 0.0,
                   "synthetic stream: friendship-edge share of the mutation "
                   "mix (weight-only deltas)");
  parser.AddDouble("p-interest", 0.0,
                   "synthetic stream: interest-drift share of the mutation "
                   "mix (weight-only deltas)");
  parser.AddInt("events", 60, "synthetic instance: number of events");
  parser.AddInt("users", 400, "synthetic instance: number of users");
  parser.AddDouble("epoch-ms", 100.0,
                   "epoch window: stream time per epoch (deterministic mode) "
                   "or wall-clock cadence (--realtime)");
  parser.AddInt("max-batch", 256, "most deltas coalesced into one epoch");
  parser.AddInt("queue-capacity", 1024,
                "pending deltas beyond this are rejected (backpressure)");
  parser.AddInt("pipeline-depth", 1,
                "background epoch pipelining: 1 = sequential epochs, >= 2 "
                "overlaps coalesce+WAL, solve and publish on stage threads "
                "(bit-identical snapshots for the same admitted batches)");
  parser.AddBool("realtime", false,
                 "drive the background epoch loop in wall-clock time, "
                 "replaying arrival gaps scaled by --speed (default: "
                 "deterministic virtual time)");
  parser.AddDouble("speed", 50.0, "realtime: replay speedup over stream time");
  parser.AddInt("threads", 0,
                "worker threads for the solves (0 = hardware concurrency; "
                "results are identical for every value)");
  parser.AddInt("seed", 20190408, "master seed (generation + service RNG)");
  parser.AddDouble("alpha", 1.0, "LP-packing sampling scale in (0,1]");
  parser.AddString("kernel", "", kKernelHelp);
  parser.AddString("sweep", "",
                   "instead of serving, run the throughput sweep over these "
                   "comma-separated epoch batch sizes (e.g. 1,16,256)");
  parser.AddBool("no-cold", false,
                 "sweep: skip the per-epoch cold-solve drift reference");
  parser.AddString("durable-dir", "",
                   "durable state directory (WAL + snapshot checkpoints); if "
                   "it already holds a snapshot the service RECOVERS from it "
                   "and resumes the arrival stream where the previous process "
                   "died, bit-identically");
  parser.AddInt("checkpoint-every", 16,
                "durable: snapshot cadence in completed epochs");
  parser.AddString("out-arrangement", "",
                   "write the final published arrangement to this CSV (the "
                   "crash-recovery gate diffs these byte-for-byte)");
  parser.AddBool("load-test", false,
                 "instead of serving a stream, run the open-loop Poisson "
                 "load harness against the background service (--rate, "
                 "--duration) and report throughput + latency percentiles");
  parser.AddDouble("duration", 10.0, "load test: arrival-phase seconds");
  parser.AddString("json", "",
                   "load test: also write the report as google-benchmark "
                   "JSON (tracked by scripts/bench_compare.py)");
  parser.AddBool("help", false, "show this help");
  if (Status s = parser.Parse(args); !s.ok()) return Fail(err, s);
  if (parser.GetBool("help")) {
    out << parser.Usage();
    return 0;
  }
  if (parser.GetInt("threads") < 0) {
    return Fail(err, Status::InvalidArgument("--threads must be >= 0"));
  }
  if (parser.GetInt("max-batch") < 1 || parser.GetInt("queue-capacity") < 1) {
    return Fail(err, Status::InvalidArgument(
                         "--max-batch and --queue-capacity must be >= 1"));
  }
  if (parser.GetInt("pipeline-depth") < 1) {
    return Fail(err, Status::InvalidArgument("--pipeline-depth must be >= 1"));
  }
  if (parser.GetDouble("epoch-ms") <= 0) {
    return Fail(err, Status::InvalidArgument("--epoch-ms must be > 0"));
  }

  Rng rng(static_cast<uint64_t>(parser.GetInt("seed")));
  Result<core::Instance> instance = Status::Internal("unset");
  if (!parser.GetString("in").empty()) {
    instance = io::ReadInstanceCsv(parser.GetString("in"));
  } else {
    gen::SyntheticConfig config;
    config.num_events = static_cast<int32_t>(parser.GetInt("events"));
    config.num_users = static_cast<int32_t>(parser.GetInt("users"));
    instance = gen::GenerateSynthetic(config, &rng);
  }
  if (!instance.ok()) return Fail(err, instance.status());
  if (Status s = ApplyKernelFlag(parser, &*instance); !s.ok()) {
    return Fail(err, s);
  }

  serve::ServeOptions options;
  options.num_threads = static_cast<int32_t>(parser.GetInt("threads"));
  options.max_batch = static_cast<int32_t>(parser.GetInt("max-batch"));
  options.queue_capacity =
      static_cast<int32_t>(parser.GetInt("queue-capacity"));
  options.epoch_ms = parser.GetDouble("epoch-ms");
  options.alpha = parser.GetDouble("alpha");
  options.seed = static_cast<uint64_t>(parser.GetInt("seed")) ^
                 0x9E3779B97F4A7C15ULL;
  options.durable_dir = parser.GetString("durable-dir");
  options.pipeline_depth =
      static_cast<int32_t>(parser.GetInt("pipeline-depth"));
  options.checkpoint_every =
      static_cast<int32_t>(parser.GetInt("checkpoint-every"));
  if (options.checkpoint_every < 1) {
    return Fail(err,
                Status::InvalidArgument("--checkpoint-every must be >= 1"));
  }

  // ---- Load-test mode: the exp:: open-loop Poisson harness. ---------------
  if (parser.GetBool("load-test")) {
    exp::LoadTestOptions load;
    load.duration_seconds = parser.GetDouble("duration");
    load.rate_per_second = parser.GetDouble("rate");
    // A stream of its own (decorrelated from the instance-generation draws).
    load.seed = static_cast<uint64_t>(parser.GetInt("seed")) ^
                0xC2B2AE3D27D4EB4FULL;
    load.arrivals.p_cancel = parser.GetDouble("p-cancel");
    load.arrivals.p_event_capacity = parser.GetDouble("p-event");
    load.arrivals.p_graph_edge = parser.GetDouble("p-edge");
    load.arrivals.p_interest_drift = parser.GetDouble("p-interest");
    load.arrivals.p_register = std::max(
        0.0, 1.0 - load.arrivals.p_cancel - load.arrivals.p_event_capacity -
                 load.arrivals.p_graph_edge - load.arrivals.p_interest_drift);
    load.serve = options;
    auto report = exp::RunLoadTest(*instance, load);
    if (!report.ok()) return Fail(err, report.status());
    out << "load test: " << exp::DescribeInstance(*instance) << ", "
        << FormatDouble(load.rate_per_second, 1) << "/s for "
        << FormatDouble(report->duration_seconds, 2) << " s (drained in "
        << FormatDouble(report->total_seconds, 2) << " s)\n";
    out << "arrivals " << report->arrivals_generated << ": "
        << report->deltas_submitted << " submitted, "
        << report->deltas_rejected << " rejected, " << report->deltas_applied
        << " applied in " << report->epochs << " epochs ("
        << FormatDouble(report->applied_per_second, 1) << " applied/s)\n";
    out << "queue depth max " << report->max_queue_depth << ", final "
        << report->final_queue_depth << "\n";
    out << "epoch ms p50/p99 "
        << FormatDouble(report->p50_epoch_seconds * 1e3, 2) << "/"
        << FormatDouble(report->p99_epoch_seconds * 1e3, 2)
        << ", publish-latency ms p50/p99 "
        << FormatDouble(report->p50_publish_latency_seconds * 1e3, 2) << "/"
        << FormatDouble(report->p99_publish_latency_seconds * 1e3, 2) << "\n";
    out << "stage ms p50/p99 ingest "
        << FormatDouble(report->p50_ingest_seconds * 1e3, 2) << "/"
        << FormatDouble(report->p99_ingest_seconds * 1e3, 2) << ", solve "
        << FormatDouble(report->p50_solve_seconds * 1e3, 2) << "/"
        << FormatDouble(report->p99_solve_seconds * 1e3, 2) << ", commit "
        << FormatDouble(report->p50_commit_seconds * 1e3, 2) << "/"
        << FormatDouble(report->p99_commit_seconds * 1e3, 2)
        << " (pipeline depth " << report->pipeline_depth << ", queue peaks "
        << report->engine_queue_peak << "/" << report->commit_queue_peak
        << ", ingest stalls " << report->ingest_stalls << ")\n";
    out << "final snapshot v" << report->snapshot_version << ": lp "
        << FormatDouble(report->final_lp_objective, 4) << ", utility "
        << FormatDouble(report->final_utility, 4) << "\n";
    if (!parser.GetString("json").empty()) {
      if (Status s = exp::WriteLoadTestJson(*report, load,
                                            parser.GetString("json"));
          !s.ok()) {
        return Fail(err, s);
      }
      out << "wrote " << parser.GetString("json") << "\n";
    }
    return 0;
  }

  std::vector<core::ArrivalEvent> arrivals;
  const std::string& arrivals_path = parser.GetString("arrivals");
  if (arrivals_path == "-") {
    auto loaded = io::ReadArrivalStreamCsv(std::cin, "<stdin>");
    if (!loaded.ok()) return Fail(err, loaded.status());
    arrivals = std::move(*loaded);
  } else if (!arrivals_path.empty()) {
    auto loaded = io::ReadArrivalStreamCsv(arrivals_path);
    if (!loaded.ok()) return Fail(err, loaded.status());
    arrivals = std::move(*loaded);
  } else {
    gen::ArrivalProcessConfig config;
    config.num_arrivals = static_cast<int32_t>(parser.GetInt("count"));
    config.rate_per_second = parser.GetDouble("rate");
    config.p_cancel = parser.GetDouble("p-cancel");
    config.p_event_capacity = parser.GetDouble("p-event");
    config.p_graph_edge = parser.GetDouble("p-edge");
    config.p_interest_drift = parser.GetDouble("p-interest");
    config.p_register =
        std::max(0.0, 1.0 - config.p_cancel - config.p_event_capacity -
                          config.p_graph_edge - config.p_interest_drift);
    arrivals = gen::GenerateArrivalProcess(*instance, config, &rng);
  }

  // ---- Sweep mode: the exp:: throughput driver. ---------------------------
  if (!parser.GetString("sweep").empty()) {
    exp::ServeSweepOptions sweep;
    sweep.batch_sizes.clear();
    for (const auto& tok : Split(parser.GetString("sweep"), ',')) {
      int64_t b = 0;
      if (!ParseInt(tok, &b) || b < 1) {
        return Fail(err, Status::InvalidArgument(
                             "--sweep: bad batch size '" + std::string(tok) +
                             "'"));
      }
      sweep.batch_sizes.push_back(static_cast<int32_t>(b));
    }
    sweep.num_threads = static_cast<int32_t>(parser.GetInt("threads"));
    sweep.alpha = parser.GetDouble("alpha");
    sweep.seed = static_cast<uint64_t>(parser.GetInt("seed")) ^
                 0x9E3779B97F4A7C15ULL;
    sweep.compare_cold = !parser.GetBool("no-cold");
    auto report = exp::RunServeSweep(*instance, arrivals, sweep);
    if (!report.ok()) return Fail(err, report.status());
    out << "serve sweep: " << exp::DescribeInstance(*instance) << ", "
        << arrivals.size() << " arrivals\n";
    out << "batch  epochs  deltas/s  epoch-ms-p50  epoch-ms-p99  "
           "publish-ms-p50  publish-ms-p99  max-drift\n";
    for (const exp::ServeSweepRow& row : report->rows) {
      out << row.max_batch << "  " << row.epochs << "  "
          << FormatDouble(row.deltas_per_second, 1) << "  "
          << FormatDouble(row.p50_epoch_seconds * 1e3, 2) << "  "
          << FormatDouble(row.p99_epoch_seconds * 1e3, 2) << "  "
          << FormatDouble(row.p50_publish_latency_seconds * 1e3, 2) << "  "
          << FormatDouble(row.p99_publish_latency_seconds * 1e3, 2) << "  "
          << (sweep.compare_cold ? FormatDouble(row.max_lp_drift, 6)
                                 : std::string("-"))
          << "\n";
    }
    return 0;
  }

  // ---- Service mode. ------------------------------------------------------
  // Durable dirs resume: a snapshot already there means a previous process
  // served part of this arrival stream and died — recover its exact state
  // and skip the arrivals it provably consumed (Stats().deltas_applied is
  // the arrival cursor: in the deterministic loop every epoch drains the
  // whole queue, so the applied count IS the index of the next arrival).
  std::unique_ptr<serve::ArrangementService> service;
  size_t resume_at = 0;
  if (!options.durable_dir.empty()) {
    auto recovered = serve::ArrangementService::Recover(options);
    if (recovered.ok()) {
      service = std::move(*recovered);
      resume_at = std::min(
          arrivals.size(),
          static_cast<size_t>(service->Stats().deltas_applied));
      out << "recovered from " << options.durable_dir << ": snapshot v"
          << service->Stats().snapshot_version << ", resuming at arrival "
          << resume_at << "/" << arrivals.size() << "\n";
    } else if (recovered.status().code() != StatusCode::kNotFound) {
      return Fail(err, recovered.status());
    }
  }
  if (service == nullptr) {
    auto created = serve::ArrangementService::Create(*instance, options);
    if (!created.ok()) return Fail(err, created.status());
    service = std::move(*created);
  }

  out << "serve: " << exp::DescribeInstance(*instance) << ", "
      << arrivals.size() << " arrivals, max-batch " << options.max_batch
      << ", epoch window " << FormatDouble(options.epoch_ms, 1) << " ms ("
      << (parser.GetBool("realtime") ? "realtime" : "virtual time") << ")\n";
  out << "epoch  version  deltas  users  events  cmpct  live-cols  ms  lp  "
         "utility\n";

  if (parser.GetBool("realtime")) {
    const double speed = std::max(1e-9, parser.GetDouble("speed"));
    if (Status s = service->Start(); !s.ok()) return Fail(err, s);
    Stopwatch wall;
    for (size_t i = resume_at; i < arrivals.size(); ++i) {
      const core::ArrivalEvent& arrival = arrivals[i];
      const double due = arrival.at_seconds / speed;
      const double now = wall.ElapsedSeconds();
      if (due > now) {
        // Per-arrival wait capped at 10 s wall: a corrupt or far-future
        // timestamp must not hang the replay.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(due - now, 10.0)));
      }
      // Backpressure drops are tolerated (the service counts them in
      // deltas_rejected); any other rejection (e.g. out-of-range ids from a
      // stream addressing a bigger id space than the instance) is fatal,
      // matching the deterministic mode.
      if (Status s = service->Submit(arrival.delta);
          !s.ok() && s.code() != StatusCode::kResourceExhausted) {
        (void)service->Stop();
        return Fail(err, s);
      }
    }
    if (Status s = service->Stop(); !s.ok()) return Fail(err, s);
    for (const serve::EpochMetrics& row : service->MetricsHistory()) {
      PrintEpochMetrics(out, row);
    }
  } else {
    // Deterministic virtual time: epoch k covers arrivals with timestamps in
    // [k·W, (k+1)·W); empty windows are skipped, and a full batch forces an
    // epoch early exactly like the background loop would. A full QUEUE also
    // forces one (queue-capacity below max-batch would otherwise hit
    // backpressure before the batch trigger ever fired).
    const double window = options.epoch_ms / 1e3;
    double window_end = window;
    const int32_t force_epoch_at =
        std::min(options.max_batch, options.queue_capacity);
    int32_t pending = 0;
    auto run_epoch = [&]() -> Status {
      auto metrics = service->RunEpoch();
      IGEPA_RETURN_IF_ERROR(metrics.status());
      pending = 0;
      PrintEpochMetrics(out, *metrics);
      return Status::OK();
    };
    // Resume skips arrivals a recovered snapshot already consumed. Because
    // force_epoch_at ≤ queue capacity, every run_epoch drains the whole
    // queue, so the applied count is a clean cursor into the arrival list
    // and the absolute window boundaries below reproduce the reference
    // batching exactly.
    for (size_t i = resume_at; i < arrivals.size(); ++i) {
      const core::ArrivalEvent& arrival = arrivals[i];
      if (pending > 0 && arrival.at_seconds >= window_end) {
        if (Status s = run_epoch(); !s.ok()) return Fail(err, s);
      }
      if (arrival.at_seconds >= window_end) {
        // Closed-form jump: incrementing in a loop never terminates once
        // window_end exceeds ~2^52·window (adding one window is below ulp).
        window_end =
            (std::floor(arrival.at_seconds / window) + 1.0) * window;
      }
      if (Status s = service->Submit(arrival.delta); !s.ok()) {
        return Fail(err, s);
      }
      if (++pending >= force_epoch_at) {
        if (Status s = run_epoch(); !s.ok()) return Fail(err, s);
      }
    }
    while (service->Stats().deltas_pending > 0) {
      if (Status s = run_epoch(); !s.ok()) return Fail(err, s);
    }
  }
  PrintServiceStats(out, service->Stats());
  if (const std::string path = parser.GetString("out-arrangement");
      !path.empty()) {
    auto snapshot = service->snapshot();
    if (snapshot == nullptr) {
      return Fail(err, Status::Internal("service published no snapshot"));
    }
    if (Status s = io::WriteArrangementCsv(snapshot->arrangement(), path);
        !s.ok()) {
      return Fail(err, s);
    }
    out << "arrangement -> " << path << "\n";
  }
  return 0;
}

// ---- command registry ------------------------------------------------------

using CommandFn = int (*)(const std::vector<std::string>&, std::ostream&,
                          std::ostream&);

struct Command {
  const char* name;
  const char* summary;
  CommandFn fn;
};

/// Every subcommand, in help order. `igepa --help` derives its listing from
/// this table, so a command cannot exist without being documented
/// (tests/cli/commands_test.cc pins the inverse: every listed name runs).
constexpr Command kCommands[] = {
    {"generate", "sample an IGEPA instance to CSV", CmdGenerate},
    {"solve", "arrange an instance CSV and report utility", CmdSolve},
    {"evaluate", "check an arrangement against an instance", CmdEvaluate},
    {"describe", "print instance statistics", CmdDescribe},
    {"convert", "convert an instance between CSV and igepa-bin,3 binary",
     CmdConvert},
    {"replay",
     "stream deltas through the incremental engine, warm vs cold per tick",
     CmdReplay},
    {"serve",
     "run the batched long-running arrangement service over an arrival "
     "stream",
     CmdServe},
};

std::string TopUsage() {
  std::string usage = "usage: igepa <command> [flags]\n\ncommands:\n";
  for (const Command& command : kCommands) {
    usage += "  ";
    usage += command.name;
    for (size_t i = std::char_traits<char>::length(command.name); i < 10;
         ++i) {
      usage += ' ';
    }
    usage += command.summary;
    usage += "\n";
  }
  usage += "\nrun `igepa <command> --help` for per-command flags\n";
  return usage;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << TopUsage();
    return args.empty() ? 1 : 0;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  for (const Command& entry : kCommands) {
    if (command == entry.name) return entry.fn(rest, out, err);
  }
  err << "unknown command '" << command << "'\n" << TopUsage();
  return 1;
}

}  // namespace cli
}  // namespace igepa
