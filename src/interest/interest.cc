#include "interest/interest.h"

#include <algorithm>
#include <cmath>

namespace igepa {
namespace interest {
namespace {

/// SplitMix64-style 64-bit finalizer with good avalanche behaviour.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

HashUniformInterest::HashUniformInterest(int32_t num_events, int32_t num_users,
                                         uint64_t seed)
    : num_events_(num_events), num_users_(num_users), seed_(seed) {
  IGEPA_CHECK(num_events >= 0 && num_users >= 0) << "negative dimension";
}

double HashUniformInterest::Interest(int32_t event, int32_t user) const {
  IGEPA_CHECK(event >= 0 && event < num_events_) << "event out of range";
  IGEPA_CHECK(user >= 0 && user < num_users_) << "user out of range";
  uint64_t h = seed_;
  h = Mix64(h ^ (0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(event)));
  h = Mix64(h ^ (0xC2B2AE3D27D4EB4FULL + static_cast<uint64_t>(user)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

TableInterest::TableInterest(int32_t num_events, int32_t num_users)
    : num_events_(num_events), num_users_(num_users) {
  IGEPA_CHECK(num_events >= 0 && num_users >= 0) << "negative dimension";
  table_.assign(
      static_cast<size_t>(num_events) * static_cast<size_t>(num_users), 0.0);
}

void TableInterest::Set(int32_t event, int32_t user, double value) {
  table_[Index(event, user)] = std::clamp(value, 0.0, 1.0);
}

namespace {

double L2Norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace

CosineInterest::CosineInterest(std::vector<std::vector<double>> event_attrs,
                               std::vector<std::vector<double>> user_attrs)
    : event_attrs_(std::move(event_attrs)),
      user_attrs_(std::move(user_attrs)) {
  size_t dim = 0;
  if (!event_attrs_.empty()) {
    dim = event_attrs_.front().size();
  } else if (!user_attrs_.empty()) {
    dim = user_attrs_.front().size();
  }
  for (const auto& a : event_attrs_) {
    IGEPA_CHECK(a.size() == dim) << "ragged event attribute vectors";
  }
  for (const auto& a : user_attrs_) {
    IGEPA_CHECK(a.size() == dim) << "ragged user attribute vectors";
  }
  event_norms_.reserve(event_attrs_.size());
  for (const auto& a : event_attrs_) event_norms_.push_back(L2Norm(a));
  user_norms_.reserve(user_attrs_.size());
  for (const auto& a : user_attrs_) user_norms_.push_back(L2Norm(a));
}

double CosineInterest::Interest(int32_t event, int32_t user) const {
  const auto& ev = event_attrs_[static_cast<size_t>(event)];
  const auto& us = user_attrs_[static_cast<size_t>(user)];
  const double nv = event_norms_[static_cast<size_t>(event)];
  const double nu = user_norms_[static_cast<size_t>(user)];
  if (nv <= 0.0 || nu <= 0.0) return 0.0;
  double dot = 0.0;
  for (size_t i = 0; i < ev.size(); ++i) dot += ev[i] * us[i];
  // Non-negative attributes make cosine land in [0, 1]; clamp for safety
  // against floating-point drift.
  return std::clamp(dot / (nv * nu), 0.0, 1.0);
}

}  // namespace interest
}  // namespace igepa
