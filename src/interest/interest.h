#ifndef IGEPA_INTEREST_INTEREST_H_
#define IGEPA_INTEREST_INTEREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace igepa {
namespace interest {

/// The paper's interest function SI(l_v, l_u) ∈ [0, 1] (Definition 5),
/// abstracted over its representation. Implementations must be deterministic:
/// repeated queries return the same value.
class InterestFn {
 public:
  virtual ~InterestFn() = default;

  virtual int32_t num_events() const = 0;
  virtual int32_t num_users() const = 0;

  /// SI for the (event, user) pair; always in [0, 1].
  virtual double Interest(int32_t event, int32_t user) const = 0;
};

/// Deterministic pairwise Uniform[0,1] interest without |V|×|U| storage —
/// the §IV synthetic rule ("the interest values of users in events are
/// uniformly sampled"). The value is a mix of (event, user, seed) through a
/// 64-bit finalizer, so instances are reproducible from the seed and two
/// different pairs are statistically independent uniforms.
class HashUniformInterest final : public InterestFn {
 public:
  HashUniformInterest(int32_t num_events, int32_t num_users, uint64_t seed);

  int32_t num_events() const override { return num_events_; }
  int32_t num_users() const override { return num_users_; }
  double Interest(int32_t event, int32_t user) const override;

  uint64_t seed() const { return seed_; }

 private:
  int32_t num_events_;
  int32_t num_users_;
  uint64_t seed_;
};

/// Dense interest table (row per event); used for the Meetup-style dataset,
/// IO round-trips and tests.
class TableInterest final : public InterestFn {
 public:
  TableInterest(int32_t num_events, int32_t num_users);

  int32_t num_events() const override { return num_events_; }
  int32_t num_users() const override { return num_users_; }
  double Interest(int32_t event, int32_t user) const override {
    return table_[Index(event, user)];
  }

  /// Sets SI(event, user); clamped to [0, 1].
  void Set(int32_t event, int32_t user, double value);

 private:
  size_t Index(int32_t event, int32_t user) const {
    IGEPA_CHECK(event >= 0 && event < num_events_) << "event out of range";
    IGEPA_CHECK(user >= 0 && user < num_users_) << "user out of range";
    return static_cast<size_t>(event) * static_cast<size_t>(num_users_) +
           static_cast<size_t>(user);
  }

  int32_t num_events_;
  int32_t num_users_;
  std::vector<double> table_;
};

/// Attribute-similarity interest "as in [4]" (GEACC): events and users carry
/// non-negative category weight vectors; SI is their cosine similarity
/// (0 when either vector is all-zero). Used by the Meetup simulator.
class CosineInterest final : public InterestFn {
 public:
  /// `event_attrs` / `user_attrs`: one weight vector per event / user; all
  /// vectors must share the same dimensionality.
  CosineInterest(std::vector<std::vector<double>> event_attrs,
                 std::vector<std::vector<double>> user_attrs);

  int32_t num_events() const override {
    return static_cast<int32_t>(event_attrs_.size());
  }
  int32_t num_users() const override {
    return static_cast<int32_t>(user_attrs_.size());
  }
  double Interest(int32_t event, int32_t user) const override;

  const std::vector<double>& event_attr(int32_t v) const {
    return event_attrs_[static_cast<size_t>(v)];
  }
  const std::vector<double>& user_attr(int32_t u) const {
    return user_attrs_[static_cast<size_t>(u)];
  }

 private:
  std::vector<std::vector<double>> event_attrs_;
  std::vector<std::vector<double>> user_attrs_;
  std::vector<double> event_norms_;
  std::vector<double> user_norms_;
};

}  // namespace interest
}  // namespace igepa

#endif  // IGEPA_INTEREST_INTEREST_H_
