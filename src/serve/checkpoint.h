#ifndef IGEPA_SERVE_CHECKPOINT_H_
#define IGEPA_SERVE_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {
namespace serve {

/// The complete engine state of an ArrangementService as of one completed
/// epoch — everything a deterministic restart needs to continue bit-identical
/// to a process that never died (DESIGN.md §7). Captured against a CANONICAL
/// catalog (the service compacts before checkpointing), so every column id in
/// here addresses the unique Build layout of the embedded instance and a
/// fresh Build at recovery resolves them all.
struct EngineSnapshot {
  /// Epoch/version counters: the NEXT epoch to run and snapshot version to
  /// publish, plus the Submit()-granularity deltas consumed so far (the
  /// arrival-stream cursor a resuming driver skips by).
  int64_t next_epoch = 0;
  int64_t next_version = 1;
  int64_t deltas_applied = 0;
  /// The master RNG's four xoshiro256** words. Restoring them is what keeps
  /// the fork-per-epoch sampling sequence identical across a restart.
  std::array<uint64_t, 4> rng_state{};
  // ---- DualWarmStart (stale is re-derived per tick but serialized anyway
  // so a snapshot is the whole struct, byte for byte). ----
  std::vector<double> mu;
  std::vector<int32_t> choice;
  std::vector<double> choice_value;
  std::vector<uint8_t> stale;
  // ---- RoundingState. ----
  std::vector<int32_t> sampled_col;
  std::vector<int32_t> demand;
  std::vector<int32_t> cutoff;
  // ---- FractionalSolution.lp (structured solves only — the serve pipeline
  // never materializes the facade model). ----
  int32_t lp_status = 0;
  double lp_objective = 0.0;
  double lp_upper_bound = 0.0;
  int64_t lp_iterations = 0;
  std::vector<double> x;
  std::vector<double> duals;
  /// The instance as of the checkpointed epoch, embedded with a DENSE
  /// interest table (io::WriteInstanceCsv dense_interest — see that header
  /// for why sparse would break later re-registrations). Always set on Load;
  /// must be set for Write.
  std::optional<core::Instance> instance;
};

/// Atomic snapshot persistence — the checkpoint half of the serve durability
/// pair (the delta half is serve::DeltaWal). One file per directory,
/// `snapshot.igs`, replaced atomically (write tmp → fsync → rename → fsync
/// dir), so a crash at any instant leaves either the old snapshot or the new
/// one, never a torn mix.
///
/// The file is line-oriented text (docs/FORMATS.md): a header with the
/// engine counters, the RNG words in hex, each state vector length-prefixed,
/// doubles as 16-hex-digit IEEE-754 bit patterns (exact round-trip without
/// trusting decimal formatting), the embedded instance CSV byte-length
/// prefixed, and a trailing CRC-32 line over everything above it.
class Checkpointer {
 public:
  /// `<dir>/snapshot.igs`.
  static std::string SnapshotPath(const std::string& dir);
  /// `<dir>/wal.log` — the WAL that accompanies the snapshot.
  static std::string WalPath(const std::string& dir);

  /// Creates `dir` (and missing parents). OK when it already exists.
  static Status EnsureDirectory(const std::string& dir);

  /// Serializes and atomically replaces `<dir>/snapshot.igs`. Requires
  /// snapshot.instance to be set.
  static Status Write(const std::string& dir, const EngineSnapshot& snapshot);

  /// Loads `<dir>/snapshot.igs`: NotFound when absent (cold start), IOError
  /// on CRC mismatch or malformed contents.
  static Result<EngineSnapshot> Load(const std::string& dir);
};

}  // namespace serve
}  // namespace igepa

#endif  // IGEPA_SERVE_CHECKPOINT_H_
