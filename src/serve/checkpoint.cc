#include "serve/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "io/instance_io.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace igepa {
namespace serve {
namespace {

constexpr char kSnapshotFile[] = "snapshot.igs";
constexpr char kTmpFile[] = "snapshot.tmp";
constexpr char kWalFile[] = "wal.log";

// Doubles round-trip as raw IEEE-754 bit patterns: decimal formatting is a
// determinism hazard (FormatDouble is fixed-precision, not shortest-exact),
// and a recovered engine must reproduce solves bit for bit.
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

bool ParseHexU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

void AppendDoubleVector(std::ostream& out, const char* name,
                        const std::vector<double>& values) {
  out << name << "," << values.size() << ",";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ";";
    out << HexU64(DoubleBits(values[i]));
  }
  out << "\n";
}

template <typename Int>
void AppendIntVector(std::ostream& out, const char* name,
                     const std::vector<Int>& values) {
  out << name << "," << values.size() << ",";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ";";
    out << static_cast<int64_t>(values[i]);
  }
  out << "\n";
}

/// Line reader over an in-memory snapshot body that can also hand out raw
/// byte ranges (the embedded instance section contains newlines, so a plain
/// getline loop cannot parse this format).
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  bool NextLine(std::string_view* line) {
    if (pos_ >= data_.size()) return false;
    const size_t nl = data_.find('\n', pos_);
    const size_t end = nl == std::string::npos ? data_.size() : nl;
    *line = std::string_view(data_).substr(pos_, end - pos_);
    pos_ = end + 1;
    return true;
  }

  bool TakeBytes(size_t count, std::string_view* bytes) {
    if (pos_ + count > data_.size()) return false;
    *bytes = std::string_view(data_).substr(pos_, count);
    pos_ += count;
    return true;
  }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status MalformedError(const std::string& path, const std::string& why) {
  return Status::IOError("malformed snapshot " + path + ": " + why);
}

Status ParseDoubleVector(Cursor* cursor, const char* name,
                         std::vector<double>* out, const std::string& path) {
  std::string_view line;
  if (!cursor->NextLine(&line)) {
    return MalformedError(path, std::string("missing ") + name + " section");
  }
  const auto fields = Split(line, ',');
  int64_t count = 0;
  if (fields.size() != 3 || fields[0] != name ||
      !ParseInt(fields[1], &count) || count < 0) {
    return MalformedError(path, std::string("bad ") + name + " line");
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  if (count == 0) {
    if (!fields[2].empty()) {
      return MalformedError(path, std::string(name) + " count/payload mismatch");
    }
    return Status::OK();
  }
  const auto tokens = Split(fields[2], ';');
  if (tokens.size() != static_cast<size_t>(count)) {
    return MalformedError(path, std::string(name) + " count/payload mismatch");
  }
  for (const auto& token : tokens) {
    uint64_t bits = 0;
    if (!ParseHexU64(token, &bits)) {
      return MalformedError(path, std::string("bad hex double in ") + name);
    }
    out->push_back(BitsToDouble(bits));
  }
  return Status::OK();
}

template <typename Int>
Status ParseIntVector(Cursor* cursor, const char* name, std::vector<Int>* out,
                      const std::string& path) {
  std::string_view line;
  if (!cursor->NextLine(&line)) {
    return MalformedError(path, std::string("missing ") + name + " section");
  }
  const auto fields = Split(line, ',');
  int64_t count = 0;
  if (fields.size() != 3 || fields[0] != name ||
      !ParseInt(fields[1], &count) || count < 0) {
    return MalformedError(path, std::string("bad ") + name + " line");
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  if (count == 0) {
    if (!fields[2].empty()) {
      return MalformedError(path, std::string(name) + " count/payload mismatch");
    }
    return Status::OK();
  }
  const auto tokens = Split(fields[2], ';');
  if (tokens.size() != static_cast<size_t>(count)) {
    return MalformedError(path, std::string(name) + " count/payload mismatch");
  }
  for (const auto& token : tokens) {
    int64_t value = 0;
    if (!ParseInt(token, &value)) {
      return MalformedError(path, std::string("bad integer in ") + name);
    }
    out->push_back(static_cast<Int>(value));
  }
  return Status::OK();
}

Status WriteFully(int fd, const void* data, size_t size,
                  const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write failed on " + path + ": " +
                             std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed on directory " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

std::string Checkpointer::SnapshotPath(const std::string& dir) {
  return dir + "/" + kSnapshotFile;
}

std::string Checkpointer::WalPath(const std::string& dir) {
  return dir + "/" + kWalFile;
}

Status Checkpointer::EnsureDirectory(const std::string& dir) {
  if (dir.empty()) {
    return Status::InvalidArgument("empty durable directory path");
  }
  // Create each prefix in turn (mkdir -p): the durable dir is commonly a
  // fresh nested path under a test or CI workspace.
  for (size_t i = 1; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    const std::string prefix = dir.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create directory " + prefix + ": " +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

Status Checkpointer::Write(const std::string& dir,
                           const EngineSnapshot& snapshot) {
  if (!snapshot.instance.has_value()) {
    return Status::InvalidArgument("snapshot has no instance");
  }
  const std::string path = SnapshotPath(dir);

  std::ostringstream body;
  body << "igepa-snapshot,1," << snapshot.next_epoch << ","
       << snapshot.next_version << "," << snapshot.deltas_applied << "\n";
  body << "rng," << HexU64(snapshot.rng_state[0]) << ","
       << HexU64(snapshot.rng_state[1]) << "," << HexU64(snapshot.rng_state[2])
       << "," << HexU64(snapshot.rng_state[3]) << "\n";
  AppendDoubleVector(body, "mu", snapshot.mu);
  AppendIntVector(body, "choice", snapshot.choice);
  AppendDoubleVector(body, "choice_value", snapshot.choice_value);
  AppendIntVector(body, "stale", snapshot.stale);
  AppendIntVector(body, "sampled_col", snapshot.sampled_col);
  AppendIntVector(body, "demand", snapshot.demand);
  AppendIntVector(body, "cutoff", snapshot.cutoff);
  body << "lp," << snapshot.lp_status << ","
       << HexU64(DoubleBits(snapshot.lp_objective)) << ","
       << HexU64(DoubleBits(snapshot.lp_upper_bound)) << ","
       << snapshot.lp_iterations << "\n";
  AppendDoubleVector(body, "x", snapshot.x);
  AppendDoubleVector(body, "duals", snapshot.duals);

  std::ostringstream instance_out;
  IGEPA_RETURN_IF_ERROR(io::WriteInstanceCsv(*snapshot.instance, instance_out,
                                             path, /*dense_interest=*/true));
  const std::string instance_csv = instance_out.str();
  body << "instance," << instance_csv.size() << "\n" << instance_csv;

  std::string contents = body.str();
  contents += "crc," + HexU64(Crc32(contents)).substr(8) + "\n";

  const std::string tmp_path = dir + "/" + kTmpFile;
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp_path + ": " +
                           std::strerror(errno));
  }
  Status write_status = WriteFully(fd, contents.data(), contents.size(),
                                   tmp_path);
  if (write_status.ok() && ::fsync(fd) != 0) {
    write_status = Status::IOError("fsync failed on " + tmp_path + ": " +
                                   std::strerror(errno));
  }
  ::close(fd);
  if (!write_status.ok()) {
    ::unlink(tmp_path.c_str());
    return write_status;
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status s = Status::IOError("cannot rename " + tmp_path + " to " +
                                     path + ": " + std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return s;
  }
  // The rename itself must be durable before the caller truncates the WAL,
  // or a crash could leave the old snapshot paired with an emptied log.
  return FsyncDirectory(dir);
}

Result<EngineSnapshot> Checkpointer::Load(const std::string& dir) {
  const std::string path = SnapshotPath(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("no snapshot at " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed on " + path);
  }
  const std::string contents = buffer.str();

  // Split off and verify the trailing CRC line before trusting any field.
  const size_t crc_pos = contents.rfind("crc,");
  if (crc_pos == std::string::npos || crc_pos + 13 != contents.size() ||
      contents.back() != '\n' ||
      (crc_pos != 0 && contents[crc_pos - 1] != '\n')) {
    return MalformedError(path, "missing CRC trailer");
  }
  uint64_t stored_crc = 0;
  if (!ParseHexU64(std::string_view(contents).substr(crc_pos + 4, 8),
                   &stored_crc)) {
    return MalformedError(path, "bad CRC trailer");
  }
  const std::string body = contents.substr(0, crc_pos);
  if (Crc32(body) != static_cast<uint32_t>(stored_crc)) {
    return Status::IOError("snapshot CRC mismatch in " + path);
  }

  Cursor cursor(body);
  EngineSnapshot snapshot;

  std::string_view line;
  if (!cursor.NextLine(&line)) return MalformedError(path, "empty snapshot");
  auto fields = Split(line, ',');
  if (fields.size() != 5 || fields[0] != "igepa-snapshot" || fields[1] != "1" ||
      !ParseInt(fields[2], &snapshot.next_epoch) ||
      !ParseInt(fields[3], &snapshot.next_version) ||
      !ParseInt(fields[4], &snapshot.deltas_applied) ||
      snapshot.next_epoch < 0 || snapshot.next_version < 1 ||
      snapshot.deltas_applied < 0) {
    return MalformedError(path, "bad header");
  }

  if (!cursor.NextLine(&line)) return MalformedError(path, "missing rng line");
  fields = Split(line, ',');
  if (fields.size() != 5 || fields[0] != "rng") {
    return MalformedError(path, "bad rng line");
  }
  for (size_t i = 0; i < 4; ++i) {
    if (!ParseHexU64(fields[i + 1], &snapshot.rng_state[i])) {
      return MalformedError(path, "bad rng word");
    }
  }

  IGEPA_RETURN_IF_ERROR(ParseDoubleVector(&cursor, "mu", &snapshot.mu, path));
  IGEPA_RETURN_IF_ERROR(
      ParseIntVector(&cursor, "choice", &snapshot.choice, path));
  IGEPA_RETURN_IF_ERROR(
      ParseDoubleVector(&cursor, "choice_value", &snapshot.choice_value, path));
  IGEPA_RETURN_IF_ERROR(
      ParseIntVector(&cursor, "stale", &snapshot.stale, path));
  IGEPA_RETURN_IF_ERROR(
      ParseIntVector(&cursor, "sampled_col", &snapshot.sampled_col, path));
  IGEPA_RETURN_IF_ERROR(
      ParseIntVector(&cursor, "demand", &snapshot.demand, path));
  IGEPA_RETURN_IF_ERROR(
      ParseIntVector(&cursor, "cutoff", &snapshot.cutoff, path));

  if (!cursor.NextLine(&line)) return MalformedError(path, "missing lp line");
  fields = Split(line, ',');
  int64_t lp_status = 0;
  uint64_t objective_bits = 0, upper_bits = 0;
  if (fields.size() != 5 || fields[0] != "lp" ||
      !ParseInt(fields[1], &lp_status) ||
      !ParseHexU64(fields[2], &objective_bits) ||
      !ParseHexU64(fields[3], &upper_bits) ||
      !ParseInt(fields[4], &snapshot.lp_iterations)) {
    return MalformedError(path, "bad lp line");
  }
  snapshot.lp_status = static_cast<int32_t>(lp_status);
  snapshot.lp_objective = BitsToDouble(objective_bits);
  snapshot.lp_upper_bound = BitsToDouble(upper_bits);

  IGEPA_RETURN_IF_ERROR(ParseDoubleVector(&cursor, "x", &snapshot.x, path));
  IGEPA_RETURN_IF_ERROR(
      ParseDoubleVector(&cursor, "duals", &snapshot.duals, path));

  if (!cursor.NextLine(&line)) {
    return MalformedError(path, "missing instance section");
  }
  fields = Split(line, ',');
  int64_t instance_len = 0;
  if (fields.size() != 2 || fields[0] != "instance" ||
      !ParseInt(fields[1], &instance_len) || instance_len < 0) {
    return MalformedError(path, "bad instance length line");
  }
  std::string_view instance_csv;
  if (!cursor.TakeBytes(static_cast<size_t>(instance_len), &instance_csv)) {
    return MalformedError(path, "truncated instance section");
  }
  std::istringstream instance_in{std::string(instance_csv)};
  auto instance = io::ReadInstanceCsv(instance_in, path + "[instance]");
  if (!instance.ok()) return instance.status();
  snapshot.instance.emplace(std::move(*instance));

  if (cursor.NextLine(&line) && !Trim(line).empty()) {
    return MalformedError(path, "trailing garbage after instance section");
  }
  return snapshot;
}

}  // namespace serve
}  // namespace igepa
