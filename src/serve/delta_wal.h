#ifndef IGEPA_SERVE_DELTA_WAL_H_
#define IGEPA_SERVE_DELTA_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/instance_delta.h"
#include "util/result.h"

namespace igepa {
namespace serve {

/// One durably logged epoch batch: the coalesced delta the epoch ran (or will
/// run) over, the epoch id it ran as, and how many Submit()-granularity
/// deltas the batch coalesced (the publish-latency / arrival-cursor unit —
/// the coalesced InstanceDelta alone cannot recover it).
struct WalRecord {
  int64_t epoch = 0;
  int32_t coalesced = 0;
  core::InstanceDelta batch;
};

/// Append-only write-ahead log of admitted epoch batches — the delta half of
/// the serve durability pair (DESIGN.md §7; the snapshot half is
/// serve::Checkpointer). Every record is appended and fsync'd BEFORE its
/// epoch executes, so a crash at any instant loses at most the queued
/// not-yet-epoched deltas, never an applied batch.
///
/// ## Record framing (docs/FORMATS.md)
///
/// Binary, little-endian, 24-byte header then payload:
///
///   bytes [0,4)   magic "IGWL"
///   bytes [4,8)   u32 payload length
///   bytes [8,16)  u64 epoch id
///   bytes [16,20) u32 coalesced delta count
///   bytes [20,24) u32 CRC-32 over bytes [4,20) + payload
///
/// The payload is one single-tick delta CSV (io::WriteDeltaStreamCsv — the
/// same bytes a replay workload file holds), so a WAL is inspectable with the
/// existing tooling once unframed.
///
/// ## Tail handling
///
/// A crash mid-append leaves a prefix of the final record. Open() classifies:
///   * header or payload extending past EOF, or a CRC mismatch on the FINAL
///     record — a torn/corrupt tail: truncated away, the intact prefix is
///     returned (this is the expected crash shape; append is one write);
///   * bad magic, an implausible length, a non-monotonic epoch, or a CRC
///     mismatch with further data behind it — real corruption: IOError, no
///     truncation (recovery must not silently drop acknowledged records).
class DeltaWal {
 public:
  static constexpr size_t kHeaderSize = 24;

  /// Opens (creating if absent) the WAL at `path`, scans and validates every
  /// record into `records_out` (in append order), truncates a torn tail, and
  /// returns the handle positioned for appending. `num_events`/`num_users`
  /// bound the id space of the payload CSVs written through Append.
  static Result<std::unique_ptr<DeltaWal>> Open(
      const std::string& path, int32_t num_events, int32_t num_users,
      std::vector<WalRecord>* records_out);

  ~DeltaWal();
  DeltaWal(const DeltaWal&) = delete;
  DeltaWal& operator=(const DeltaWal&) = delete;

  /// Appends one record. With sync (the default) it fsyncs before returning —
  /// when Append returns OK the batch survives any crash. With sync = false
  /// the record is only written: the caller MUST call Sync() before treating
  /// the batch as admitted (the pipelined serve path appends a group of epoch
  /// batches unsynced and pays one fsync for all of them — group commit).
  Status Append(int64_t epoch, int32_t coalesced,
                const core::InstanceDelta& batch, bool sync = true);

  /// Fsyncs everything appended so far; the durability barrier paired with
  /// Append(..., /*sync=*/false).
  Status Sync();

  /// Empties the log (after a checkpoint has captured everything it holds)
  /// and fsyncs. Records logged before the snapshot's epoch are additionally
  /// skipped at recovery, so a crash between the snapshot rename and this
  /// truncate is harmless.
  Status Reset();

  const std::string& path() const { return path_; }
  /// Bytes of intact records currently in the log.
  int64_t size_bytes() const { return size_bytes_; }

 private:
  DeltaWal(std::string path, int fd, int64_t size_bytes, int32_t num_events,
           int32_t num_users)
      : path_(std::move(path)),
        fd_(fd),
        size_bytes_(size_bytes),
        num_events_(num_events),
        num_users_(num_users) {}

  std::string path_;
  int fd_ = -1;
  int64_t size_bytes_ = 0;
  int32_t num_events_ = 0;
  int32_t num_users_ = 0;
};

}  // namespace serve
}  // namespace igepa

#endif  // IGEPA_SERVE_DELTA_WAL_H_
