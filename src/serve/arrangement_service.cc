#include "serve/arrangement_service.h"

#include <sys/stat.h>

#include <algorithm>
#include <csignal>
#include <string>
#include <utility>

#include "core/warm_tick.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace igepa {
namespace serve {

using core::Arrangement;
using core::EventId;
using core::InstanceDelta;

ArrangementService::ArrangementService(core::Instance instance,
                                       const ServeOptions& options)
    : instance_(std::move(instance)),
      options_(options),
      master_(options.seed),
      crash_after_epoch_(GetEnvInt("IGEPA_CRASH_AFTER_EPOCH", -1)) {
  dual_ = options_.dual;
  dual_.num_threads = options_.num_threads;
  delta_options_.admissible = options_.admissible;
  delta_options_.compact_tombstone_fraction =
      options_.compact_tombstone_fraction;
  delta_options_.compact_min_dead_columns = options_.compact_min_dead_columns;
  round_options_.alpha = options_.alpha;
  round_options_.num_threads = options_.num_threads;
  round_options_.structured = dual_;
}

Result<std::unique_ptr<ArrangementService>> ArrangementService::Create(
    core::Instance instance, const ServeOptions& options) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("ServeOptions::max_batch must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument(
        "ServeOptions::queue_capacity must be >= 1");
  }
  if (options.epoch_ms < 0) {
    return Status::InvalidArgument("ServeOptions::epoch_ms must be >= 0");
  }
  if (options.metrics_history_limit < 1) {
    return Status::InvalidArgument(
        "ServeOptions::metrics_history_limit must be >= 1");
  }
  if (options.checkpoint_every < 1) {
    return Status::InvalidArgument(
        "ServeOptions::checkpoint_every must be >= 1");
  }
  std::unique_ptr<ArrangementService> service(
      new ArrangementService(std::move(instance), options));
  IGEPA_RETURN_IF_ERROR(service->Bootstrap());
  if (!options.durable_dir.empty()) {
    IGEPA_RETURN_IF_ERROR(service->InitDurable());
  }
  return service;
}

Result<std::unique_ptr<ArrangementService>> ArrangementService::Recover(
    const ServeOptions& options) {
  if (options.durable_dir.empty()) {
    return Status::InvalidArgument(
        "Recover: ServeOptions::durable_dir must be set");
  }
  if (options.checkpoint_every < 1) {
    return Status::InvalidArgument(
        "ServeOptions::checkpoint_every must be >= 1");
  }
  IGEPA_ASSIGN_OR_RETURN(EngineSnapshot snap,
                         Checkpointer::Load(options.durable_dir));
  if (!snap.instance.has_value()) {
    return Status::Internal("loaded snapshot has no instance");
  }
  core::Instance instance = std::move(*snap.instance);
  snap.instance.reset();
  std::unique_ptr<ArrangementService> service(
      new ArrangementService(std::move(instance), options));
  IGEPA_RETURN_IF_ERROR(service->RestoreAndReplay(std::move(snap)));
  return service;
}

ArrangementService::~ArrangementService() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Destruction cannot drain: discard whatever is still queued.
    queue_.clear();
  }
  Stop();
}

Status ArrangementService::Bootstrap() {
  core::AdmissibleOptions admissible = options_.admissible;
  admissible.num_threads = options_.num_threads;
  catalog_ = core::AdmissibleCatalog::Build(instance_, admissible);
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution base_sol,
      core::SolveBenchmarkLpStructured(instance_, catalog_, dual_, &warm_));
  fractional_.lp = std::move(base_sol);
  fractional_.structured = true;
  Rng round_rng = master_.Fork();
  IGEPA_ASSIGN_OR_RETURN(
      Arrangement base_arr,
      core::RoundFractional(instance_, catalog_, fractional_, &round_rng,
                            round_options_, /*stats=*/nullptr,
                            &rounding_state_));
  IGEPA_RETURN_IF_ERROR(base_arr.CheckFeasible(instance_));
  const double utility = base_arr.Utility(instance_);
  Publish(/*epoch=*/-1, std::move(base_arr), fractional_.lp.objective,
          utility);
  return Status::OK();
}

Status ArrangementService::InitDurable() {
  IGEPA_RETURN_IF_ERROR(Checkpointer::EnsureDirectory(options_.durable_dir));
  struct stat st;
  if (::stat(Checkpointer::SnapshotPath(options_.durable_dir).c_str(), &st) ==
      0) {
    return Status::AlreadyExists(
        "durable directory " + options_.durable_dir +
        " already holds a snapshot; use ArrangementService::Recover");
  }
  // A WAL with no snapshot next to it is unreachable leftovers (its records
  // address state we no longer have); the epoch-0 checkpoint truncates it.
  std::vector<WalRecord> orphaned;
  IGEPA_ASSIGN_OR_RETURN(
      wal_, DeltaWal::Open(Checkpointer::WalPath(options_.durable_dir),
                           instance_.num_events(), instance_.num_users(),
                           &orphaned));
  return CheckpointInternal();
}

Status ArrangementService::RestoreAndReplay(EngineSnapshot snap) {
  const auto nv = static_cast<size_t>(instance_.num_events());
  const auto nu = static_cast<size_t>(instance_.num_users());
  // Snapshots are captured against the canonical layout, so a fresh Build on
  // the embedded instance reproduces exactly the catalog every column id in
  // the snapshot addresses. ids_revision is only a fence token between the
  // holders and the catalog — adopting the fresh catalog's value below keeps
  // the fence closed without persisting the token.
  core::AdmissibleOptions admissible = options_.admissible;
  admissible.num_threads = options_.num_threads;
  catalog_ = core::AdmissibleCatalog::Build(instance_, admissible);
  const auto cols = static_cast<size_t>(catalog_.num_columns());
  if (snap.mu.size() != nv || snap.choice.size() != nu ||
      snap.choice_value.size() != nu ||
      (!snap.stale.empty() && snap.stale.size() != nu) ||
      snap.sampled_col.size() != nu || snap.demand.size() != nv ||
      snap.cutoff.size() != nv || snap.x.size() != cols) {
    return Status::IOError(
        "snapshot state sizes do not match the catalog rebuilt from its "
        "instance");
  }
  for (const int32_t j : snap.choice) {
    if (j < -1 || j >= catalog_.num_columns()) {
      return Status::IOError("snapshot warm choice out of catalog range");
    }
  }
  for (const int32_t j : snap.sampled_col) {
    if (j < -1 || j >= catalog_.num_columns()) {
      return Status::IOError("snapshot sampled column out of catalog range");
    }
  }

  warm_.mu = std::move(snap.mu);
  warm_.choice = std::move(snap.choice);
  warm_.choice_value = std::move(snap.choice_value);
  warm_.stale = std::move(snap.stale);
  warm_.catalog_revision = catalog_.ids_revision();
  rounding_state_.sampled_col = std::move(snap.sampled_col);
  rounding_state_.demand = std::move(snap.demand);
  rounding_state_.cutoff = std::move(snap.cutoff);
  rounding_state_.catalog_revision = catalog_.ids_revision();
  fractional_.lp.status = static_cast<lp::SolveStatus>(snap.lp_status);
  fractional_.lp.objective = snap.lp_objective;
  fractional_.lp.upper_bound = snap.lp_upper_bound;
  fractional_.lp.iterations = snap.lp_iterations;
  fractional_.lp.x = std::move(snap.x);
  fractional_.lp.duals = std::move(snap.duals);
  fractional_.structured = true;
  master_.set_state(snap.rng_state);
  next_epoch_ = snap.next_epoch;
  next_version_ = snap.next_version;
  // Counters restart from what provably reached an epoch; queue-only
  // submissions died with the process (see the durability contract).
  deltas_applied_ = snap.deltas_applied;
  deltas_submitted_ = snap.deltas_applied;
  epochs_total_ = snap.next_epoch;

  // Republish the checkpointed arrangement — a pure function of sampled_col
  // (RepairSampledColumns pins that), so it needs no persistence of its own.
  // It was originally published as version next_version - 1; stepping the
  // counter back keeps the recovered version numbering identical to the
  // uninterrupted run's.
  IGEPA_ASSIGN_OR_RETURN(
      Arrangement restored,
      core::RepairSampledColumns(instance_, catalog_,
                                 rounding_state_.sampled_col));
  IGEPA_RETURN_IF_ERROR(restored.CheckFeasible(instance_));
  const double restored_utility = restored.Utility(instance_);
  --next_version_;
  Publish(next_epoch_ == 0 ? -1 : next_epoch_ - 1, std::move(restored),
          fractional_.lp.objective, restored_utility);

  // Replay the WAL tail through the identical warm-tick pipeline. This is
  // NOT RunEpochInternal: no queue, no WAL re-append, no timing samples, no
  // crash hook — just the engine arithmetic, which is all that determinism
  // cares about.
  std::vector<WalRecord> records;
  IGEPA_ASSIGN_OR_RETURN(
      wal_, DeltaWal::Open(Checkpointer::WalPath(options_.durable_dir),
                           instance_.num_events(), instance_.num_users(),
                           &records));
  for (WalRecord& record : records) {
    if (record.epoch < next_epoch_) {
      // Logged before the snapshot was taken: the crash hit between the
      // snapshot rename and the WAL truncate. Already folded in; skip.
      continue;
    }
    if (record.epoch != next_epoch_) {
      return Status::IOError("WAL gap: expected epoch " +
                             std::to_string(next_epoch_) + ", found " +
                             std::to_string(record.epoch));
    }
    Rng epoch_rng = master_.Fork();
    auto tick = core::ApplyWarmTick(&instance_, &catalog_, &warm_,
                                    &rounding_state_, &fractional_,
                                    record.batch, &epoch_rng, dual_,
                                    delta_options_, round_options_);
    if (!tick.ok()) return tick.status();
    EpochMetrics metrics;
    metrics.epoch = next_epoch_++;
    metrics.deltas_coalesced = record.coalesced;
    metrics.touched_users = tick->touched_users;
    metrics.event_updates = tick->event_updates;
    metrics.compacted = tick->compacted;
    metrics.live_columns = catalog_.num_live_columns();
    metrics.lp_objective = fractional_.lp.objective;
    metrics.lp_iterations = fractional_.lp.iterations;
    metrics.utility = tick->arrangement.Utility(instance_);
    Publish(metrics.epoch, std::move(tick->arrangement), metrics.lp_objective,
            metrics.utility);
    metrics.snapshot_version = next_version_ - 1;
    deltas_applied_ += record.coalesced;
    deltas_submitted_ += record.coalesced;
    ++epochs_total_;
    history_.push_back(metrics);
  }
  // Fold the replayed tail into a fresh snapshot so the directory is clean
  // (and a crash loop cannot grow the WAL without bound).
  return CheckpointInternal();
}

Status ArrangementService::CheckpointInternal() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("Checkpoint: service is not durable");
  }
  if (!catalog_.canonical()) {
    // Snapshot column ids must address the unique canonical Build layout so
    // recovery can rebuild the catalog from the instance alone. Compact is
    // pinned bit-identical to Build, and solves/rounds are pinned
    // bit-identical on dirty vs compacted catalogs, so canonicalizing here
    // never changes what the engine computes next.
    const std::vector<int32_t> remap = catalog_.Compact();
    warm_.Remap(remap, catalog_.ids_revision());
    rounding_state_.Remap(remap, catalog_.ids_revision());
    std::vector<double> new_x(static_cast<size_t>(catalog_.num_columns()),
                              0.0);
    for (size_t j = 0; j < remap.size() && j < fractional_.lp.x.size(); ++j) {
      if (remap[j] >= 0) {
        new_x[static_cast<size_t>(remap[j])] = fractional_.lp.x[j];
      }
    }
    fractional_.lp.x = std::move(new_x);
  }
  EngineSnapshot snap;
  snap.next_epoch = next_epoch_;
  snap.next_version = next_version_;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    snap.deltas_applied = deltas_applied_;
  }
  snap.rng_state = master_.state();
  snap.mu = warm_.mu;
  snap.choice = warm_.choice;
  snap.choice_value = warm_.choice_value;
  snap.stale = warm_.stale;
  snap.sampled_col = rounding_state_.sampled_col;
  snap.demand = rounding_state_.demand;
  snap.cutoff = rounding_state_.cutoff;
  snap.lp_status = static_cast<int32_t>(fractional_.lp.status);
  snap.lp_objective = fractional_.lp.objective;
  snap.lp_upper_bound = fractional_.lp.upper_bound;
  snap.lp_iterations = fractional_.lp.iterations;
  snap.x = fractional_.lp.x;
  snap.duals = fractional_.lp.duals;
  snap.instance.emplace(instance_);
  IGEPA_RETURN_IF_ERROR(Checkpointer::Write(options_.durable_dir, snap));
  // Only after the snapshot rename is durable may the WAL shrink; recovery
  // additionally skips records older than the snapshot, so a crash between
  // these two steps loses nothing.
  return wal_->Reset();
}

Status ArrangementService::Checkpoint() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "Checkpoint: background epoch loop is running");
    }
    if (inline_epoch_) {
      return Status::FailedPrecondition("Checkpoint: an epoch is in progress");
    }
    if (!last_error_.ok()) return last_error_;
    inline_epoch_ = true;
  }
  const Status status = CheckpointInternal();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    inline_epoch_ = false;
    if (!status.ok() && last_error_.ok()) last_error_ = status;
  }
  return status;
}

Status ArrangementService::Submit(InstanceDelta delta) {
  // Validate against the fixed id space at the door (the shared
  // core::ValidateDelta — one definition of "well-formed delta" for every
  // consumer), so a batch epoch can never fail on ids and a bad client
  // delta cannot poison the engine.
  IGEPA_RETURN_IF_ERROR(core::ValidateDelta(instance_.num_events(),
                                            instance_.num_users(), delta));

  bool wake = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (static_cast<int64_t>(queue_.size()) >=
        static_cast<int64_t>(options_.queue_capacity)) {
      ++deltas_rejected_;
      return Status::ResourceExhausted(
          "Submit: queue full (" + std::to_string(options_.queue_capacity) +
          " pending deltas)");
    }
    ++deltas_submitted_;
    queue_.push_back({std::move(delta), std::chrono::steady_clock::now()});
    wake = running_ && static_cast<int64_t>(queue_.size()) >=
                           static_cast<int64_t>(options_.max_batch);
  }
  if (wake) queue_cv_.notify_all();
  return Status::OK();
}

Result<EpochMetrics> ArrangementService::RunEpoch() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "RunEpoch: background epoch loop is running");
    }
    if (inline_epoch_) {
      return Status::FailedPrecondition(
          "RunEpoch: another RunEpoch is in progress");
    }
    if (!last_error_.ok()) return last_error_;
    // Claimed under the same lock as the running_ check, so Start() cannot
    // slip a background loop in while this epoch runs unlocked.
    inline_epoch_ = true;
  }
  Result<EpochMetrics> metrics = RunEpochInternal();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    inline_epoch_ = false;
  }
  return metrics;
}

Result<EpochMetrics> ArrangementService::RunEpochInternal() {
  Stopwatch watch;
  const auto now = std::chrono::steady_clock::now();

  // Coalesce: pop up to max_batch pending deltas in submit order. Updates
  // inside an InstanceDelta apply in order with later-wins semantics, so
  // concatenation IS sequential application of the popped deltas.
  InstanceDelta batch;
  int32_t coalesced = 0;
  double max_queue_delay = 0.0;
  std::vector<std::chrono::steady_clock::time_point> enqueue_times;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!queue_.empty() && coalesced < options_.max_batch) {
      Pending& p = queue_.front();
      batch.user_updates.insert(
          batch.user_updates.end(),
          std::make_move_iterator(p.delta.user_updates.begin()),
          std::make_move_iterator(p.delta.user_updates.end()));
      batch.event_updates.insert(batch.event_updates.end(),
                                 p.delta.event_updates.begin(),
                                 p.delta.event_updates.end());
      batch.graph_updates.insert(batch.graph_updates.end(),
                                 p.delta.graph_updates.begin(),
                                 p.delta.graph_updates.end());
      batch.interest_updates.insert(batch.interest_updates.end(),
                                    p.delta.interest_updates.begin(),
                                    p.delta.interest_updates.end());
      enqueue_times.push_back(p.enqueued);
      queue_.pop_front();
      ++coalesced;
    }
  }
  if (!enqueue_times.empty()) {
    max_queue_delay =
        std::chrono::duration<double>(now - enqueue_times.front()).count();
  }

  EpochMetrics metrics;
  metrics.deltas_coalesced = coalesced;
  if (coalesced == 0) {
    // No-op epoch: nothing to solve, nothing published, no RNG consumed.
    metrics.epoch = next_epoch_;
    metrics.snapshot_version = next_version_ - 1;
    metrics.lp_objective = fractional_.lp.objective;
    return metrics;
  }

  // ---- Durability point: the batch is WAL-logged and fsync'd BEFORE the
  // epoch computes anything, so once this epoch's effects are observable a
  // crash can always replay them. A failed append poisons the service — the
  // alternative would be applying a batch that recovery cannot reproduce.
  if (wal_ != nullptr) {
    if (Status logged = wal_->Append(next_epoch_, coalesced, batch);
        !logged.ok()) {
      std::unique_lock<std::mutex> lock(mutex_);
      last_error_ = logged;
      return logged;
    }
  }

  // ---- One tick of the shared incremental pipeline on the coalesced batch
  // (core::ApplyWarmTick — the same call a replay tick makes, which is what
  // keeps the service and the replay driver bit-identical by construction).
  Rng epoch_rng = master_.Fork();
  auto tick = core::ApplyWarmTick(&instance_, &catalog_, &warm_,
                                  &rounding_state_, &fractional_, batch,
                                  &epoch_rng, dual_, delta_options_,
                                  round_options_);
  if (!tick.ok()) {
    std::unique_lock<std::mutex> lock(mutex_);
    last_error_ = tick.status();
    return tick.status();
  }

  metrics.epoch = next_epoch_++;
  metrics.touched_users = tick->touched_users;
  metrics.event_updates = tick->event_updates;
  metrics.compacted = tick->compacted;
  metrics.live_columns = catalog_.num_live_columns();
  metrics.lp_objective = fractional_.lp.objective;
  metrics.lp_iterations = fractional_.lp.iterations;
  metrics.utility = tick->arrangement.Utility(instance_);
  metrics.max_queue_delay_seconds = max_queue_delay;

  Publish(metrics.epoch, std::move(tick->arrangement), metrics.lp_objective,
          metrics.utility);
  metrics.snapshot_version = next_version_ - 1;
  metrics.epoch_seconds = watch.ElapsedSeconds();

  {
    const auto published = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    deltas_applied_ += coalesced;
    ++epochs_total_;
    total_epoch_seconds_ += metrics.epoch_seconds;
    history_.push_back(metrics);
    while (static_cast<int64_t>(history_.size()) >
           static_cast<int64_t>(std::max(1, options_.metrics_history_limit))) {
      history_.pop_front();
    }
    PushSample(&epoch_seconds_samples_, &epoch_seconds_next_,
               metrics.epoch_seconds);
    for (const auto& enqueued : enqueue_times) {
      PushSample(&publish_latency_samples_, &publish_latency_next_,
                 std::chrono::duration<double>(published - enqueued).count());
    }
  }

  if (wal_ != nullptr && next_epoch_ % options_.checkpoint_every == 0) {
    if (Status checkpointed = CheckpointInternal(); !checkpointed.ok()) {
      std::unique_lock<std::mutex> lock(mutex_);
      last_error_ = checkpointed;
      return checkpointed;
    }
  }

  if (crash_after_epoch_ >= 0 && metrics.epoch == crash_after_epoch_) {
    // CI kill-point hook (IGEPA_CRASH_AFTER_EPOCH): die unceremoniously
    // AFTER this epoch became durable and visible — no destructors, no
    // flushes — so the recovery suite can prove the restart reproduces it
    // bit for bit.
    std::raise(SIGKILL);
  }
  return metrics;
}

void ArrangementService::PushSample(std::vector<double>* ring, size_t* next,
                                    double value) {
  if (ring->size() < kLatencySampleCap) {
    ring->push_back(value);
  } else {
    (*ring)[*next] = value;
    *next = (*next + 1) % kLatencySampleCap;
  }
}

void ArrangementService::Publish(int64_t epoch, Arrangement arrangement,
                                 double lp_objective, double utility) {
  auto snapshot = std::make_shared<const ArrangementSnapshot>(
      next_version_++, epoch, std::move(arrangement), lp_objective, utility);
  // The construction above happens outside the lock; the critical section is
  // one pointer swap.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

Status ArrangementService::Start() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_) {
    return Status::FailedPrecondition("Start: epoch loop already running");
  }
  if (inline_epoch_) {
    return Status::FailedPrecondition(
        "Start: a caller-driven RunEpoch is in progress");
  }
  if (!last_error_.ok()) return last_error_;
  if (loop_.joinable()) loop_.join();  // previous loop fully stopped
  running_ = true;
  stop_requested_ = false;
  loop_ = std::thread([this] { BackgroundLoop(); });
  return Status::OK();
}

Status ArrangementService::Stop() {
  // Serialize Stop() calls (including the destructor's): the loser of a
  // concurrent Stop must wait for the winner's join, not return while the
  // loop thread is still inside an epoch. The thread handle is additionally
  // claimed under mutex_ so std::thread::join — which is not thread-safe —
  // is never entered twice.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_ && !loop_.joinable()) return last_error_;
    stop_requested_ = true;
    to_join = std::move(loop_);
  }
  queue_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::unique_lock<std::mutex> lock(mutex_);
  running_ = false;
  return last_error_;
}

void ArrangementService::BackgroundLoop() {
  const auto period = std::chrono::duration<double, std::milli>(
      options_.epoch_ms > 0 ? options_.epoch_ms : 1.0);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait_for(lock, period, [this] {
        return stop_requested_ ||
               static_cast<int64_t>(queue_.size()) >=
                   static_cast<int64_t>(options_.max_batch);
      });
      if (stop_requested_ && queue_.empty()) break;
      if (!last_error_.ok()) break;
    }
    auto metrics = RunEpochInternal();
    if (!metrics.ok()) break;  // RunEpochInternal latched last_error_
  }
  std::unique_lock<std::mutex> lock(mutex_);
  running_ = false;
}

ServiceStats ArrangementService::Stats() const {
  ServiceStats stats;
  std::shared_ptr<const ArrangementSnapshot> snap = snapshot();
  std::vector<double> epoch_sorted;
  std::vector<double> publish_sorted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stats.epochs = epochs_total_;
    stats.total_epoch_seconds = total_epoch_seconds_;
    stats.deltas_submitted = deltas_submitted_;
    stats.deltas_applied = deltas_applied_;
    stats.deltas_rejected = deltas_rejected_;
    stats.deltas_pending = static_cast<int64_t>(queue_.size());
    epoch_sorted = epoch_seconds_samples_;  // bounded copies; sort unlocked
    publish_sorted = publish_latency_samples_;
  }
  if (snap != nullptr) {
    stats.snapshot_version = snap->version();
    stats.lp_objective = snap->lp_objective();
    stats.utility = snap->utility();
  }
  std::sort(epoch_sorted.begin(), epoch_sorted.end());
  if (!epoch_sorted.empty()) {
    stats.p50_epoch_seconds = SortedPercentile(epoch_sorted, 0.50);
    stats.p99_epoch_seconds = SortedPercentile(epoch_sorted, 0.99);
  }
  std::sort(publish_sorted.begin(), publish_sorted.end());
  if (!publish_sorted.empty()) {
    stats.p50_publish_latency_seconds = SortedPercentile(publish_sorted, 0.50);
    stats.p99_publish_latency_seconds = SortedPercentile(publish_sorted, 0.99);
  }
  return stats;
}

std::vector<EpochMetrics> ArrangementService::MetricsHistory() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return std::vector<EpochMetrics>(history_.begin(), history_.end());
}

Status ArrangementService::last_error() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace serve
}  // namespace igepa
