#include "serve/arrangement_service.h"

#include <sys/stat.h>

#include <algorithm>
#include <csignal>
#include <string>
#include <utility>

#include "core/warm_tick.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/stopwatch.h"

namespace igepa {
namespace serve {

using core::Arrangement;
using core::EventId;
using core::InstanceDelta;

ArrangementService::ArrangementService(core::Instance instance,
                                       const ServeOptions& options)
    : instance_(std::move(instance)),
      options_(options),
      master_(options.seed),
      crash_after_epoch_(GetEnvInt("IGEPA_CRASH_AFTER_EPOCH", -1)),
      crash_at_stage_(
          static_cast<int32_t>(GetEnvInt("IGEPA_CRASH_AT_STAGE", -1))) {
  dual_ = options_.dual;
  dual_.num_threads = options_.num_threads;
  delta_options_.admissible = options_.admissible;
  delta_options_.compact_tombstone_fraction =
      options_.compact_tombstone_fraction;
  delta_options_.compact_min_dead_columns = options_.compact_min_dead_columns;
  round_options_.alpha = options_.alpha;
  round_options_.num_threads = options_.num_threads;
  round_options_.structured = dual_;
}

Result<std::unique_ptr<ArrangementService>> ArrangementService::Create(
    core::Instance instance, const ServeOptions& options) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("ServeOptions::max_batch must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument(
        "ServeOptions::queue_capacity must be >= 1");
  }
  if (options.epoch_ms < 0) {
    return Status::InvalidArgument("ServeOptions::epoch_ms must be >= 0");
  }
  if (options.metrics_history_limit < 1) {
    return Status::InvalidArgument(
        "ServeOptions::metrics_history_limit must be >= 1");
  }
  if (options.checkpoint_every < 1) {
    return Status::InvalidArgument(
        "ServeOptions::checkpoint_every must be >= 1");
  }
  if (options.pipeline_depth < 1) {
    return Status::InvalidArgument(
        "ServeOptions::pipeline_depth must be >= 1");
  }
  if (options.halt_at_stage < 0 || options.halt_at_stage > 2) {
    return Status::InvalidArgument(
        "ServeOptions::halt_at_stage must be in [0, 2]");
  }
  if (options.stage_jitter_max_micros < 0) {
    return Status::InvalidArgument(
        "ServeOptions::stage_jitter_max_micros must be >= 0");
  }
  std::unique_ptr<ArrangementService> service(
      new ArrangementService(std::move(instance), options));
  IGEPA_RETURN_IF_ERROR(service->Bootstrap());
  if (!options.durable_dir.empty()) {
    IGEPA_RETURN_IF_ERROR(service->InitDurable());
  }
  return service;
}

Result<std::unique_ptr<ArrangementService>> ArrangementService::Recover(
    const ServeOptions& options) {
  if (options.durable_dir.empty()) {
    return Status::InvalidArgument(
        "Recover: ServeOptions::durable_dir must be set");
  }
  if (options.checkpoint_every < 1) {
    return Status::InvalidArgument(
        "ServeOptions::checkpoint_every must be >= 1");
  }
  if (options.pipeline_depth < 1) {
    return Status::InvalidArgument(
        "ServeOptions::pipeline_depth must be >= 1");
  }
  IGEPA_ASSIGN_OR_RETURN(EngineSnapshot snap,
                         Checkpointer::Load(options.durable_dir));
  if (!snap.instance.has_value()) {
    return Status::Internal("loaded snapshot has no instance");
  }
  core::Instance instance = std::move(*snap.instance);
  snap.instance.reset();
  std::unique_ptr<ArrangementService> service(
      new ArrangementService(std::move(instance), options));
  IGEPA_RETURN_IF_ERROR(service->RestoreAndReplay(std::move(snap)));
  return service;
}

ArrangementService::~ArrangementService() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Destruction cannot drain: discard whatever is still queued.
    queue_.clear();
  }
  Stop();
}

Status ArrangementService::Bootstrap() {
  core::AdmissibleOptions admissible = options_.admissible;
  admissible.num_threads = options_.num_threads;
  catalog_ = core::AdmissibleCatalog::Build(instance_, admissible);
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution base_sol,
      core::SolveBenchmarkLpStructured(instance_, catalog_, dual_, &warm_));
  fractional_.lp = std::move(base_sol);
  fractional_.structured = true;
  Rng round_rng = master_.Fork();
  IGEPA_ASSIGN_OR_RETURN(
      Arrangement base_arr,
      core::RoundFractional(instance_, catalog_, fractional_, &round_rng,
                            round_options_, /*stats=*/nullptr,
                            &rounding_state_));
  IGEPA_RETURN_IF_ERROR(base_arr.CheckFeasible(instance_));
  const double utility = base_arr.Utility(instance_);
  Publish(/*epoch=*/-1, std::move(base_arr), fractional_.lp.objective,
          utility);
  return Status::OK();
}

Status ArrangementService::InitDurable() {
  IGEPA_RETURN_IF_ERROR(Checkpointer::EnsureDirectory(options_.durable_dir));
  struct stat st;
  if (::stat(Checkpointer::SnapshotPath(options_.durable_dir).c_str(), &st) ==
      0) {
    return Status::AlreadyExists(
        "durable directory " + options_.durable_dir +
        " already holds a snapshot; use ArrangementService::Recover");
  }
  // A WAL with no snapshot next to it is unreachable leftovers (its records
  // address state we no longer have); the epoch-0 checkpoint truncates it.
  std::vector<WalRecord> orphaned;
  IGEPA_ASSIGN_OR_RETURN(
      wal_, DeltaWal::Open(Checkpointer::WalPath(options_.durable_dir),
                           instance_.num_events(), instance_.num_users(),
                           &orphaned));
  return CheckpointInternal();
}

Status ArrangementService::RestoreAndReplay(EngineSnapshot snap) {
  const auto nv = static_cast<size_t>(instance_.num_events());
  const auto nu = static_cast<size_t>(instance_.num_users());
  // Snapshots are captured against the canonical layout, so a fresh Build on
  // the embedded instance reproduces exactly the catalog every column id in
  // the snapshot addresses. ids_revision is only a fence token between the
  // holders and the catalog — adopting the fresh catalog's value below keeps
  // the fence closed without persisting the token.
  core::AdmissibleOptions admissible = options_.admissible;
  admissible.num_threads = options_.num_threads;
  catalog_ = core::AdmissibleCatalog::Build(instance_, admissible);
  const auto cols = static_cast<size_t>(catalog_.num_columns());
  if (snap.mu.size() != nv || snap.choice.size() != nu ||
      snap.choice_value.size() != nu ||
      (!snap.stale.empty() && snap.stale.size() != nu) ||
      snap.sampled_col.size() != nu || snap.demand.size() != nv ||
      snap.cutoff.size() != nv || snap.x.size() != cols) {
    return Status::IOError(
        "snapshot state sizes do not match the catalog rebuilt from its "
        "instance");
  }
  for (const int32_t j : snap.choice) {
    if (j < -1 || j >= catalog_.num_columns()) {
      return Status::IOError("snapshot warm choice out of catalog range");
    }
  }
  for (const int32_t j : snap.sampled_col) {
    if (j < -1 || j >= catalog_.num_columns()) {
      return Status::IOError("snapshot sampled column out of catalog range");
    }
  }

  warm_.mu = std::move(snap.mu);
  warm_.choice = std::move(snap.choice);
  warm_.choice_value = std::move(snap.choice_value);
  warm_.stale = std::move(snap.stale);
  warm_.catalog_revision = catalog_.ids_revision();
  rounding_state_.sampled_col = std::move(snap.sampled_col);
  rounding_state_.demand = std::move(snap.demand);
  rounding_state_.cutoff = std::move(snap.cutoff);
  rounding_state_.catalog_revision = catalog_.ids_revision();
  fractional_.lp.status = static_cast<lp::SolveStatus>(snap.lp_status);
  fractional_.lp.objective = snap.lp_objective;
  fractional_.lp.upper_bound = snap.lp_upper_bound;
  fractional_.lp.iterations = snap.lp_iterations;
  fractional_.lp.x = std::move(snap.x);
  fractional_.lp.duals = std::move(snap.duals);
  fractional_.structured = true;
  master_.set_state(snap.rng_state);
  next_epoch_ = snap.next_epoch;
  next_version_ = snap.next_version;
  // Counters restart from what provably reached an epoch; queue-only
  // submissions died with the process (see the durability contract).
  deltas_applied_ = snap.deltas_applied;
  deltas_submitted_ = snap.deltas_applied;
  applied_cursor_ = snap.deltas_applied;
  epochs_total_ = snap.next_epoch;

  // Republish the checkpointed arrangement — a pure function of sampled_col
  // (RepairSampledColumns pins that), so it needs no persistence of its own.
  // It was originally published as version next_version - 1; stepping the
  // counter back keeps the recovered version numbering identical to the
  // uninterrupted run's.
  IGEPA_ASSIGN_OR_RETURN(
      Arrangement restored,
      core::RepairSampledColumns(instance_, catalog_,
                                 rounding_state_.sampled_col));
  IGEPA_RETURN_IF_ERROR(restored.CheckFeasible(instance_));
  const double restored_utility = restored.Utility(instance_);
  --next_version_;
  Publish(next_epoch_ == 0 ? -1 : next_epoch_ - 1, std::move(restored),
          fractional_.lp.objective, restored_utility);

  // Replay the WAL tail through the identical warm-tick pipeline. This is
  // NOT RunEpochInternal: no queue, no WAL re-append, no timing samples, no
  // crash hook — just the engine arithmetic, which is all that determinism
  // cares about.
  std::vector<WalRecord> records;
  IGEPA_ASSIGN_OR_RETURN(
      wal_, DeltaWal::Open(Checkpointer::WalPath(options_.durable_dir),
                           instance_.num_events(), instance_.num_users(),
                           &records));
  for (WalRecord& record : records) {
    if (record.epoch < next_epoch_) {
      // Logged before the snapshot was taken: the crash hit between the
      // snapshot rename and the WAL truncate. Already folded in; skip.
      continue;
    }
    if (record.epoch != next_epoch_) {
      return Status::IOError("WAL gap: expected epoch " +
                             std::to_string(next_epoch_) + ", found " +
                             std::to_string(record.epoch));
    }
    Rng epoch_rng = master_.Fork();
    auto tick = core::ApplyWarmTick(&instance_, &catalog_, &warm_,
                                    &rounding_state_, &fractional_,
                                    record.batch, &epoch_rng, dual_,
                                    delta_options_, round_options_);
    if (!tick.ok()) return tick.status();
    EpochMetrics metrics;
    metrics.epoch = next_epoch_++;
    metrics.deltas_coalesced = record.coalesced;
    metrics.touched_users = tick->touched_users;
    metrics.event_updates = tick->event_updates;
    metrics.compacted = tick->compacted;
    metrics.live_columns = catalog_.num_live_columns();
    metrics.lp_objective = fractional_.lp.objective;
    metrics.lp_iterations = fractional_.lp.iterations;
    metrics.utility = tick->arrangement.Utility(instance_);
    Publish(metrics.epoch, std::move(tick->arrangement), metrics.lp_objective,
            metrics.utility);
    metrics.snapshot_version = next_version_ - 1;
    deltas_applied_ += record.coalesced;
    deltas_submitted_ += record.coalesced;
    applied_cursor_ += record.coalesced;
    ++epochs_total_;
    history_.push_back(metrics);
  }
  // Fold the replayed tail into a fresh snapshot so the directory is clean
  // (and a crash loop cannot grow the WAL without bound).
  return CheckpointInternal();
}

Status ArrangementService::CheckpointInternal() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("Checkpoint: service is not durable");
  }
  if (!catalog_.canonical()) {
    // Snapshot column ids must address the unique canonical Build layout so
    // recovery can rebuild the catalog from the instance alone. Compact is
    // pinned bit-identical to Build, and solves/rounds are pinned
    // bit-identical on dirty vs compacted catalogs, so canonicalizing here
    // never changes what the engine computes next.
    const std::vector<int32_t> remap = catalog_.Compact();
    warm_.Remap(remap, catalog_.ids_revision());
    rounding_state_.Remap(remap, catalog_.ids_revision());
    std::vector<double> new_x(static_cast<size_t>(catalog_.num_columns()),
                              0.0);
    for (size_t j = 0; j < remap.size() && j < fractional_.lp.x.size(); ++j) {
      if (remap[j] >= 0) {
        new_x[static_cast<size_t>(remap[j])] = fractional_.lp.x[j];
      }
    }
    fractional_.lp.x = std::move(new_x);
  }
  EngineSnapshot snap;
  snap.next_epoch = next_epoch_;
  snap.next_version = next_version_;
  // The ENGINE's applied cursor, not the commit-side deltas_applied_: in
  // pipelined mode the latter lags by in-flight commit tasks, and a snapshot
  // must describe the engine state it captures. Sequentially the two are
  // always equal here, so snapshot bytes are unchanged.
  snap.deltas_applied = applied_cursor_;
  snap.rng_state = master_.state();
  snap.mu = warm_.mu;
  snap.choice = warm_.choice;
  snap.choice_value = warm_.choice_value;
  snap.stale = warm_.stale;
  snap.sampled_col = rounding_state_.sampled_col;
  snap.demand = rounding_state_.demand;
  snap.cutoff = rounding_state_.cutoff;
  snap.lp_status = static_cast<int32_t>(fractional_.lp.status);
  snap.lp_objective = fractional_.lp.objective;
  snap.lp_upper_bound = fractional_.lp.upper_bound;
  snap.lp_iterations = fractional_.lp.iterations;
  snap.x = fractional_.lp.x;
  snap.duals = fractional_.lp.duals;
  snap.instance.emplace(instance_);
  IGEPA_RETURN_IF_ERROR(Checkpointer::Write(options_.durable_dir, snap));
  // Only after the snapshot rename is durable may the WAL shrink; recovery
  // additionally skips records older than the snapshot, so a crash between
  // these two steps loses nothing. In pipelined mode the ingest stage may
  // have appended records the engine has not applied yet — those are NOT in
  // this snapshot, so the truncate is skipped and recovery's stale-record
  // skip drops the already-captured prefix instead.
  std::lock_guard<std::mutex> wal_lock(wal_mutex_);
  if (wal_last_appended_epoch_ < next_epoch_) {
    return wal_->Reset();
  }
  return Status::OK();
}

Status ArrangementService::Checkpoint() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "Checkpoint: background epoch loop is running");
    }
    if (inline_epoch_) {
      return Status::FailedPrecondition("Checkpoint: an epoch is in progress");
    }
    if (!last_error_.ok()) return last_error_;
    inline_epoch_ = true;
  }
  const Status status = CheckpointInternal();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    inline_epoch_ = false;
    if (!status.ok() && last_error_.ok()) last_error_ = status;
  }
  return status;
}

Status ArrangementService::Submit(InstanceDelta delta) {
  // Validate against the fixed id space at the door (the shared
  // core::ValidateDelta — one definition of "well-formed delta" for every
  // consumer), so a batch epoch can never fail on ids and a bad client
  // delta cannot poison the engine.
  IGEPA_RETURN_IF_ERROR(core::ValidateDelta(instance_.num_events(),
                                            instance_.num_users(), delta));

  bool wake = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (static_cast<int64_t>(queue_.size()) >=
        static_cast<int64_t>(options_.queue_capacity)) {
      ++deltas_rejected_;
      return Status::ResourceExhausted(
          "Submit: queue full (" + std::to_string(options_.queue_capacity) +
          " pending deltas)");
    }
    ++deltas_submitted_;
    queue_.push_back({std::move(delta), std::chrono::steady_clock::now()});
    wake = running_ && static_cast<int64_t>(queue_.size()) >=
                           static_cast<int64_t>(options_.max_batch);
  }
  if (wake) queue_cv_.notify_all();
  return Status::OK();
}

Result<EpochMetrics> ArrangementService::RunEpoch() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_) {
      return Status::FailedPrecondition(
          "RunEpoch: background epoch loop is running");
    }
    if (inline_epoch_) {
      return Status::FailedPrecondition(
          "RunEpoch: another RunEpoch is in progress");
    }
    if (!last_error_.ok()) return last_error_;
    // Claimed under the same lock as the running_ check, so Start() cannot
    // slip a background loop in while this epoch runs unlocked.
    inline_epoch_ = true;
  }
  Result<EpochMetrics> metrics = RunEpochInternal();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    inline_epoch_ = false;
  }
  return metrics;
}

ArrangementService::EpochTask ArrangementService::CoalesceLocked() {
  // Coalesce: pop up to max_batch pending deltas in submit order. Updates
  // inside an InstanceDelta apply in order with later-wins semantics, so
  // concatenation IS sequential application of the popped deltas.
  EpochTask task;
  task.started = std::chrono::steady_clock::now();
  while (!queue_.empty() && task.coalesced < options_.max_batch) {
    Pending& p = queue_.front();
    task.batch.user_updates.insert(
        task.batch.user_updates.end(),
        std::make_move_iterator(p.delta.user_updates.begin()),
        std::make_move_iterator(p.delta.user_updates.end()));
    task.batch.event_updates.insert(task.batch.event_updates.end(),
                                    p.delta.event_updates.begin(),
                                    p.delta.event_updates.end());
    task.batch.graph_updates.insert(task.batch.graph_updates.end(),
                                    p.delta.graph_updates.begin(),
                                    p.delta.graph_updates.end());
    task.batch.interest_updates.insert(task.batch.interest_updates.end(),
                                       p.delta.interest_updates.begin(),
                                       p.delta.interest_updates.end());
    task.enqueue_times.push_back(p.enqueued);
    queue_.pop_front();
    ++task.coalesced;
  }
  if (!task.enqueue_times.empty()) {
    task.max_queue_delay_seconds =
        std::chrono::duration<double>(task.started - task.enqueue_times.front())
            .count();
  }
  return task;
}

Result<EpochMetrics> ArrangementService::RunEpochInternal() {
  Stopwatch watch;

  EpochTask task;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    task = CoalesceLocked();
  }
  const int32_t coalesced = task.coalesced;
  InstanceDelta batch = std::move(task.batch);
  std::vector<std::chrono::steady_clock::time_point> enqueue_times =
      std::move(task.enqueue_times);
  const double max_queue_delay = task.max_queue_delay_seconds;

  EpochMetrics metrics;
  metrics.deltas_coalesced = coalesced;
  if (coalesced == 0) {
    // No-op epoch: nothing to solve, nothing published, no RNG consumed.
    metrics.epoch = next_epoch_;
    metrics.snapshot_version = next_version_ - 1;
    metrics.lp_objective = fractional_.lp.objective;
    return metrics;
  }

  // ---- Durability point: the batch is WAL-logged and fsync'd BEFORE the
  // epoch computes anything, so once this epoch's effects are observable a
  // crash can always replay them. A failed append poisons the service — the
  // alternative would be applying a batch that recovery cannot reproduce.
  if (wal_ != nullptr) {
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    if (Status logged = wal_->Append(next_epoch_, coalesced, batch);
        !logged.ok()) {
      std::unique_lock<std::mutex> lock(mutex_);
      last_error_ = logged;
      return logged;
    }
    wal_last_appended_epoch_ = next_epoch_;
  }
  metrics.ingest_seconds = watch.ElapsedSeconds();

  // ---- One tick of the shared incremental pipeline on the coalesced batch
  // (core::ApplyWarmTick — the same call a replay tick makes, which is what
  // keeps the service and the replay driver bit-identical by construction).
  Rng epoch_rng = master_.Fork();
  auto tick = core::ApplyWarmTick(&instance_, &catalog_, &warm_,
                                  &rounding_state_, &fractional_, batch,
                                  &epoch_rng, dual_, delta_options_,
                                  round_options_);
  if (!tick.ok()) {
    std::unique_lock<std::mutex> lock(mutex_);
    last_error_ = tick.status();
    return tick.status();
  }

  metrics.epoch = next_epoch_++;
  metrics.touched_users = tick->touched_users;
  metrics.event_updates = tick->event_updates;
  metrics.compacted = tick->compacted;
  metrics.live_columns = catalog_.num_live_columns();
  metrics.lp_objective = fractional_.lp.objective;
  metrics.lp_iterations = fractional_.lp.iterations;
  metrics.utility = tick->arrangement.Utility(instance_);
  metrics.max_queue_delay_seconds = max_queue_delay;
  metrics.solve_seconds = watch.ElapsedSeconds() - metrics.ingest_seconds;
  applied_cursor_ += coalesced;

  Publish(metrics.epoch, std::move(tick->arrangement), metrics.lp_objective,
          metrics.utility);
  metrics.snapshot_version = next_version_ - 1;
  metrics.epoch_seconds = watch.ElapsedSeconds();
  metrics.commit_seconds =
      metrics.epoch_seconds - metrics.ingest_seconds - metrics.solve_seconds;

  {
    const auto published = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    deltas_applied_ += coalesced;
    ++epochs_total_;
    total_epoch_seconds_ += metrics.epoch_seconds;
    history_.push_back(metrics);
    while (static_cast<int64_t>(history_.size()) >
           static_cast<int64_t>(std::max(1, options_.metrics_history_limit))) {
      history_.pop_front();
    }
    PushSample(&epoch_seconds_samples_, &epoch_seconds_next_,
               metrics.epoch_seconds);
    PushSample(&ingest_seconds_samples_, &ingest_seconds_next_,
               metrics.ingest_seconds);
    PushSample(&solve_seconds_samples_, &solve_seconds_next_,
               metrics.solve_seconds);
    PushSample(&commit_seconds_samples_, &commit_seconds_next_,
               metrics.commit_seconds);
    for (const auto& enqueued : enqueue_times) {
      PushSample(&publish_latency_samples_, &publish_latency_next_,
                 std::chrono::duration<double>(published - enqueued).count());
    }
  }

  if (wal_ != nullptr && next_epoch_ % options_.checkpoint_every == 0) {
    if (Status checkpointed = CheckpointInternal(); !checkpointed.ok()) {
      std::unique_lock<std::mutex> lock(mutex_);
      last_error_ = checkpointed;
      return checkpointed;
    }
  }

  if (crash_after_epoch_ >= 0 && metrics.epoch == crash_after_epoch_) {
    // CI kill-point hook (IGEPA_CRASH_AFTER_EPOCH): die unceremoniously
    // AFTER this epoch became durable and visible — no destructors, no
    // flushes — so the recovery suite can prove the restart reproduces it
    // bit for bit.
    std::raise(SIGKILL);
  }
  return metrics;
}

void ArrangementService::PushSample(std::vector<double>* ring, size_t* next,
                                    double value) {
  if (ring->size() < kLatencySampleCap) {
    ring->push_back(value);
  } else {
    (*ring)[*next] = value;
    *next = (*next + 1) % kLatencySampleCap;
  }
}

void ArrangementService::Publish(int64_t epoch, Arrangement arrangement,
                                 double lp_objective, double utility) {
  InstallSnapshot(std::make_shared<const ArrangementSnapshot>(
      next_version_++, epoch, std::move(arrangement), lp_objective, utility));
}

void ArrangementService::InstallSnapshot(
    std::shared_ptr<const ArrangementSnapshot> snapshot) {
  // Snapshot construction happens before this call (outside the lock); the
  // critical section is one pointer swap.
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

Status ArrangementService::Start() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_) {
    return Status::FailedPrecondition("Start: epoch loop already running");
  }
  if (inline_epoch_) {
    return Status::FailedPrecondition(
        "Start: a caller-driven RunEpoch is in progress");
  }
  if (!last_error_.ok()) return last_error_;
  if (loop_.joinable()) loop_.join();  // previous loop fully stopped
  running_ = true;
  stop_requested_ = false;
  if (options_.pipeline_depth > 1) {
    engine_queue_ =
        std::make_shared<StageQueue<EpochTask>>(options_.pipeline_depth);
    commit_queue_ =
        std::make_shared<StageQueue<CommitTask>>(options_.pipeline_depth);
    loop_ = std::thread([this] { PipelineLoop(); });
  } else {
    loop_ = std::thread([this] { BackgroundLoop(); });
  }
  return Status::OK();
}

Status ArrangementService::Stop() {
  // Serialize Stop() calls (including the destructor's): the loser of a
  // concurrent Stop must wait for the winner's join, not return while the
  // loop thread is still inside an epoch. The thread handle is additionally
  // claimed under mutex_ so std::thread::join — which is not thread-safe —
  // is never entered twice.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_ && !loop_.joinable()) return last_error_;
    stop_requested_ = true;
    to_join = std::move(loop_);
  }
  queue_cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::unique_lock<std::mutex> lock(mutex_);
  running_ = false;
  return last_error_;
}

void ArrangementService::BackgroundLoop() {
  const auto period = std::chrono::duration<double, std::milli>(
      options_.epoch_ms > 0 ? options_.epoch_ms : 1.0);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait_for(lock, period, [this] {
        return stop_requested_ ||
               static_cast<int64_t>(queue_.size()) >=
                   static_cast<int64_t>(options_.max_batch);
      });
      if (stop_requested_ && queue_.empty()) break;
      if (!last_error_.ok()) break;
    }
    auto metrics = RunEpochInternal();
    if (!metrics.ok()) break;  // RunEpochInternal latched last_error_
  }
  std::unique_lock<std::mutex> lock(mutex_);
  running_ = false;
}

// ---- Pipelined background mode (pipeline_depth >= 2; DESIGN.md §7). Three
// stage threads — ingest, engine, commit — with strictly partitioned state:
// ingest owns the submit queue drain and all WAL appends, the engine is the
// ONLY writer of engine state (instance/catalog/warm/rounding/fractional/
// master RNG/epoch+version counters) and the only checkpoint taker, commit
// owns the snapshot install and the mutex_-guarded bookkeeping. Handoffs are
// by-value through bounded StageQueues, so no stage ever aliases another's
// mutable data, and the queue mutexes give the cross-thread happens-before.

void ArrangementService::PipelineLoop() {
  std::thread engine([this] { EngineStage(); });
  std::thread commit([this] { CommitStage(); });
  IngestStage();
  // Close front to back: the engine drains whatever ingest admitted, then
  // closes the commit queue itself; the extra Close here is an idempotent
  // safety net for the engine-error path.
  engine_queue_->Close();
  engine.join();
  commit_queue_->Close();
  commit.join();
  std::unique_lock<std::mutex> lock(mutex_);
  running_ = false;
}

void ArrangementService::IngestStage() {
  const auto period = std::chrono::duration<double, std::milli>(
      options_.epoch_ms > 0 ? options_.epoch_ms : 1.0);
  Rng jitter(options_.stage_jitter_seed ^ 0xA11CE0FULL);
  // Epoch ids are assigned here, in admit order; the engine consumes them in
  // the same order (FIFO queue) and advances next_epoch_ in lockstep. Stable
  // to read once at stage start: the engine thread does not exist yet.
  int64_t ingest_epoch = next_epoch_;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait_for(lock, period, [this] {
        return stop_requested_ ||
               static_cast<int64_t>(queue_.size()) >=
                   static_cast<int64_t>(options_.max_batch);
      });
      if (!last_error_.ok()) return;
      if (halted_.load(std::memory_order_acquire)) return;
      if (stop_requested_ && queue_.empty()) return;
    }
    MaybeJitter(&jitter);
    if (halted_.load(std::memory_order_acquire)) return;
    Stopwatch ingest_watch;
    // Admit up to pipeline_depth epoch batches per wakeup so one fsync below
    // covers the whole group (group commit) — the durability cost amortizes
    // with depth while each batch still becomes durable before its handoff.
    std::vector<EpochTask> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!queue_.empty() && static_cast<int32_t>(group.size()) <
                                    options_.pipeline_depth) {
        EpochTask task = CoalesceLocked();
        if (task.coalesced == 0) break;
        task.epoch = ingest_epoch++;
        group.push_back(std::move(task));
      }
    }
    if (group.empty()) continue;
    if (wal_ != nullptr) {
      std::lock_guard<std::mutex> wal_lock(wal_mutex_);
      Status logged = Status::OK();
      for (const EpochTask& task : group) {
        logged = wal_->Append(task.epoch, task.coalesced, task.batch,
                              /*sync=*/false);
        if (!logged.ok()) break;
      }
      if (logged.ok()) logged = wal_->Sync();
      if (!logged.ok()) {
        // A batch that might not be durable must never reach the engine —
        // recovery could not reproduce its effects. Poison and shut down.
        {
          std::unique_lock<std::mutex> lock(mutex_);
          if (last_error_.ok()) last_error_ = logged;
        }
        engine_queue_->Close();
        return;
      }
      wal_last_appended_epoch_ = group.back().epoch;
    }
    const double ingest_seconds =
        ingest_watch.ElapsedSeconds() / static_cast<double>(group.size());
    for (EpochTask& task : group) {
      task.ingest_seconds = ingest_seconds;
      const int64_t epoch = task.epoch;
      // Stage-0 boundary: the batch is durable but not handed off — a crash
      // or halt here leaves a WAL record the engine never applied, which
      // recovery replays.
      if (StageBoundary(0, epoch)) return;
      if (!engine_queue_->Push(std::move(task))) return;  // engine failed
    }
  }
}

void ArrangementService::EngineStage() {
  Rng jitter(options_.stage_jitter_seed ^ 0xE46142ULL);
  auto fail = [this](const Status& status) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (last_error_.ok()) last_error_ = status;
    }
    // Unblock a pushing ingest and a popping commit; PipelineLoop joins.
    engine_queue_->Close();
    commit_queue_->Close();
  };
  EpochTask task;
  while (engine_queue_->Pop(&task)) {
    if (halted_.load(std::memory_order_acquire)) continue;  // drain-discard
    MaybeJitter(&jitter);
    if (task.epoch != next_epoch_) {
      fail(Status::Internal("pipeline epoch out of order: ingest handed " +
                            std::to_string(task.epoch) + ", engine expects " +
                            std::to_string(next_epoch_)));
      return;
    }
    Stopwatch solve_watch;
    // The fork happens strictly after the ingest stage made this batch
    // durable (queue handoff order), preserving WAL-before-fork; exactly one
    // fork per non-empty epoch in epoch order keeps the RNG stream — and so
    // every published arrangement — bit-identical to the sequential loop.
    Rng epoch_rng = master_.Fork();
    auto tick = core::ApplyWarmTick(&instance_, &catalog_, &warm_,
                                    &rounding_state_, &fractional_, task.batch,
                                    &epoch_rng, dual_, delta_options_,
                                    round_options_);
    if (!tick.ok()) {
      fail(tick.status());
      return;
    }
    CommitTask out;
    out.metrics.epoch = next_epoch_++;
    out.metrics.deltas_coalesced = task.coalesced;
    out.metrics.touched_users = tick->touched_users;
    out.metrics.event_updates = tick->event_updates;
    out.metrics.compacted = tick->compacted;
    out.metrics.live_columns = catalog_.num_live_columns();
    out.metrics.lp_objective = fractional_.lp.objective;
    out.metrics.lp_iterations = fractional_.lp.iterations;
    out.metrics.utility = tick->arrangement.Utility(instance_);
    out.metrics.max_queue_delay_seconds = task.max_queue_delay_seconds;
    out.metrics.ingest_seconds = task.ingest_seconds;
    applied_cursor_ += task.coalesced;
    // Version assignment and snapshot construction stay in the engine (the
    // sole owner of next_version_) so a checkpoint taken below captures the
    // same counters a sequential run would; the commit stage only swaps the
    // pointer in.
    out.snapshot = std::make_shared<const ArrangementSnapshot>(
        next_version_++, out.metrics.epoch, std::move(tick->arrangement),
        out.metrics.lp_objective, out.metrics.utility);
    out.metrics.snapshot_version = next_version_ - 1;
    out.enqueue_times = std::move(task.enqueue_times);
    out.started = task.started;
    if (wal_ != nullptr && next_epoch_ % options_.checkpoint_every == 0) {
      if (Status checkpointed = CheckpointInternal(); !checkpointed.ok()) {
        fail(checkpointed);
        return;
      }
    }
    out.metrics.solve_seconds = solve_watch.ElapsedSeconds();
    // Stage-1 boundary: applied and (possibly) checkpointed, never
    // published — recovery rebuilds this state from the WAL record.
    if (StageBoundary(1, out.metrics.epoch)) continue;
    if (!commit_queue_->Push(std::move(out))) return;
  }
  commit_queue_->Close();
}

void ArrangementService::CommitStage() {
  Rng jitter(options_.stage_jitter_seed ^ 0xC03317ULL);
  CommitTask task;
  while (commit_queue_->Pop(&task)) {
    if (halted_.load(std::memory_order_acquire)) continue;  // drain-discard
    MaybeJitter(&jitter);
    Stopwatch commit_watch;
    InstallSnapshot(std::move(task.snapshot));
    const auto published = std::chrono::steady_clock::now();
    task.metrics.commit_seconds = commit_watch.ElapsedSeconds();
    task.metrics.epoch_seconds =
        std::chrono::duration<double>(published - task.started).count();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      deltas_applied_ += task.metrics.deltas_coalesced;
      ++epochs_total_;
      total_epoch_seconds_ += task.metrics.epoch_seconds;
      history_.push_back(task.metrics);
      while (static_cast<int64_t>(history_.size()) >
             static_cast<int64_t>(
                 std::max(1, options_.metrics_history_limit))) {
        history_.pop_front();
      }
      PushSample(&epoch_seconds_samples_, &epoch_seconds_next_,
                 task.metrics.epoch_seconds);
      PushSample(&ingest_seconds_samples_, &ingest_seconds_next_,
                 task.metrics.ingest_seconds);
      PushSample(&solve_seconds_samples_, &solve_seconds_next_,
                 task.metrics.solve_seconds);
      PushSample(&commit_seconds_samples_, &commit_seconds_next_,
                 task.metrics.commit_seconds);
      for (const auto& enqueued : task.enqueue_times) {
        PushSample(&publish_latency_samples_, &publish_latency_next_,
                   std::chrono::duration<double>(published - enqueued).count());
      }
    }
    // Stage-2 boundary: the epoch is fully visible (matches the sequential
    // IGEPA_CRASH_AFTER_EPOCH kill point).
    StageBoundary(2, task.metrics.epoch);
  }
}

bool ArrangementService::StageBoundary(int32_t stage, int64_t epoch) {
  if (crash_after_epoch_ >= 0 && epoch == crash_after_epoch_) {
    const int32_t crash_stage = crash_at_stage_ >= 0 ? crash_at_stage_ : 2;
    if (stage == crash_stage) {
      // CI kill-point hook: die unceremoniously — no destructors, no
      // flushes — so the recovery suite can prove the restart reproduces
      // the durable state bit for bit.
      std::raise(SIGKILL);
    }
  }
  if (options_.halt_after_epoch >= 0 && epoch == options_.halt_after_epoch &&
      stage == options_.halt_at_stage) {
    halted_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

void ArrangementService::MaybeJitter(Rng* jitter_rng) {
  if (options_.stage_jitter_max_micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(jitter_rng->NextIndex(
      static_cast<uint64_t>(options_.stage_jitter_max_micros) + 1)));
}

ServiceStats ArrangementService::Stats() const {
  ServiceStats stats;
  stats.pipeline_depth = options_.pipeline_depth;
  std::shared_ptr<const ArrangementSnapshot> snap = snapshot();
  std::vector<double> epoch_sorted;
  std::vector<double> publish_sorted;
  std::vector<double> ingest_sorted;
  std::vector<double> solve_sorted;
  std::vector<double> commit_sorted;
  std::shared_ptr<StageQueue<EpochTask>> engine_queue;
  std::shared_ptr<StageQueue<CommitTask>> commit_queue;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stats.epochs = epochs_total_;
    stats.total_epoch_seconds = total_epoch_seconds_;
    stats.deltas_submitted = deltas_submitted_;
    stats.deltas_applied = deltas_applied_;
    stats.deltas_rejected = deltas_rejected_;
    stats.deltas_pending = static_cast<int64_t>(queue_.size());
    epoch_sorted = epoch_seconds_samples_;  // bounded copies; sort unlocked
    publish_sorted = publish_latency_samples_;
    ingest_sorted = ingest_seconds_samples_;
    solve_sorted = solve_seconds_samples_;
    commit_sorted = commit_seconds_samples_;
    engine_queue = engine_queue_;
    commit_queue = commit_queue_;
  }
  if (snap != nullptr) {
    stats.snapshot_version = snap->version();
    stats.lp_objective = snap->lp_objective();
    stats.utility = snap->utility();
  }
  if (engine_queue != nullptr) {
    const StageQueueStats qs = engine_queue->stats();
    stats.engine_queue_peak = qs.peak_size;
    stats.ingest_stalls = qs.push_waits;
  }
  if (commit_queue != nullptr) {
    stats.commit_queue_peak = commit_queue->stats().peak_size;
  }
  auto fill = [](std::vector<double>* sorted, double* p50, double* p99) {
    std::sort(sorted->begin(), sorted->end());
    if (sorted->empty()) return;
    *p50 = SortedPercentile(*sorted, 0.50);
    *p99 = SortedPercentile(*sorted, 0.99);
  };
  fill(&epoch_sorted, &stats.p50_epoch_seconds, &stats.p99_epoch_seconds);
  fill(&publish_sorted, &stats.p50_publish_latency_seconds,
       &stats.p99_publish_latency_seconds);
  fill(&ingest_sorted, &stats.p50_ingest_seconds, &stats.p99_ingest_seconds);
  fill(&solve_sorted, &stats.p50_solve_seconds, &stats.p99_solve_seconds);
  fill(&commit_sorted, &stats.p50_commit_seconds, &stats.p99_commit_seconds);
  return stats;
}

std::vector<EpochMetrics> ArrangementService::MetricsHistory() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return std::vector<EpochMetrics>(history_.begin(), history_.end());
}

Status ArrangementService::last_error() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return last_error_;
}

}  // namespace serve
}  // namespace igepa
