#include "serve/delta_wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "io/delta_io.h"
#include "util/crc32.h"

namespace igepa {
namespace serve {
namespace {

constexpr char kMagic[4] = {'I', 'G', 'W', 'L'};
/// A single epoch batch is bounded by queue_capacity single-mutation deltas;
/// anything near this is a corrupt length field, not a real record.
constexpr uint32_t kMaxPayload = 1u << 30;

void PutU32(unsigned char* p, uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void PutU64(unsigned char* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status WriteFully(int fd, const void* data, size_t size,
                  const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write failed on " + path + ": " +
                             std::strerror(errno));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFile(const std::string& path, int fd, std::string* out) {
  out->clear();
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read failed on " + path + ": " +
                             std::strerror(errno));
    }
    if (n == 0) return Status::OK();
    out->append(buffer, static_cast<size_t>(n));
  }
}

}  // namespace

Result<std::unique_ptr<DeltaWal>> DeltaWal::Open(
    const std::string& path, int32_t num_events, int32_t num_users,
    std::vector<WalRecord>* records_out) {
  records_out->clear();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  std::string data;
  if (Status s = ReadFile(path, fd, &data); !s.ok()) {
    ::close(fd);
    return s;
  }

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  const size_t size = data.size();
  size_t offset = 0;       // start of the record being scanned
  size_t valid_end = 0;    // end of the last fully validated record
  int64_t last_epoch = -1;
  Status corrupt = Status::OK();
  while (offset < size) {
    auto bad = [&](const std::string& why) {
      return Status::IOError("corrupt WAL record at " + path + " offset " +
                             std::to_string(offset) + ": " + why);
    };
    if (offset + kHeaderSize > size) break;  // torn header
    if (std::memcmp(bytes + offset, kMagic, 4) != 0) {
      // An append tears by writing a PREFIX of one record, so a short file is
      // the only legitimate crash shape; wrong bytes under an intact length
      // mean damage, not a tear.
      corrupt = bad("bad magic");
      break;
    }
    const uint32_t payload_len = GetU32(bytes + offset + 4);
    const int64_t epoch = static_cast<int64_t>(GetU64(bytes + offset + 8));
    const uint32_t coalesced = GetU32(bytes + offset + 16);
    const uint32_t stored_crc = GetU32(bytes + offset + 20);
    if (payload_len > kMaxPayload) {
      corrupt = bad("implausible payload length " +
                    std::to_string(payload_len));
      break;
    }
    const size_t record_end = offset + kHeaderSize + payload_len;
    if (record_end > size) break;  // torn payload
    uint32_t crc = Crc32(bytes + offset + 4, 16);
    crc = Crc32Update(crc, bytes + offset + kHeaderSize, payload_len);
    if (crc != stored_crc) {
      if (record_end == size) break;  // corrupt FINAL record: a tail, drop it
      corrupt = bad("CRC mismatch with intact records behind it");
      break;
    }
    if (epoch <= last_epoch) {
      corrupt = bad("non-monotonic epoch " + std::to_string(epoch));
      break;
    }
    const std::string payload(data, offset + kHeaderSize, payload_len);
    std::istringstream payload_in(payload);
    auto ticks = io::ReadDeltaStreamCsv(payload_in, path + "[record " +
                                                        std::to_string(epoch) +
                                                        "]");
    if (!ticks.ok() || ticks->size() != 1) {
      corrupt = bad(ticks.ok() ? "payload is not a single-tick delta stream"
                               : ticks.status().message());
      break;
    }
    WalRecord record;
    record.epoch = epoch;
    record.coalesced = static_cast<int32_t>(coalesced);
    record.batch = std::move((*ticks)[0]);
    records_out->push_back(std::move(record));
    last_epoch = epoch;
    offset = record_end;
    valid_end = record_end;
  }
  if (!corrupt.ok()) {
    ::close(fd);
    records_out->clear();
    return corrupt;
  }
  if (valid_end < size) {
    // Torn tail: drop the partial record so the next Append starts clean.
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0 ||
        ::fsync(fd) != 0) {
      const Status s = Status::IOError("cannot truncate torn WAL tail of " +
                                       path + ": " + std::strerror(errno));
      ::close(fd);
      return s;
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    const Status s =
        Status::IOError("cannot seek WAL " + path + ": " +
                        std::strerror(errno));
    ::close(fd);
    return s;
  }
  return std::unique_ptr<DeltaWal>(
      new DeltaWal(path, fd, static_cast<int64_t>(valid_end), num_events,
                   num_users));
}

DeltaWal::~DeltaWal() {
  if (fd_ >= 0) ::close(fd_);
}

Status DeltaWal::Append(int64_t epoch, int32_t coalesced,
                        const core::InstanceDelta& batch, bool sync) {
  std::ostringstream payload_out;
  IGEPA_RETURN_IF_ERROR(io::WriteDeltaStreamCsv(
      {batch}, num_events_, num_users_, payload_out, path_));
  const std::string payload = payload_out.str();

  std::string record(kHeaderSize + payload.size(), '\0');
  auto* header = reinterpret_cast<unsigned char*>(record.data());
  std::memcpy(header, kMagic, 4);
  PutU32(header + 4, static_cast<uint32_t>(payload.size()));
  PutU64(header + 8, static_cast<uint64_t>(epoch));
  PutU32(header + 16, static_cast<uint32_t>(coalesced));
  uint32_t crc = Crc32(header + 4, 16);
  crc = Crc32Update(crc, payload.data(), payload.size());
  PutU32(header + 20, crc);
  std::memcpy(record.data() + kHeaderSize, payload.data(), payload.size());

  IGEPA_RETURN_IF_ERROR(WriteFully(fd_, record.data(), record.size(), path_));
  if (sync && ::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  size_bytes_ += static_cast<int64_t>(record.size());
  return Status::OK();
}

Status DeltaWal::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status DeltaWal::Reset() {
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0 ||
      ::fsync(fd_) != 0) {
    return Status::IOError("cannot reset WAL " + path_ + ": " +
                           std::strerror(errno));
  }
  size_bytes_ = 0;
  return Status::OK();
}

}  // namespace serve
}  // namespace igepa
