#ifndef IGEPA_SERVE_ARRANGEMENT_SERVICE_H_
#define IGEPA_SERVE_ARRANGEMENT_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/benchmark_dual.h"
#include "core/instance.h"
#include "core/instance_delta.h"
#include "core/lp_packing.h"
#include "serve/checkpoint.h"
#include "serve/delta_wal.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stage_queue.h"

namespace igepa {
namespace serve {

/// Options for ArrangementService.
struct ServeOptions {
  /// Worker threads for the catalog build, dual solve and re-round (0 =
  /// hardware concurrency). A pure wall-clock knob: results are bit-identical
  /// for every value.
  int32_t num_threads = 0;
  /// Most deltas coalesced into one epoch batch (>= 1). Larger batches
  /// amortize the warm solve over more mutations; smaller ones publish
  /// fresher snapshots.
  int32_t max_batch = 256;
  /// Submit() backpressure bound: pending (not yet epoch-consumed) deltas
  /// beyond this are rejected with ResourceExhausted (>= 1).
  int32_t queue_capacity = 1024;
  /// Background epoch cadence for Start(); RunEpoch() callers pace
  /// themselves. The loop also wakes early once max_batch deltas are queued.
  double epoch_ms = 100.0;
  /// Algorithm-1 sampling scale for the rounding passes.
  double alpha = 1.0;
  /// Master seed of the service's RNG stream (see the determinism contract
  /// below).
  uint64_t seed = 20190408;
  /// Structured-dual knobs shared by the bootstrap and every warm epoch.
  core::StructuredDualOptions dual;
  /// Enumeration knobs (catalog build and delta re-enumeration).
  core::AdmissibleOptions admissible;
  /// Catalog compaction policy (see CatalogDeltaOptions).
  double compact_tombstone_fraction = 0.25;
  int32_t compact_min_dead_columns = 256;
  /// MetricsHistory() keeps at most this many recent epochs (>= 1); older
  /// entries are dropped so a long-running service's memory stays bounded.
  int32_t metrics_history_limit = 65536;
  /// Durable-state directory (DESIGN.md §7). Empty = in-memory only (the
  /// historical behavior). Non-empty: Create() initializes `<dir>/` with an
  /// epoch-0 snapshot and a delta WAL, every epoch batch is WAL-logged and
  /// fsync'd before it runs, and every checkpoint_every epochs the full
  /// engine state is snapshotted and the WAL truncated. Recover() restarts
  /// from such a directory bit-identically.
  std::string durable_dir;
  /// Snapshot cadence in completed epochs (>= 1, durable mode only). Smaller
  /// values bound WAL replay length; larger ones amortize the snapshot
  /// write.
  int32_t checkpoint_every = 16;
  /// Background epoch pipelining (DESIGN.md §7). 1 = the historical
  /// sequential loop: each epoch runs coalesce -> WAL -> solve -> publish to
  /// completion before the next starts. >= 2 splits the background loop into
  /// three stage threads — ingest (coalesce + WAL group-append), engine
  /// (RNG fork + warm solve + checkpoint), commit (snapshot install +
  /// bookkeeping) — connected by bounded StageQueues of this capacity, so
  /// epoch k+1's coalesce and fsync overlap epoch k's solve, and the WAL
  /// fsync is amortized over up to pipeline_depth epoch batches. Deterministic
  /// pins survive unchanged: for the same admitted batch sequence the
  /// pipelined run publishes bit-identical snapshots to the sequential loop
  /// (the engine stage is the only RNG consumer and the only engine-state
  /// writer), and WAL append + fsync still happen strictly before the fork.
  /// Caller-driven RunEpoch() is always sequential regardless of this knob.
  int32_t pipeline_depth = 1;
  /// ---- Test-only hooks (the interleaving-stress and kill-point suites;
  /// production callers leave all of these at their defaults). ----
  /// Seeded per-stage schedule jitter: when nonzero, every pipeline stage
  /// sleeps a random [0, stage_jitter_max_micros] us (from an Rng forked off
  /// this seed per stage) before each unit of work, randomizing stage
  /// interleavings reproducibly per seed. No effect on outputs — only on
  /// schedules.
  uint64_t stage_jitter_seed = 0;
  int32_t stage_jitter_max_micros = 0;
  /// In-process stage-boundary "crash": when halt_after_epoch >= 0, the
  /// pipeline freezes exactly at stage halt_at_stage (0 = ingest, after that
  /// epoch's WAL batch is durable but before its handoff; 1 = engine, after
  /// apply + any checkpoint but before the publish handoff; 2 = commit, after
  /// the publish) of that epoch: the halting stage latches the service
  /// halted, every stage stops doing work (no further WAL appends, applies,
  /// checkpoints or publishes), and Stop() joins without draining — the
  /// in-process equivalent of SIGKILL at that boundary, so gtest can assert
  /// recovery without forking. Background pipelined mode only.
  int64_t halt_after_epoch = -1;
  int32_t halt_at_stage = 2;
};

/// What one epoch did: how much it coalesced, what the solve cost, and what
/// it published. Returned by RunEpoch and appended to MetricsHistory().
struct EpochMetrics {
  /// 0-based epoch counter (the bootstrap solve is not an epoch).
  int64_t epoch = 0;
  /// Snapshot version this epoch published (bootstrap publishes version 1).
  int64_t snapshot_version = 0;
  int32_t deltas_coalesced = 0;
  int32_t touched_users = 0;
  int32_t event_updates = 0;
  bool compacted = false;
  int32_t live_columns = 0;
  /// Coalesce -> publish wall time.
  double epoch_seconds = 0.0;
  /// Queueing delay of the oldest delta in the batch (submit -> epoch start).
  double max_queue_delay_seconds = 0.0;
  double lp_objective = 0.0;
  int64_t lp_iterations = 0;
  double utility = 0.0;
  /// Per-stage wall time (filled in sequential mode too, where the three
  /// stages run back to back on one thread): ingest = coalesce + WAL
  /// append/fsync (a group-committed pipelined fsync is apportioned evenly
  /// over the batches it covered), solve = warm apply/rescore/dual/re-round,
  /// commit = snapshot install + bookkeeping. In pipelined mode
  /// epoch_seconds additionally includes inter-stage queue residency, so it
  /// can exceed the stage sum.
  double ingest_seconds = 0.0;
  double solve_seconds = 0.0;
  double commit_seconds = 0.0;
};

/// Aggregate service counters plus latency percentiles. Percentiles are
/// computed over per-epoch solve times and per-delta publish latencies
/// (submit -> snapshot publish, including queue wait), each over a sliding
/// window of the most recent ~4k samples so a long-running service's
/// footprint — and the cost of a Stats() call — stays bounded; the counters
/// and total_epoch_seconds cover the whole lifetime.
struct ServiceStats {
  int64_t epochs = 0;
  int64_t snapshot_version = 0;
  int64_t deltas_submitted = 0;
  int64_t deltas_applied = 0;
  int64_t deltas_rejected = 0;
  int64_t deltas_pending = 0;
  double total_epoch_seconds = 0.0;
  double p50_epoch_seconds = 0.0;
  double p99_epoch_seconds = 0.0;
  double p50_publish_latency_seconds = 0.0;
  double p99_publish_latency_seconds = 0.0;
  /// Latest published objective/utility (0 before the first publish).
  double lp_objective = 0.0;
  double utility = 0.0;
  /// ---- Pipeline observability (ServeOptions::pipeline_depth; the stage
  /// percentiles are filled in sequential mode too, the queue counters only
  /// by pipelined background runs — they keep the last run's values after
  /// Stop()). ----
  int32_t pipeline_depth = 1;
  double p50_ingest_seconds = 0.0;
  double p99_ingest_seconds = 0.0;
  double p50_solve_seconds = 0.0;
  double p99_solve_seconds = 0.0;
  double p50_commit_seconds = 0.0;
  double p99_commit_seconds = 0.0;
  /// Peak occupancy of the ingest->engine and engine->commit handoff queues.
  int64_t engine_queue_peak = 0;
  int64_t commit_queue_peak = 0;
  /// Times the ingest stage blocked pushing into a full engine queue
  /// (backpressure: the solve stage is the bottleneck).
  int64_t ingest_stalls = 0;
};

/// An immutable, internally consistent view of one published arrangement.
/// Snapshots are shared with readers via shared_ptr, so a reader holding one
/// keeps it alive for as long as it wants while the service publishes newer
/// versions behind it — no locks, no torn reads.
class ArrangementSnapshot {
 public:
  ArrangementSnapshot(int64_t version, int64_t epoch,
                      core::Arrangement arrangement, double lp_objective,
                      double utility)
      : version_(version),
        epoch_(epoch),
        arrangement_(std::move(arrangement)),
        lp_objective_(lp_objective),
        utility_(utility) {}

  /// Monotonically increasing publish counter (bootstrap = 1).
  int64_t version() const { return version_; }
  /// The epoch that produced this snapshot (-1 for the bootstrap solve).
  int64_t epoch() const { return epoch_; }
  double lp_objective() const { return lp_objective_; }
  double utility() const { return utility_; }

  /// Events assigned to user u (sorted ascending).
  const std::vector<core::EventId>& GetAssignment(core::UserId u) const {
    return arrangement_.EventsOf(u);
  }
  /// Users assigned to event v (sorted ascending).
  const std::vector<core::UserId>& GetEventRoster(core::EventId v) const {
    return arrangement_.UsersOf(v);
  }
  const core::Arrangement& arrangement() const { return arrangement_; }

 private:
  int64_t version_;
  int64_t epoch_;
  core::Arrangement arrangement_;
  double lp_objective_;
  double utility_;
};

/// Long-running, in-process arrangement service over the incremental engine
/// (DESIGN.md S15/S16): it owns an Instance, its AdmissibleCatalog, the dual
/// warm-start state and the rounding state, accepts InstanceDelta mutations
/// through a bounded thread-safe queue, and periodically coalesces the queue
/// into one batch epoch — instance patch -> catalog ApplyDelta -> warm dual
/// solve -> localized re-round -> atomic snapshot publish. Concurrent readers
/// query the latest ArrangementSnapshot through one shared_ptr swap
/// (a pointer-only critical section readers never wait on epoch work for).
///
/// Two driving modes share the identical epoch pipeline:
///
///   * Deterministic (single-thread): the caller invokes RunEpoch() whenever
///     it wants an epoch. No background thread exists, nothing is timed-out,
///     and epoch outputs are bit-reproducible — equal instance, options,
///     seed and submit sequence give bit-identical snapshots (pinned by
///     tests/serve/arrangement_service_test.cc).
///   * Background: Start() spawns an epoch loop firing every epoch_ms (or as
///     soon as max_batch deltas are pending); Stop() drains the queue and
///     joins. Batch boundaries now depend on arrival timing, but each epoch
///     still computes exactly what RunEpoch would for its batch.
///
/// ## Determinism contract
///
/// All sampling randomness derives from one master Rng seeded with
/// options.seed: the bootstrap re-round forks it once, and every epoch that
/// coalesced at least one delta forks it exactly once more (empty epochs
/// consume no randomness and publish nothing). An epoch over batch B is
/// bit-identical to running core::ApplyDelta + AdmissibleCatalog::ApplyDelta
/// + warm SolveBenchmarkLpStructured + core::RoundFractionalDelta directly on
/// the coalesced B with the same fork sequence — the service adds queueing,
/// not arithmetic.
///
/// ## Durability contract (durable_dir set; DESIGN.md §7)
///
/// Every coalesced epoch batch is appended to a delta WAL and fsync'd BEFORE
/// the epoch executes, and every checkpoint_every epochs the complete engine
/// state is written as an atomic-rename snapshot and the WAL truncated. After
/// a crash at ANY instant, Recover() rebuilds the exact pre-crash service —
/// bit-identical engine state, snapshot version and RNG stream — by loading
/// the snapshot and replaying the WAL tail through the same warm-tick
/// pipeline. What durability does NOT cover: deltas still in the submit
/// queue when the process died (they were never epoch-admitted; an epoch is
/// the durability unit) and observability state (metrics history, latency
/// samples, submitted/rejected counters — Stats() counters restart from the
/// applied count).
///
/// ## Concurrency contract
///
/// Submit(), snapshot(), Stats() and MetricsHistory() are thread-safe and may
/// be called from any thread at any time. Epoch execution is exclusive and
/// the service enforces it: RunEpoch() fails with FailedPrecondition while
/// the background loop is running or another RunEpoch() is in flight, and
/// Start() fails while a caller-driven epoch is in flight — so the engine
/// state (instance, catalog, warm start, rounding state) is only ever
/// touched by one epoch runner at a time.
class ArrangementService {
 public:
  /// Solves the instance cold (catalog build + structured dual + full round),
  /// publishes snapshot version 1, and returns the ready-to-serve service.
  /// Fails if the bootstrap pipeline fails.
  static Result<std::unique_ptr<ArrangementService>> Create(
      core::Instance instance, const ServeOptions& options = {});

  /// Restarts from options.durable_dir: loads the latest snapshot, replays
  /// the WAL tail through the identical warm-tick pipeline, republishes the
  /// recovered arrangement, and re-checkpoints so the directory is clean
  /// again. The recovered service is BIT-IDENTICAL to one that ran the same
  /// epochs without crashing — same engine state, snapshot version, epoch
  /// counter and RNG stream (pinned by tests/serve/recovery_test.cc). Only
  /// deltas that were queued but never reached an epoch are lost (durability
  /// is epoch-granular: a batch is fsync'd to the WAL before it runs).
  /// NotFound when the directory holds no snapshot (cold start: use Create).
  static Result<std::unique_ptr<ArrangementService>> Recover(
      const ServeOptions& options);

  /// Stops the background loop (discarding still-queued deltas) if running.
  ~ArrangementService();

  ArrangementService(const ArrangementService&) = delete;
  ArrangementService& operator=(const ArrangementService&) = delete;

  /// Enqueues one mutation batch. Validates ids/capacities against the fixed
  /// id space up front (InvalidArgument) and applies backpressure when the
  /// queue is full (ResourceExhausted) — a rejected delta leaves no trace.
  Status Submit(core::InstanceDelta delta);

  /// Coalesces up to max_batch pending deltas and runs one epoch inline on
  /// the calling thread. An empty queue is a no-op epoch: metrics with
  /// deltas_coalesced == 0, no publish, no RNG consumption, and the epoch
  /// counter does not advance. Fails with FailedPrecondition while the
  /// background loop is running; an engine failure (solver error, infeasible
  /// round) is returned and also latched into last_error().
  Result<EpochMetrics> RunEpoch();

  /// Spawns the background epoch loop. FailedPrecondition if already running
  /// or the service is poisoned by a previous epoch error.
  Status Start();

  /// Drains the queue (running as many final epochs as needed), then joins
  /// the loop. Returns the first epoch error if one occurred. Safe to call
  /// when not running (no-op OK).
  Status Stop();

  /// Forces a snapshot checkpoint now (durable mode only; FailedPrecondition
  /// otherwise, or while the background loop / an inline epoch is running).
  /// Tests use this to force byte-comparable snapshot files at a chosen
  /// epoch; production callers can rely on the checkpoint_every cadence.
  Status Checkpoint();

  /// The latest published snapshot (never null after Create). The read is
  /// one shared_ptr copy under a dedicated pointer mutex that publishers
  /// hold only for the swap itself — nanoseconds, never during a solve — so
  /// readers never wait on epoch work; the returned snapshot stays valid
  /// for as long as the caller holds it. (A std::atomic<shared_ptr> would
  /// make this read genuinely lock-free, but libstdc++'s _Sp_atomic trips
  /// TSan — see the comment at snapshot_.)
  std::shared_ptr<const ArrangementSnapshot> snapshot() const {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }

  ServiceStats Stats() const;
  /// Pending (submitted, not yet epoch-consumed) delta count. A cheap
  /// counter read for hot loops — Stats() computes five sorted percentile
  /// windows per call, far too heavy to sample per submit.
  int64_t PendingDeltas() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(queue_.size());
  }
  /// The most recent epochs' metrics (up to options.metrics_history_limit),
  /// in epoch order; no-op epochs excluded.
  std::vector<EpochMetrics> MetricsHistory() const;
  /// OK until an epoch fails; then the failure that poisoned the service.
  Status last_error() const;

  /// The instance as of the last completed epoch. Only meaningful while no
  /// epoch is executing (deterministic mode, or after Stop()).
  const core::Instance& instance() const { return instance_; }

  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    core::InstanceDelta delta;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One admitted epoch batch in flight from ingest to engine. Immutable
  /// after Push: the ingest stage builds it, moves it into the queue and
  /// never touches it again.
  struct EpochTask {
    int64_t epoch = 0;
    int32_t coalesced = 0;
    core::InstanceDelta batch;
    std::vector<std::chrono::steady_clock::time_point> enqueue_times;
    std::chrono::steady_clock::time_point started;
    double max_queue_delay_seconds = 0.0;
    double ingest_seconds = 0.0;
  };

  /// One solved epoch in flight from engine to commit: the finished metrics
  /// and the constructed-but-not-yet-installed snapshot.
  struct CommitTask {
    EpochMetrics metrics;
    std::shared_ptr<const ArrangementSnapshot> snapshot;
    std::vector<std::chrono::steady_clock::time_point> enqueue_times;
    std::chrono::steady_clock::time_point started;
  };

  ArrangementService(core::Instance instance, const ServeOptions& options);

  /// The cold bootstrap pipeline; publishes version 1 on success.
  Status Bootstrap();

  /// Durable-mode initialization after a successful bootstrap: creates the
  /// directory, refuses (AlreadyExists) if a snapshot is already there, opens
  /// the WAL and writes the epoch-0 checkpoint.
  Status InitDurable();

  /// Recovery body: restore engine state from `snap`, rebuild the catalog,
  /// republish, replay the WAL tail, re-checkpoint.
  Status RestoreAndReplay(EngineSnapshot snap);

  /// Compacts to the canonical layout if needed, snapshots the full engine
  /// state atomically, then truncates the WAL. Caller must hold epoch
  /// exclusion (or be the epoch runner itself).
  Status CheckpointInternal();

  /// Pops up to max_batch pending deltas, runs the warm pipeline, publishes.
  Result<EpochMetrics> RunEpochInternal();

  void BackgroundLoop();

  // ---- Pipelined background mode (pipeline_depth >= 2; DESIGN.md §7).
  // PipelineLoop runs on the loop_ thread: it spawns the engine and commit
  // stage threads, runs the ingest stage inline, then closes the handoff
  // queues front to back and joins. ----
  void PipelineLoop();
  /// Coalesce + WAL group-append stage: admits up to pipeline_depth epoch
  /// batches per wakeup, appends them all, fsyncs ONCE, then hands each to
  /// the engine — so a task in the engine queue is always durable, and the
  /// fsync cost is amortized over the group.
  void IngestStage();
  /// The only RNG consumer and the only engine-state writer: fork -> warm
  /// tick -> version assignment + snapshot construction -> checkpoint
  /// cadence.
  void EngineStage();
  /// Snapshot install (pointer swap) + counters/history/latency bookkeeping.
  void CommitStage();
  /// Pops up to max_batch pending deltas into one EpochTask (no epoch id
  /// assigned). Caller holds mutex_. Returns coalesced == 0 when the queue
  /// was empty.
  EpochTask CoalesceLocked();
  /// Stage-boundary hooks: SIGKILL (IGEPA_CRASH_AFTER_EPOCH +
  /// IGEPA_CRASH_AT_STAGE) or in-process halt (ServeOptions::halt_*) when
  /// `epoch` completes stage `stage`. Returns true when the service just
  /// halted (the caller must stop handing the epoch onward).
  bool StageBoundary(int32_t stage, int64_t epoch);
  /// Sleeps a seeded random [0, stage_jitter_max_micros] us when jitter is
  /// enabled (schedule randomization for the interleaving-stress suite).
  void MaybeJitter(Rng* jitter_rng);

  void Publish(int64_t epoch, core::Arrangement arrangement,
               double lp_objective, double utility);
  /// The swap half of Publish: installs an already constructed snapshot.
  void InstallSnapshot(std::shared_ptr<const ArrangementSnapshot> snapshot);

  /// Appends into a latency ring: grows until kLatencySampleCap, then
  /// overwrites the oldest sample. Caller holds mutex_.
  static void PushSample(std::vector<double>* ring, size_t* next,
                         double value);

  // ---- Engine state: owned by whoever runs epochs (no mutex). ----
  core::Instance instance_;
  const ServeOptions options_;
  core::StructuredDualOptions dual_;
  core::CatalogDeltaOptions delta_options_;
  core::LpPackingOptions round_options_;
  core::AdmissibleCatalog catalog_;
  core::DualWarmStart warm_;
  core::RoundingState rounding_state_;
  core::FractionalSolution fractional_;
  Rng master_;
  int64_t next_epoch_ = 0;
  int64_t next_version_ = 1;
  /// Deltas the ENGINE has applied — distinct from the mutex_-guarded
  /// deltas_applied_, which in pipelined mode lags behind by in-flight commit
  /// tasks. Checkpoints capture this cursor so a recovered service's applied
  /// count matches its engine state regardless of where the commit stage was
  /// at the crash; sequentially the two are always equal at checkpoint time,
  /// so snapshot bytes are unchanged from the pre-pipeline format.
  int64_t applied_cursor_ = 0;

  // ---- Durability (null/-1 when durable_dir is empty). The WAL handle and
  // the appended-epoch watermark are guarded by wal_mutex_: in pipelined mode
  // the ingest stage appends while the engine stage checkpoints. ----
  std::mutex wal_mutex_;
  std::unique_ptr<DeltaWal> wal_;
  /// Highest epoch id ever appended to the WAL (-1 before the first append);
  /// under wal_mutex_. A checkpoint may truncate the WAL only when this is
  /// < next_epoch_ — i.e. no record appended by the ingest stage is still
  /// waiting for its engine apply. When records ARE in flight the truncate is
  /// skipped; recovery's skip-stale-records pass drops the already-applied
  /// prefix instead.
  int64_t wal_last_appended_epoch_ = -1;
  /// Crash-injection hook for the CI kill-point suite: when >= 0 (from the
  /// IGEPA_CRASH_AFTER_EPOCH environment variable, read once at
  /// construction), the process raises SIGKILL at the very end of the epoch
  /// with this id — after its WAL append, publish and any checkpoint, before
  /// any further work. Replay during Recover() bypasses RunEpochInternal and
  /// therefore never trips the hook.
  int64_t crash_after_epoch_ = -1;
  /// Stage-granular variant for pipelined runs (IGEPA_CRASH_AT_STAGE; -1 =
  /// unset, meaning stage 2 — the end-of-epoch boundary, matching the
  /// sequential hook). Only consulted when crash_after_epoch_ >= 0.
  int32_t crash_at_stage_ = -1;

  // ---- Published snapshot. Guarded by its own mutex whose critical
  // sections are a single shared_ptr copy/swap (no allocation, no solver
  // work), so publishes and reads never contend with epochs. Not
  // std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic (GCC 12) unlocks
  // its spinlock with relaxed ordering on the load path, which TSan flags
  // as a publisher/reader race. ----
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ArrangementSnapshot> snapshot_;

  /// Sliding-window size of the latency sample rings backing the Stats()
  /// percentiles.
  static constexpr size_t kLatencySampleCap = 4096;

  // ---- Queue + metrics: shared between submitters, readers and the epoch
  // runner. ----
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::deque<EpochMetrics> history_;  // bounded by metrics_history_limit
  // Latency rings: append until kLatencySampleCap, then overwrite oldest.
  std::vector<double> epoch_seconds_samples_;
  size_t epoch_seconds_next_ = 0;
  std::vector<double> publish_latency_samples_;
  size_t publish_latency_next_ = 0;
  std::vector<double> ingest_seconds_samples_;
  size_t ingest_seconds_next_ = 0;
  std::vector<double> solve_seconds_samples_;
  size_t solve_seconds_next_ = 0;
  std::vector<double> commit_seconds_samples_;
  size_t commit_seconds_next_ = 0;
  int64_t epochs_total_ = 0;
  double total_epoch_seconds_ = 0.0;
  int64_t deltas_submitted_ = 0;
  int64_t deltas_applied_ = 0;
  int64_t deltas_rejected_ = 0;
  Status last_error_ = Status::OK();

  // ---- Background loop / epoch exclusion. ----
  /// Serializes Stop() callers; taken before mutex_, never the reverse.
  std::mutex stop_mutex_;
  std::thread loop_;
  bool running_ = false;         // under mutex_
  bool stop_requested_ = false;  // under mutex_
  /// True while a caller-driven RunEpoch() is inside the engine; Start()
  /// refuses while set, closing the check-then-act window between
  /// RunEpoch()'s running_ check and its engine work.
  bool inline_epoch_ = false;  // under mutex_

  // ---- Pipelined background mode. The handoff queues are created per
  // Start() (capacity = pipeline_depth) and kept as shared_ptrs so Stats()
  // can read their occupancy counters during and after the run. ----
  std::shared_ptr<StageQueue<EpochTask>> engine_queue_;
  std::shared_ptr<StageQueue<CommitTask>> commit_queue_;
  /// Latched by a stage hitting its halt boundary (ServeOptions::halt_*):
  /// every stage checks it before doing work — no further WAL appends,
  /// applies, checkpoints or publishes — and Stop() skips the final drain,
  /// freezing the service exactly as a SIGKILL at that boundary would.
  std::atomic<bool> halted_{false};
};

}  // namespace serve
}  // namespace igepa

#endif  // IGEPA_SERVE_ARRANGEMENT_SERVICE_H_
