#ifndef IGEPA_CONFLICT_CONFLICT_H_
#define IGEPA_CONFLICT_CONFLICT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "conflict/interval.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace conflict {

using EventId = int32_t;

/// The paper's conflict function σ(l_v, l_v') ∈ {0,1} (Definition 3),
/// abstracted over its representation. Implementations must be symmetric and
/// irreflexive (an event never conflicts with itself).
class ConflictFn {
 public:
  virtual ~ConflictFn() = default;

  /// Number of events the function is defined over.
  virtual EventId num_events() const = 0;

  /// σ(a, b): true iff events a and b conflict. Must satisfy
  /// Conflicts(a, a) == false and Conflicts(a, b) == Conflicts(b, a).
  virtual bool Conflicts(EventId a, EventId b) const = 0;

  /// True when every pair in `events` is mutually non-conflicting.
  bool IsConflictFree(const std::vector<EventId>& events) const;
};

/// Dense symmetric boolean matrix; the workhorse for synthetic instances.
class MatrixConflict final : public ConflictFn {
 public:
  /// Creates an n-event matrix with no conflicts.
  explicit MatrixConflict(EventId n);

  EventId num_events() const override { return n_; }
  bool Conflicts(EventId a, EventId b) const override;

  /// Marks (a, b) as conflicting (symmetric; (a,a) ignored).
  void Set(EventId a, EventId b, bool conflicting = true);

  /// Total number of conflicting unordered pairs.
  int64_t CountConflicts() const;

  /// Samples each unordered pair as conflicting with probability p — the
  /// synthetic-dataset rule of §IV ("two events conflict with each other with
  /// the probability p_cf").
  static MatrixConflict Bernoulli(EventId n, double p, Rng* rng);

  /// Builds the matrix view of an arbitrary conflict function (tests, IO).
  static MatrixConflict FromFn(const ConflictFn& fn);

 private:
  size_t Index(EventId a, EventId b) const;

  EventId n_;
  std::vector<uint8_t> bits_;  // strict upper triangle, row-major
};

/// Conflict via time overlap of event intervals — the real-dataset rule
/// ("if two events overlap in time, they conflict with each other").
class IntervalConflict final : public ConflictFn {
 public:
  explicit IntervalConflict(std::vector<TimeInterval> intervals);

  EventId num_events() const override {
    return static_cast<EventId>(intervals_.size());
  }
  bool Conflicts(EventId a, EventId b) const override;

  const TimeInterval& interval(EventId v) const {
    return intervals_[static_cast<size_t>(v)];
  }

 private:
  std::vector<TimeInterval> intervals_;
};

/// The all-clear conflict function (σ ≡ 0); reduces IGEPA to a conflict-free
/// assignment problem, used in tests and β=1 GEACC-style comparisons.
class NoConflict final : public ConflictFn {
 public:
  explicit NoConflict(EventId n) : n_(n) {}
  EventId num_events() const override { return n_; }
  bool Conflicts(EventId, EventId) const override { return false; }

 private:
  EventId n_;
};

/// Validates symmetry/irreflexivity of an implementation (test helper; O(n²)).
Status ValidateConflictFn(const ConflictFn& fn);

}  // namespace conflict
}  // namespace igepa

#endif  // IGEPA_CONFLICT_CONFLICT_H_
