#include "conflict/interval.h"

// TimeInterval is header-only; this translation unit exists so the library
// has a stable archive member for the interval component (and a place for
// future out-of-line helpers).

namespace igepa {
namespace conflict {}  // namespace conflict
}  // namespace igepa
