#include "conflict/conflict_graph.h"

#include <algorithm>
#include <deque>

namespace igepa {
namespace conflict {

graph::Graph BuildConflictGraph(const ConflictFn& fn) {
  const EventId n = fn.num_events();
  graph::Graph g(n);
  for (EventId a = 0; a < n; ++a) {
    for (EventId b = a + 1; b < n; ++b) {
      if (fn.Conflicts(a, b)) {
        g.AddEdge(a, b);  // in-range by construction
      }
    }
  }
  g.Finalize();
  return g;
}

graph::Graph BuildConflictSubgraph(const ConflictFn& fn,
                                   const std::vector<EventId>& events) {
  graph::Graph g(static_cast<graph::NodeId>(events.size()));
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (fn.Conflicts(events[i], events[j])) {
        g.AddEdge(static_cast<graph::NodeId>(i),
                  static_cast<graph::NodeId>(j));
      }
    }
  }
  g.Finalize();
  return g;
}

std::vector<int32_t> ConflictComponents(const ConflictFn& fn) {
  const graph::Graph g = BuildConflictGraph(fn);
  std::vector<int32_t> component(static_cast<size_t>(g.num_nodes()), -1);
  int32_t next = 0;
  std::deque<graph::NodeId> frontier;
  for (graph::NodeId root = 0; root < g.num_nodes(); ++root) {
    if (component[static_cast<size_t>(root)] != -1) continue;
    component[static_cast<size_t>(root)] = next;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const graph::NodeId cur = frontier.front();
      frontier.pop_front();
      for (const graph::NodeId* it = g.NeighborsBegin(cur);
           it != g.NeighborsEnd(cur); ++it) {
        if (component[static_cast<size_t>(*it)] == -1) {
          component[static_cast<size_t>(*it)] = next;
          frontier.push_back(*it);
        }
      }
    }
    ++next;
  }
  return component;
}

std::vector<int32_t> GreedyColoring(const ConflictFn& fn) {
  const graph::Graph g = BuildConflictGraph(fn);
  const graph::NodeId n = g.num_nodes();
  std::vector<int32_t> color(static_cast<size_t>(n), -1);
  std::vector<bool> used;
  for (graph::NodeId v = 0; v < n; ++v) {
    used.assign(static_cast<size_t>(g.Degree(v)) + 1, false);
    for (const graph::NodeId* it = g.NeighborsBegin(v); it != g.NeighborsEnd(v);
         ++it) {
      const int32_t c = color[static_cast<size_t>(*it)];
      if (c >= 0 && c < static_cast<int32_t>(used.size())) {
        used[static_cast<size_t>(c)] = true;
      }
    }
    int32_t c = 0;
    while (used[static_cast<size_t>(c)]) ++c;
    color[static_cast<size_t>(v)] = c;
  }
  return color;
}

std::vector<EventId> ConflictNeighbors(const ConflictFn& fn, EventId v) {
  std::vector<EventId> out;
  for (EventId b = 0; b < fn.num_events(); ++b) {
    if (b != v && fn.Conflicts(v, b)) out.push_back(b);
  }
  return out;
}

}  // namespace conflict
}  // namespace igepa
