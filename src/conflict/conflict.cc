#include "conflict/conflict.h"

#include "util/logging.h"

namespace igepa {
namespace conflict {

bool ConflictFn::IsConflictFree(const std::vector<EventId>& events) const {
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      if (Conflicts(events[i], events[j])) return false;
    }
  }
  return true;
}

MatrixConflict::MatrixConflict(EventId n) : n_(n) {
  IGEPA_CHECK(n >= 0) << "negative event count";
  const size_t pairs =
      static_cast<size_t>(n) * (static_cast<size_t>(n) > 0
                                    ? static_cast<size_t>(n) - 1
                                    : 0) /
      2;
  bits_.assign(pairs, 0);
}

size_t MatrixConflict::Index(EventId a, EventId b) const {
  // Strict upper triangle, row-major: row a occupies (n-1-a) slots starting
  // at a*(n-1) - a*(a-1)/2... computed incrementally-free via closed form.
  IGEPA_CHECK(a < b) << "Index requires a < b";
  const size_t an = static_cast<size_t>(a);
  const size_t bn = static_cast<size_t>(b);
  const size_t n = static_cast<size_t>(n_);
  return an * (n - 1) - an * (an + 1) / 2 + (bn - 1);
}

bool MatrixConflict::Conflicts(EventId a, EventId b) const {
  if (a == b) return false;
  if (a > b) std::swap(a, b);
  IGEPA_CHECK(a >= 0 && b < n_) << "event id out of range";
  return bits_[Index(a, b)] != 0;
}

void MatrixConflict::Set(EventId a, EventId b, bool conflicting) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  IGEPA_CHECK(a >= 0 && b < n_) << "event id out of range";
  bits_[Index(a, b)] = conflicting ? 1 : 0;
}

int64_t MatrixConflict::CountConflicts() const {
  int64_t count = 0;
  for (uint8_t bit : bits_) count += bit;
  return count;
}

MatrixConflict MatrixConflict::Bernoulli(EventId n, double p, Rng* rng) {
  MatrixConflict m(n);
  for (auto& bit : m.bits_) bit = rng->Bernoulli(p) ? 1 : 0;
  return m;
}

MatrixConflict MatrixConflict::FromFn(const ConflictFn& fn) {
  MatrixConflict m(fn.num_events());
  for (EventId a = 0; a < m.n_; ++a) {
    for (EventId b = a + 1; b < m.n_; ++b) {
      if (fn.Conflicts(a, b)) m.Set(a, b, true);
    }
  }
  return m;
}

IntervalConflict::IntervalConflict(std::vector<TimeInterval> intervals)
    : intervals_(std::move(intervals)) {
  for (const auto& iv : intervals_) {
    IGEPA_CHECK(iv.valid()) << "invalid interval [" << iv.start << ","
                            << iv.end << ")";
  }
}

bool IntervalConflict::Conflicts(EventId a, EventId b) const {
  if (a == b) return false;
  return intervals_[static_cast<size_t>(a)].Overlaps(
      intervals_[static_cast<size_t>(b)]);
}

Status ValidateConflictFn(const ConflictFn& fn) {
  const EventId n = fn.num_events();
  for (EventId a = 0; a < n; ++a) {
    if (fn.Conflicts(a, a)) {
      return Status::Internal("conflict function is reflexive at event " +
                              std::to_string(a));
    }
    for (EventId b = a + 1; b < n; ++b) {
      if (fn.Conflicts(a, b) != fn.Conflicts(b, a)) {
        return Status::Internal("conflict function asymmetric at (" +
                                std::to_string(a) + "," + std::to_string(b) +
                                ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace conflict
}  // namespace igepa
