#ifndef IGEPA_CONFLICT_INTERVAL_H_
#define IGEPA_CONFLICT_INTERVAL_H_

#include <algorithm>
#include <cstdint>

namespace igepa {
namespace conflict {

/// Half-open time interval [start, end) in abstract minutes. The paper's real
/// dataset attaches "a start time and a duration" to each event and declares
/// two events conflicting iff they overlap in time.
struct TimeInterval {
  int64_t start = 0;
  int64_t end = 0;  // exclusive

  int64_t duration() const { return end - start; }
  bool valid() const { return end >= start; }

  /// True when the two half-open intervals share at least one instant.
  /// Touching intervals ([0,10) and [10,20)) do NOT overlap; an empty
  /// interval overlaps nothing (including itself).
  bool Overlaps(const TimeInterval& other) const {
    if (duration() <= 0 || other.duration() <= 0) return false;
    return start < other.end && other.start < end;
  }

  /// True when `t` lies inside the interval.
  bool Contains(int64_t t) const { return t >= start && t < end; }

  /// Intersection of the two intervals; empty (start==end) when disjoint.
  TimeInterval Intersect(const TimeInterval& other) const {
    const int64_t s = std::max(start, other.start);
    const int64_t e = std::min(end, other.end);
    return TimeInterval{s, std::max(s, e)};
  }

  bool operator==(const TimeInterval& other) const {
    return start == other.start && end == other.end;
  }
};

}  // namespace conflict
}  // namespace igepa

#endif  // IGEPA_CONFLICT_INTERVAL_H_
