#ifndef IGEPA_CONFLICT_CONFLICT_GRAPH_H_
#define IGEPA_CONFLICT_CONFLICT_GRAPH_H_

#include <vector>

#include "conflict/conflict.h"
#include "graph/graph.h"

namespace igepa {
namespace conflict {

/// Materializes the conflict graph over all events (node per event, edge per
/// conflicting pair). O(n²) probes of the conflict function.
graph::Graph BuildConflictGraph(const ConflictFn& fn);

/// Conflict graph restricted to a subset of events; node i of the result is
/// events[i].
graph::Graph BuildConflictSubgraph(const ConflictFn& fn,
                                   const std::vector<EventId>& events);

/// Connected components of the conflict graph; component[v] is a dense label
/// in [0, num_components). Users "bid for a group of similar and often
/// conflicting events" (§IV) — the synthetic generator uses these components
/// as bid clusters.
std::vector<int32_t> ConflictComponents(const ConflictFn& fn);

/// Greedy sequential colouring of the conflict graph. Colour classes are
/// pairwise conflict-free sets; the number of colours upper-bounds how many
/// conflicting alternatives a user can hold simultaneously.
std::vector<int32_t> GreedyColoring(const ConflictFn& fn);

/// All events that conflict with `v`.
std::vector<EventId> ConflictNeighbors(const ConflictFn& fn, EventId v);

}  // namespace conflict
}  // namespace igepa

#endif  // IGEPA_CONFLICT_CONFLICT_GRAPH_H_
