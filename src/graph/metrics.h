#ifndef IGEPA_GRAPH_METRICS_H_
#define IGEPA_GRAPH_METRICS_H_

#include <vector>

#include "graph/graph.h"

namespace igepa {
namespace graph {

/// Degree centrality of one node: deg(u) / (n - 1); 0 for n <= 1.
/// This is exactly the paper's "degree of potential interaction" D(G, u)
/// (Definition 6).
double DegreeCentrality(const Graph& g, NodeId n);

/// Degree centrality of every node.
std::vector<double> AllDegreeCentrality(const Graph& g);

/// Average degree of the graph; 0 for the empty graph.
double AverageDegree(const Graph& g);

/// Graph density: |E| / C(n, 2); 0 for n <= 1.
double Density(const Graph& g);

/// Local clustering coefficient of a node (triangle closure rate among its
/// neighbors); 0 for degree < 2. Used by dataset statistics reporting.
double LocalClustering(const Graph& g, NodeId n);

/// Mean local clustering over all nodes (Watts-Strogatz average).
double AverageClustering(const Graph& g);

/// Number of connected components (iterative BFS).
int32_t ConnectedComponents(const Graph& g);

}  // namespace graph
}  // namespace igepa

#endif  // IGEPA_GRAPH_METRICS_H_
