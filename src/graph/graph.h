#ifndef IGEPA_GRAPH_GRAPH_H_
#define IGEPA_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace igepa {
namespace graph {

/// Node identifier. Nodes are dense integers [0, num_nodes).
using NodeId = int32_t;

/// An undirected simple graph stored in CSR-like adjacency form.
///
/// The social network G = (U, E) of the paper (Definition 6) is an instance
/// of this class over user ids. Construction is two-phase: add edges into a
/// builder-style edge list, then Finalize() to build sorted adjacency; after
/// finalization the graph is immutable and queries are O(log deg) / O(1).
class Graph {
 public:
  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Graph(NodeId num_nodes = 0);

  NodeId num_nodes() const { return num_nodes_; }
  /// Number of undirected edges (each counted once).
  int64_t num_edges() const { return num_edges_; }

  /// Queues an undirected edge. Self-loops and duplicate edges are ignored at
  /// Finalize() time. Returns InvalidArgument for out-of-range endpoints.
  Status AddEdge(NodeId a, NodeId b);

  /// Builds the adjacency structure. Idempotent; called implicitly by
  /// accessors if needed (const_cast-free: callers should Finalize once).
  void Finalize();

  bool finalized() const { return finalized_; }

  /// Degree of node `n`. Requires Finalize() has been called.
  int32_t Degree(NodeId n) const;

  /// Sorted neighbor span of node `n`. Requires Finalize().
  const NodeId* NeighborsBegin(NodeId n) const;
  const NodeId* NeighborsEnd(NodeId n) const;

  /// Convenience copy of a node's neighbor list.
  std::vector<NodeId> Neighbors(NodeId n) const;

  /// True when an (a, b) edge exists. O(log deg(a)). Requires Finalize().
  bool HasEdge(NodeId a, NodeId b) const;

  /// Sum of all degrees == 2 * num_edges().
  int64_t DegreeSum() const;

 private:
  NodeId num_nodes_ = 0;
  int64_t num_edges_ = 0;
  bool finalized_ = false;
  std::vector<std::pair<NodeId, NodeId>> pending_;
  std::vector<int64_t> offsets_;  // size num_nodes_+1
  std::vector<NodeId> adjacency_;
};

}  // namespace graph
}  // namespace igepa

#endif  // IGEPA_GRAPH_GRAPH_H_
