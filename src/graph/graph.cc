#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace igepa {
namespace graph {

Graph::Graph(NodeId num_nodes) : num_nodes_(num_nodes) {
  IGEPA_CHECK(num_nodes >= 0) << "negative node count " << num_nodes;
}

Status Graph::AddEdge(NodeId a, NodeId b) {
  if (finalized_) {
    return Status::FailedPrecondition("AddEdge after Finalize");
  }
  if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (a == b) return Status::OK();  // ignore self-loops
  if (a > b) std::swap(a, b);
  pending_.emplace_back(a, b);
  return Status::OK();
}

void Graph::Finalize() {
  if (finalized_) return;
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());
  num_edges_ = static_cast<int64_t>(pending_.size());

  std::vector<int64_t> counts(static_cast<size_t>(num_nodes_) + 1, 0);
  for (const auto& [a, b] : pending_) {
    ++counts[static_cast<size_t>(a) + 1];
    ++counts[static_cast<size_t>(b) + 1];
  }
  offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (NodeId n = 0; n < num_nodes_; ++n) {
    offsets_[static_cast<size_t>(n) + 1] =
        offsets_[static_cast<size_t>(n)] + counts[static_cast<size_t>(n) + 1];
  }
  adjacency_.assign(static_cast<size_t>(2) * num_edges_, 0);
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : pending_) {
    adjacency_[static_cast<size_t>(cursor[static_cast<size_t>(a)]++)] = b;
    adjacency_[static_cast<size_t>(cursor[static_cast<size_t>(b)]++)] = a;
  }
  for (NodeId n = 0; n < num_nodes_; ++n) {
    std::sort(adjacency_.begin() + offsets_[static_cast<size_t>(n)],
              adjacency_.begin() + offsets_[static_cast<size_t>(n) + 1]);
  }
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
}

int32_t Graph::Degree(NodeId n) const {
  IGEPA_CHECK(finalized_) << "Degree before Finalize";
  IGEPA_CHECK(n >= 0 && n < num_nodes_) << "node " << n << " out of range";
  return static_cast<int32_t>(offsets_[static_cast<size_t>(n) + 1] -
                              offsets_[static_cast<size_t>(n)]);
}

const NodeId* Graph::NeighborsBegin(NodeId n) const {
  IGEPA_CHECK(finalized_) << "Neighbors before Finalize";
  return adjacency_.data() + offsets_[static_cast<size_t>(n)];
}

const NodeId* Graph::NeighborsEnd(NodeId n) const {
  IGEPA_CHECK(finalized_) << "Neighbors before Finalize";
  return adjacency_.data() + offsets_[static_cast<size_t>(n) + 1];
}

std::vector<NodeId> Graph::Neighbors(NodeId n) const {
  return std::vector<NodeId>(NeighborsBegin(n), NeighborsEnd(n));
}

bool Graph::HasEdge(NodeId a, NodeId b) const {
  IGEPA_CHECK(finalized_) << "HasEdge before Finalize";
  if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) return false;
  return std::binary_search(NeighborsBegin(a), NeighborsEnd(a), b);
}

int64_t Graph::DegreeSum() const { return 2 * num_edges_; }

}  // namespace graph
}  // namespace igepa
