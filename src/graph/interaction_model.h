#ifndef IGEPA_GRAPH_INTERACTION_MODEL_H_
#define IGEPA_GRAPH_INTERACTION_MODEL_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace igepa {
namespace graph {

/// Supplier of the paper's "degree of potential interaction" D(G, u)
/// (Definition 6) for every user. Abstracting this lets the core library run
/// either on a materialized social network or on a degree-only simulation for
/// very large |U| sweeps (Fig. 1(b) reaches |U| = 10^4 with p_deg = 0.5, i.e.
/// ~25M edges, where edge materialization dominates runtime without changing
/// the utility, which depends on degrees only).
class InteractionModel {
 public:
  virtual ~InteractionModel() = default;

  /// Number of users covered by the model.
  virtual int32_t num_users() const = 0;

  /// D(G, u) in [0, 1].
  virtual double Degree(int32_t user) const = 0;
};

/// InteractionModel backed by an explicit Graph (the default).
class GraphInteractionModel final : public InteractionModel {
 public:
  /// Takes ownership of a finalized graph.
  explicit GraphInteractionModel(Graph g);

  int32_t num_users() const override { return graph_.num_nodes(); }
  double Degree(int32_t user) const override {
    return centrality_[static_cast<size_t>(user)];
  }

  const Graph& graph() const { return graph_; }

 private:
  Graph graph_;
  std::vector<double> centrality_;
};

/// Degree-only Erdős–Rényi simulation: each user's degree is drawn
/// Binomial(n-1, p), matching the exact marginal degree law of G(n, p).
/// Pairwise degree correlations (which the utility, a sum of per-user terms,
/// does not observe beyond variance of order 1/n) are dropped. Documented as
/// substitution S6 in DESIGN.md.
class BinomialDegreeModel final : public InteractionModel {
 public:
  BinomialDegreeModel(int32_t num_users, double p, Rng* rng);

  int32_t num_users() const override {
    return static_cast<int32_t>(degree_.size());
  }
  double Degree(int32_t user) const override {
    return degree_[static_cast<size_t>(user)];
  }

 private:
  std::vector<double> degree_;
};

/// Fixed degree table (used by IO round-trips and tests).
class TableInteractionModel final : public InteractionModel {
 public:
  explicit TableInteractionModel(std::vector<double> degrees)
      : degree_(std::move(degrees)) {}

  int32_t num_users() const override {
    return static_cast<int32_t>(degree_.size());
  }
  double Degree(int32_t user) const override {
    return degree_[static_cast<size_t>(user)];
  }

 private:
  std::vector<double> degree_;
};

}  // namespace graph
}  // namespace igepa

#endif  // IGEPA_GRAPH_INTERACTION_MODEL_H_
