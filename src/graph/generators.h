#ifndef IGEPA_GRAPH_GENERATORS_H_
#define IGEPA_GRAPH_GENERATORS_H_

#include <vector>

#include "graph/graph.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace graph {

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 pairs is an edge independently
/// with probability p. This is the synthetic social network of §IV ("each pair
/// of users are friends ... with the probability of p_deg"). Implemented with
/// geometric skipping, so expected time is O(n + |E|) not O(n^2).
Result<Graph> ErdosRenyi(NodeId n, double p, Rng* rng);

/// Barabási–Albert preferential attachment with `m` edges per new node.
/// Not used by the paper's evaluation; provided for heavy-tailed-degree
/// ablations of the interaction term.
Result<Graph> BarabasiAlbert(NodeId n, int m, Rng* rng);

/// Builds the "shared group" social graph of the paper's real dataset: nodes
/// u, u' are adjacent iff they are members of at least one common group.
/// `memberships[g]` lists the member nodes of group g.
Result<Graph> GroupOverlapGraph(NodeId n,
                                const std::vector<std::vector<NodeId>>& memberships);

}  // namespace graph
}  // namespace igepa

#endif  // IGEPA_GRAPH_GENERATORS_H_
