#include "graph/interaction_model.h"

#include <utility>

#include "graph/metrics.h"
#include "util/logging.h"

namespace igepa {
namespace graph {

GraphInteractionModel::GraphInteractionModel(Graph g) : graph_(std::move(g)) {
  IGEPA_CHECK(graph_.finalized()) << "GraphInteractionModel needs Finalize()";
  centrality_ = AllDegreeCentrality(graph_);
}

BinomialDegreeModel::BinomialDegreeModel(int32_t num_users, double p,
                                         Rng* rng) {
  degree_.resize(static_cast<size_t>(num_users), 0.0);
  if (num_users <= 1) return;
  const int64_t trials = num_users - 1;
  for (auto& d : degree_) {
    d = static_cast<double>(rng->Binomial(trials, p)) /
        static_cast<double>(trials);
  }
}

}  // namespace graph
}  // namespace igepa
