#include "graph/metrics.h"

#include <algorithm>
#include <deque>

namespace igepa {
namespace graph {

double DegreeCentrality(const Graph& g, NodeId n) {
  if (g.num_nodes() <= 1) return 0.0;
  return static_cast<double>(g.Degree(n)) /
         static_cast<double>(g.num_nodes() - 1);
}

std::vector<double> AllDegreeCentrality(const Graph& g) {
  std::vector<double> out(static_cast<size_t>(g.num_nodes()), 0.0);
  if (g.num_nodes() <= 1) return out;
  const double denom = static_cast<double>(g.num_nodes() - 1);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    out[static_cast<size_t>(n)] = static_cast<double>(g.Degree(n)) / denom;
  }
  return out;
}

double AverageDegree(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  return static_cast<double>(g.DegreeSum()) /
         static_cast<double>(g.num_nodes());
}

double Density(const Graph& g) {
  const int64_t n = g.num_nodes();
  if (n <= 1) return 0.0;
  return static_cast<double>(g.num_edges()) /
         (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

double LocalClustering(const Graph& g, NodeId n) {
  const int32_t deg = g.Degree(n);
  if (deg < 2) return 0.0;
  int64_t closed = 0;
  for (const NodeId* a = g.NeighborsBegin(n); a != g.NeighborsEnd(n); ++a) {
    for (const NodeId* b = a + 1; b != g.NeighborsEnd(n); ++b) {
      if (g.HasEdge(*a, *b)) ++closed;
    }
  }
  const double pairs =
      static_cast<double>(deg) * static_cast<double>(deg - 1) / 2.0;
  return static_cast<double>(closed) / pairs;
}

double AverageClustering(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) total += LocalClustering(g, n);
  return total / static_cast<double>(g.num_nodes());
}

int32_t ConnectedComponents(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> seen(static_cast<size_t>(n), false);
  int32_t components = 0;
  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < n; ++root) {
    if (seen[static_cast<size_t>(root)]) continue;
    ++components;
    seen[static_cast<size_t>(root)] = true;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const NodeId* it = g.NeighborsBegin(cur); it != g.NeighborsEnd(cur);
           ++it) {
        if (!seen[static_cast<size_t>(*it)]) {
          seen[static_cast<size_t>(*it)] = true;
          frontier.push_back(*it);
        }
      }
    }
  }
  return components;
}

}  // namespace graph
}  // namespace igepa
