#include "graph/generators.h"

#include <cmath>
#include <unordered_set>

namespace igepa {
namespace graph {

Result<Graph> ErdosRenyi(NodeId n, double p, Rng* rng) {
  if (n < 0) return Status::InvalidArgument("ErdosRenyi: negative n");
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("ErdosRenyi: p outside [0,1]");
  }
  Graph g(n);
  if (n >= 2 && p > 0.0) {
    if (p >= 1.0) {
      for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = a + 1; b < n; ++b) {
          IGEPA_RETURN_IF_ERROR(g.AddEdge(a, b));
        }
      }
    } else {
      // Batagelj-Brandes skipping over the implicit pair enumeration
      // (a, b), b > a, in row-major order.
      const double log1mp = std::log1p(-p);
      int64_t a = 0;
      int64_t b = 0;  // b tracks "last emitted column" within row a
      while (a < n) {
        double u = rng->NextDouble();
        if (u >= 1.0) u = std::nextafter(1.0, 0.0);
        const int64_t skip =
            static_cast<int64_t>(std::floor(std::log1p(-u) / log1mp));
        b += skip + 1;
        while (a < n && b > n - 1 - (a + 1)) {
          // Move to the next row; row a has n-1-a candidate columns
          // (a+1 .. n-1), indexed 1-based by b.
          b -= n - 1 - a;
          ++a;
        }
        if (a < n) {
          IGEPA_RETURN_IF_ERROR(
              g.AddEdge(static_cast<NodeId>(a),
                        static_cast<NodeId>(a + b)));
        }
      }
    }
  }
  g.Finalize();
  return g;
}

Result<Graph> BarabasiAlbert(NodeId n, int m, Rng* rng) {
  if (n < 0) return Status::InvalidArgument("BarabasiAlbert: negative n");
  if (m < 1) return Status::InvalidArgument("BarabasiAlbert: m must be >= 1");
  Graph g(n);
  if (n <= 1) {
    g.Finalize();
    return g;
  }
  // Repeated-nodes list: sampling uniformly from it realizes preferential
  // attachment. Seed with a small clique of size min(m+1, n).
  std::vector<NodeId> endpoint_pool;
  const NodeId seed = std::min<NodeId>(static_cast<NodeId>(m) + 1, n);
  for (NodeId a = 0; a < seed; ++a) {
    for (NodeId b = a + 1; b < seed; ++b) {
      IGEPA_RETURN_IF_ERROR(g.AddEdge(a, b));
      endpoint_pool.push_back(a);
      endpoint_pool.push_back(b);
    }
  }
  for (NodeId v = seed; v < n; ++v) {
    std::unordered_set<NodeId> targets;
    const int want = std::min<int>(m, v);
    int guard = 0;
    while (static_cast<int>(targets.size()) < want && guard < 64 * want) {
      ++guard;
      const NodeId t = endpoint_pool[static_cast<size_t>(
          rng->NextIndex(endpoint_pool.size()))];
      if (t != v) targets.insert(t);
    }
    // Fallback for pathological pools: fill with the lowest-id nodes.
    for (NodeId t = 0; static_cast<int>(targets.size()) < want && t < v; ++t) {
      targets.insert(t);
    }
    for (NodeId t : targets) {
      IGEPA_RETURN_IF_ERROR(g.AddEdge(v, t));
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  g.Finalize();
  return g;
}

Result<Graph> GroupOverlapGraph(
    NodeId n, const std::vector<std::vector<NodeId>>& memberships) {
  Graph g(n);
  for (const auto& members : memberships) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i] < 0 || members[i] >= n) {
        return Status::InvalidArgument("GroupOverlapGraph: member out of range");
      }
      for (size_t j = i + 1; j < members.size(); ++j) {
        IGEPA_RETURN_IF_ERROR(g.AddEdge(members[i], members[j]));
      }
    }
  }
  g.Finalize();
  return g;
}

}  // namespace graph
}  // namespace igepa
