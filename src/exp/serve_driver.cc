#include "exp/serve_driver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "core/admissible_catalog.h"
#include "core/benchmark_dual.h"

namespace igepa {
namespace exp {

namespace {

/// Cold LP reference on the (mutated) instance: rebuild + structured solve.
Result<double> ColdLpObjective(const core::Instance& instance,
                               const ServeSweepOptions& options) {
  core::AdmissibleOptions admissible = options.admissible;
  admissible.num_threads = options.num_threads;
  const core::AdmissibleCatalog catalog =
      core::AdmissibleCatalog::Build(instance, admissible);
  core::StructuredDualOptions dual = options.dual;
  dual.num_threads = options.num_threads;
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution sol,
      core::SolveBenchmarkLpStructured(instance, catalog, dual));
  return sol.objective;
}

}  // namespace

Result<ServeSweepReport> RunServeSweep(
    const core::Instance& instance,
    const std::vector<core::ArrivalEvent>& arrivals,
    const ServeSweepOptions& options) {
  if (options.batch_sizes.empty()) {
    return Status::InvalidArgument("ServeSweepOptions: no batch sizes");
  }
  ServeSweepReport report;
  report.rows.reserve(options.batch_sizes.size());

  for (int32_t batch : options.batch_sizes) {
    if (batch < 1) {
      return Status::InvalidArgument("ServeSweepOptions: batch size < 1");
    }
    serve::ServeOptions serve_options;
    serve_options.num_threads = options.num_threads;
    serve_options.max_batch = batch;
    // The sweep drives epochs itself; the queue only ever holds one batch.
    serve_options.queue_capacity = batch;
    serve_options.alpha = options.alpha;
    serve_options.seed = options.seed;
    serve_options.dual = options.dual;
    serve_options.admissible = options.admissible;
    IGEPA_ASSIGN_OR_RETURN(
        std::unique_ptr<serve::ArrangementService> service,
        serve::ArrangementService::Create(instance, serve_options));

    ServeSweepRow row;
    row.max_batch = batch;
    int32_t pending = 0;
    auto run_epoch = [&]() -> Status {
      IGEPA_ASSIGN_OR_RETURN(serve::EpochMetrics metrics,
                             service->RunEpoch());
      pending = 0;
      if (options.compare_cold && metrics.deltas_coalesced > 0) {
        IGEPA_ASSIGN_OR_RETURN(
            double cold, ColdLpObjective(service->instance(), options));
        const double drift = std::abs(metrics.lp_objective - cold) /
                             std::max(1.0, std::abs(cold));
        row.max_lp_drift = std::max(row.max_lp_drift, drift);
      }
      return Status::OK();
    };

    for (const core::ArrivalEvent& arrival : arrivals) {
      IGEPA_RETURN_IF_ERROR(service->Submit(arrival.delta));
      if (++pending >= batch) IGEPA_RETURN_IF_ERROR(run_epoch());
    }
    while (service->Stats().deltas_pending > 0) {
      IGEPA_RETURN_IF_ERROR(run_epoch());
    }

    const serve::ServiceStats stats = service->Stats();
    row.epochs = stats.epochs;
    row.deltas_applied = stats.deltas_applied;
    row.epoch_seconds_total = stats.total_epoch_seconds;
    row.deltas_per_second =
        stats.total_epoch_seconds > 0
            ? static_cast<double>(stats.deltas_applied) /
                  stats.total_epoch_seconds
            : 0.0;
    row.p50_epoch_seconds = stats.p50_epoch_seconds;
    row.p99_epoch_seconds = stats.p99_epoch_seconds;
    row.p50_publish_latency_seconds = stats.p50_publish_latency_seconds;
    row.p99_publish_latency_seconds = stats.p99_publish_latency_seconds;
    row.final_lp_objective = stats.lp_objective;
    row.final_utility = stats.utility;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace exp
}  // namespace igepa
