#ifndef IGEPA_EXP_SERVE_DRIVER_H_
#define IGEPA_EXP_SERVE_DRIVER_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/instance_delta.h"
#include "serve/arrangement_service.h"
#include "util/result.h"

namespace igepa {
namespace exp {

/// Options for the serving-layer throughput sweep.
struct ServeSweepOptions {
  /// Epoch batch sizes to sweep (each runs the whole arrival stream through
  /// a fresh service).
  std::vector<int32_t> batch_sizes = {1, 16, 256};
  int32_t num_threads = 0;
  double alpha = 1.0;
  uint64_t seed = 20190408;
  core::StructuredDualOptions dual;
  core::AdmissibleOptions admissible;
  /// After every epoch, also run a cold structured solve on the mutated
  /// instance and record the LP objective drift of the published snapshot —
  /// the serving analogue of the replay driver's warm-vs-cold check. Cold
  /// time is excluded from the throughput figures.
  bool compare_cold = true;
};

/// One batch size's outcome over the whole arrival stream.
struct ServeSweepRow {
  int32_t max_batch = 0;
  int64_t epochs = 0;
  int64_t deltas_applied = 0;
  /// Total warm epoch time (coalesce -> publish), the denominator of
  /// deltas_per_second.
  double epoch_seconds_total = 0.0;
  double deltas_per_second = 0.0;
  double p50_epoch_seconds = 0.0;
  double p99_epoch_seconds = 0.0;
  double p50_publish_latency_seconds = 0.0;
  double p99_publish_latency_seconds = 0.0;
  double final_lp_objective = 0.0;
  double final_utility = 0.0;
  /// Max per-epoch |warm - cold| / max(1, |cold|) (0 when compare_cold off).
  /// Both solves certify target_gap, so this stays within ~2·target_gap.
  double max_lp_drift = 0.0;
};

/// Aggregate sweep outcome, one row per batch size.
struct ServeSweepReport {
  std::vector<ServeSweepRow> rows;
};

/// Measures the arrangement service's sustained throughput across epoch
/// batch sizes: for each batch size, a fresh deterministic-mode service is
/// bootstrapped on a copy of the instance and the arrival stream is pushed
/// through it, running one epoch whenever max_batch deltas are pending (and
/// draining at the end). Reports deltas/sec, epoch latency percentiles,
/// submit->publish latency percentiles, and — when compare_cold — the
/// per-epoch LP objective drift against from-scratch solves.
Result<ServeSweepReport> RunServeSweep(
    const core::Instance& instance,
    const std::vector<core::ArrivalEvent>& arrivals,
    const ServeSweepOptions& options = {});

}  // namespace exp
}  // namespace igepa

#endif  // IGEPA_EXP_SERVE_DRIVER_H_
