#include "exp/load_test.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "util/string_util.h"

namespace igepa {
namespace exp {
namespace {

using Clock = std::chrono::steady_clock;

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

void AppendLatencyEntry(std::string* out, const std::string& name,
                        int family_index, int instance_index, double seconds,
                        bool last) {
  *out += "    {\n";
  *out += "      \"name\": \"" + name + "\",\n";
  *out += "      \"family_index\": " + std::to_string(family_index) + ",\n";
  *out += "      \"per_family_instance_index\": " +
          std::to_string(instance_index) + ",\n";
  *out += "      \"run_name\": \"" + name + "\",\n";
  *out += "      \"run_type\": \"iteration\",\n";
  *out += "      \"repetitions\": 1,\n";
  *out += "      \"repetition_index\": 0,\n";
  *out += "      \"threads\": 1,\n";
  *out += "      \"iterations\": 1,\n";
  *out += "      \"real_time\": " + JsonDouble(seconds * 1e9) + ",\n";
  *out += "      \"cpu_time\": " + JsonDouble(seconds * 1e9) + ",\n";
  *out += "      \"time_unit\": \"ns\"\n";
  *out += last ? "    }\n" : "    },\n";
}

}  // namespace

Result<LoadTestReport> RunLoadTest(core::Instance instance,
                                   const LoadTestOptions& options) {
  if (options.duration_seconds <= 0) {
    return Status::InvalidArgument(
        "LoadTestOptions::duration_seconds must be > 0");
  }
  if (options.rate_per_second <= 0) {
    return Status::InvalidArgument(
        "LoadTestOptions::rate_per_second must be > 0");
  }

  // Pre-sample the whole arrival stream: the submit loop then does nothing
  // but sleep and Submit, so generator cost never shapes the arrival times.
  gen::ArrivalProcessConfig config = options.arrivals;
  config.rate_per_second = options.rate_per_second;
  config.num_arrivals = static_cast<int32_t>(std::max(
      16.0,
      std::ceil(options.rate_per_second * options.duration_seconds * 1.5)));
  Rng arrival_rng(options.seed);
  std::vector<core::ArrivalEvent> arrivals =
      gen::GenerateArrivalProcess(instance, config, &arrival_rng);

  IGEPA_ASSIGN_OR_RETURN(
      std::unique_ptr<serve::ArrangementService> service,
      serve::ArrangementService::Create(std::move(instance), options.serve));
  IGEPA_RETURN_IF_ERROR(service->Start());

  LoadTestReport report;
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));
  for (const core::ArrivalEvent& arrival : arrivals) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival.at_seconds));
    if (due > deadline) break;
    // Only sleep for genuinely future arrivals: a lagging open-loop
    // generator must burst to catch up, not pay a syscall per past-due
    // arrival (at tens of kHz that syscall IS the generator's ceiling).
    if (due > Clock::now()) std::this_thread::sleep_until(due);
    ++report.arrivals_generated;
    const Status submitted = service->Submit(arrival.delta);
    if (submitted.ok()) {
      ++report.deltas_submitted;
    } else if (submitted.code() == StatusCode::kResourceExhausted) {
      // Open loop: backpressure drops the arrival, it does not slow the
      // generator. The drop count IS the overload signal.
      ++report.deltas_rejected;
    } else {
      (void)service->Stop();
      return submitted;
    }
    if ((report.arrivals_generated & 0xF) == 0) {
      report.max_queue_depth =
          std::max(report.max_queue_depth, service->PendingDeltas());
    }
  }
  report.duration_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Stop() drains every still-pending delta through final epochs.
  IGEPA_RETURN_IF_ERROR(service->Stop());
  report.total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  const serve::ServiceStats stats = service->Stats();
  report.deltas_applied = stats.deltas_applied;
  report.epochs = stats.epochs;
  report.snapshot_version = stats.snapshot_version;
  report.final_queue_depth = stats.deltas_pending;
  report.max_queue_depth =
      std::max(report.max_queue_depth, stats.deltas_pending);
  report.applied_per_second =
      report.total_seconds > 0
          ? static_cast<double>(stats.deltas_applied) / report.total_seconds
          : 0.0;
  report.p50_epoch_seconds = stats.p50_epoch_seconds;
  report.p99_epoch_seconds = stats.p99_epoch_seconds;
  report.p50_publish_latency_seconds = stats.p50_publish_latency_seconds;
  report.p99_publish_latency_seconds = stats.p99_publish_latency_seconds;
  report.final_lp_objective = stats.lp_objective;
  report.final_utility = stats.utility;
  report.pipeline_depth = stats.pipeline_depth;
  report.p50_ingest_seconds = stats.p50_ingest_seconds;
  report.p99_ingest_seconds = stats.p99_ingest_seconds;
  report.p50_solve_seconds = stats.p50_solve_seconds;
  report.p99_solve_seconds = stats.p99_solve_seconds;
  report.p50_commit_seconds = stats.p50_commit_seconds;
  report.p99_commit_seconds = stats.p99_commit_seconds;
  report.engine_queue_peak = stats.engine_queue_peak;
  report.commit_queue_peak = stats.commit_queue_peak;
  report.ingest_stalls = stats.ingest_stalls;
  return report;
}

Status WriteLoadTestJson(const LoadTestReport& report,
                         const LoadTestOptions& options,
                         const std::string& path) {
  std::string out;
  out += "{\n";
  out += "  \"context\": {\n";
  out += "    \"executable\": \"igepa serve --load-test\",\n";
  out += "    \"duration_seconds\": " + JsonDouble(report.duration_seconds) +
         ",\n";
  out += "    \"total_seconds\": " + JsonDouble(report.total_seconds) + ",\n";
  out += "    \"rate_per_second\": " + JsonDouble(options.rate_per_second) +
         ",\n";
  out += "    \"max_batch\": " + std::to_string(options.serve.max_batch) +
         ",\n";
  out += "    \"epoch_ms\": " + JsonDouble(options.serve.epoch_ms) + ",\n";
  out += "    \"arrivals_generated\": " +
         std::to_string(report.arrivals_generated) + ",\n";
  out += "    \"deltas_submitted\": " +
         std::to_string(report.deltas_submitted) + ",\n";
  out += "    \"deltas_rejected\": " + std::to_string(report.deltas_rejected) +
         ",\n";
  out += "    \"deltas_applied\": " + std::to_string(report.deltas_applied) +
         ",\n";
  out += "    \"epochs\": " + std::to_string(report.epochs) + ",\n";
  out += "    \"snapshot_version\": " +
         std::to_string(report.snapshot_version) + ",\n";
  out += "    \"applied_per_second\": " +
         JsonDouble(report.applied_per_second) + ",\n";
  out += "    \"max_queue_depth\": " + std::to_string(report.max_queue_depth) +
         ",\n";
  out += "    \"final_queue_depth\": " +
         std::to_string(report.final_queue_depth) + ",\n";
  out += "    \"pipeline_depth\": " + std::to_string(report.pipeline_depth) +
         ",\n";
  out += "    \"engine_queue_peak\": " +
         std::to_string(report.engine_queue_peak) + ",\n";
  out += "    \"commit_queue_peak\": " +
         std::to_string(report.commit_queue_peak) + ",\n";
  out += "    \"ingest_stalls\": " + std::to_string(report.ingest_stalls) +
         ",\n";
  out += "    \"final_lp_objective\": " +
         JsonDouble(report.final_lp_objective) + ",\n";
  out += "    \"final_utility\": " + JsonDouble(report.final_utility) + "\n";
  out += "  },\n";
  out += "  \"benchmarks\": [\n";
  AppendLatencyEntry(&out, "LT_ServeEpochLatency/p50", 0, 0,
                     report.p50_epoch_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeEpochLatency/p99", 0, 1,
                     report.p99_epoch_seconds, false);
  AppendLatencyEntry(&out, "LT_ServePublishLatency/p50", 1, 0,
                     report.p50_publish_latency_seconds, false);
  AppendLatencyEntry(&out, "LT_ServePublishLatency/p99", 1, 1,
                     report.p99_publish_latency_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeStageIngest/p50", 2, 0,
                     report.p50_ingest_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeStageIngest/p99", 2, 1,
                     report.p99_ingest_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeStageSolve/p50", 3, 0,
                     report.p50_solve_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeStageSolve/p99", 3, 1,
                     report.p99_solve_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeStageCommit/p50", 4, 0,
                     report.p50_commit_seconds, false);
  AppendLatencyEntry(&out, "LT_ServeStageCommit/p99", 4, 1,
                     report.p99_commit_seconds, true);
  out += "  ]\n";
  out += "}\n";

  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  file << out;
  file.flush();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace exp
}  // namespace igepa
