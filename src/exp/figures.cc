#include "exp/figures.h"

#include "util/string_util.h"

namespace igepa {
namespace exp {
namespace {

template <typename Apply>
FigureSpec MakeSpec(std::string id, std::string title, std::string x_label,
                    const std::vector<double>& values, Apply apply,
                    bool integer_labels) {
  FigureSpec spec;
  spec.id = std::move(id);
  spec.title = std::move(title);
  spec.x_label = std::move(x_label);
  for (double value : values) {
    SweepPoint point;
    point.label = integer_labels
                      ? std::to_string(static_cast<int64_t>(value))
                      : FormatDouble(value, 1);
    apply(&point.config, value);
    spec.points.push_back(std::move(point));
  }
  return spec;
}

}  // namespace

FigureSpec Fig1a() {
  return MakeSpec(
      "fig1a", "utility vs number of events", "|V|",
      {100, 150, 200, 250, 300},
      [](gen::SyntheticConfig* c, double v) {
        c->num_events = static_cast<int32_t>(v);
      },
      /*integer_labels=*/true);
}

FigureSpec Fig1b() {
  return MakeSpec(
      "fig1b", "utility vs number of users", "|U|",
      {1000, 2000, 4000, 6000, 10000},
      [](gen::SyntheticConfig* c, double v) {
        c->num_users = static_cast<int32_t>(v);
      },
      /*integer_labels=*/true);
}

FigureSpec Fig1c() {
  return MakeSpec(
      "fig1c", "utility vs probability of event conflict", "p_cf",
      {0.1, 0.2, 0.3, 0.4, 0.5},
      [](gen::SyntheticConfig* c, double v) { c->p_conflict = v; },
      /*integer_labels=*/false);
}

FigureSpec Fig1d() {
  return MakeSpec(
      "fig1d", "utility vs probability that two users are friends", "p_deg",
      {0.1, 0.3, 0.5, 0.7, 0.9},
      [](gen::SyntheticConfig* c, double v) { c->p_friend = v; },
      /*integer_labels=*/false);
}

FigureSpec Fig1e() {
  return MakeSpec(
      "fig1e", "utility vs maximum capacity of events", "max c_v",
      {10, 30, 50, 70, 90},
      [](gen::SyntheticConfig* c, double v) {
        c->max_event_capacity = static_cast<int32_t>(v);
      },
      /*integer_labels=*/true);
}

FigureSpec Fig1f() {
  return MakeSpec(
      "fig1f", "utility vs maximum capacity of users", "max c_u",
      {2, 4, 6, 8, 10},
      [](gen::SyntheticConfig* c, double v) {
        c->max_user_capacity = static_cast<int32_t>(v);
      },
      /*integer_labels=*/true);
}

std::vector<FigureSpec> AllFigures() {
  return {Fig1a(), Fig1b(), Fig1c(), Fig1d(), Fig1e(), Fig1f()};
}

Result<std::vector<FigureRow>> RunFigure(const FigureSpec& spec,
                                         const std::vector<Algorithm>& algos,
                                         const HarnessOptions& options) {
  std::vector<FigureRow> rows;
  rows.reserve(spec.points.size());
  uint64_t point_seed = options.seed;
  for (const SweepPoint& point : spec.points) {
    HarnessOptions point_options = options;
    point_options.seed = point_seed++;
    const gen::SyntheticConfig config = point.config;
    auto factory = [config](Rng* rng) {
      return gen::GenerateSynthetic(config, rng);
    };
    IGEPA_ASSIGN_OR_RETURN(std::vector<AlgorithmSummary> summaries,
                           RunComparison(factory, algos, point_options));
    rows.push_back(FigureRow{point.label, std::move(summaries)});
  }
  return rows;
}

}  // namespace exp
}  // namespace igepa
