#ifndef IGEPA_EXP_REPORT_H_
#define IGEPA_EXP_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/instance.h"
#include "exp/figures.h"
#include "exp/harness.h"

namespace igepa {
namespace exp {

/// Pretty-prints a figure's utility table: one row per sweep point, one
/// column per algorithm, "mean ± stddev" cells. This is the console stand-in
/// for the paper's plotted series.
void PrintFigureTable(std::ostream& os, const FigureSpec& spec,
                      const std::vector<Algorithm>& algos,
                      const std::vector<FigureRow>& rows,
                      bool show_stddev = true);

/// Pretty-prints a single comparison (Table II style): one row per
/// algorithm with utility, time and pair-count statistics.
void PrintComparisonTable(std::ostream& os, const std::string& title,
                          const std::vector<Algorithm>& algos,
                          const std::vector<AlgorithmSummary>& summaries);

/// Emits a figure's rows as machine-readable CSV
/// (x,algorithm,mean,stddev,repeats).
void WriteFigureCsv(std::ostream& os, const FigureSpec& spec,
                    const std::vector<Algorithm>& algos,
                    const std::vector<FigureRow>& rows);

/// One-paragraph instance statistics (sizes, bid/conflict density, degree
/// mass) used by benches and examples to describe what they run on.
std::string DescribeInstance(const core::Instance& instance);

}  // namespace exp
}  // namespace igepa

#endif  // IGEPA_EXP_REPORT_H_
