#ifndef IGEPA_EXP_LOAD_TEST_H_
#define IGEPA_EXP_LOAD_TEST_H_

#include <cstdint>
#include <string>

#include "core/instance.h"
#include "gen/arrival_process.h"
#include "serve/arrangement_service.h"
#include "util/result.h"

namespace igepa {
namespace exp {

/// Options for the open-loop serve load test.
struct LoadTestOptions {
  /// Wall-clock length of the arrival phase; the run then drains and stops.
  double duration_seconds = 10.0;
  /// Poisson arrival intensity λ (mutations per second). OPEN loop: arrivals
  /// fire at their pre-sampled times whether or not the service keeps up, so
  /// an overloaded service shows up as queue growth and rejections instead
  /// of silently slowing the generator down.
  double rate_per_second = 200.0;
  /// Seed of the arrival stream (mutation kinds, targets, gap sequence). The
  /// service's own sampling seed lives in serve.seed.
  uint64_t seed = 20190408;
  /// Mutation mix and shape; num_arrivals/rate_per_second are overridden
  /// from duration_seconds and rate_per_second above.
  gen::ArrivalProcessConfig arrivals;
  /// Service under test (background mode; epoch_ms/max_batch are the knobs
  /// that matter). durable_dir works too — the WAL/checkpoint cost then
  /// lands in the measured latencies, which is the point.
  serve::ServeOptions serve;
};

/// What the load test observed. Counters cover the whole run (arrival phase
/// plus drain); percentiles come from the service's sliding sample windows.
struct LoadTestReport {
  /// Arrival-phase wall time actually elapsed (close to duration_seconds).
  double duration_seconds = 0.0;
  /// Total wall time including the drain.
  double total_seconds = 0.0;
  int64_t arrivals_generated = 0;
  int64_t deltas_submitted = 0;  // accepted by Submit
  int64_t deltas_rejected = 0;   // backpressure drops (queue full)
  int64_t deltas_applied = 0;
  int64_t epochs = 0;
  int64_t snapshot_version = 0;
  /// deltas_applied / total_seconds — the sustained mutation throughput.
  double applied_per_second = 0.0;
  /// Peak pending-queue depth sampled at submit times.
  int64_t max_queue_depth = 0;
  /// Pending deltas after the final drain (0 unless the service errored).
  int64_t final_queue_depth = 0;
  double p50_epoch_seconds = 0.0;
  double p99_epoch_seconds = 0.0;
  double p50_publish_latency_seconds = 0.0;
  double p99_publish_latency_seconds = 0.0;
  double final_lp_objective = 0.0;
  double final_utility = 0.0;
  /// ---- Pipeline observability (ServeOptions::pipeline_depth; stage
  /// percentiles are meaningful in sequential runs too, the queue counters
  /// only when pipeline_depth >= 2). ----
  int32_t pipeline_depth = 1;
  double p50_ingest_seconds = 0.0;
  double p99_ingest_seconds = 0.0;
  double p50_solve_seconds = 0.0;
  double p99_solve_seconds = 0.0;
  double p50_commit_seconds = 0.0;
  double p99_commit_seconds = 0.0;
  int64_t engine_queue_peak = 0;
  int64_t commit_queue_peak = 0;
  int64_t ingest_stalls = 0;
};

/// Open-loop load test against a background-mode ArrangementService: samples
/// a Poisson arrival stream up front, Start()s the service, submits each
/// delta at its scheduled wall-clock time (dropping on backpressure), then
/// Stop()s (which drains) and collects the report. Wall-clock results vary
/// by machine — this is a throughput/latency harness, not a determinism
/// fixture; the engine arithmetic under it stays deterministic per batch.
Result<LoadTestReport> RunLoadTest(core::Instance instance,
                                   const LoadTestOptions& options = {});

/// Writes the report as google-benchmark-schema JSON so bench_compare.py
/// tracks it alongside the microbenchmarks: the latency percentiles are
/// `run_type: "iteration"` entries named LT_ServeEpochLatency/p50|p99,
/// LT_ServePublishLatency/p50|p99 and the per-stage families
/// LT_ServeStageIngest|Solve|Commit/p50|p99 (real_time in ns, lower is
/// better — the only shape bench_compare reads); throughput, pipeline depth
/// and queue counters go into the `context` block, where higher-is-better
/// numbers cannot be misread as latency regressions.
Status WriteLoadTestJson(const LoadTestReport& report,
                         const LoadTestOptions& options,
                         const std::string& path);

}  // namespace exp
}  // namespace igepa

#endif  // IGEPA_EXP_LOAD_TEST_H_
