#include "exp/report.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace igepa {
namespace exp {
namespace {

constexpr size_t kCellWidth = 20;

std::string Cell(double mean, double stddev, bool show_stddev) {
  std::string text = FormatDouble(mean, 2);
  if (show_stddev) text += " ±" + FormatDouble(stddev, 2);
  return text;
}

}  // namespace

void PrintFigureTable(std::ostream& os, const FigureSpec& spec,
                      const std::vector<Algorithm>& algos,
                      const std::vector<FigureRow>& rows, bool show_stddev) {
  os << "== " << spec.id << ": " << spec.title << " ==\n";
  os << PadRight(spec.x_label, 10);
  for (Algorithm a : algos) os << PadLeft(AlgorithmName(a), kCellWidth);
  os << "\n";
  for (const FigureRow& row : rows) {
    os << PadRight(row.label, 10);
    for (size_t a = 0; a < algos.size(); ++a) {
      const auto& s = row.summaries[a];
      os << PadLeft(Cell(s.utility.mean(), s.utility.stddev(), show_stddev),
                    kCellWidth);
    }
    os << "\n";
  }
  if (!rows.empty() && !rows.front().summaries.empty()) {
    os << "(" << rows.front().summaries.front().utility.count()
       << " repetitions per point; utility = " << "β·ΣSI + (1-β)·ΣD" << ")\n";
  }
}

void PrintComparisonTable(std::ostream& os, const std::string& title,
                          const std::vector<Algorithm>& algos,
                          const std::vector<AlgorithmSummary>& summaries) {
  os << "== " << title << " ==\n";
  os << PadRight("Algorithm", 16) << PadLeft("Utility", 16)
     << PadLeft("Stddev", 12) << PadLeft("Pairs", 12)
     << PadLeft("Time [ms]", 12) << "\n";
  for (size_t a = 0; a < algos.size() && a < summaries.size(); ++a) {
    const auto& s = summaries[a];
    os << PadRight(AlgorithmName(algos[a]), 16)
       << PadLeft(FormatDouble(s.utility.mean(), 2), 16)
       << PadLeft(FormatDouble(s.utility.stddev(), 2), 12)
       << PadLeft(FormatDouble(s.pairs.mean(), 1), 12)
       << PadLeft(FormatDouble(s.seconds.mean() * 1e3, 2), 12) << "\n";
  }
}

void WriteFigureCsv(std::ostream& os, const FigureSpec& spec,
                    const std::vector<Algorithm>& algos,
                    const std::vector<FigureRow>& rows) {
  os << "figure,x,algorithm,utility_mean,utility_stddev,repeats\n";
  for (const FigureRow& row : rows) {
    for (size_t a = 0; a < algos.size(); ++a) {
      const auto& s = row.summaries[a];
      os << spec.id << "," << row.label << "," << AlgorithmName(algos[a])
         << "," << FormatDouble(s.utility.mean(), 4) << ","
         << FormatDouble(s.utility.stddev(), 4) << "," << s.utility.count()
         << "\n";
    }
  }
}

std::string DescribeInstance(const core::Instance& instance) {
  int64_t conflict_pairs = 0;
  const int32_t nv = instance.num_events();
  for (int32_t a = 0; a < nv; ++a) {
    for (int32_t b = a + 1; b < nv; ++b) {
      if (instance.Conflicts(a, b)) ++conflict_pairs;
    }
  }
  double total_degree = 0.0;
  for (int32_t u = 0; u < instance.num_users(); ++u) {
    total_degree += instance.Degree(u);
  }
  int64_t total_event_capacity = 0;
  for (int32_t v = 0; v < nv; ++v) {
    total_event_capacity += instance.event_capacity(v);
  }
  std::ostringstream os;
  os << "|V|=" << nv << " |U|=" << instance.num_users()
     << " beta=" << FormatDouble(instance.beta(), 2)
     << " bids=" << instance.TotalBids()
     << " conflict_pairs=" << conflict_pairs
     << " avg_D=" << FormatDouble(
            instance.num_users() > 0
                ? total_degree / instance.num_users()
                : 0.0,
            4)
     << " total_cv=" << total_event_capacity;
  return os.str();
}

}  // namespace exp
}  // namespace igepa
