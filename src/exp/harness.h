#ifndef IGEPA_EXP_HARNESS_H_
#define IGEPA_EXP_HARNESS_H_

#include <functional>
#include <string>
#include <vector>

#include "algo/baselines.h"
#include "algo/local_search.h"
#include "core/instance.h"
#include "core/lp_packing.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace igepa {
namespace exp {

/// The algorithms compared in the paper's evaluation (§IV), plus the
/// library's extensions for ablation studies.
enum class Algorithm : uint8_t {
  kLpPacking,   // Algorithm 1, α per options (paper: α = 1)
  kGreedyGg,    // GG
  kRandomU,
  kRandomV,
  /// Extension: GG followed by the local-search improver.
  kGreedyLocalSearch,
  /// Extension: LP-packing followed by the local-search improver.
  kLpPackingLocalSearch,
  /// Extension: catalog-native set-level greedy (algo::GreedyBestSet).
  kGreedyBestSet,
};

/// Stable display name ("LP-packing", "GG", ...) matching the paper's tables.
const char* AlgorithmName(Algorithm algorithm);

/// The four algorithms of Table II, in the paper's column order.
std::vector<Algorithm> PaperAlgorithms();

/// Options for the comparison harness.
struct HarnessOptions {
  /// Repetitions per configuration; the paper reports 50-run averages.
  int32_t repeats = 50;
  /// Master seed; every repetition forks an independent stream.
  uint64_t seed = 20190408;
  /// LP-packing configuration (α, LP engine, admissible cap).
  core::LpPackingOptions lp;
  /// Local-search configuration for the *LocalSearch extensions.
  algo::LocalSearchOptions local_search;
  /// Validate every arrangement against Definition 4 (cheap; keep on).
  bool check_feasibility = true;
  /// Generate one instance and share it across repetitions (real-dataset
  /// protocol) instead of a fresh instance per repetition (synthetic
  /// protocol).
  bool reuse_instance = false;
};

/// One algorithm run on one instance.
struct TrialOutcome {
  double utility = 0.0;
  double seconds = 0.0;
  int64_t pairs = 0;
  core::LpPackingStats lp_stats;  // populated for LP-packing variants
};

/// Aggregated outcomes of one algorithm across repetitions.
struct AlgorithmSummary {
  Algorithm algorithm = Algorithm::kLpPacking;
  RunningStat utility;
  RunningStat seconds;
  RunningStat pairs;
  /// LP diagnostics (LP-packing variants only).
  RunningStat lp_objective;
  RunningStat lp_gap;
};

/// Produces a fresh instance per repetition (synthetic protocol) from the
/// repetition's RNG stream.
using InstanceFactory = std::function<Result<core::Instance>(Rng*)>;

/// Runs `algorithm` once on `instance` using `rng` for its random choices.
Result<TrialOutcome> RunOnInstance(const core::Instance& instance,
                                   Algorithm algorithm, Rng* rng,
                                   const HarnessOptions& options);

/// Full §IV comparison protocol: `repeats` repetitions; each repetition draws
/// an instance from `factory` (or reuses one, per options) and runs every
/// algorithm on that same instance; per-algorithm statistics are aggregated.
Result<std::vector<AlgorithmSummary>> RunComparison(
    const InstanceFactory& factory, const std::vector<Algorithm>& algorithms,
    const HarnessOptions& options);

/// One independent harness configuration for the parallel scenario driver: a
/// named RunComparison invocation with its own factory, algorithm list and
/// options (including its own master seed).
struct Scenario {
  std::string name;
  InstanceFactory factory;
  std::vector<Algorithm> algorithms;
  HarnessOptions options;
};

/// RunComparison outcome of one scenario, in the input order of RunScenarios.
struct ScenarioResult {
  std::string name;
  std::vector<AlgorithmSummary> summaries;
};

/// Runs independent scenarios concurrently on a work-stealing pool
/// (num_threads <= 0 = hardware concurrency) and returns their results in
/// input order. Every scenario owns its RNG stream via options.seed, so
/// results are identical to running the scenarios serially, for any thread
/// count. On failure, returns the error of the lowest-indexed failing
/// scenario. Scenario wall-clock fields (TrialOutcome::seconds aggregates)
/// measure the trial itself and remain meaningful, but concurrent scenarios
/// do contend for cores — prefer num_threads=1 inside options.lp when the
/// driver itself is parallel.
Result<std::vector<ScenarioResult>> RunScenarios(
    const std::vector<Scenario>& scenarios, int32_t num_threads = 0);

}  // namespace exp
}  // namespace igepa

#endif  // IGEPA_EXP_HARNESS_H_
