#ifndef IGEPA_EXP_REPLAY_H_
#define IGEPA_EXP_REPLAY_H_

#include <cstdint>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/benchmark_dual.h"
#include "core/instance.h"
#include "core/instance_delta.h"
#include "core/lp_packing.h"
#include "util/result.h"

namespace igepa {
namespace exp {

/// Options for the streaming replay driver.
struct ReplayOptions {
  /// Worker threads for the warm and cold solves (0 = hardware concurrency).
  /// A pure wall-clock knob: results are bit-identical for every value.
  int32_t num_threads = 0;
  /// Structured-dual knobs shared by the warm and cold solves.
  core::StructuredDualOptions dual;
  /// Enumeration knobs (catalog build and delta re-enumeration).
  core::AdmissibleOptions admissible;
  /// Catalog compaction policy.
  double compact_tombstone_fraction = 0.25;
  int32_t compact_min_dead_columns = 256;
  /// Algorithm-1 sampling scale for the rounding passes.
  double alpha = 1.0;
  /// Rounding RNG master seed (per-tick streams are forked from it, so
  /// results do not depend on the thread count).
  uint64_t seed = 20190408;
  /// Also run the full cold pipeline (rebuild + cold solve + full re-round)
  /// every tick, for the latency and objective-drift comparison. Turn off to
  /// measure pure incremental-engine latency.
  bool compare_cold = true;
};

/// One tick of the replay: the incremental (warm) path, and — when
/// compare_cold — the from-scratch (cold) reference on the same mutated
/// instance.
struct ReplayTick {
  int32_t tick = 0;
  int32_t touched_users = 0;
  int32_t event_updates = 0;
  bool compacted = false;
  int32_t live_columns = 0;
  int32_t dead_columns = 0;

  double warm_seconds = 0.0;   // ApplyDelta + warm solve + localized re-round
  double warm_lp_objective = 0.0;
  int64_t warm_lp_iterations = 0;
  double warm_utility = 0.0;   // rounded arrangement utility

  double cold_seconds = 0.0;   // rebuild + cold solve + full re-round
  double cold_lp_objective = 0.0;
  int64_t cold_lp_iterations = 0;
  double cold_utility = 0.0;
  /// |warm_lp - cold_lp| / max(1, |cold_lp|). Both solves certify
  /// target_gap, so this stays ≤ ~2·target_gap (DESIGN.md S15).
  double lp_drift = 0.0;
};

/// Aggregate replay outcome.
struct ReplayReport {
  std::vector<ReplayTick> ticks;
  double total_warm_seconds = 0.0;
  double total_cold_seconds = 0.0;
  double max_lp_drift = 0.0;
  double final_warm_lp_objective = 0.0;
  double final_cold_lp_objective = 0.0;
};

/// The incremental arrangement engine, end to end (DESIGN.md S15): solves the
/// base instance cold once, then consumes the delta stream tick by tick —
/// instance patch → catalog ApplyDelta (tombstone/append, auto-compaction) →
/// warm-started structured dual (rescanning only touched users) → localized
/// re-round (resampling only touched users, repairing only touched events) —
/// and reports per-tick latency and objective drift against the cold
/// pipeline. Every warm arrangement is feasibility-checked; the first
/// violation aborts the replay with an error.
///
/// Takes the instance by value: the replay mutates it tick by tick.
Result<ReplayReport> RunReplay(core::Instance instance,
                               const std::vector<core::InstanceDelta>& stream,
                               const ReplayOptions& options = {});

}  // namespace exp
}  // namespace igepa

#endif  // IGEPA_EXP_REPLAY_H_
