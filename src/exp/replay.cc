#include "exp/replay.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/warm_tick.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace igepa {
namespace exp {

using core::AdmissibleCatalog;
using core::Arrangement;
using core::CatalogDeltaOptions;
using core::DualWarmStart;
using core::FractionalSolution;
using core::Instance;
using core::InstanceDelta;
using core::LpPackingOptions;
using core::RoundingState;
using core::StructuredDualOptions;

Result<ReplayReport> RunReplay(Instance instance,
                               const std::vector<InstanceDelta>& stream,
                               const ReplayOptions& options) {
  StructuredDualOptions dual = options.dual;
  dual.num_threads = options.num_threads;
  core::AdmissibleOptions admissible = options.admissible;
  admissible.num_threads = options.num_threads;
  CatalogDeltaOptions delta_options;
  delta_options.admissible = options.admissible;
  delta_options.compact_tombstone_fraction = options.compact_tombstone_fraction;
  delta_options.compact_min_dead_columns = options.compact_min_dead_columns;
  LpPackingOptions round_options;
  round_options.alpha = options.alpha;
  round_options.num_threads = options.num_threads;
  round_options.structured = dual;

  Rng master(options.seed);

  // ---- Tick 0: cold bootstrap of the incremental state. ---------------------
  AdmissibleCatalog catalog = AdmissibleCatalog::Build(instance, admissible);
  DualWarmStart warm;
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution base_sol,
      core::SolveBenchmarkLpStructured(instance, catalog, dual, &warm));
  FractionalSolution fractional;
  fractional.lp = std::move(base_sol);
  fractional.structured = true;
  RoundingState state;
  {
    Rng round_rng = master.Fork();
    IGEPA_ASSIGN_OR_RETURN(
        Arrangement base_arr,
        core::RoundFractional(instance, catalog, fractional, &round_rng,
                              round_options, /*stats=*/nullptr, &state));
    IGEPA_RETURN_IF_ERROR(base_arr.CheckFeasible(instance));
  }

  ReplayReport report;
  report.ticks.reserve(stream.size());

  for (size_t tick = 0; tick < stream.size(); ++tick) {
    const InstanceDelta& delta = stream[tick];
    ReplayTick row;
    row.tick = static_cast<int32_t>(tick);
    Rng warm_rng = master.Fork();
    Rng cold_rng = master.Fork();

    // ---- Warm path: one tick of the shared incremental pipeline
    // (core::ApplyWarmTick — the same call the serving layer's epochs make).
    Stopwatch warm_watch;
    auto tick_report =
        core::ApplyWarmTick(&instance, &catalog, &warm, &state, &fractional,
                            delta, &warm_rng, dual, delta_options,
                            round_options);
    if (!tick_report.ok()) return tick_report.status();
    row.warm_seconds = warm_watch.ElapsedSeconds();

    row.touched_users = tick_report->touched_users;
    row.event_updates = tick_report->event_updates;
    row.compacted = tick_report->compacted;
    row.live_columns = catalog.num_live_columns();
    row.dead_columns = catalog.num_dead_columns();
    row.warm_lp_objective = fractional.lp.objective;
    row.warm_lp_iterations = fractional.lp.iterations;
    row.warm_utility = tick_report->arrangement.Utility(instance);

    // ---- Cold reference: rebuild everything from the mutated instance. ----
    if (options.compare_cold) {
      Stopwatch cold_watch;
      const AdmissibleCatalog cold_catalog =
          AdmissibleCatalog::Build(instance, admissible);
      IGEPA_ASSIGN_OR_RETURN(
          lp::LpSolution cold_sol,
          core::SolveBenchmarkLpStructured(instance, cold_catalog, dual));
      FractionalSolution cold_fractional;
      cold_fractional.lp = std::move(cold_sol);
      cold_fractional.structured = true;
      IGEPA_ASSIGN_OR_RETURN(
          Arrangement cold_arr,
          core::RoundFractional(instance, cold_catalog, cold_fractional,
                                &cold_rng, round_options));
      // The warm side's ApplyWarmTick runs its feasibility check inside the
      // timed window, so the cold side must too for a fair comparison.
      IGEPA_RETURN_IF_ERROR(cold_arr.CheckFeasible(instance));
      row.cold_seconds = cold_watch.ElapsedSeconds();
      row.cold_lp_objective = cold_fractional.lp.objective;
      row.cold_lp_iterations = cold_fractional.lp.iterations;
      row.cold_utility = cold_arr.Utility(instance);
      row.lp_drift = std::abs(row.warm_lp_objective - row.cold_lp_objective) /
                     std::max(1.0, std::abs(row.cold_lp_objective));
      report.max_lp_drift = std::max(report.max_lp_drift, row.lp_drift);
      report.final_cold_lp_objective = row.cold_lp_objective;
      report.total_cold_seconds += row.cold_seconds;
    }
    report.total_warm_seconds += row.warm_seconds;
    report.final_warm_lp_objective = row.warm_lp_objective;
    report.ticks.push_back(row);
  }
  return report;
}

}  // namespace exp
}  // namespace igepa
