#include "exp/replay.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace igepa {
namespace exp {

using core::AdmissibleCatalog;
using core::Arrangement;
using core::CatalogDeltaOptions;
using core::DualWarmStart;
using core::FractionalSolution;
using core::Instance;
using core::InstanceDelta;
using core::LpPackingOptions;
using core::RoundingState;
using core::StructuredDualOptions;
using core::UserId;

Result<ReplayReport> RunReplay(Instance instance,
                               const std::vector<InstanceDelta>& stream,
                               const ReplayOptions& options) {
  const int32_t nu = instance.num_users();

  StructuredDualOptions dual = options.dual;
  dual.num_threads = options.num_threads;
  core::AdmissibleOptions admissible = options.admissible;
  admissible.num_threads = options.num_threads;
  CatalogDeltaOptions delta_options;
  delta_options.admissible = options.admissible;
  delta_options.compact_tombstone_fraction = options.compact_tombstone_fraction;
  delta_options.compact_min_dead_columns = options.compact_min_dead_columns;
  LpPackingOptions round_options;
  round_options.alpha = options.alpha;
  round_options.num_threads = options.num_threads;
  round_options.structured = dual;

  Rng master(options.seed);

  // ---- Tick 0: cold bootstrap of the incremental state. ---------------------
  AdmissibleCatalog catalog = AdmissibleCatalog::Build(instance, admissible);
  DualWarmStart warm;
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution base_sol,
      core::SolveBenchmarkLpStructured(instance, catalog, dual, &warm));
  FractionalSolution fractional;
  fractional.lp = std::move(base_sol);
  fractional.structured = true;
  RoundingState state;
  {
    Rng round_rng = master.Fork();
    IGEPA_ASSIGN_OR_RETURN(
        Arrangement base_arr,
        core::RoundFractional(instance, catalog, fractional, &round_rng,
                              round_options, /*stats=*/nullptr, &state));
    IGEPA_RETURN_IF_ERROR(base_arr.CheckFeasible(instance));
  }

  ReplayReport report;
  report.ticks.reserve(stream.size());

  for (size_t tick = 0; tick < stream.size(); ++tick) {
    const InstanceDelta& delta = stream[tick];
    ReplayTick row;
    row.tick = static_cast<int32_t>(tick);
    Rng warm_rng = master.Fork();
    Rng cold_rng = master.Fork();

    // ---- Warm path: the incremental engine. -------------------------------
    Stopwatch warm_watch;
    const std::vector<UserId> touched = core::TouchedUsers(delta);
    const std::vector<core::EventId> cap_events = core::TouchedEvents(delta);
    // Validate ids up front: RetireSamples indexes per-user state before
    // core::ApplyDelta gets a chance to reject the delta.
    for (UserId u : touched) {
      if (u < 0 || u >= nu) {
        return Status::InvalidArgument(
            "replay tick " + std::to_string(tick) +
            " updates out-of-range user " + std::to_string(u));
      }
    }
    for (core::EventId v : cap_events) {
      if (v < 0 || v >= instance.num_events()) {
        return Status::InvalidArgument(
            "replay tick " + std::to_string(tick) +
            " updates out-of-range event " + std::to_string(v));
      }
    }
    // Retire touched users' samples while their column ids are still
    // addressable (ApplyDelta may compact).
    std::vector<core::EventId> dirty_events =
        core::RetireSamples(catalog, touched, &state);
    dirty_events.insert(dirty_events.end(), cap_events.begin(),
                        cap_events.end());
    std::sort(dirty_events.begin(), dirty_events.end());
    dirty_events.erase(std::unique(dirty_events.begin(), dirty_events.end()),
                       dirty_events.end());

    IGEPA_RETURN_IF_ERROR(core::ApplyDelta(&instance, delta));
    IGEPA_ASSIGN_OR_RETURN(
        core::CatalogDeltaResult delta_result,
        catalog.ApplyDelta(instance, delta, delta_options));
    if (delta_result.compacted) {
      // Surviving column ids were renumbered; keep the cached state alive.
      state.Remap(delta_result.column_remap, catalog.ids_revision());
      warm.Remap(delta_result.column_remap, catalog.ids_revision());
    }
    warm.stale.assign(static_cast<size_t>(nu), 0);
    for (UserId u : touched) warm.stale[static_cast<size_t>(u)] = 1;

    StructuredDualOptions warm_dual = dual;
    warm_dual.warm = &warm;
    DualWarmStart warm_next;
    IGEPA_ASSIGN_OR_RETURN(
        lp::LpSolution warm_sol,
        core::SolveBenchmarkLpStructured(instance, catalog, warm_dual,
                                         &warm_next));
    fractional.lp = std::move(warm_sol);
    IGEPA_ASSIGN_OR_RETURN(
        Arrangement warm_arr,
        core::RoundFractionalDelta(instance, catalog, fractional, touched,
                                   dirty_events, &warm_rng, &state,
                                   round_options));
    row.warm_seconds = warm_watch.ElapsedSeconds();
    IGEPA_RETURN_IF_ERROR(warm_arr.CheckFeasible(instance));
    warm = std::move(warm_next);

    row.touched_users = static_cast<int32_t>(touched.size());
    row.event_updates = static_cast<int32_t>(delta.event_updates.size());
    row.compacted = delta_result.compacted;
    row.live_columns = catalog.num_live_columns();
    row.dead_columns = catalog.num_dead_columns();
    row.warm_lp_objective = fractional.lp.objective;
    row.warm_lp_iterations = fractional.lp.iterations;
    row.warm_utility = warm_arr.Utility(instance);

    // ---- Cold reference: rebuild everything from the mutated instance. ----
    if (options.compare_cold) {
      Stopwatch cold_watch;
      const AdmissibleCatalog cold_catalog =
          AdmissibleCatalog::Build(instance, admissible);
      IGEPA_ASSIGN_OR_RETURN(
          lp::LpSolution cold_sol,
          core::SolveBenchmarkLpStructured(instance, cold_catalog, dual));
      FractionalSolution cold_fractional;
      cold_fractional.lp = std::move(cold_sol);
      cold_fractional.structured = true;
      IGEPA_ASSIGN_OR_RETURN(
          Arrangement cold_arr,
          core::RoundFractional(instance, cold_catalog, cold_fractional,
                                &cold_rng, round_options));
      row.cold_seconds = cold_watch.ElapsedSeconds();
      IGEPA_RETURN_IF_ERROR(cold_arr.CheckFeasible(instance));
      row.cold_lp_objective = cold_fractional.lp.objective;
      row.cold_lp_iterations = cold_fractional.lp.iterations;
      row.cold_utility = cold_arr.Utility(instance);
      row.lp_drift = std::abs(row.warm_lp_objective - row.cold_lp_objective) /
                     std::max(1.0, std::abs(row.cold_lp_objective));
      report.max_lp_drift = std::max(report.max_lp_drift, row.lp_drift);
      report.final_cold_lp_objective = row.cold_lp_objective;
      report.total_cold_seconds += row.cold_seconds;
    }
    report.total_warm_seconds += row.warm_seconds;
    report.final_warm_lp_objective = row.warm_lp_objective;
    report.ticks.push_back(row);
  }
  return report;
}

}  // namespace exp
}  // namespace igepa
