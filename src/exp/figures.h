#ifndef IGEPA_EXP_FIGURES_H_
#define IGEPA_EXP_FIGURES_H_

#include <string>
#include <vector>

#include "exp/harness.h"
#include "gen/synthetic.h"

namespace igepa {
namespace exp {

/// One x-axis point of a Fig. 1 sweep: a label (the x value) and the full
/// synthetic configuration realizing it (all other factors at Table I
/// defaults).
struct SweepPoint {
  std::string label;
  gen::SyntheticConfig config;
};

/// A figure specification: which factor is swept and its points.
struct FigureSpec {
  std::string id;       // "fig1a" ... "fig1f"
  std::string title;    // paper caption fragment
  std::string x_label;  // "|V|", "|U|", "p_cf", ...
  std::vector<SweepPoint> points;
};

/// Fig. 1(a): number of events |V| ∈ {100, 150, 200, 250, 300}.
FigureSpec Fig1a();
/// Fig. 1(b): number of users |U| ∈ {1000, 2000, 4000, 6000, 10000}.
FigureSpec Fig1b();
/// Fig. 1(c): conflict probability p_cf ∈ {0.1, 0.2, 0.3, 0.4, 0.5}.
FigureSpec Fig1c();
/// Fig. 1(d): friendship probability p_deg ∈ {0.1, 0.3, 0.5, 0.7, 0.9}.
FigureSpec Fig1d();
/// Fig. 1(e): maximum event capacity max c_v ∈ {10, 30, 50, 70, 90}.
FigureSpec Fig1e();
/// Fig. 1(f): maximum user capacity max c_u ∈ {2, 4, 6, 8, 10}.
FigureSpec Fig1f();

/// All six sweeps.
std::vector<FigureSpec> AllFigures();

/// Aggregated results for one sweep point.
struct FigureRow {
  std::string label;
  std::vector<AlgorithmSummary> summaries;  // parallel to the algorithm list
};

/// Runs one figure sweep: for each point, RunComparison on fresh synthetic
/// instances. Returns one row per point.
Result<std::vector<FigureRow>> RunFigure(const FigureSpec& spec,
                                         const std::vector<Algorithm>& algos,
                                         const HarnessOptions& options);

}  // namespace exp
}  // namespace igepa

#endif  // IGEPA_EXP_FIGURES_H_
