#include "exp/harness.h"

#include <memory>
#include <utility>

#include "core/admissible_catalog.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace igepa {
namespace exp {

using core::AdmissibleCatalog;
using core::Arrangement;
using core::Instance;

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kLpPacking:
      return "LP-packing";
    case Algorithm::kGreedyGg:
      return "GG";
    case Algorithm::kRandomU:
      return "Random-U";
    case Algorithm::kRandomV:
      return "Random-V";
    case Algorithm::kGreedyLocalSearch:
      return "GG+LS";
    case Algorithm::kLpPackingLocalSearch:
      return "LP-packing+LS";
    case Algorithm::kGreedyBestSet:
      return "GBS";
  }
  return "Unknown";
}

std::vector<Algorithm> PaperAlgorithms() {
  return {Algorithm::kLpPacking, Algorithm::kRandomU, Algorithm::kRandomV,
          Algorithm::kGreedyGg};
}

namespace {

bool NeedsCatalog(Algorithm algorithm) {
  // Both +LS variants get the catalog so "+LS" means the same improver
  // (add / swap / set moves) in every table row.
  return algorithm == Algorithm::kLpPacking ||
         algorithm == Algorithm::kLpPackingLocalSearch ||
         algorithm == Algorithm::kGreedyLocalSearch ||
         algorithm == Algorithm::kGreedyBestSet;
}

}  // namespace

Result<TrialOutcome> RunOnInstance(const Instance& instance,
                                   Algorithm algorithm, Rng* rng,
                                   const HarnessOptions& options) {
  TrialOutcome outcome;
  Stopwatch watch;
  Result<Arrangement> result = Status::Internal("unset");
  // The catalog is the shared substrate of every set-based algorithm; build
  // it once per trial and thread it through.
  std::unique_ptr<AdmissibleCatalog> catalog;
  if (NeedsCatalog(algorithm)) {
    catalog = std::make_unique<AdmissibleCatalog>(
        AdmissibleCatalog::Build(instance, options.lp.admissible));
  }
  switch (algorithm) {
    case Algorithm::kLpPacking:
      result = core::LpPackingWithCatalog(instance, *catalog, rng, options.lp,
                                          &outcome.lp_stats);
      break;
    case Algorithm::kGreedyGg:
      result = algo::GreedyGg(instance);
      break;
    case Algorithm::kRandomU:
      result = algo::RandomU(instance, rng);
      break;
    case Algorithm::kRandomV:
      result = algo::RandomV(instance, rng);
      break;
    case Algorithm::kGreedyBestSet:
      result = algo::GreedyBestSet(instance, *catalog);
      break;
    case Algorithm::kGreedyLocalSearch: {
      IGEPA_ASSIGN_OR_RETURN(Arrangement start, algo::GreedyGg(instance));
      result = algo::ImproveLocalSearch(instance, std::move(start),
                                        options.local_search,
                                        /*stats=*/nullptr, catalog.get());
      break;
    }
    case Algorithm::kLpPackingLocalSearch: {
      IGEPA_ASSIGN_OR_RETURN(
          Arrangement start,
          core::LpPackingWithCatalog(instance, *catalog, rng, options.lp,
                                     &outcome.lp_stats));
      result = algo::ImproveLocalSearch(instance, std::move(start),
                                        options.local_search,
                                        /*stats=*/nullptr, catalog.get());
      break;
    }
  }
  if (!result.ok()) return result.status();
  outcome.seconds = watch.ElapsedSeconds();
  const Arrangement& arrangement = *result;
  if (options.check_feasibility) {
    IGEPA_RETURN_IF_ERROR(arrangement.CheckFeasible(instance));
  }
  outcome.utility = arrangement.Utility(instance);
  outcome.pairs = arrangement.size();
  return outcome;
}

namespace {

/// Per-shared-instance cache of the LP-packing pipeline's expensive,
/// randomness-free prefix: the admissible catalog and the fractional LP
/// solution. The real-dataset protocol reuses one instance across all
/// repetitions, and line 1 of Algorithm 1 depends only on the instance — so
/// the catalog is built and the LP solved once, and only the sampling/repair
/// (lines 2-8) re-run per repetition against catalog views.
struct LpCache {
  bool ready = false;
  AdmissibleCatalog catalog;
  core::FractionalSolution fractional;
};

Result<TrialOutcome> RunLpPackingCached(const Instance& instance,
                                        Algorithm algorithm, Rng* rng,
                                        const HarnessOptions& options,
                                        LpCache* cache) {
  TrialOutcome outcome;
  Stopwatch watch;
  if (!cache->ready) {
    cache->catalog = AdmissibleCatalog::Build(instance, options.lp.admissible);
    IGEPA_ASSIGN_OR_RETURN(cache->fractional,
                           core::SolveBenchmarkLpForPacking(
                               instance, cache->catalog, options.lp));
    cache->ready = true;
  }
  IGEPA_ASSIGN_OR_RETURN(
      Arrangement arrangement,
      core::RoundFractional(instance, cache->catalog, cache->fractional, rng,
                            options.lp, &outcome.lp_stats));
  if (algorithm == Algorithm::kLpPackingLocalSearch) {
    IGEPA_ASSIGN_OR_RETURN(
        arrangement,
        algo::ImproveLocalSearch(instance, std::move(arrangement),
                                 options.local_search, /*stats=*/nullptr,
                                 &cache->catalog));
  }
  outcome.seconds = watch.ElapsedSeconds();
  if (options.check_feasibility) {
    IGEPA_RETURN_IF_ERROR(arrangement.CheckFeasible(instance));
  }
  outcome.utility = arrangement.Utility(instance);
  outcome.pairs = arrangement.size();
  return outcome;
}

}  // namespace

Result<std::vector<AlgorithmSummary>> RunComparison(
    const InstanceFactory& factory, const std::vector<Algorithm>& algorithms,
    const HarnessOptions& options) {
  if (options.repeats <= 0) {
    return Status::InvalidArgument("repeats must be positive");
  }
  std::vector<AlgorithmSummary> summaries(algorithms.size());
  for (size_t a = 0; a < algorithms.size(); ++a) {
    summaries[a].algorithm = algorithms[a];
  }
  Rng master(options.seed);

  // Shared-instance protocol: generate once from a dedicated stream.
  std::unique_ptr<Instance> shared;
  if (options.reuse_instance) {
    Rng gen_rng = master.Fork();
    IGEPA_ASSIGN_OR_RETURN(Instance instance, factory(&gen_rng));
    shared = std::make_unique<Instance>(std::move(instance));
  }
  LpCache lp_cache;

  for (int32_t rep = 0; rep < options.repeats; ++rep) {
    Rng rep_rng = master.Fork();
    std::unique_ptr<Instance> fresh;
    const Instance* instance = shared.get();
    if (instance == nullptr) {
      IGEPA_ASSIGN_OR_RETURN(Instance generated, factory(&rep_rng));
      fresh = std::make_unique<Instance>(std::move(generated));
      instance = fresh.get();
    }
    for (size_t a = 0; a < algorithms.size(); ++a) {
      Rng alg_rng = rep_rng.Fork();
      const bool lp_variant =
          algorithms[a] == Algorithm::kLpPacking ||
          algorithms[a] == Algorithm::kLpPackingLocalSearch;
      Result<TrialOutcome> run =
          (options.reuse_instance && lp_variant)
              ? RunLpPackingCached(*instance, algorithms[a], &alg_rng,
                                   options, &lp_cache)
              : RunOnInstance(*instance, algorithms[a], &alg_rng, options);
      if (!run.ok()) return run.status();
      TrialOutcome outcome = std::move(run).value();
      auto& summary = summaries[a];
      summary.utility.Add(outcome.utility);
      summary.seconds.Add(outcome.seconds);
      summary.pairs.Add(static_cast<double>(outcome.pairs));
      if (algorithms[a] == Algorithm::kLpPacking ||
          algorithms[a] == Algorithm::kLpPackingLocalSearch) {
        summary.lp_objective.Add(outcome.lp_stats.lp_objective);
        const double denom =
            std::max(1.0, std::abs(outcome.lp_stats.lp_upper_bound));
        summary.lp_gap.Add(
            (outcome.lp_stats.lp_upper_bound - outcome.lp_stats.lp_objective) /
            denom);
      }
    }
  }
  return summaries;
}

Result<std::vector<ScenarioResult>> RunScenarios(
    const std::vector<Scenario>& scenarios, int32_t num_threads) {
  const int64_t n = static_cast<int64_t>(scenarios.size());
  std::vector<Result<std::vector<AlgorithmSummary>>> runs(
      scenarios.size(), Result<std::vector<AlgorithmSummary>>(
                            Status::Internal("scenario not run")));
  // Scenarios are embarrassingly parallel: each RunComparison forks every
  // stream it needs from its own options.seed, and each lane writes only its
  // own slot — so the driver's schedule cannot change any result, only the
  // wall clock.
  const int32_t threads = ThreadPool::ResolveThreadCount(num_threads, n);
  const auto run_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const Scenario& scenario = scenarios[static_cast<size_t>(i)];
      runs[static_cast<size_t>(i)] = RunComparison(
          scenario.factory, scenario.algorithms, scenario.options);
    }
  };
  if (threads > 1) {
    ThreadPool pool(threads);
    ParallelForRanges(&pool, 0, n, /*grain=*/1, run_range);
  } else if (n > 0) {
    run_range(0, n);
  }
  std::vector<ScenarioResult> results;
  results.reserve(scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (!runs[i].ok()) return runs[i].status();
    results.push_back(ScenarioResult{scenarios[i].name,
                                     std::move(runs[i]).value()});
  }
  return results;
}

}  // namespace exp
}  // namespace igepa
