#ifndef IGEPA_CORE_CATALOG_LANES_H_
#define IGEPA_CORE_CATALOG_LANES_H_

#include <cstdint>
#include <span>

#include "core/types.h"

namespace igepa {
namespace core {

/// Raw-pointer view over a *canonical* catalog's flat CSR arrays — the lane
/// contract shared by the in-RAM `AdmissibleCatalog` (via `Lanes()`) and the
/// memory-mapped `io::CatalogView` (via `lanes()`). The sharded solver's
/// level-2 coordination loop and global legalize sweep consume only this
/// struct, so the spilled and in-memory paths run literally the same code
/// over identical array contents — which is what makes catalog eviction and
/// repage bit-invisible to results (DESIGN.md §8).
///
/// Canonical means no tombstones and no overflow appends: every array is
/// exactly what `AdmissibleCatalog::Build` produced. Freshly built shard
/// catalogs are always canonical. The pointers borrow; the owner (catalog or
/// mapping) must outlive every read.
struct CatalogLanes {
  int32_t num_users = 0;
  int32_t num_events = 0;
  int32_t num_columns = 0;
  int64_t num_pairs = 0;  // Σ_j |S_j| — pool and event_cols entries

  const EventId* pool = nullptr;       // num_pairs, sets concatenated
  const int64_t* col_begin = nullptr;  // num_columns + 1
  const int32_t* user_begin = nullptr; // num_users + 1 (column ids)
  const double* weight = nullptr;      // num_columns
  const UserId* col_user = nullptr;    // num_columns, column owner
  const int64_t* event_begin = nullptr;  // num_events + 1 (inverted index)
  const int32_t* event_cols = nullptr;   // num_pairs, columns per event

  /// The events of column j, ascending.
  std::span<const EventId> set(int32_t j) const {
    const int64_t b = col_begin[j];
    return {pool + b, static_cast<size_t>(col_begin[j + 1] - b)};
  }
  /// Column range [begin, end) of user u (contiguous, canonical layout).
  int32_t user_columns_begin(UserId u) const { return user_begin[u]; }
  int32_t user_columns_end(UserId u) const { return user_begin[u + 1]; }
  /// The user owning column j.
  UserId user_of(int32_t j) const { return col_user[j]; }

  /// Visits every column whose set contains v, ascending by column id.
  template <typename Fn>
  void ForEachColumnOfEvent(EventId v, Fn&& fn) const {
    const int64_t b = event_begin[v];
    const int64_t e = event_begin[v + 1];
    for (int64_t p = b; p < e; ++p) fn(event_cols[p]);
  }
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_CATALOG_LANES_H_
