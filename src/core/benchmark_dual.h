#ifndef IGEPA_CORE_BENCHMARK_DUAL_H_
#define IGEPA_CORE_BENCHMARK_DUAL_H_

#include <cstdint>

#include "core/admissible.h"
#include "core/admissible_catalog.h"
#include "core/benchmark_lp.h"
#include "core/instance.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// Options for the structured benchmark-LP solver.
struct StructuredDualOptions {
  /// Target certified relative duality gap.
  double target_gap = 0.01;
  /// Dual (subgradient) iteration budget.
  int64_t max_iterations = 4000;
  /// Initial step-size scale.
  double step_scale = 1.0;
  /// Iterations between primal extractions / gap checks.
  int64_t check_every = 25;
  /// Worker threads for the sharded oracle sweep (0 = hardware concurrency).
  /// Users are partitioned into fixed-size shards whose partial sums merge
  /// serially in shard order, so results are bit-identical for every thread
  /// count — threads=1 runs the same shard structure inline (DESIGN.md §5,
  /// S14). Small instances stay serial regardless.
  int32_t num_threads = 0;
};

/// Approximate solver specialized to the benchmark LP's block-angular
/// structure: only the |V| event-capacity rows (3) are dualized with
/// multipliers μ >= 0, while the per-user convexity rows (2) are enforced
/// exactly by the inner oracle,
///
///   L(μ) = Σ_v c_v·μ_v + Σ_u max(0, max_{S∈A_u} (w(u,S) - Σ_{v∈S} μ_v)),
///
/// which is an upper bound on LP (1)-(4) for every μ >= 0. Projected
/// subgradient descent over the (small) μ space converges far faster than
/// dualizing all |U|+|V| rows (lp::PackingDualSolver), which is what makes
/// Fig. 1(b)'s |U| = 10⁴ sweep tractable. The primal is recovered from
/// suffix-averaged oracle choices (a per-user distribution over admissible
/// sets, automatically satisfying (2)), repaired by per-column scaling on
/// violated event rows and polished by a capacity-aware greedy fill.
///
/// Returns an lp::LpSolution over the catalog's columns: `x` is feasible for
/// (1)-(4), `upper_bound` = min_t L(μ_t) certifies the gap, and `duals`
/// carries μ on the event rows ([|U|, |U|+|V|)) and the final per-user oracle
/// values π_u on the user rows ([0, |U|)). Status is kApproximate when the
/// target gap is met, kIterationLimit otherwise (x is still feasible).
///
/// The solver iterates the catalog CSR directly — weights, per-user column
/// ranges and event spans are exactly the arrays the subgradient loop needs,
/// so no per-solve copy or model materialization happens; the primal repair
/// scales overloaded events through the catalog's inverted event→column
/// index.
Result<lp::LpSolution> SolveBenchmarkLpStructured(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const StructuredDualOptions& options = {});

/// DEPRECATED compatibility shim over the nested representation: converts to
/// an AdmissibleCatalog and delegates (bit-identical results; `bench` is only
/// used for its row layout, which the catalog reproduces).
Result<lp::LpSolution> SolveBenchmarkLpStructured(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    const BenchmarkLp& bench, const StructuredDualOptions& options = {});

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_BENCHMARK_DUAL_H_
