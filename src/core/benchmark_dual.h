#ifndef IGEPA_CORE_BENCHMARK_DUAL_H_
#define IGEPA_CORE_BENCHMARK_DUAL_H_

#include <cstdint>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/benchmark_lp.h"
#include "core/instance.h"
#include "lp/solution.h"
#include "util/result.h"

namespace igepa {

class ThreadPool;

namespace core {

/// Warm-start state captured from one structured solve and fed to the next
/// (DESIGN.md S15). `mu` seeds the event duals; `choice`/`choice_value` are
/// the per-user oracle argmax (column id, or -1) and value at `mu`, which the
/// next solve reuses verbatim at its first iteration for every user whose
/// column range did not change — so a re-solve after a small delta rescans
/// only the touched users.
///
/// Column ids in `choice` address the catalog the warm start was captured
/// against; `catalog_revision` must equal the catalog's `ids_revision()` for
/// them to be honored (after a compaction, run Remap with the reported
/// old→new map to keep them alive). `mu` is event-indexed and always usable.
struct DualWarmStart {
  std::vector<double> mu;            // event duals μ ≥ 0, size |V|
  std::vector<int32_t> choice;       // per-user argmax column at μ, size |U|
  std::vector<double> choice_value;  // its oracle value (≥ 0), size |U|
  /// Users whose column ranges changed since capture (1 = must rescan).
  /// Empty means every cached choice is fresh.
  std::vector<uint8_t> stale;
  uint64_t catalog_revision = 0;

  /// Rewrites cached column ids through a compaction remap (old id → new id,
  /// -1 dead) and adopts the new ids revision. Cached choices of stale users
  /// may be dead — they are dropped to -1 (the solver rescans them anyway).
  void Remap(const std::vector<int32_t>& column_remap,
             uint64_t new_ids_revision);
};

/// Options for the structured benchmark-LP solver.
struct StructuredDualOptions {
  /// Target certified relative duality gap.
  double target_gap = 0.01;
  /// Dual (subgradient) iteration budget.
  int64_t max_iterations = 4000;
  /// Initial step-size scale.
  double step_scale = 1.0;
  /// Iterations between primal extractions / gap checks.
  int64_t check_every = 25;
  /// Worker threads for the sharded oracle sweep (0 = hardware concurrency).
  /// Users are partitioned into fixed-size shards whose partial sums merge
  /// serially in shard order, so results are bit-identical for every thread
  /// count — threads=1 runs the same shard structure inline (DESIGN.md §5,
  /// S14). Small instances stay serial regardless.
  int32_t num_threads = 0;
  /// Optional caller-owned worker pool (borrowed; must outlive the solve).
  /// When set, the sharded oracle runs on it directly and `num_threads` is
  /// ignored — repeated solves (warm ticks, thread-scaling benches) skip the
  /// per-solve thread spawn, which otherwise dominates short re-solves. The
  /// pool's lane count is a pure performance knob: results stay bit-identical
  /// to the self-spawned and serial paths.
  ThreadPool* workers = nullptr;
  /// Optional warm start (borrowed; must outlive the solve). Seeds μ, enables
  /// a gap check after the very first iteration, and — when the cached
  /// choices address this catalog's ids — rescans only stale users at that
  /// iteration. A warm start never changes what any single iteration
  /// computes, only where the trajectory starts, so warm results match a cold
  /// solve within the certified tolerance 2·target_gap (DESIGN.md S15).
  const DualWarmStart* warm = nullptr;
};

/// Approximate solver specialized to the benchmark LP's block-angular
/// structure: only the |V| event-capacity rows (3) are dualized with
/// multipliers μ >= 0, while the per-user convexity rows (2) are enforced
/// exactly by the inner oracle,
///
///   L(μ) = Σ_v c_v·μ_v + Σ_u max(0, max_{S∈A_u} (w(u,S) - Σ_{v∈S} μ_v)),
///
/// which is an upper bound on LP (1)-(4) for every μ >= 0. Projected
/// subgradient descent over the (small) μ space converges far faster than
/// dualizing all |U|+|V| rows (lp::PackingDualSolver), which is what makes
/// Fig. 1(b)'s |U| = 10⁴ sweep tractable. The primal is recovered from
/// suffix-averaged oracle choices (a per-user distribution over admissible
/// sets, automatically satisfying (2)), repaired by per-column scaling on
/// violated event rows and polished by a capacity-aware greedy fill.
///
/// Returns an lp::LpSolution over the catalog's columns: `x` is feasible for
/// (1)-(4), `upper_bound` = min_t L(μ_t) certifies the gap, and `duals`
/// carries μ on the event rows ([|U|, |U|+|V|)) and the final per-user oracle
/// values π_u on the user rows ([0, |U|)). Status is kApproximate when the
/// target gap is met, kIterationLimit otherwise (x is still feasible).
///
/// The solver iterates the catalog CSR directly — weights, per-user column
/// ranges and event spans are exactly the arrays the subgradient loop needs,
/// so no per-solve copy or model materialization happens; the primal repair
/// scales overloaded events through the catalog's inverted event→column
/// index. Dirty (delta-mutated, uncompacted) catalogs are first-class: all
/// loops walk live per-user ranges in user-major order, so the solve is
/// bit-identical to running on the compacted/rebuilt catalog.
///
/// When `warm_out` is non-null it captures the warm-start state of this
/// solve (μ and per-user choices at the certified best μ) for the next
/// re-solve; capturing costs nothing extra.
Result<lp::LpSolution> SolveBenchmarkLpStructured(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const StructuredDualOptions& options = {},
    DualWarmStart* warm_out = nullptr);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_BENCHMARK_DUAL_H_
