#ifndef IGEPA_CORE_INSTANCE_DELTA_H_
#define IGEPA_CORE_INSTANCE_DELTA_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// Replacement of one user's registration: the user's capacity and bid set
/// after the update. An empty bid set models a cancellation (the user stays
/// in the id space but owns no admissible sets); a later update with bids
/// models re-registration. The id space itself is fixed — deltas never add
/// or remove user/event slots.
struct UserUpdate {
  UserId user = 0;
  int32_t capacity = 0;
  std::vector<EventId> bids;
};

/// Replacement of one event's attendance capacity c_v. Capacity changes do
/// not affect admissibility (only the LP's event rows), so they are cheap for
/// the catalog and only perturb the solve.
struct EventCapacityUpdate {
  EventId event = 0;
  int32_t capacity = 0;
};

/// One tick of instance mutations — the unit the incremental arrangement
/// engine consumes. Updates inside a tick are applied in order; a later
/// update to the same user/event wins.
struct InstanceDelta {
  std::vector<UserUpdate> user_updates;
  std::vector<EventCapacityUpdate> event_updates;

  bool empty() const { return user_updates.empty() && event_updates.empty(); }
};

/// One timestamped mutation of a live EBSN — the unit an arrival process
/// emits and the serving layer consumes. Unlike the tick-structured replay
/// stream, arrivals carry continuous timestamps and (by convention of the
/// generators) one mutation each, so batching is decided by the consumer —
/// the epoch window of serve::ArrangementService — not baked into the
/// workload. Produced by gen::GenerateArrivalProcess, serialized by
/// io::WriteArrivalStreamCsv.
struct ArrivalEvent {
  /// Seconds since the stream start; nondecreasing across a stream.
  double at_seconds = 0.0;
  InstanceDelta delta;
};

/// Applies every update to the (validated) instance in order, patching the
/// per-event bidder lists incrementally. Fails without side effects on the
/// first out-of-range id / negative capacity / out-of-range bid.
Status ApplyDelta(Instance* instance, const InstanceDelta& delta);

/// The users whose registration the delta touches, ascending and deduplicated
/// — exactly the users whose admissible-set columns must be re-enumerated.
std::vector<UserId> TouchedUsers(const InstanceDelta& delta);

/// The events whose capacity the delta changes, ascending and deduplicated.
std::vector<EventId> TouchedEvents(const InstanceDelta& delta);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_INSTANCE_DELTA_H_
