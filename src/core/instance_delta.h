#ifndef IGEPA_CORE_INSTANCE_DELTA_H_
#define IGEPA_CORE_INSTANCE_DELTA_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// Replacement of one user's registration: the user's capacity and bid set
/// after the update. An empty bid set models a cancellation (the user stays
/// in the id space but owns no admissible sets); a later update with bids
/// models re-registration. The id space itself is fixed — deltas never add
/// or remove user/event slots.
struct UserUpdate {
  UserId user = 0;
  int32_t capacity = 0;
  std::vector<EventId> bids;
};

/// Replacement of one event's attendance capacity c_v. Capacity changes do
/// not affect admissibility (only the LP's event rows), so they are cheap for
/// the catalog and only perturb the solve.
struct EventCapacityUpdate {
  EventId event = 0;
  int32_t capacity = 0;
};

/// Friendship-edge mutation {a, b} of the social graph G. Edges never change
/// admissibility (bids and conflicts are untouched) — only the
/// degree-of-potential-interaction D(G, ·) of both endpoints, i.e. the
/// utility-kernel inputs. The catalog answers with a weight re-score of the
/// endpoints' columns, never a re-enumeration.
struct GraphEdgeUpdate {
  UserId a = 0;
  UserId b = 0;
  /// true = the friendship forms, false = it dissolves.
  bool add = true;
};

/// Interest drift: SI(l_v, l_u) for one (event, user) pair becomes `value`.
/// Like graph edges this is weight-only — the catalog re-scores exactly the
/// user's columns containing the event.
struct InterestUpdate {
  EventId event = 0;
  UserId user = 0;
  double value = 0.0;  // new SI in [0, 1]
};

/// One tick of instance mutations — the unit the incremental arrangement
/// engine consumes. Updates inside a tick are applied in order; a later
/// update to the same user/event wins. Registration/capacity updates change
/// the column *structure*; graph/interest updates change only column
/// *weights* (the utility kernel's inputs).
struct InstanceDelta {
  std::vector<UserUpdate> user_updates;
  std::vector<EventCapacityUpdate> event_updates;
  std::vector<GraphEdgeUpdate> graph_updates;
  std::vector<InterestUpdate> interest_updates;

  bool empty() const {
    return user_updates.empty() && event_updates.empty() &&
           graph_updates.empty() && interest_updates.empty();
  }
  /// True when the delta carries graph/interest mutations — the half the
  /// catalog answers with kernel re-scores instead of re-enumeration.
  bool has_weight_updates() const {
    return !graph_updates.empty() || !interest_updates.empty();
  }
};

/// One timestamped mutation of a live EBSN — the unit an arrival process
/// emits and the serving layer consumes. Unlike the tick-structured replay
/// stream, arrivals carry continuous timestamps and (by convention of the
/// generators) one mutation each, so batching is decided by the consumer —
/// the epoch window of serve::ArrangementService — not baked into the
/// workload. Produced by gen::GenerateArrivalProcess, serialized by
/// io::WriteArrivalStreamCsv.
struct ArrivalEvent {
  /// Seconds since the stream start; nondecreasing across a stream.
  double at_seconds = 0.0;
  InstanceDelta delta;
};

/// Validates every update of the delta against the given id space: user and
/// event ranges, nonnegative capacities, bid ranges, edge endpoint ranges
/// and a != b, interest-drift ranges and value ∈ [0, 1]. THE delta
/// validation — ApplyDelta, the warm tick's pre-mutation gate, the catalog
/// and the serving door all call this one function, so a new delta kind's
/// checks exist exactly once.
Status ValidateDelta(int32_t num_events, int32_t num_users,
                     const InstanceDelta& delta);

/// Applies every update to the (validated) instance in order, patching the
/// per-event bidder lists incrementally. Validates the whole delta first
/// (ValidateDelta), so a malformed delta fails without side effects.
Status ApplyDelta(Instance* instance, const InstanceDelta& delta);

/// The users whose registration the delta touches, ascending and deduplicated
/// — exactly the users whose admissible-set columns must be re-enumerated.
std::vector<UserId> TouchedUsers(const InstanceDelta& delta);

/// The users whose column *weights* the delta perturbs without changing
/// admissibility (graph-edge endpoints and interest-drift users), ascending
/// and deduplicated — the users the catalog re-scores through the kernel.
std::vector<UserId> WeightTouchedUsers(const InstanceDelta& delta);

/// TouchedUsers ∪ WeightTouchedUsers — the superset of users the delta can
/// affect, derivable from the delta alone.
std::vector<UserId> AllTouchedUsers(const InstanceDelta& delta);

/// The users one warm tick must retire, mark stale and re-sample:
/// TouchedUsers ∪ graph-edge endpoints ∪ interest-drift users whose drifted
/// pair is actually one of their bids. Dropping non-bid drifts is exact, not
/// a heuristic — enumeration only ever includes bid events, so such a drift
/// changes no column weight. Evaluate against the PRE-delta instance (users
/// whose bids the tick replaces are already in TouchedUsers).
std::vector<UserId> WarmTouchedUsers(const Instance& instance,
                                     const InstanceDelta& delta);

/// The events whose capacity the delta changes, ascending and deduplicated.
std::vector<EventId> TouchedEvents(const InstanceDelta& delta);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_INSTANCE_DELTA_H_
