#include "core/shard_residency.h"

#include <algorithm>
#include <utility>

namespace igepa {
namespace core {

ShardResidency::Lease::Lease(Lease&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      index_(std::exchange(other.index_, -1)),
      lanes_(std::exchange(other.lanes_, nullptr)) {}

ShardResidency::Lease& ShardResidency::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = std::exchange(other.owner_, nullptr);
    index_ = std::exchange(other.index_, -1);
    lanes_ = std::exchange(other.lanes_, nullptr);
  }
  return *this;
}

ShardResidency::Lease::~Lease() { Release(); }

void ShardResidency::Lease::Release() {
  if (owner_ != nullptr) {
    owner_->Unpin(index_);
    owner_ = nullptr;
    lanes_ = nullptr;
  }
}

ShardResidency::ShardResidency(const io::CatalogSpill* spill,
                               uint64_t budget_bytes)
    : spill_(spill), budget_bytes_(budget_bytes) {
  const uint64_t largest = std::max<uint64_t>(spill->max_section_bytes(), 1);
  max_pinned_ = static_cast<int32_t>(std::clamp<uint64_t>(
      budget_bytes / largest, 1, static_cast<uint64_t>(spill->num_catalogs())));
  entries_.resize(static_cast<size_t>(spill->num_catalogs()));
}

Result<ShardResidency::Lease> ShardResidency::Acquire(int32_t index) {
  std::unique_lock<std::mutex> lock(mutex_);
  Entry& entry = entries_[static_cast<size_t>(index)];
  for (;;) {
    if (entry.resident) {  // LRU hit — pin, no paging
      if (entry.pins++ == 0) ++pinned_count_;
      entry.tick = ++clock_;
      return Lease(this, index, &entry.view.lanes());
    }
    // A miss consumes a pin slot; wait until the budget admits one more
    // distinct pinned section. Residents can be evicted, pins cannot.
    if (pinned_count_ < max_pinned_) break;
    slot_free_.wait(lock);
  }

  // Evict unpinned sections, least recently used first, until the new one
  // fits the budget (or nothing evictable remains — then the pin-slot cap
  // alone bounds residency at <= budget + one section).
  const uint64_t need = spill_->section_bytes(index);
  while (resident_bytes_ + need > budget_bytes_ &&
         resident_count_ > pinned_count_) {
    int32_t victim = -1;
    uint64_t oldest = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      if (e.resident && e.pins == 0 && (victim < 0 || e.tick < oldest)) {
        victim = static_cast<int32_t>(i);
        oldest = e.tick;
      }
    }
    if (victim < 0) break;
    Entry& ev = entries_[static_cast<size_t>(victim)];
    resident_bytes_ -= spill_->section_bytes(victim);
    --resident_count_;
    ev.view = io::CatalogView();  // munmap
    ev.resident = false;
    ++stats_.evictions;
  }

  // Mapping under the lock keeps the bookkeeping trivially consistent; mmap
  // of an already-cached file range is microseconds, not worth dropping the
  // lock for.
  auto mapped = spill_->Map(index);
  if (!mapped.ok()) return mapped.status();
  entry.view = std::move(mapped).value();
  entry.resident = true;
  entry.pins = 1;
  entry.tick = ++clock_;
  ++pinned_count_;
  ++resident_count_;
  resident_bytes_ += need;
  ++stats_.page_ins;
  stats_.peak_resident_shards =
      std::max(stats_.peak_resident_shards, resident_count_);
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, resident_bytes_);
  return Lease(this, index, &entry.view.lanes());
}

void ShardResidency::Unpin(int32_t index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[static_cast<size_t>(index)];
    if (--entry.pins == 0) --pinned_count_;
  }
  slot_free_.notify_all();
}

ResidencyStats ShardResidency::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace core
}  // namespace igepa
