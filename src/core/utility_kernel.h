#ifndef IGEPA_CORE_UTILITY_KERNEL_H_
#define IGEPA_CORE_UTILITY_KERNEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace core {

class Instance;

/// The pluggable objective of the arrangement pipeline: assigns every LP
/// column its weight w(u, S). Before this subsystem existed the Def.-6
/// utility was fused into the catalog build (a fixed Σ_v β·SI + (1−β)·D sum);
/// extracting it lets the whole solve/serve stack re-score columns when the
/// social graph or interest model drifts, and makes alternative objectives
/// (ablations, new scenarios) a ~100-line kernel instead of a fork of `gen/`.
///
/// Contract:
///   * Kernels are pure functions of the instance's model state — two calls
///     on the same state return the same bits. All nondeterminism lives in
///     the models, never in the kernel.
///   * `PairWeight` is the per-(event, user) utility. It drives everything
///     pair-shaped: bid ordering during enumeration, the online/greedy
///     algorithms, local search and `Arrangement::Utility`. Must be
///     non-negative for the solvers' zero-lower-bounds to stay valid.
///   * `ScoreColumns` is the batch column scorer the catalog calls at build
///     and delta time: `sets[k]` is user `u`'s k-th admissible set as an
///     ascending-sorted span, `out_weights[k]` receives w(u, sets[k]). The
///     default implementation sums `PairWeight` left to right over the span
///     (bit-identical to the historical fused loop); kernels whose set
///     utility is not pair-decomposable override it.
///   * `ScoreColumnsSoA` is the structure-of-arrays fast path over the same
///     batch: the caller gathers `event_weight[v] = PairWeight(v, u)` once
///     per distinct event and hands the columns in CSR form, so a kernel can
///     reduce contiguous weight lanes (vectorized via util::simd) instead of
///     paying a hash-map-backed PairWeight per (set, event) incidence. Every
///     override MUST produce the same bits as its ScoreColumns — thread
///     counts and SIMD levels are pure performance knobs (DESIGN.md §5 S18).
class UtilityKernel {
 public:
  virtual ~UtilityKernel() = default;

  /// Stable identifier used by the CLI (`--kernel=<id>`) and the instance
  /// CSV format v2 header (docs/FORMATS.md §1).
  virtual const std::string& id() const = 0;

  /// w(u, v) >= 0.
  virtual double PairWeight(const Instance& instance, EventId v,
                            UserId u) const = 0;

  /// Batch form of PairWeight for one user: writes
  /// `out_weights[i] = PairWeight(instance, events[i], u)`. The catalog's
  /// SoA lane gather and the bid-ordering pass call this once per
  /// (user, batch) with the distinct events of the batch, so a kernel can
  /// hoist per-user work — the default kernel's user-constant (1−β)·D(G, u)
  /// term, one virtual dispatch for the whole lane — out of the per-event
  /// loop. Overrides MUST return the same bits as the per-pair loop: any
  /// hoisted subexpression has to be an expression PairWeight itself
  /// evaluates, over the exact same operands.
  virtual void PairWeightLane(const Instance& instance, UserId u,
                              const EventId* events, int32_t num_events,
                              double* out_weights) const;

  /// Scores user u's columns in batch; `out_weights.size() == sets.size()`.
  virtual void ScoreColumns(const Instance& instance, UserId u,
                            std::span<const std::span<const EventId>> sets,
                            std::span<double> out_weights) const;

  /// SoA batch scorer: column k covers events
  /// `pool[col_begin[k] .. col_begin[k+1])` (ascending-sorted, the catalog
  /// CSR layout; col_begin holds num_columns + 1 absolute offsets) and
  /// `event_weight[v]` is this kernel's PairWeight(v, u), pre-gathered by the
  /// caller for every event appearing in the batch. Writes w(u, column k)
  /// into out_weights[k], bit-identical to ScoreColumns on the same sets.
  /// The base implementation rebuilds spans and defers to ScoreColumns (so
  /// kernels ignoring the SoA form stay correct); the built-in kernels
  /// override it with util::simd::SumColumnLanes reductions.
  virtual void ScoreColumnsSoA(const Instance& instance, UserId u,
                               const double* event_weight, const EventId* pool,
                               const int64_t* col_begin, int32_t num_columns,
                               double* out_weights) const;

  /// Convenience: w(u, set) for a single ascending-sorted set — a
  /// one-element ScoreColumns batch. The entry point for consumers holding
  /// one set per user (Arrangement::KernelUtility, local-search set moves).
  double ScoreSet(const Instance& instance, UserId u,
                  std::span<const EventId> set) const;
};

/// The paper's interaction-aware utility (Definition 6):
/// w(u, v) = β·SI(l_v, l_u) + (1−β)·D(G, u). The default kernel — pinned
/// bit-identical to the pre-kernel pipeline on every existing test, example
/// and CSV instance (the kernel-equivalence CI smoke).
class InteractionInterestKernel final : public UtilityKernel {
 public:
  const std::string& id() const override;
  double PairWeight(const Instance& instance, EventId v,
                    UserId u) const override;
  /// Hoists the user-constant (1−β)·D(G, u) product out of the lane loop —
  /// same operands, same order, so every entry matches Instance::Weight
  /// bit for bit.
  void PairWeightLane(const Instance& instance, UserId u,
                      const EventId* events, int32_t num_events,
                      double* out_weights) const override;
  /// Same sum as the base implementation, but through the non-virtual
  /// Instance::Weight — one virtual dispatch per batch instead of one per
  /// (set, event) incidence. This is the catalog build's hot loop.
  void ScoreColumns(const Instance& instance, UserId u,
                    std::span<const std::span<const EventId>> sets,
                    std::span<double> out_weights) const override;
  /// Pure lane reduction (the pair sum is the whole objective).
  void ScoreColumnsSoA(const Instance& instance, UserId u,
                       const double* event_weight, const EventId* pool,
                       const int64_t* col_begin, int32_t num_columns,
                       double* out_weights) const override;
};

/// Interaction ablation (DESIGN.md §6): w(u, v) = SI(l_v, l_u) — the pure
/// interest objective, i.e. the Def.-6 utility at β = 1 regardless of the
/// instance's β. Isolates how much of an arrangement's value the
/// interaction term is responsible for.
class InterestOnlyKernel final : public UtilityKernel {
 public:
  const std::string& id() const override;
  double PairWeight(const Instance& instance, EventId v,
                    UserId u) const override;
  /// One virtual hop per lane instead of one per event.
  void PairWeightLane(const Instance& instance, UserId u,
                      const EventId* events, int32_t num_events,
                      double* out_weights) const override;
  /// Pure lane reduction over the pre-gathered interest weights.
  void ScoreColumnsSoA(const Instance& instance, UserId u,
                       const double* event_weight, const EventId* pool,
                       const int64_t* col_begin, int32_t num_columns,
                       double* out_weights) const override;
};

/// Scenario kernel: cohesion-weighted set utility. Pairs score like the
/// default kernel, but a set of k events is worth
///   w(u, S) = (Σ_{v∈S} w(u, v)) · (1 + γ·(k − 1)),
/// a superadditive bonus modeling the social value of meeting the same
/// people across several events (cf. the alternative objectives in the
/// social-event-scheduling literature). Not pair-decomposable — exercises
/// the batch `ScoreColumns` override path end to end.
///
/// A non-default γ is part of the identity: id() is "cohesion:<γ>" (17
/// significant digits), which MakeUtilityKernel parses back — so the
/// instance-format-v2 kernel record round-trips the parameter, not just the
/// kernel family.
class CohesionKernel final : public UtilityKernel {
 public:
  explicit CohesionKernel(double gamma = 0.25);

  const std::string& id() const override;
  double PairWeight(const Instance& instance, EventId v,
                    UserId u) const override;
  /// Pairs score like the default kernel — same hoisted (1−β)·D(G, u) lane.
  void PairWeightLane(const Instance& instance, UserId u,
                      const EventId* events, int32_t num_events,
                      double* out_weights) const override;
  void ScoreColumns(const Instance& instance, UserId u,
                    std::span<const std::span<const EventId>> sets,
                    std::span<double> out_weights) const override;
  /// Lane reduction followed by the superadditive size bonus per column.
  void ScoreColumnsSoA(const Instance& instance, UserId u,
                       const double* event_weight, const EventId* pool,
                       const int64_t* col_begin, int32_t num_columns,
                       double* out_weights) const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
  std::string id_;
};

/// The process-wide default kernel (InteractionInterestKernel) every
/// instance starts with.
const std::shared_ptr<const UtilityKernel>& DefaultUtilityKernel();

/// Resolves a kernel by id: "interaction_interest" | "interest_only" |
/// "cohesion[:<gamma>]" (γ ≥ 0, finite; bare "cohesion" = 0.25).
/// InvalidArgument (listing the known ids) otherwise — including the empty
/// id; "no kernel requested" is the caller's branch, not a registry value.
Result<std::shared_ptr<const UtilityKernel>> MakeUtilityKernel(
    const std::string& id);

/// Every registered kernel id, in the order MakeUtilityKernel documents.
std::vector<std::string> UtilityKernelIds();

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_UTILITY_KERNEL_H_
