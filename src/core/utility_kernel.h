#ifndef IGEPA_CORE_UTILITY_KERNEL_H_
#define IGEPA_CORE_UTILITY_KERNEL_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace core {

class Instance;

/// The pluggable objective of the arrangement pipeline: assigns every LP
/// column its weight w(u, S). Before this subsystem existed the Def.-6
/// utility was fused into the catalog build (a fixed Σ_v β·SI + (1−β)·D sum);
/// extracting it lets the whole solve/serve stack re-score columns when the
/// social graph or interest model drifts, and makes alternative objectives
/// (ablations, new scenarios) a ~100-line kernel instead of a fork of `gen/`.
///
/// Contract:
///   * Kernels are pure functions of the instance's model state — two calls
///     on the same state return the same bits. All nondeterminism lives in
///     the models, never in the kernel.
///   * `PairWeight` is the per-(event, user) utility. It drives everything
///     pair-shaped: bid ordering during enumeration, the online/greedy
///     algorithms, local search and `Arrangement::Utility`. Must be
///     non-negative for the solvers' zero-lower-bounds to stay valid.
///   * `ScoreColumns` is the batch column scorer the catalog calls at build
///     and delta time: `sets[k]` is user `u`'s k-th admissible set as an
///     ascending-sorted span, `out_weights[k]` receives w(u, sets[k]). The
///     default implementation sums `PairWeight` left to right over the span
///     (bit-identical to the historical fused loop); kernels whose set
///     utility is not pair-decomposable override it.
class UtilityKernel {
 public:
  virtual ~UtilityKernel() = default;

  /// Stable identifier used by the CLI (`--kernel=<id>`) and the instance
  /// CSV format v2 header (docs/FORMATS.md §1).
  virtual const std::string& id() const = 0;

  /// w(u, v) >= 0.
  virtual double PairWeight(const Instance& instance, EventId v,
                            UserId u) const = 0;

  /// Scores user u's columns in batch; `out_weights.size() == sets.size()`.
  virtual void ScoreColumns(const Instance& instance, UserId u,
                            std::span<const std::span<const EventId>> sets,
                            std::span<double> out_weights) const;

  /// Convenience: w(u, set) for a single ascending-sorted set — a
  /// one-element ScoreColumns batch. The entry point for consumers holding
  /// one set per user (Arrangement::KernelUtility, local-search set moves).
  double ScoreSet(const Instance& instance, UserId u,
                  std::span<const EventId> set) const;
};

/// The paper's interaction-aware utility (Definition 6):
/// w(u, v) = β·SI(l_v, l_u) + (1−β)·D(G, u). The default kernel — pinned
/// bit-identical to the pre-kernel pipeline on every existing test, example
/// and CSV instance (the kernel-equivalence CI smoke).
class InteractionInterestKernel final : public UtilityKernel {
 public:
  const std::string& id() const override;
  double PairWeight(const Instance& instance, EventId v,
                    UserId u) const override;
  /// Same sum as the base implementation, but through the non-virtual
  /// Instance::Weight — one virtual dispatch per batch instead of one per
  /// (set, event) incidence. This is the catalog build's hot loop.
  void ScoreColumns(const Instance& instance, UserId u,
                    std::span<const std::span<const EventId>> sets,
                    std::span<double> out_weights) const override;
};

/// Interaction ablation (DESIGN.md §6): w(u, v) = SI(l_v, l_u) — the pure
/// interest objective, i.e. the Def.-6 utility at β = 1 regardless of the
/// instance's β. Isolates how much of an arrangement's value the
/// interaction term is responsible for.
class InterestOnlyKernel final : public UtilityKernel {
 public:
  const std::string& id() const override;
  double PairWeight(const Instance& instance, EventId v,
                    UserId u) const override;
};

/// Scenario kernel: cohesion-weighted set utility. Pairs score like the
/// default kernel, but a set of k events is worth
///   w(u, S) = (Σ_{v∈S} w(u, v)) · (1 + γ·(k − 1)),
/// a superadditive bonus modeling the social value of meeting the same
/// people across several events (cf. the alternative objectives in the
/// social-event-scheduling literature). Not pair-decomposable — exercises
/// the batch `ScoreColumns` override path end to end.
///
/// A non-default γ is part of the identity: id() is "cohesion:<γ>" (17
/// significant digits), which MakeUtilityKernel parses back — so the
/// instance-format-v2 kernel record round-trips the parameter, not just the
/// kernel family.
class CohesionKernel final : public UtilityKernel {
 public:
  explicit CohesionKernel(double gamma = 0.25);

  const std::string& id() const override;
  double PairWeight(const Instance& instance, EventId v,
                    UserId u) const override;
  void ScoreColumns(const Instance& instance, UserId u,
                    std::span<const std::span<const EventId>> sets,
                    std::span<double> out_weights) const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
  std::string id_;
};

/// The process-wide default kernel (InteractionInterestKernel) every
/// instance starts with.
const std::shared_ptr<const UtilityKernel>& DefaultUtilityKernel();

/// Resolves a kernel by id: "interaction_interest" | "interest_only" |
/// "cohesion[:<gamma>]" (γ ≥ 0, finite; bare "cohesion" = 0.25).
/// InvalidArgument (listing the known ids) otherwise — including the empty
/// id; "no kernel requested" is the caller's branch, not a registry value.
Result<std::shared_ptr<const UtilityKernel>> MakeUtilityKernel(
    const std::string& id);

/// Every registered kernel id, in the order MakeUtilityKernel documents.
std::vector<std::string> UtilityKernelIds();

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_UTILITY_KERNEL_H_
