#ifndef IGEPA_CORE_SHARDED_SOLVER_H_
#define IGEPA_CORE_SHARDED_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/benchmark_dual.h"
#include "core/instance.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {

class ThreadPool;

namespace core {

/// Options for ShardedSolve — the two-level decomposition that takes
/// LP-packing past the single-catalog scale ceiling (DESIGN.md §8).
struct ShardedSolveOptions {
  /// Level-1 partition width: users split into ceil(|U| / users_per_shard)
  /// contiguous shards unless `num_shards` pins the count directly. The shard
  /// layout is a pure function of (|U|, shard count) — never of thread count.
  int32_t users_per_shard = 8192;
  /// Explicit shard count (0 = derive from users_per_shard). Clamped to |U|.
  int32_t num_shards = 0;
  /// Algorithm-1 sampling scale α for the final legalize sweep, in (0, 1].
  double alpha = 1.0;
  /// Per-shard admissible-set enumeration (num_threads applies inside one
  /// shard's build; shards themselves parallelize via the solver's pool).
  AdmissibleOptions admissible;
  /// Level-1 per-shard warm solve: each shard solves its own benchmark LP
  /// against 1/K-scaled event capacities to seed the coordination prices.
  /// Loose by default — level 1 only needs a good starting μ, level 2 owns
  /// the certified gap.
  StructuredDualOptions level1;
  /// Level-2 coordination: target certified relative duality gap on the
  /// *global* benchmark LP, iteration budget, primal-extraction cadence and
  /// subgradient step scale (same roles as StructuredDualOptions).
  double coordination_gap = 0.01;
  int64_t coordination_max_iterations = 3000;
  int64_t check_every = 25;
  double step_scale = 1.0;
  /// Worker threads across shards (0 = hardware concurrency). Per-shard
  /// partials always merge in shard order, so results are bit-identical for
  /// every thread count at a fixed shard count (pinned by test).
  int32_t num_threads = 0;
  /// Optional caller-owned pool (borrowed; must outlive the call). When set,
  /// `num_threads` is ignored.
  ThreadPool* workers = nullptr;
  /// Catalog residency budget in bytes (0 = keep every shard catalog in RAM,
  /// the classic path). When set, each shard's catalog spills once into a
  /// per-run `igepa-cat,1` file right after its level-1 warm solve and is
  /// dropped from RAM; level 2 and the global legalize sweep run on mmapped
  /// CatalogView lanes under an LRU ShardResidency manager, so peak catalog
  /// RSS is bounded by (budget + one shard's footprint). Must be at least the
  /// largest single shard's catalog footprint — smaller budgets are rejected
  /// with an InvalidArgument naming the measured minimum. Eviction and repage
  /// are bit-invisible: the arrangement is byte-identical to the in-memory
  /// path for any budget (pinned by test).
  uint64_t memory_budget_bytes = 0;
  /// Directory for the spill file (empty = $TMPDIR, else /tmp). The file is
  /// unlinked as soon as it is sealed — mappings are served from the kept
  /// file descriptor, so a crash never leaks a spill file.
  std::string spill_dir;

  ShardedSolveOptions() {
    level1.target_gap = 0.05;
    level1.max_iterations = 500;
    level1.num_threads = 1;  // parallelism lives across shards, not inside
  }
};

/// Diagnostics from one ShardedSolve run.
struct ShardedSolveStats {
  int32_t num_shards = 0;
  int32_t num_columns = 0;  // across all shard catalogs
  /// Coordination-level fractional objective and certified global upper
  /// bound; `gap` is their certified relative duality gap.
  double lp_objective = 0.0;
  double lp_upper_bound = 0.0;
  double gap = 0.0;
  int64_t level1_iterations = 0;  // summed over shards
  int64_t coordination_iterations = 0;
  /// Pairs dropped by the global legalize sweep.
  int32_t pairs_repaired = 0;
  /// Residency diagnostics — populated only on budgeted runs
  /// (memory_budget_bytes > 0), all zero otherwise.
  uint64_t spill_bytes = 0;            ///< total igepa-cat,1 section payload
  uint64_t shard_footprint_bytes = 0;  ///< largest single shard's section
  uint64_t page_ins = 0;               ///< sections mapped (first map + repage)
  uint64_t evictions = 0;              ///< sections unmapped to honor budget
  int32_t peak_resident_shards = 0;    ///< max concurrently mapped sections
  uint64_t peak_resident_bytes = 0;    ///< max summed mapped section bytes
};

/// Two-level sharded LP-packing for instances past the single-catalog comfort
/// zone (100k–1M+ users).
///
/// **Level 1 (decompose):** users are split into K contiguous shards, each
/// with its own AdmissibleCatalog (generalizing the structured solver's fixed
/// 64-user oracle shards into independent solver instances) and its own
/// warm-dual state. Every shard solves its private benchmark LP against
/// 1/K-scaled event capacities via SolveBenchmarkLpStructured — K independent
/// solves that parallelize perfectly and produce per-shard dual prices.
///
/// **Level 2 (coordinate):** the per-event capacity rows are the only
/// coupling between shards, so the global Lagrangian decomposes as
///   L(μ) = Σ_v c_v·μ_v + Σ_k Σ_{u∈shard k} max(0, max_S (w(u,S) − Σ_{v∈S} μ_v))
/// over one SHARED price vector μ, seeded with the shard-average of the
/// level-1 duals. Projected subgradient descent iterates μ to the target
/// tolerance: each iteration runs the per-user oracle shard by shard (SIMD
/// batch scoring, per-shard partial sums merged in shard order), suffix-
/// averages oracle choices into a fractional x, and certifies the gap against
/// the global upper bound — the same machinery as the monolithic structured
/// solver, lifted one level.
///
/// **Legalize:** one global rounding/repair sweep with RoundFractional's
/// exact semantics — one pre-drawn uniform per user in global user order,
/// α·x sampling, per-event demand, and the first-c_v-contenders-by-user-id
/// cutoff rule (RepairSampledColumns / RoundFractionalDelta semantics) —
/// applied across shard boundaries, so the returned arrangement is always
/// feasible on the full instance.
///
/// Determinism: the arrangement is a pure function of (instance, shard
/// count, rng seed, options). Thread count never changes a bit: every
/// parallel reduction merges per-shard buffers in shard index order.
///
/// `stats`, when non-null, receives the run diagnostics.
Result<Arrangement> ShardedSolve(const Instance& instance, Rng* rng,
                                 const ShardedSolveOptions& options = {},
                                 ShardedSolveStats* stats = nullptr);

/// The shard layout ShardedSolve uses: shard s owns users
/// [bounds[s], bounds[s+1]). Exposed for tests and the bench harness.
std::vector<UserId> ShardUserBounds(int32_t num_users,
                                    const ShardedSolveOptions& options);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_SHARDED_SOLVER_H_
