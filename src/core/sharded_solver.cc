#include "core/sharded_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/lp_packing.h"
#include "core/utility_kernel.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace igepa {
namespace core {
namespace {

/// Interest/interaction adapters that serve a shard's local user ids by
/// delegating to the parent instance at `base + local_u` — overlays
/// (UpdateInterest drift) included, so shard catalogs score exactly the
/// weights the monolithic catalog would. The parent is borrowed: shard
/// instances never outlive the ShardedSolve call.
class ShardInterestFn final : public interest::InterestFn {
 public:
  ShardInterestFn(const Instance* parent, UserId base, int32_t num_local)
      : parent_(parent), base_(base), num_local_(num_local) {}
  int32_t num_events() const override { return parent_->num_events(); }
  int32_t num_users() const override { return num_local_; }
  double Interest(int32_t event, int32_t user) const override {
    return parent_->Interest(event, base_ + user);
  }

 private:
  const Instance* parent_;
  UserId base_;
  int32_t num_local_;
};

class ShardInteractionModel final : public graph::InteractionModel {
 public:
  ShardInteractionModel(const Instance* parent, UserId base, int32_t num_local)
      : parent_(parent), base_(base), num_local_(num_local) {}
  int32_t num_users() const override { return num_local_; }
  double Degree(int32_t user) const override {
    return parent_->Degree(base_ + user);
  }

 private:
  const Instance* parent_;
  UserId base_;
  int32_t num_local_;
};

/// One level-1 unit: a contiguous user range with its own sub-instance,
/// catalog and warm-dual state.
struct Shard {
  UserId user_begin = 0;
  UserId user_end = 0;
  std::unique_ptr<Instance> instance;
  std::unique_ptr<AdmissibleCatalog> catalog;
  DualWarmStart warm;
  int64_t level1_iterations = 0;

  int32_t num_local_users() const { return user_end - user_begin; }
};

/// Global greedy-polish order: one entry per catalog column across every
/// shard, sorted heaviest first with a unique (owner, shard, column) tiebreak
/// so the order — and therefore the polish — is deterministic.
struct ColumnRef {
  double weight;
  UserId global_user;
  int32_t shard;
  int32_t col;
};

Status ValidateOptions(const ShardedSolveOptions& options) {
  if (options.users_per_shard < 1) {
    return Status::InvalidArgument("users_per_shard must be >= 1");
  }
  if (options.num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (!(options.alpha > 0.0 && options.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (options.coordination_gap <= 0.0 ||
      options.coordination_max_iterations < 1 || options.check_every < 1 ||
      options.step_scale <= 0.0) {
    return Status::InvalidArgument("invalid coordination parameters");
  }
  return Status::OK();
}

}  // namespace

std::vector<UserId> ShardUserBounds(int32_t num_users,
                                    const ShardedSolveOptions& options) {
  if (num_users <= 0) return {0};
  const int32_t per = std::max(1, options.users_per_shard);
  int32_t k = options.num_shards > 0 ? options.num_shards
                                     : (num_users + per - 1) / per;
  k = std::clamp(k, 1, num_users);
  // Balanced contiguous partition: the first (num_users mod k) shards carry
  // one extra user. A pure function of (num_users, k).
  std::vector<UserId> bounds(static_cast<size_t>(k) + 1, 0);
  const int32_t base = num_users / k;
  const int32_t extra = num_users % k;
  for (int32_t s = 0; s < k; ++s) {
    bounds[static_cast<size_t>(s) + 1] =
        bounds[static_cast<size_t>(s)] + base + (s < extra ? 1 : 0);
  }
  return bounds;
}

Result<Arrangement> ShardedSolve(const Instance& instance, Rng* rng,
                                 const ShardedSolveOptions& options,
                                 ShardedSolveStats* stats) {
  IGEPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const int32_t nv = instance.num_events();
  const int32_t nu = instance.num_users();
  if (nu == 0 || nv == 0) return Arrangement(nv, nu);

  const std::vector<UserId> bounds = ShardUserBounds(nu, options);
  const int32_t num_shards = static_cast<int32_t>(bounds.size()) - 1;
  ThreadPool* pool = options.workers;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(
        ThreadPool::ResolveThreadCount(options.num_threads, num_shards));
    pool = owned_pool.get();
  }

  // ---- Level 1: independent per-shard catalogs + warm solves. --------------
  // Shard instances see 1/K-scaled event capacities (capacity only feeds the
  // LP rows, never the admissible-set enumeration), so each shard prices its
  // fair slice of every event and the averaged duals land near the global
  // clearing prices.
  IGEPA_ASSIGN_OR_RETURN(
      std::shared_ptr<const UtilityKernel> kernel,
      MakeUtilityKernel(instance.kernel().id()));
  std::vector<Shard> shards(static_cast<size_t>(num_shards));
  std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  pool->ParallelFor(0, num_shards, 1, [&](int32_t, int64_t b, int64_t e) {
    for (int64_t si = b; si < e; ++si) {
      Shard& shard = shards[static_cast<size_t>(si)];
      shard.user_begin = bounds[static_cast<size_t>(si)];
      shard.user_end = bounds[static_cast<size_t>(si) + 1];
      const int32_t local = shard.num_local_users();
      std::vector<EventDef> events(static_cast<size_t>(nv));
      for (EventId v = 0; v < nv; ++v) {
        events[static_cast<size_t>(v)].capacity =
            (instance.event_capacity(v) + num_shards - 1) / num_shards;
      }
      std::vector<UserDef> users(static_cast<size_t>(local));
      for (int32_t lu = 0; lu < local; ++lu) {
        const UserId gu = shard.user_begin + lu;
        users[static_cast<size_t>(lu)].capacity = instance.user_capacity(gu);
        users[static_cast<size_t>(lu)].bids = instance.bids(gu);
      }
      shard.instance = std::make_unique<Instance>(
          std::move(events), std::move(users), instance.conflict_ptr(),
          std::make_shared<ShardInterestFn>(&instance, shard.user_begin,
                                            local),
          std::make_shared<ShardInteractionModel>(&instance, shard.user_begin,
                                                  local),
          instance.beta());
      shard.instance->set_kernel(kernel);
      if (Status s = shard.instance->Validate(); !s.ok()) {
        shard_status[static_cast<size_t>(si)] = std::move(s);
        continue;
      }
      AdmissibleOptions admissible = options.admissible;
      admissible.num_threads = 1;  // shards are the parallel unit
      shard.catalog = std::make_unique<AdmissibleCatalog>(
          AdmissibleCatalog::Build(*shard.instance, admissible));
      StructuredDualOptions level1 = options.level1;
      level1.num_threads = 1;
      level1.workers = nullptr;
      level1.warm = nullptr;
      auto solved = SolveBenchmarkLpStructured(*shard.instance, *shard.catalog,
                                               level1, &shard.warm);
      if (!solved.ok()) {
        shard_status[static_cast<size_t>(si)] = solved.status();
        continue;
      }
      shard.level1_iterations = solved->iterations;
    }
  });
  for (const Status& s : shard_status) {
    IGEPA_RETURN_IF_ERROR(s);
  }

  int64_t total_columns = 0;
  int64_t level1_iterations = 0;
  int32_t max_user_cols = 0;
  for (const Shard& shard : shards) {
    total_columns += shard.catalog->num_columns();
    level1_iterations += shard.level1_iterations;
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
      max_user_cols = std::max(max_user_cols,
                               shard.catalog->user_columns_end(lu) -
                                   shard.catalog->user_columns_begin(lu));
    }
  }
  if (stats != nullptr) {
    *stats = ShardedSolveStats{};
    stats->num_shards = num_shards;
    stats->num_columns = static_cast<int32_t>(total_columns);
    stats->level1_iterations = level1_iterations;
  }
  if (total_columns == 0) return Arrangement(nv, nu);

  // ---- Level 2: coordinate the shared event prices. ------------------------
  // Seed μ with the shard-average of the level-1 duals (summed in shard
  // order) and run projected subgradient descent on the global Lagrangian,
  // whose oracle term decomposes exactly across shards.
  std::vector<double> caps(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) {
    caps[static_cast<size_t>(v)] =
        static_cast<double>(instance.event_capacity(v));
  }
  std::vector<double> mu(static_cast<size_t>(nv), 0.0);
  for (const Shard& shard : shards) {
    for (EventId v = 0; v < nv; ++v) {
      mu[static_cast<size_t>(v)] += shard.warm.mu[static_cast<size_t>(v)];
    }
  }
  for (double& m : mu) m /= static_cast<double>(num_shards);

  double wmax = 0.0;
  std::vector<ColumnRef> by_weight;
  by_weight.reserve(static_cast<size_t>(total_columns));
  for (int32_t si = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    const auto& weights = shard.catalog->weights();
    const auto& owners = shard.catalog->col_users();
    for (int32_t j = 0; j < shard.catalog->num_columns(); ++j) {
      const double w = weights[static_cast<size_t>(j)];
      wmax = std::max(wmax, w);
      by_weight.push_back(ColumnRef{w, shard.user_begin + owners[j], si, j});
    }
  }
  std::sort(by_weight.begin(), by_weight.end(),
            [](const ColumnRef& a, const ColumnRef& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.global_user != b.global_user) {
                return a.global_user < b.global_user;
              }
              return a.col < b.col;
            });
  if (wmax <= 0.0) wmax = 1.0;

  // Per-shard working state; every cross-shard reduction merges these in
  // shard index order, which is what pins bit-identity at any thread count.
  std::vector<std::vector<int32_t>> choice(static_cast<size_t>(num_shards));
  std::vector<std::vector<int64_t>> count(static_cast<size_t>(num_shards));
  std::vector<std::vector<double>> usage(static_cast<size_t>(num_shards));
  std::vector<std::vector<double>> x(static_cast<size_t>(num_shards));
  std::vector<std::vector<double>> best_x(static_cast<size_t>(num_shards));
  std::vector<double> partial(static_cast<size_t>(num_shards), 0.0);
  std::vector<std::vector<double>> musum(static_cast<size_t>(num_shards));
  for (int32_t si = 0; si < num_shards; ++si) {
    const int32_t cols = shards[static_cast<size_t>(si)].catalog->num_columns();
    choice[static_cast<size_t>(si)].assign(
        static_cast<size_t>(shards[static_cast<size_t>(si)].num_local_users()),
        -1);
    count[static_cast<size_t>(si)].assign(static_cast<size_t>(cols), 0);
    usage[static_cast<size_t>(si)].assign(static_cast<size_t>(nv), 0.0);
    x[static_cast<size_t>(si)].assign(static_cast<size_t>(cols), 0.0);
    best_x[static_cast<size_t>(si)].assign(static_cast<size_t>(cols), 0.0);
    musum[static_cast<size_t>(si)].assign(
        static_cast<size_t>(std::max(1, max_user_cols)), 0.0);
  }
  std::vector<double> used(static_cast<size_t>(nv), 0.0);
  std::vector<double> factor(static_cast<size_t>(nv), 1.0);
  std::vector<double> user_mass(static_cast<size_t>(nu), 0.0);

  double best_ub = std::numeric_limits<double>::infinity();
  double best_primal = -std::numeric_limits<double>::infinity();
  double gap = std::numeric_limits<double>::infinity();
  int64_t avg_started_at = 1;
  int64_t iterations_run = 0;

  // Fractional extraction: suffix-averaged choice frequencies, scaled down
  // on overloaded events (each column by the min factor over its events, so
  // post-scale usage provably fits), then greedily polished heaviest-first.
  const auto extract_primal = [&](int64_t avg_count) {
    std::fill(used.begin(), used.end(), 0.0);
    std::fill(user_mass.begin(), user_mass.end(), 0.0);
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      auto& xs = x[static_cast<size_t>(si)];
      const auto& cs = count[static_cast<size_t>(si)];
      for (int32_t j = 0; j < shard.catalog->num_columns(); ++j) {
        xs[static_cast<size_t>(j)] =
            static_cast<double>(cs[static_cast<size_t>(j)]) /
            static_cast<double>(avg_count);
        for (EventId v : shard.catalog->set(j)) {
          used[static_cast<size_t>(v)] += xs[static_cast<size_t>(j)];
        }
      }
    }
    for (EventId v = 0; v < nv; ++v) {
      factor[static_cast<size_t>(v)] =
          used[static_cast<size_t>(v)] > caps[static_cast<size_t>(v)]
              ? caps[static_cast<size_t>(v)] / used[static_cast<size_t>(v)]
              : 1.0;
    }
    std::fill(used.begin(), used.end(), 0.0);
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      auto& xs = x[static_cast<size_t>(si)];
      for (int32_t j = 0; j < shard.catalog->num_columns(); ++j) {
        if (xs[static_cast<size_t>(j)] <= 0.0) continue;
        double f = 1.0;
        for (EventId v : shard.catalog->set(j)) {
          f = std::min(f, factor[static_cast<size_t>(v)]);
        }
        xs[static_cast<size_t>(j)] *= f;
        const UserId gu = shard.user_begin + shard.catalog->user_of(j);
        user_mass[static_cast<size_t>(gu)] += xs[static_cast<size_t>(j)];
        for (EventId v : shard.catalog->set(j)) {
          used[static_cast<size_t>(v)] += xs[static_cast<size_t>(j)];
        }
      }
    }
    for (const ColumnRef& ref : by_weight) {
      const Shard& shard = shards[static_cast<size_t>(ref.shard)];
      double& xj = x[static_cast<size_t>(ref.shard)][static_cast<size_t>(
          ref.col)];
      double room = std::min(1.0 - xj,
                             1.0 - user_mass[static_cast<size_t>(
                                       ref.global_user)]);
      for (EventId v : shard.catalog->set(ref.col)) {
        room = std::min(room, caps[static_cast<size_t>(v)] -
                                  used[static_cast<size_t>(v)]);
        if (room <= 1e-12) break;
      }
      if (room <= 1e-12) continue;
      xj += room;
      user_mass[static_cast<size_t>(ref.global_user)] += room;
      for (EventId v : shard.catalog->set(ref.col)) {
        used[static_cast<size_t>(v)] += room;
      }
    }
    double objective = 0.0;
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      const auto& weights = shard.catalog->weights();
      double shard_obj = 0.0;
      for (int32_t j = 0; j < shard.catalog->num_columns(); ++j) {
        shard_obj += weights[static_cast<size_t>(j)] *
                     x[static_cast<size_t>(si)][static_cast<size_t>(j)];
      }
      objective += shard_obj;
    }
    return objective;
  };

  for (int64_t t = 1; t <= options.coordination_max_iterations; ++t) {
    iterations_run = t;
    // Oracle sweep, one shard per work item: SIMD-batched μ sums over each
    // user's columns, first-best argmax (ties → lowest column id).
    pool->ParallelFor(0, num_shards, 1, [&](int32_t, int64_t b, int64_t e) {
      for (int64_t si = b; si < e; ++si) {
        const Shard& shard = shards[static_cast<size_t>(si)];
        const AdmissibleCatalog& catalog = *shard.catalog;
        const int32_t* cat_pool = catalog.pool().data();
        const int64_t* col_begin = catalog.col_begin().data();
        const double* weights = catalog.weights().data();
        auto& shard_choice = choice[static_cast<size_t>(si)];
        auto& shard_count = count[static_cast<size_t>(si)];
        auto& shard_usage = usage[static_cast<size_t>(si)];
        double& shard_partial = partial[static_cast<size_t>(si)];
        double* scratch = musum[static_cast<size_t>(si)].data();
        shard_partial = 0.0;
        std::fill(shard_usage.begin(), shard_usage.end(), 0.0);
        for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
          const int32_t begin = catalog.user_columns_begin(lu);
          const int32_t span = catalog.user_columns_end(lu) - begin;
          int32_t best_col = -1;
          double best = 0.0;
          if (span > 0) {
            util::simd::SumColumnLanes(mu.data(), cat_pool, col_begin + begin,
                                       span, scratch);
            for (int32_t k = 0; k < span; ++k) {
              const double value = weights[begin + k] - scratch[k];
              if (value > best) {
                best = value;
                best_col = begin + k;
              }
            }
          }
          shard_choice[static_cast<size_t>(lu)] = best_col;
          if (best_col >= 0) {
            shard_partial += best;
            shard_count[static_cast<size_t>(best_col)] += 1;
            for (EventId v : catalog.set(best_col)) {
              shard_usage[static_cast<size_t>(v)] += 1.0;
            }
          }
        }
      }
    });

    // Merge in shard order: the Lagrangian value and the usage subgradient.
    double lagrangian = 0.0;
    for (EventId v = 0; v < nv; ++v) {
      lagrangian += caps[static_cast<size_t>(v)] * mu[static_cast<size_t>(v)];
    }
    for (int32_t si = 0; si < num_shards; ++si) {
      lagrangian += partial[static_cast<size_t>(si)];
    }
    best_ub = std::min(best_ub, lagrangian);

    bool done = false;
    if (t % options.check_every == 0 || t == 1 ||
        t == options.coordination_max_iterations) {
      const int64_t avg_count = t - avg_started_at + 1;
      const double objective = extract_primal(avg_count);
      if (objective > best_primal) {
        best_primal = objective;
        for (int32_t si = 0; si < num_shards; ++si) {
          best_x[static_cast<size_t>(si)] = x[static_cast<size_t>(si)];
        }
      }
      gap = (best_ub - best_primal) / std::max(1.0, std::abs(best_ub));
      if (gap <= options.coordination_gap) done = true;
    }
    if (done) break;

    double gnorm2 = 0.0;
    for (EventId v = 0; v < nv; ++v) {
      double g = caps[static_cast<size_t>(v)];
      for (int32_t si = 0; si < num_shards; ++si) {
        g -= usage[static_cast<size_t>(si)][static_cast<size_t>(v)];
      }
      factor[static_cast<size_t>(v)] = g;  // reuse as gradient scratch
      gnorm2 += g * g;
    }
    if (gnorm2 <= 1e-18) {
      // Complementary slackness: the current iterate clears every market, so
      // L(μ) is optimal. Re-extract from this single iterate and stop.
      for (auto& shard_count : count) {
        std::fill(shard_count.begin(), shard_count.end(), 0);
      }
      for (int32_t si = 0; si < num_shards; ++si) {
        for (int32_t c : choice[static_cast<size_t>(si)]) {
          if (c >= 0) count[static_cast<size_t>(si)][static_cast<size_t>(c)] = 1;
        }
      }
      const double objective = extract_primal(1);
      if (objective > best_primal) {
        best_primal = objective;
        for (int32_t si = 0; si < num_shards; ++si) {
          best_x[static_cast<size_t>(si)] = x[static_cast<size_t>(si)];
        }
      }
      gap = (best_ub - best_primal) / std::max(1.0, std::abs(best_ub));
      break;
    }
    const double step =
        options.step_scale * wmax /
        std::sqrt(static_cast<double>(t) * gnorm2);
    for (EventId v = 0; v < nv; ++v) {
      mu[static_cast<size_t>(v)] = std::max(
          0.0, mu[static_cast<size_t>(v)] - step * factor[static_cast<size_t>(v)]);
    }
    // Doubling restart of the averaging window (same cadence as the
    // monolithic solver): each window is twice as long as the last, so the
    // average forgets the pre-convergence iterates geometrically.
    if (t + 1 >= 2 * avg_started_at) {
      for (auto& shard_count : count) {
        std::fill(shard_count.begin(), shard_count.end(), 0);
      }
      avg_started_at = t + 1;
    }
  }

  if (stats != nullptr) {
    stats->lp_objective = best_primal;
    stats->lp_upper_bound = best_ub;
    stats->gap = gap;
    stats->coordination_iterations = iterations_run;
  }

  // ---- Legalize: one global rounding/repair sweep. -------------------------
  // RoundFractional's exact semantics lifted across shards: one pre-drawn
  // uniform per user in GLOBAL user order, α·x sampling down the user's
  // column range, per-event demand, and the first-c_v-contenders-by-user-id
  // cutoff rule (pair (v, u) survives iff u < cutoff[v]).
  std::vector<std::vector<int32_t>> sampled(static_cast<size_t>(num_shards));
  for (int32_t si = 0; si < num_shards; ++si) {
    sampled[static_cast<size_t>(si)].assign(
        static_cast<size_t>(shards[static_cast<size_t>(si)].num_local_users()),
        -1);
  }
  for (int32_t si = 0, gu = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    const auto& xs = best_x[static_cast<size_t>(si)];
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu, ++gu) {
      double r = rng->NextDouble();
      const int32_t begin = shard.catalog->user_columns_begin(lu);
      const int32_t end = shard.catalog->user_columns_end(lu);
      for (int32_t j = begin; j < end; ++j) {
        const double mass =
            options.alpha *
            std::clamp(xs[static_cast<size_t>(j)], 0.0, 1.0);
        if (r < mass) {
          sampled[static_cast<size_t>(si)][static_cast<size_t>(lu)] = j;
          break;
        }
        r -= mass;
      }
    }
  }
  std::vector<int32_t> demand(static_cast<size_t>(nv), 0);
  for (int32_t si = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
      const int32_t j = sampled[static_cast<size_t>(si)][static_cast<size_t>(lu)];
      if (j < 0) continue;
      for (EventId v : shard.catalog->set(j)) {
        ++demand[static_cast<size_t>(v)];
      }
    }
  }
  std::vector<int32_t> cutoff(static_cast<size_t>(nv), kNoRepairCutoff);
  std::vector<UserId> contenders;
  for (EventId v = 0; v < nv; ++v) {
    const int32_t cap = instance.event_capacity(v);
    if (demand[static_cast<size_t>(v)] <= cap) continue;
    contenders.clear();
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      shard.catalog->ForEachColumnOfEvent(v, [&](int32_t j) {
        const int32_t owner = shard.catalog->user_of(j);
        if (sampled[static_cast<size_t>(si)][static_cast<size_t>(owner)] == j) {
          contenders.push_back(shard.user_begin + owner);
        }
      });
    }
    if (static_cast<int32_t>(contenders.size()) <= cap) continue;
    std::nth_element(contenders.begin(), contenders.begin() + cap,
                     contenders.end());
    cutoff[static_cast<size_t>(v)] = contenders[static_cast<size_t>(cap)];
  }
  Arrangement arrangement(nv, nu);
  int32_t repaired = 0;
  for (int32_t si = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
      const int32_t j = sampled[static_cast<size_t>(si)][static_cast<size_t>(lu)];
      if (j < 0) continue;
      const UserId gu = shard.user_begin + lu;
      for (EventId v : shard.catalog->set(j)) {
        if (gu < cutoff[static_cast<size_t>(v)]) {
          IGEPA_RETURN_IF_ERROR(arrangement.Add(v, gu));
        } else {
          ++repaired;
        }
      }
    }
  }
  if (stats != nullptr) stats->pairs_repaired = repaired;
  return arrangement;
}

}  // namespace core
}  // namespace igepa
