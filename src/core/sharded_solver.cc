#include "core/sharded_solver.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "core/lp_packing.h"
#include "core/shard_residency.h"
#include "core/utility_kernel.h"
#include "io/catalog_spill.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace igepa {
namespace core {
namespace {

/// Interest/interaction adapters that serve a shard's local user ids by
/// delegating to the parent instance at `base + local_u` — overlays
/// (UpdateInterest drift) included, so shard catalogs score exactly the
/// weights the monolithic catalog would. The parent is borrowed: shard
/// instances never outlive the ShardedSolve call.
class ShardInterestFn final : public interest::InterestFn {
 public:
  ShardInterestFn(const Instance* parent, UserId base, int32_t num_local)
      : parent_(parent), base_(base), num_local_(num_local) {}
  int32_t num_events() const override { return parent_->num_events(); }
  int32_t num_users() const override { return num_local_; }
  double Interest(int32_t event, int32_t user) const override {
    return parent_->Interest(event, base_ + user);
  }

 private:
  const Instance* parent_;
  UserId base_;
  int32_t num_local_;
};

class ShardInteractionModel final : public graph::InteractionModel {
 public:
  ShardInteractionModel(const Instance* parent, UserId base, int32_t num_local)
      : parent_(parent), base_(base), num_local_(num_local) {}
  int32_t num_users() const override { return num_local_; }
  double Degree(int32_t user) const override {
    return parent_->Degree(base_ + user);
  }

 private:
  const Instance* parent_;
  UserId base_;
  int32_t num_local_;
};

/// Global greedy-polish order: one entry per catalog column across every
/// shard, sorted heaviest first with a unique (owner, shard, column) tiebreak
/// so the order — and therefore the polish — is deterministic.
struct ColumnRef {
  double weight;
  UserId global_user;
  int32_t shard;
  int32_t col;
};

/// One level-1 unit: a contiguous user range with its own sub-instance,
/// catalog and warm-dual state. On the spill path the catalog (and the
/// sub-instance) are dropped right after level 1; everything level 2 needs —
/// column count, widest user range, polish refs, the spill section index —
/// is collected from Lanes() first.
struct Shard {
  UserId user_begin = 0;
  UserId user_end = 0;
  std::unique_ptr<Instance> instance;
  std::unique_ptr<AdmissibleCatalog> catalog;  // null once spilled
  DualWarmStart warm;
  int64_t level1_iterations = 0;
  int32_t num_columns = 0;
  int32_t max_user_cols = 0;
  double wmax = 0.0;
  std::vector<ColumnRef> refs;  // merged into by_weight, then freed
  int32_t spill_index = -1;

  int32_t num_local_users() const { return user_end - user_begin; }
};

/// Bounds how many shards may hold an in-RAM catalog at once during the
/// budgeted level-1 pipeline: a worker acquires a slot before building a
/// shard's instance + catalog and releases it after the shard is spilled and
/// dropped, so even the build phase never holds more than
/// ~(budget / one-shard-footprint) catalogs simultaneously.
class CountingGate {
 public:
  explicit CountingGate(int32_t slots) : available_(slots) {}
  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    slot_free_.wait(lock, [&] { return available_ > 0; });
    --available_;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++available_;
    }
    slot_free_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable slot_free_;
  int32_t available_;
};

std::string MakeSpillPath(const std::string& dir) {
  static std::atomic<uint64_t> counter{0};
  std::string base = dir;
  if (base.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  }
  return base + "/igepa-cat-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".spill";
}

/// Sequential side stream for the greedy polish, spill mode only. The polish
/// walks every column in global weight order, which hops shards on almost
/// every step — for the LRU residency manager that is the pathological cyclic
/// scan (measured ~100% miss under tight budgets, tens of millions of
/// remaps). But the event set each ref needs is fixed before coordination
/// starts, so the spill path writes them once, shard-major, as `[len, ev...]`
/// int32 rows in by_weight order, and every extraction streams the rows back
/// through one small buffer with zero residency traffic.
struct PolishStream {
  int fd = -1;
  ~PolishStream() {
    if (fd >= 0) ::close(fd);
  }
};

class PolishRowReader {
 public:
  explicit PolishRowReader(int fd) : fd_(fd), buf_(1 << 20) {}

  void Rewind() {
    begin_ = 0;
    end_ = 0;
    off_ = 0;
  }

  /// The next row's events; the pointer stays valid until the next call.
  Result<std::span<const EventId>> NextRow() {
    IGEPA_ASSIGN_OR_RETURN(const int32_t* head, Take(1));
    const int32_t len = *head;
    // Take(1 + len) keeps the already-consumed length word in the window so
    // the events land right behind it even when Fill compacts the buffer.
    begin_ -= sizeof(int32_t);
    IGEPA_ASSIGN_OR_RETURN(const int32_t* row, Take(1 + len));
    return std::span<const EventId>(row + 1, static_cast<size_t>(len));
  }

 private:
  Result<const int32_t*> Take(int32_t words) {
    const size_t need = static_cast<size_t>(words) * sizeof(int32_t);
    if (end_ - begin_ < need) IGEPA_RETURN_IF_ERROR(Fill(need));
    const int32_t* p = reinterpret_cast<const int32_t*>(buf_.data() + begin_);
    begin_ += need;
    return p;
  }

  Status Fill(size_t need) {
    std::memmove(buf_.data(), buf_.data() + begin_, end_ - begin_);
    end_ -= begin_;
    begin_ = 0;
    if (buf_.size() < need) buf_.resize(need);
    while (end_ < need) {
      const ssize_t n =
          ::pread(fd_, buf_.data() + end_, buf_.size() - end_, off_);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("polish stream read failed");
      }
      if (n == 0) return Status::IOError("polish stream truncated");
      end_ += static_cast<size_t>(n);
      off_ += n;
    }
    return Status::OK();
  }

  int fd_;
  std::vector<uint8_t> buf_;
  size_t begin_ = 0;
  size_t end_ = 0;
  off_t off_ = 0;
};

/// The satellite-6 rejection: a budget below one shard's measured catalog
/// footprint can never satisfy the residency bound, so name the minimum.
Status BudgetTooSmall(uint64_t budget_bytes, uint64_t footprint_bytes) {
  const uint64_t min_mb = (footprint_bytes + (uint64_t{1} << 20) - 1) >> 20;
  return Status::InvalidArgument(
      "memory budget (" + std::to_string(budget_bytes) +
      " bytes) is below one shard's catalog footprint; this run needs at "
      "least " +
      std::to_string(footprint_bytes) + " bytes — pass --memory-budget-mb " +
      std::to_string(min_mb) + " or more, or use fewer users per shard");
}

Status ValidateOptions(const ShardedSolveOptions& options) {
  if (options.users_per_shard < 1) {
    return Status::InvalidArgument("users_per_shard must be >= 1");
  }
  if (options.num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (!(options.alpha > 0.0 && options.alpha <= 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (options.coordination_gap <= 0.0 ||
      options.coordination_max_iterations < 1 || options.check_every < 1 ||
      options.step_scale <= 0.0) {
    return Status::InvalidArgument("invalid coordination parameters");
  }
  return Status::OK();
}

}  // namespace

std::vector<UserId> ShardUserBounds(int32_t num_users,
                                    const ShardedSolveOptions& options) {
  if (num_users <= 0) return {0};
  const int32_t per = std::max(1, options.users_per_shard);
  int32_t k = options.num_shards > 0 ? options.num_shards
                                     : (num_users + per - 1) / per;
  k = std::clamp(k, 1, num_users);
  // Balanced contiguous partition: the first (num_users mod k) shards carry
  // one extra user. A pure function of (num_users, k).
  std::vector<UserId> bounds(static_cast<size_t>(k) + 1, 0);
  const int32_t base = num_users / k;
  const int32_t extra = num_users % k;
  for (int32_t s = 0; s < k; ++s) {
    bounds[static_cast<size_t>(s) + 1] =
        bounds[static_cast<size_t>(s)] + base + (s < extra ? 1 : 0);
  }
  return bounds;
}

Result<Arrangement> ShardedSolve(const Instance& instance, Rng* rng,
                                 const ShardedSolveOptions& options,
                                 ShardedSolveStats* stats) {
  IGEPA_RETURN_IF_ERROR(ValidateOptions(options));
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  const int32_t nv = instance.num_events();
  const int32_t nu = instance.num_users();
  if (nu == 0 || nv == 0) return Arrangement(nv, nu);

  const std::vector<UserId> bounds = ShardUserBounds(nu, options);
  const int32_t num_shards = static_cast<int32_t>(bounds.size()) - 1;
  ThreadPool* pool = options.workers;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<ThreadPool>(
        ThreadPool::ResolveThreadCount(options.num_threads, num_shards));
    pool = owned_pool.get();
  }

  // The spill file exists only as a kept fd: unlinking right after Create
  // means no exit path — early error, crash, or success — leaves a file
  // behind, while Append/Seal/Map keep working through the descriptor.
  const bool budgeted = options.memory_budget_bytes > 0;
  std::optional<io::CatalogSpill> spill;
  if (budgeted) {
    IGEPA_ASSIGN_OR_RETURN(
        io::CatalogSpill created,
        io::CatalogSpill::Create(MakeSpillPath(options.spill_dir)));
    spill.emplace(std::move(created));
    ::unlink(spill->path().c_str());
  }

  // ---- Level 1: independent per-shard catalogs + warm solves. --------------
  // Shard instances see 1/K-scaled event capacities (capacity only feeds the
  // LP rows, never the admissible-set enumeration), so each shard prices its
  // fair slice of every event and the averaged duals land near the global
  // clearing prices. Everything level 2 needs beyond the lanes themselves
  // (column count, polish refs, wmax, widest user range) is collected here,
  // while the catalog is still in RAM; on the spill path the catalog and the
  // sub-instance are then dropped.
  IGEPA_ASSIGN_OR_RETURN(
      std::shared_ptr<const UtilityKernel> kernel,
      MakeUtilityKernel(instance.kernel().id()));
  std::vector<Shard> shards(static_cast<size_t>(num_shards));
  const auto level1_shard = [&](int32_t si) -> Status {
    Shard& shard = shards[static_cast<size_t>(si)];
    shard.user_begin = bounds[static_cast<size_t>(si)];
    shard.user_end = bounds[static_cast<size_t>(si) + 1];
    const int32_t local = shard.num_local_users();
    std::vector<EventDef> events(static_cast<size_t>(nv));
    for (EventId v = 0; v < nv; ++v) {
      events[static_cast<size_t>(v)].capacity =
          (instance.event_capacity(v) + num_shards - 1) / num_shards;
    }
    std::vector<UserDef> users(static_cast<size_t>(local));
    for (int32_t lu = 0; lu < local; ++lu) {
      const UserId gu = shard.user_begin + lu;
      users[static_cast<size_t>(lu)].capacity = instance.user_capacity(gu);
      users[static_cast<size_t>(lu)].bids = instance.bids(gu);
    }
    shard.instance = std::make_unique<Instance>(
        std::move(events), std::move(users), instance.conflict_ptr(),
        std::make_shared<ShardInterestFn>(&instance, shard.user_begin, local),
        std::make_shared<ShardInteractionModel>(&instance, shard.user_begin,
                                                local),
        instance.beta());
    shard.instance->set_kernel(kernel);
    IGEPA_RETURN_IF_ERROR(shard.instance->Validate());
    AdmissibleOptions admissible = options.admissible;
    admissible.num_threads = 1;  // shards are the parallel unit
    shard.catalog = std::make_unique<AdmissibleCatalog>(
        AdmissibleCatalog::Build(*shard.instance, admissible));
    StructuredDualOptions level1 = options.level1;
    level1.num_threads = 1;
    level1.workers = nullptr;
    level1.warm = nullptr;
    auto solved = SolveBenchmarkLpStructured(*shard.instance, *shard.catalog,
                                             level1, &shard.warm);
    IGEPA_RETURN_IF_ERROR(solved.status());
    shard.level1_iterations = solved->iterations;

    const CatalogLanes lanes = shard.catalog->Lanes();
    shard.num_columns = lanes.num_columns;
    for (int32_t lu = 0; lu < local; ++lu) {
      shard.max_user_cols =
          std::max(shard.max_user_cols,
                   lanes.user_columns_end(lu) - lanes.user_columns_begin(lu));
    }
    shard.refs.reserve(static_cast<size_t>(lanes.num_columns));
    for (int32_t j = 0; j < lanes.num_columns; ++j) {
      const double w = lanes.weight[j];
      shard.wmax = std::max(shard.wmax, w);
      shard.refs.push_back(
          ColumnRef{w, shard.user_begin + lanes.user_of(j), si, j});
    }
    if (spill) {
      IGEPA_ASSIGN_OR_RETURN(shard.spill_index, spill->Append(lanes));
      shard.catalog.reset();
      shard.instance.reset();
    }
    return Status::OK();
  };

  std::vector<Status> shard_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  if (budgeted) {
    // Shard 0 runs serially first to measure one shard's catalog footprint:
    // it rejects hopeless budgets before K−1 more builds, and it sizes the
    // gate that keeps the build phase itself inside the budget.
    IGEPA_RETURN_IF_ERROR(level1_shard(0));
    const uint64_t first_footprint =
        std::max<uint64_t>(spill->section_bytes(shards[0].spill_index), 1);
    if (options.memory_budget_bytes < first_footprint) {
      return BudgetTooSmall(options.memory_budget_bytes, first_footprint);
    }
    CountingGate gate(static_cast<int32_t>(std::clamp<uint64_t>(
        options.memory_budget_bytes / first_footprint, 1,
        static_cast<uint64_t>(num_shards))));
    pool->ParallelFor(1, num_shards, 1, [&](int32_t, int64_t b, int64_t e) {
      for (int64_t si = b; si < e; ++si) {
        gate.Acquire();
        shard_status[static_cast<size_t>(si)] =
            level1_shard(static_cast<int32_t>(si));
        gate.Release();
      }
    });
  } else {
    pool->ParallelFor(0, num_shards, 1, [&](int32_t, int64_t b, int64_t e) {
      for (int64_t si = b; si < e; ++si) {
        shard_status[static_cast<size_t>(si)] =
            level1_shard(static_cast<int32_t>(si));
      }
    });
  }
  for (const Status& s : shard_status) {
    IGEPA_RETURN_IF_ERROR(s);
  }
  if (spill) {
    IGEPA_RETURN_IF_ERROR(spill->Seal());
    // Shard 0 bounded the budget from below; the exact requirement is the
    // largest section, known only now.
    if (options.memory_budget_bytes < spill->max_section_bytes()) {
      return BudgetTooSmall(options.memory_budget_bytes,
                            spill->max_section_bytes());
    }
  }

  // Merge the per-shard metadata in shard index order.
  int64_t total_columns = 0;
  int64_t level1_iterations = 0;
  int32_t max_user_cols = 0;
  double wmax = 0.0;
  for (const Shard& shard : shards) {
    total_columns += shard.num_columns;
    level1_iterations += shard.level1_iterations;
    max_user_cols = std::max(max_user_cols, shard.max_user_cols);
    wmax = std::max(wmax, shard.wmax);
  }
  if (stats != nullptr) {
    *stats = ShardedSolveStats{};
    stats->num_shards = num_shards;
    stats->num_columns = static_cast<int32_t>(total_columns);
    stats->level1_iterations = level1_iterations;
    if (spill) {
      stats->spill_bytes = spill->total_bytes();
      stats->shard_footprint_bytes = spill->max_section_bytes();
    }
  }
  if (total_columns == 0) return Arrangement(nv, nu);

  std::vector<ColumnRef> by_weight;
  by_weight.reserve(static_cast<size_t>(total_columns));
  for (Shard& shard : shards) {
    by_weight.insert(by_weight.end(), shard.refs.begin(), shard.refs.end());
    std::vector<ColumnRef>().swap(shard.refs);
  }
  // (weight desc, owner, col) is a total order — every column has a unique
  // (owner, col) — so the sorted order is independent of merge order.
  std::sort(by_weight.begin(), by_weight.end(),
            [](const ColumnRef& a, const ColumnRef& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.global_user != b.global_user) {
                return a.global_user < b.global_user;
              }
              return a.col < b.col;
            });
  if (wmax <= 0.0) wmax = 1.0;

  // ---- Catalog access: one lane contract for both residency modes. ---------
  // In-memory shards serve AdmissibleCatalog::Lanes(); spilled shards serve
  // mmapped CatalogView lanes through the LRU residency manager. Level 2,
  // extraction and legalize only ever see CatalogLanes, so eviction/repage
  // cannot change a bit of the result.
  std::optional<ShardResidency> residency;
  if (spill) residency.emplace(&*spill, options.memory_budget_bytes);
  std::vector<CatalogLanes> inmem_lanes(static_cast<size_t>(num_shards));
  if (!spill) {
    for (int32_t si = 0; si < num_shards; ++si) {
      inmem_lanes[static_cast<size_t>(si)] =
          shards[static_cast<size_t>(si)].catalog->Lanes();
    }
  }
  // Serial-context accessor (extraction, legalize): holds one lease at a
  // time and reuses it across consecutive calls for the same shard, so
  // shard-major passes page each shard in at most once.
  ShardResidency::Lease serial_lease;
  int32_t serial_shard = -1;
  const auto lanes_of = [&](int32_t si) -> Result<const CatalogLanes*> {
    if (!residency) return &inmem_lanes[static_cast<size_t>(si)];
    if (serial_shard != si) {
      serial_lease.Release();
      auto lease =
          residency->Acquire(shards[static_cast<size_t>(si)].spill_index);
      if (!lease.ok()) return lease.status();
      serial_lease = std::move(lease).value();
      serial_shard = si;
    }
    return &serial_lease.lanes();
  };

  // Spill mode: lay the polish rows out on disk before level-2 state is
  // allocated, so the build transients (rank map, offsets, image) do not
  // stack on top of the coordination vectors. Two shard-major passes — sizes,
  // then fill — cost one lease acquire per shard each.
  PolishStream polish;
  std::optional<PolishRowReader> polish_reader;
  if (residency) {
    std::vector<std::vector<int32_t>> rank(static_cast<size_t>(num_shards));
    for (int32_t si = 0; si < num_shards; ++si) {
      rank[static_cast<size_t>(si)].resize(
          static_cast<size_t>(shards[static_cast<size_t>(si)].num_columns));
    }
    for (size_t k = 0; k < by_weight.size(); ++k) {
      rank[static_cast<size_t>(by_weight[k].shard)]
          [static_cast<size_t>(by_weight[k].col)] = static_cast<int32_t>(k);
    }
    std::vector<int64_t> row_off(by_weight.size() + 1, 0);
    for (int32_t si = 0; si < num_shards; ++si) {
      IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
      const auto& shard_rank = rank[static_cast<size_t>(si)];
      for (int32_t c = 0; c < shards[static_cast<size_t>(si)].num_columns;
           ++c) {
        row_off[static_cast<size_t>(shard_rank[static_cast<size_t>(c)]) + 1] =
            1 + static_cast<int64_t>(lanes->set(c).size());
      }
    }
    for (size_t k = 1; k < row_off.size(); ++k) {
      row_off[k] += row_off[k - 1];
    }
    std::vector<int32_t> image(static_cast<size_t>(row_off.back()));
    for (int32_t si = 0; si < num_shards; ++si) {
      IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
      const auto& shard_rank = rank[static_cast<size_t>(si)];
      for (int32_t c = 0; c < shards[static_cast<size_t>(si)].num_columns;
           ++c) {
        const std::span<const EventId> set = lanes->set(c);
        int64_t w = row_off[static_cast<size_t>(
            shard_rank[static_cast<size_t>(c)])];
        image[static_cast<size_t>(w)] = static_cast<int32_t>(set.size());
        std::copy(set.begin(), set.end(),
                  image.begin() + static_cast<size_t>(w) + 1);
      }
    }
    serial_lease.Release();
    serial_shard = -1;
    std::vector<std::vector<int32_t>>().swap(rank);
    std::vector<int64_t>().swap(row_off);

    const std::string polish_path = MakeSpillPath(options.spill_dir);
    polish.fd =
        ::open(polish_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
               0600);
    if (polish.fd < 0) {
      return Status::IOError("cannot create polish stream file " +
                             polish_path);
    }
    ::unlink(polish_path.c_str());
    const auto* bytes = reinterpret_cast<const uint8_t*>(image.data());
    const size_t total = image.size() * sizeof(int32_t);
    size_t written = 0;
    while (written < total) {
      const ssize_t n = ::write(polish.fd, bytes + written, total - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("polish stream write failed");
      }
      written += static_cast<size_t>(n);
    }
    polish_reader.emplace(polish.fd);
  }

  // ---- Level 2: coordinate the shared event prices. ------------------------
  // Seed μ with the shard-average of the level-1 duals (summed in shard
  // order) and run projected subgradient descent on the global Lagrangian,
  // whose oracle term decomposes exactly across shards.
  std::vector<double> caps(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) {
    caps[static_cast<size_t>(v)] =
        static_cast<double>(instance.event_capacity(v));
  }
  std::vector<double> mu(static_cast<size_t>(nv), 0.0);
  for (const Shard& shard : shards) {
    for (EventId v = 0; v < nv; ++v) {
      mu[static_cast<size_t>(v)] += shard.warm.mu[static_cast<size_t>(v)];
    }
  }
  for (double& m : mu) m /= static_cast<double>(num_shards);

  // Per-shard working state; every cross-shard reduction merges these in
  // shard index order, which is what pins bit-identity at any thread count.
  std::vector<std::vector<int32_t>> choice(static_cast<size_t>(num_shards));
  std::vector<std::vector<int64_t>> count(static_cast<size_t>(num_shards));
  std::vector<std::vector<double>> usage(static_cast<size_t>(num_shards));
  std::vector<std::vector<double>> x(static_cast<size_t>(num_shards));
  std::vector<std::vector<double>> best_x(static_cast<size_t>(num_shards));
  std::vector<double> partial(static_cast<size_t>(num_shards), 0.0);
  std::vector<std::vector<double>> musum(static_cast<size_t>(num_shards));
  for (int32_t si = 0; si < num_shards; ++si) {
    const int32_t cols = shards[static_cast<size_t>(si)].num_columns;
    choice[static_cast<size_t>(si)].assign(
        static_cast<size_t>(shards[static_cast<size_t>(si)].num_local_users()),
        -1);
    count[static_cast<size_t>(si)].assign(static_cast<size_t>(cols), 0);
    usage[static_cast<size_t>(si)].assign(static_cast<size_t>(nv), 0.0);
    x[static_cast<size_t>(si)].assign(static_cast<size_t>(cols), 0.0);
    best_x[static_cast<size_t>(si)].assign(static_cast<size_t>(cols), 0.0);
    musum[static_cast<size_t>(si)].assign(
        static_cast<size_t>(std::max(1, max_user_cols)), 0.0);
  }
  std::vector<double> used(static_cast<size_t>(nv), 0.0);
  std::vector<double> factor(static_cast<size_t>(nv), 1.0);
  std::vector<double> user_mass(static_cast<size_t>(nu), 0.0);

  double best_ub = std::numeric_limits<double>::infinity();
  double best_primal = -std::numeric_limits<double>::infinity();
  double gap = std::numeric_limits<double>::infinity();
  int64_t avg_started_at = 1;
  int64_t iterations_run = 0;

  // Fractional extraction: suffix-averaged choice frequencies, scaled down
  // on overloaded events (each column by the min factor over its events, so
  // post-scale usage provably fits), then greedily polished heaviest-first.
  const auto extract_primal = [&](int64_t avg_count) -> Result<double> {
    std::fill(used.begin(), used.end(), 0.0);
    std::fill(user_mass.begin(), user_mass.end(), 0.0);
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
      auto& xs = x[static_cast<size_t>(si)];
      const auto& cs = count[static_cast<size_t>(si)];
      for (int32_t j = 0; j < shard.num_columns; ++j) {
        xs[static_cast<size_t>(j)] =
            static_cast<double>(cs[static_cast<size_t>(j)]) /
            static_cast<double>(avg_count);
        for (EventId v : lanes->set(j)) {
          used[static_cast<size_t>(v)] += xs[static_cast<size_t>(j)];
        }
      }
    }
    for (EventId v = 0; v < nv; ++v) {
      factor[static_cast<size_t>(v)] =
          used[static_cast<size_t>(v)] > caps[static_cast<size_t>(v)]
              ? caps[static_cast<size_t>(v)] / used[static_cast<size_t>(v)]
              : 1.0;
    }
    std::fill(used.begin(), used.end(), 0.0);
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
      auto& xs = x[static_cast<size_t>(si)];
      for (int32_t j = 0; j < shard.num_columns; ++j) {
        if (xs[static_cast<size_t>(j)] <= 0.0) continue;
        double f = 1.0;
        for (EventId v : lanes->set(j)) {
          f = std::min(f, factor[static_cast<size_t>(v)]);
        }
        xs[static_cast<size_t>(j)] *= f;
        const UserId gu = shard.user_begin + lanes->user_of(j);
        user_mass[static_cast<size_t>(gu)] += xs[static_cast<size_t>(j)];
        for (EventId v : lanes->set(j)) {
          used[static_cast<size_t>(v)] += xs[static_cast<size_t>(j)];
        }
      }
    }
    // Spill mode reads each ref's event set from the sequential polish
    // stream (the weight-ordered walk is a cyclic scan over shards — LRU's
    // worst case); in-memory mode reads the same values from the lanes. The
    // stream must advance one row per ref, even refs the lane-free bounds
    // reject.
    if (polish_reader) polish_reader->Rewind();
    for (const ColumnRef& ref : by_weight) {
      std::span<const EventId> set;
      if (polish_reader) {
        IGEPA_ASSIGN_OR_RETURN(set, polish_reader->NextRow());
      }
      double& xj = x[static_cast<size_t>(ref.shard)][static_cast<size_t>(
          ref.col)];
      double room = std::min(1.0 - xj,
                             1.0 - user_mass[static_cast<size_t>(
                                       ref.global_user)]);
      if (room <= 1e-12) continue;
      if (!polish_reader) {
        IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes,
                               lanes_of(ref.shard));
        set = lanes->set(ref.col);
      }
      for (EventId v : set) {
        room = std::min(room, caps[static_cast<size_t>(v)] -
                                  used[static_cast<size_t>(v)]);
        if (room <= 1e-12) break;
      }
      if (room <= 1e-12) continue;
      xj += room;
      user_mass[static_cast<size_t>(ref.global_user)] += room;
      for (EventId v : set) {
        used[static_cast<size_t>(v)] += room;
      }
    }
    double objective = 0.0;
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
      double shard_obj = 0.0;
      for (int32_t j = 0; j < shard.num_columns; ++j) {
        shard_obj += lanes->weight[j] *
                     x[static_cast<size_t>(si)][static_cast<size_t>(j)];
      }
      objective += shard_obj;
    }
    return objective;
  };

  std::vector<Status> sweep_status(static_cast<size_t>(num_shards),
                                   Status::OK());
  for (int64_t t = 1; t <= options.coordination_max_iterations; ++t) {
    iterations_run = t;
    // The serial accessor's lease must drop before the parallel sweep: at
    // max_pinned == 1 a pin held across the ParallelFor would block every
    // sweep worker's Acquire forever while the main thread waits on them.
    serial_lease.Release();
    serial_shard = -1;
    // Oracle sweep, one shard per work item: SIMD-batched μ sums over each
    // user's columns, first-best argmax (ties → lowest column id). Each
    // worker pins at most one spilled shard at a time and releases it before
    // the next, so the sweep itself cannot deadlock on the residency budget
    // even at max_pinned == 1.
    pool->ParallelFor(0, num_shards, 1, [&](int32_t, int64_t b, int64_t e) {
      for (int64_t si = b; si < e; ++si) {
        const Shard& shard = shards[static_cast<size_t>(si)];
        ShardResidency::Lease lease;
        const CatalogLanes* lanes;
        if (residency) {
          auto acquired = residency->Acquire(shard.spill_index);
          if (!acquired.ok()) {
            sweep_status[static_cast<size_t>(si)] = acquired.status();
            continue;
          }
          lease = std::move(acquired).value();
          lanes = &lease.lanes();
        } else {
          lanes = &inmem_lanes[static_cast<size_t>(si)];
        }
        const int32_t* cat_pool = lanes->pool;
        const int64_t* col_begin = lanes->col_begin;
        const double* weights = lanes->weight;
        auto& shard_choice = choice[static_cast<size_t>(si)];
        auto& shard_count = count[static_cast<size_t>(si)];
        auto& shard_usage = usage[static_cast<size_t>(si)];
        double& shard_partial = partial[static_cast<size_t>(si)];
        double* scratch = musum[static_cast<size_t>(si)].data();
        shard_partial = 0.0;
        std::fill(shard_usage.begin(), shard_usage.end(), 0.0);
        for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
          const int32_t begin = lanes->user_columns_begin(lu);
          const int32_t span = lanes->user_columns_end(lu) - begin;
          int32_t best_col = -1;
          double best = 0.0;
          if (span > 0) {
            util::simd::SumColumnLanes(mu.data(), cat_pool, col_begin + begin,
                                       span, scratch);
            for (int32_t k = 0; k < span; ++k) {
              const double value = weights[begin + k] - scratch[k];
              if (value > best) {
                best = value;
                best_col = begin + k;
              }
            }
          }
          shard_choice[static_cast<size_t>(lu)] = best_col;
          if (best_col >= 0) {
            shard_partial += best;
            shard_count[static_cast<size_t>(best_col)] += 1;
            for (EventId v : lanes->set(best_col)) {
              shard_usage[static_cast<size_t>(v)] += 1.0;
            }
          }
        }
      }
    });
    for (const Status& s : sweep_status) {
      IGEPA_RETURN_IF_ERROR(s);
    }

    // Merge in shard order: the Lagrangian value and the usage subgradient.
    double lagrangian = 0.0;
    for (EventId v = 0; v < nv; ++v) {
      lagrangian += caps[static_cast<size_t>(v)] * mu[static_cast<size_t>(v)];
    }
    for (int32_t si = 0; si < num_shards; ++si) {
      lagrangian += partial[static_cast<size_t>(si)];
    }
    best_ub = std::min(best_ub, lagrangian);

    bool done = false;
    if (t % options.check_every == 0 || t == 1 ||
        t == options.coordination_max_iterations) {
      const int64_t avg_count = t - avg_started_at + 1;
      IGEPA_ASSIGN_OR_RETURN(const double objective,
                             extract_primal(avg_count));
      if (objective > best_primal) {
        best_primal = objective;
        for (int32_t si = 0; si < num_shards; ++si) {
          best_x[static_cast<size_t>(si)] = x[static_cast<size_t>(si)];
        }
      }
      gap = (best_ub - best_primal) / std::max(1.0, std::abs(best_ub));
      if (gap <= options.coordination_gap) done = true;
    }
    if (done) break;

    double gnorm2 = 0.0;
    for (EventId v = 0; v < nv; ++v) {
      double g = caps[static_cast<size_t>(v)];
      for (int32_t si = 0; si < num_shards; ++si) {
        g -= usage[static_cast<size_t>(si)][static_cast<size_t>(v)];
      }
      factor[static_cast<size_t>(v)] = g;  // reuse as gradient scratch
      gnorm2 += g * g;
    }
    if (gnorm2 <= 1e-18) {
      // Complementary slackness: the current iterate clears every market, so
      // L(μ) is optimal. Re-extract from this single iterate and stop.
      for (auto& shard_count : count) {
        std::fill(shard_count.begin(), shard_count.end(), 0);
      }
      for (int32_t si = 0; si < num_shards; ++si) {
        for (int32_t c : choice[static_cast<size_t>(si)]) {
          if (c >= 0) count[static_cast<size_t>(si)][static_cast<size_t>(c)] = 1;
        }
      }
      IGEPA_ASSIGN_OR_RETURN(const double objective, extract_primal(1));
      if (objective > best_primal) {
        best_primal = objective;
        for (int32_t si = 0; si < num_shards; ++si) {
          best_x[static_cast<size_t>(si)] = x[static_cast<size_t>(si)];
        }
      }
      gap = (best_ub - best_primal) / std::max(1.0, std::abs(best_ub));
      break;
    }
    const double step =
        options.step_scale * wmax /
        std::sqrt(static_cast<double>(t) * gnorm2);
    for (EventId v = 0; v < nv; ++v) {
      mu[static_cast<size_t>(v)] = std::max(
          0.0, mu[static_cast<size_t>(v)] - step * factor[static_cast<size_t>(v)]);
    }
    // Doubling restart of the averaging window (same cadence as the
    // monolithic solver): each window is twice as long as the last, so the
    // average forgets the pre-convergence iterates geometrically.
    if (t + 1 >= 2 * avg_started_at) {
      for (auto& shard_count : count) {
        std::fill(shard_count.begin(), shard_count.end(), 0);
      }
      avg_started_at = t + 1;
    }
  }

  if (stats != nullptr) {
    stats->lp_objective = best_primal;
    stats->lp_upper_bound = best_ub;
    stats->gap = gap;
    stats->coordination_iterations = iterations_run;
  }

  // ---- Legalize: one global rounding/repair sweep. -------------------------
  // RoundFractional's exact semantics lifted across shards: one pre-drawn
  // uniform per user in GLOBAL user order, α·x sampling down the user's
  // column range, per-event demand, and the first-c_v-contenders-by-user-id
  // cutoff rule (pair (v, u) survives iff u < cutoff[v]). Every pass is
  // shard-major so a budgeted run pages each shard in at most once per pass.
  std::vector<std::vector<int32_t>> sampled(static_cast<size_t>(num_shards));
  for (int32_t si = 0; si < num_shards; ++si) {
    sampled[static_cast<size_t>(si)].assign(
        static_cast<size_t>(shards[static_cast<size_t>(si)].num_local_users()),
        -1);
  }
  for (int32_t si = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
    const auto& xs = best_x[static_cast<size_t>(si)];
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
      double r = rng->NextDouble();
      const int32_t begin = lanes->user_columns_begin(lu);
      const int32_t end = lanes->user_columns_end(lu);
      for (int32_t j = begin; j < end; ++j) {
        const double mass =
            options.alpha *
            std::clamp(xs[static_cast<size_t>(j)], 0.0, 1.0);
        if (r < mass) {
          sampled[static_cast<size_t>(si)][static_cast<size_t>(lu)] = j;
          break;
        }
        r -= mass;
      }
    }
  }
  std::vector<int32_t> demand(static_cast<size_t>(nv), 0);
  for (int32_t si = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
      const int32_t j = sampled[static_cast<size_t>(si)][static_cast<size_t>(lu)];
      if (j < 0) continue;
      for (EventId v : lanes->set(j)) {
        ++demand[static_cast<size_t>(v)];
      }
    }
  }
  // Contender collection runs shard-outer (one lanes acquisition per shard)
  // instead of event-outer; per-event contender order stays (shard asc,
  // column asc), exactly what the event-outer walk produced.
  std::vector<int32_t> cutoff(static_cast<size_t>(nv), kNoRepairCutoff);
  std::vector<EventId> overloaded;
  std::vector<int32_t> slot(static_cast<size_t>(nv), -1);
  for (EventId v = 0; v < nv; ++v) {
    if (demand[static_cast<size_t>(v)] > instance.event_capacity(v)) {
      slot[static_cast<size_t>(v)] =
          static_cast<int32_t>(overloaded.size());
      overloaded.push_back(v);
    }
  }
  std::vector<std::vector<UserId>> contenders(overloaded.size());
  if (!overloaded.empty()) {
    for (int32_t si = 0; si < num_shards; ++si) {
      const Shard& shard = shards[static_cast<size_t>(si)];
      IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
      const auto& shard_sampled = sampled[static_cast<size_t>(si)];
      for (EventId v : overloaded) {
        auto& event_contenders =
            contenders[static_cast<size_t>(slot[static_cast<size_t>(v)])];
        lanes->ForEachColumnOfEvent(v, [&](int32_t j) {
          const int32_t owner = lanes->user_of(j);
          if (shard_sampled[static_cast<size_t>(owner)] == j) {
            event_contenders.push_back(shard.user_begin + owner);
          }
        });
      }
    }
  }
  for (EventId v : overloaded) {
    auto& event_contenders =
        contenders[static_cast<size_t>(slot[static_cast<size_t>(v)])];
    const int32_t cap = instance.event_capacity(v);
    if (static_cast<int32_t>(event_contenders.size()) <= cap) continue;
    std::nth_element(event_contenders.begin(), event_contenders.begin() + cap,
                     event_contenders.end());
    cutoff[static_cast<size_t>(v)] = event_contenders[static_cast<size_t>(cap)];
  }
  Arrangement arrangement(nv, nu);
  int32_t repaired = 0;
  for (int32_t si = 0; si < num_shards; ++si) {
    const Shard& shard = shards[static_cast<size_t>(si)];
    IGEPA_ASSIGN_OR_RETURN(const CatalogLanes* lanes, lanes_of(si));
    for (int32_t lu = 0; lu < shard.num_local_users(); ++lu) {
      const int32_t j = sampled[static_cast<size_t>(si)][static_cast<size_t>(lu)];
      if (j < 0) continue;
      const UserId gu = shard.user_begin + lu;
      for (EventId v : lanes->set(j)) {
        if (gu < cutoff[static_cast<size_t>(v)]) {
          IGEPA_RETURN_IF_ERROR(arrangement.Add(v, gu));
        } else {
          ++repaired;
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->pairs_repaired = repaired;
    if (residency) {
      const ResidencyStats rs = residency->stats();
      stats->page_ins = rs.page_ins;
      stats->evictions = rs.evictions;
      stats->peak_resident_shards = rs.peak_resident_shards;
      stats->peak_resident_bytes = rs.peak_resident_bytes;
    }
  }
  return arrangement;
}

}  // namespace core
}  // namespace igepa
