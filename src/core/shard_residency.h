#ifndef IGEPA_CORE_SHARD_RESIDENCY_H_
#define IGEPA_CORE_SHARD_RESIDENCY_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/catalog_lanes.h"
#include "io/catalog_spill.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// Residency counters for one sharded solve, merged into ShardedSolveStats
/// and surfaced by `solve --sharded` (ISSUE satellite 1).
struct ResidencyStats {
  uint64_t page_ins = 0;            ///< sections mapped in (first map + repage)
  uint64_t evictions = 0;           ///< sections munmapped to make room
  int32_t peak_resident_shards = 0; ///< max concurrently mapped sections
  uint64_t peak_resident_bytes = 0; ///< max summed bytes of mapped sections
};

/// LRU residency manager over a sealed io::CatalogSpill: at most
/// `budget_bytes` of catalog sections stay mapped, plus the one section a
/// waiter is about to map — so peak catalog RSS is bounded by
/// (budget + one shard's footprint) regardless of shard count.
///
/// `Acquire(si)` returns a pinned RAII Lease whose `lanes()` is exactly the
/// CatalogLanes the in-memory path serves from AdmissibleCatalog::Lanes();
/// a pinned section is never evicted, an unpinned one survives in LRU order
/// until space is needed. When the budget admits fewer distinct sections
/// than there are concurrent acquirers, excess acquirers block on a
/// condition variable until a lease drops — each solver worker holds at most
/// one lease at a time, so this cannot deadlock. Eviction and repage only
/// unmap/remap identical read-only bytes, so they are bit-invisible to
/// results by construction.
class ShardResidency {
 public:
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    const CatalogLanes& lanes() const { return *lanes_; }
    bool held() const { return owner_ != nullptr; }
    /// Unpins early (destruction does the same).
    void Release();

   private:
    friend class ShardResidency;
    Lease(ShardResidency* owner, int32_t index, const CatalogLanes* lanes)
        : owner_(owner), index_(index), lanes_(lanes) {}
    ShardResidency* owner_ = nullptr;
    int32_t index_ = -1;
    const CatalogLanes* lanes_ = nullptr;
  };

  /// `spill` must be sealed and outlive this manager. A budget below one
  /// section's footprint still admits exactly one resident section (the
  /// +one-shard slack in the RSS bound); rejecting such budgets with a clear
  /// error is the solver's job, where the footprint is known with context.
  ShardResidency(const io::CatalogSpill* spill, uint64_t budget_bytes);

  ShardResidency(const ShardResidency&) = delete;
  ShardResidency& operator=(const ShardResidency&) = delete;

  /// Pins section `index`, mapping it first if not resident (evicting
  /// unpinned LRU sections to honor the budget) and blocking while the
  /// budget's pin slots are exhausted. Thread-safe.
  Result<Lease> Acquire(int32_t index);

  ResidencyStats stats() const;
  /// Distinct sections the budget lets be pinned at once (>= 1).
  int32_t max_pinned() const { return max_pinned_; }

 private:
  friend class Lease;
  void Unpin(int32_t index);

  struct Entry {
    io::CatalogView view;
    int32_t pins = 0;
    uint64_t tick = 0;  // LRU clock value at last touch
    bool resident = false;
  };

  const io::CatalogSpill* spill_;
  const uint64_t budget_bytes_;
  int32_t max_pinned_;

  mutable std::mutex mutex_;
  std::condition_variable slot_free_;
  std::vector<Entry> entries_;  // sized num_catalogs, never resized
  uint64_t clock_ = 0;
  uint64_t resident_bytes_ = 0;
  int32_t resident_count_ = 0;
  int32_t pinned_count_ = 0;
  ResidencyStats stats_;
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_SHARD_RESIDENCY_H_
