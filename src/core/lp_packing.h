#ifndef IGEPA_CORE_LP_PACKING_H_
#define IGEPA_CORE_LP_PACKING_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/benchmark_dual.h"
#include "core/benchmark_lp.h"
#include "core/instance.h"
#include "lp/solver.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace core {

/// Order in which lines 4-7 of Algorithm 1 sweep users while repairing event
/// capacities. The paper's pseudo-code iterates "for u ∈ U" (index order);
/// the alternatives are ablation knobs (DESIGN.md §6).
enum class RepairOrder : uint8_t {
  kUserIndex,
  kRandom,
  /// Users with heavier sampled sets first (keeps the valuable assignments
  /// when capacity runs out).
  kWeightDesc,
};

/// How line 1 of Algorithm 1 solves the benchmark LP.
enum class BenchmarkSolverKind : uint8_t {
  /// Exact dense simplex while the tableau fits (small instances), the
  /// structured Lagrangian solver beyond that. The right default.
  kAuto,
  /// Always route through the generic lp:: facade (exact simplex tiers or the
  /// generic packing dual, per lp::LpSolverOptions).
  kLpFacade,
  /// Always use the structured block-angular solver (benchmark_dual.h).
  kStructuredDual,
};

/// Options for LpPacking.
struct LpPackingOptions {
  /// Sampling scale α of Algorithm 1, in (0, 1]. The approximation proof uses
  /// α = 1/2 (ratio α(1-α) >= 1/4); the paper's experiments set α = 1.
  double alpha = 1.0;
  /// Which engine solves the benchmark LP.
  BenchmarkSolverKind benchmark_solver = BenchmarkSolverKind::kAuto;
  /// Generic lp:: engine selection (used by kLpFacade, and by kAuto below the
  /// dense-tableau threshold).
  lp::LpSolverOptions solver;
  /// Structured-solver options (used by kStructuredDual / large kAuto).
  StructuredDualOptions structured;
  /// Admissible-set enumeration controls.
  AdmissibleOptions admissible;
  RepairOrder repair_order = RepairOrder::kUserIndex;
  /// Worker threads for the rounding/repair stage (0 = hardware
  /// concurrency). Sampling randomness is pre-drawn serially, per-event
  /// demand accumulates in per-lane counters merged in lane order (integer
  /// counts — exact in any order), and capacity repair resolves per event
  /// through the inverted event→column index, so the arrangement is
  /// bit-identical for every thread count (threads=1 runs the same structure
  /// inline). The LP tier and enumeration read their own knobs
  /// (`structured.num_threads`, `admissible.num_threads`).
  int32_t num_threads = 0;
  /// Optional caller-owned worker pool for the rounding/repair sweeps
  /// (borrowed; must outlive the call). When set, `num_threads` is ignored
  /// and no per-call pool is spawned — repeated re-rounds (warm ticks,
  /// thread-scaling benches) reuse parked workers. Pure performance knob:
  /// results stay bit-identical to the self-spawned and serial paths.
  ThreadPool* workers = nullptr;
};

/// Diagnostics from one LpPacking run.
struct LpPackingStats {
  /// Value of the fractional benchmark-LP solution actually used.
  double lp_objective = 0.0;
  /// Certified upper bound on the LP optimum (Lemma 1: also an upper bound on
  /// the IGEPA optimum, up to the admissible-set cap).
  double lp_upper_bound = 0.0;
  int64_t lp_iterations = 0;
  lp::SolverKind solver_used = lp::SolverKind::kAuto;
  /// True when the structured block-angular solver handled line 1 (then
  /// solver_used is meaningless).
  bool used_structured_dual = false;
  int32_t num_columns = 0;
  /// Users whose sampled set was non-empty (before repair).
  int32_t users_sampled = 0;
  /// Pairs dropped by the capacity repair sweep (lines 4-7).
  int32_t pairs_repaired = 0;
  /// True when some user's admissible-set enumeration hit its cap.
  bool admissible_truncated = false;
};

/// LP-packing (Algorithm 1): solves the benchmark LP (1)-(4), samples one
/// admissible set per user with probability α·x*_{u,S}, repairs event
/// capacity violations with a user sweep, and returns the surviving pairs.
/// Internally enumerates into an AdmissibleCatalog and runs the flat
/// pipeline; results are bit-identical to the legacy nested path.
///
/// The returned arrangement is always feasible (CheckFeasible passes). With
/// α = 1/2 and the exact LP tier, the expected utility is at least OPT/4
/// (Theorem 2); with the approximate LP tier the bound scales by the
/// certified (1 - gap).
Result<Arrangement> LpPacking(const Instance& instance, Rng* rng,
                              const LpPackingOptions& options = {},
                              LpPackingStats* stats = nullptr);

/// LP-packing on a pre-built catalog (lets callers reuse the enumeration
/// across repetitions or inspect it).
Result<Arrangement> LpPackingWithCatalog(const Instance& instance,
                                         const AdmissibleCatalog& catalog,
                                         Rng* rng,
                                         const LpPackingOptions& options = {},
                                         LpPackingStats* stats = nullptr);

/// The fractional benchmark-LP solution of line 1 of Algorithm 1, kept
/// together with the column bookkeeping needed by the rounding step.
/// The LP depends only on the instance — not on the sampling randomness — so
/// experiment harnesses solve it once per instance and re-round many times
/// (this is how the paper's 50-repetition real-dataset protocol stays cheap).
struct FractionalSolution {
  /// Materialized model + column bookkeeping — only filled when the generic
  /// lp:: facade solved line 1 (the structured solver reads the catalog CSR
  /// directly and leaves it empty).
  BenchmarkLp bench;
  lp::LpSolution lp;
  /// True when the structured block-angular solver produced `lp`.
  bool structured = false;
};

/// Line 1 of Algorithm 1 over the catalog: solve the benchmark LP (1)-(4),
/// routing to the structured CSR solver or materializing a model for the
/// generic facade per `options.benchmark_solver`.
Result<FractionalSolution> SolveBenchmarkLpForPacking(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const LpPackingOptions& options = {});

/// Sentinel cutoff meaning "event never rejects" in RoundingState::cutoff.
inline constexpr int32_t kNoRepairCutoff =
    std::numeric_limits<int32_t>::max();

/// The rounding pass's per-user/per-event state, exported by RoundFractional
/// and consumed by the localized delta re-round (DESIGN.md S15). Only defined
/// for RepairOrder::kUserIndex, where a user's sweep rank IS their id:
///   * `sampled_col[u]` — the catalog column user u sampled (-1: none);
///   * `demand[v]` — how many sampled sets contain v;
///   * `cutoff[v]` — the repair rule: pair (v, u) survives iff
///     u < cutoff[v] (kNoRepairCutoff when demand fits capacity).
/// The full arrangement is a pure function of this state
/// (RepairSampledColumns pins that), which is what makes event-local repair
/// after a delta exact rather than heuristic.
struct RoundingState {
  std::vector<int32_t> sampled_col;  // per user
  std::vector<int32_t> demand;       // per event
  std::vector<int32_t> cutoff;       // per event
  /// ids_revision of the catalog the column ids address.
  uint64_t catalog_revision = 0;

  /// Rewrites sampled columns through a compaction remap (old id → new id,
  /// -1 dead) and adopts the new ids revision. Samples already retired via
  /// RetireSamples are -1 and stay -1; a live sample never maps to -1.
  void Remap(const std::vector<int32_t>& column_remap,
             uint64_t new_ids_revision);
};

/// Lines 2-8 of Algorithm 1 over the catalog: sample one admissible set per
/// user with probability α·x*, repair event capacities, emit the surviving
/// pairs. The repair sweep uses the catalog's inverted event→column index to
/// confine per-event bookkeeping to the (typically few) oversubscribed
/// events: users whose sampled set touches no overloaded event are emitted
/// in bulk without capacity checks. Output is identical to the legacy sweep.
///
/// When `state_out` is non-null the pass also exports its RoundingState for
/// later localized re-rounds (requires RepairOrder::kUserIndex).
Result<Arrangement> RoundFractional(const Instance& instance,
                                    const AdmissibleCatalog& catalog,
                                    const FractionalSolution& fractional,
                                    Rng* rng,
                                    const LpPackingOptions& options = {},
                                    LpPackingStats* stats = nullptr,
                                    RoundingState* state_out = nullptr);

/// The canonical repair semantics: given every user's sampled column, emit
/// the arrangement the sequential user-index capacity-repair sweep produces
/// (each event v keeps its first c_v contenders by user id). Both the full
/// rounding pass and the localized delta re-round are pinned to this function
/// by equivalence tests. Serial reference implementation.
Result<Arrangement> RepairSampledColumns(const Instance& instance,
                                         const AdmissibleCatalog& catalog,
                                         const std::vector<int32_t>& sampled_col);

/// Phase 1 of a delta re-round, called BEFORE AdmissibleCatalog::ApplyDelta
/// while the listed users' column ids are still addressable: subtracts their
/// sampled sets from the per-event demand, blanks their samples, and returns
/// the events those sets touched (ascending, deduplicated) — the events whose
/// repair cutoffs must be recomputed.
std::vector<EventId> RetireSamples(const AdmissibleCatalog& catalog,
                                   const std::vector<UserId>& users,
                                   RoundingState* state);

/// Phase 2 (after the catalog delta and the warm LP re-solve): re-samples
/// exactly `resample_users` from the new fractional solution (one RNG draw
/// per listed user, ascending user order), recomputes repair cutoffs only on
/// `touched_events` ∪ the events the new samples hit, and emits the full
/// arrangement. Untouched users keep their previous samples and untouched
/// events keep their previous cutoffs — both provably unchanged, so the
/// result equals RepairSampledColumns on the updated sampled_col vector
/// exactly (pinned by tests). Requires RepairOrder::kUserIndex and a state
/// whose catalog_revision matches the catalog.
Result<Arrangement> RoundFractionalDelta(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const FractionalSolution& fractional,
    const std::vector<UserId>& resample_users,
    const std::vector<EventId>& touched_events, Rng* rng, RoundingState* state,
    const LpPackingOptions& options = {}, LpPackingStats* stats = nullptr);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_LP_PACKING_H_
