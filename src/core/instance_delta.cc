#include "core/instance_delta.h"

#include <algorithm>
#include <string>

namespace igepa {
namespace core {

Status ApplyDelta(Instance* instance, const InstanceDelta& delta) {
  const int32_t nu = instance->num_users();
  const int32_t nv = instance->num_events();
  // Validate the whole tick before mutating anything, so a malformed delta
  // leaves the instance untouched.
  for (const UserUpdate& up : delta.user_updates) {
    if (up.user < 0 || up.user >= nu) {
      return Status::InvalidArgument("delta updates out-of-range user " +
                                     std::to_string(up.user));
    }
    if (up.capacity < 0) {
      return Status::InvalidArgument("delta gives user " +
                                     std::to_string(up.user) +
                                     " negative capacity");
    }
    for (EventId v : up.bids) {
      if (v < 0 || v >= nv) {
        return Status::InvalidArgument(
            "delta bids user " + std::to_string(up.user) +
            " on out-of-range event " + std::to_string(v));
      }
    }
  }
  for (const EventCapacityUpdate& up : delta.event_updates) {
    if (up.event < 0 || up.event >= nv) {
      return Status::InvalidArgument("delta updates out-of-range event " +
                                     std::to_string(up.event));
    }
    if (up.capacity < 0) {
      return Status::InvalidArgument("delta gives event " +
                                     std::to_string(up.event) +
                                     " negative capacity");
    }
  }
  for (const UserUpdate& up : delta.user_updates) {
    IGEPA_RETURN_IF_ERROR(
        instance->UpdateUser(up.user, up.capacity, up.bids));
  }
  for (const EventCapacityUpdate& up : delta.event_updates) {
    IGEPA_RETURN_IF_ERROR(
        instance->UpdateEventCapacity(up.event, up.capacity));
  }
  return Status::OK();
}

std::vector<UserId> TouchedUsers(const InstanceDelta& delta) {
  std::vector<UserId> users;
  users.reserve(delta.user_updates.size());
  for (const UserUpdate& up : delta.user_updates) users.push_back(up.user);
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

std::vector<EventId> TouchedEvents(const InstanceDelta& delta) {
  std::vector<EventId> events;
  events.reserve(delta.event_updates.size());
  for (const EventCapacityUpdate& up : delta.event_updates) {
    events.push_back(up.event);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return events;
}

}  // namespace core
}  // namespace igepa
