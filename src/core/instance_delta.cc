#include "core/instance_delta.h"

#include <algorithm>
#include <string>

namespace igepa {
namespace core {

Status ValidateDelta(int32_t num_events, int32_t num_users,
                     const InstanceDelta& delta) {
  const int32_t nu = num_users;
  const int32_t nv = num_events;
  for (const UserUpdate& up : delta.user_updates) {
    if (up.user < 0 || up.user >= nu) {
      return Status::InvalidArgument("delta updates out-of-range user " +
                                     std::to_string(up.user));
    }
    if (up.capacity < 0) {
      return Status::InvalidArgument("delta gives user " +
                                     std::to_string(up.user) +
                                     " negative capacity");
    }
    for (EventId v : up.bids) {
      if (v < 0 || v >= nv) {
        return Status::InvalidArgument(
            "delta bids user " + std::to_string(up.user) +
            " on out-of-range event " + std::to_string(v));
      }
    }
  }
  for (const EventCapacityUpdate& up : delta.event_updates) {
    if (up.event < 0 || up.event >= nv) {
      return Status::InvalidArgument("delta updates out-of-range event " +
                                     std::to_string(up.event));
    }
    if (up.capacity < 0) {
      return Status::InvalidArgument("delta gives event " +
                                     std::to_string(up.event) +
                                     " negative capacity");
    }
  }
  for (const GraphEdgeUpdate& up : delta.graph_updates) {
    if (up.a < 0 || up.a >= nu || up.b < 0 || up.b >= nu) {
      return Status::InvalidArgument("delta mutates out-of-range edge {" +
                                     std::to_string(up.a) + "," +
                                     std::to_string(up.b) + "}");
    }
    if (up.a == up.b) {
      return Status::InvalidArgument("delta mutates self edge on user " +
                                     std::to_string(up.a));
    }
  }
  for (const InterestUpdate& up : delta.interest_updates) {
    if (up.user < 0 || up.user >= nu || up.event < 0 || up.event >= nv) {
      return Status::InvalidArgument("delta drifts out-of-range pair (" +
                                     std::to_string(up.event) + "," +
                                     std::to_string(up.user) + ")");
    }
    if (!(up.value >= 0.0 && up.value <= 1.0)) {
      return Status::InvalidArgument(
          "delta drifts interest of pair (" + std::to_string(up.event) + "," +
          std::to_string(up.user) + ") to " + std::to_string(up.value) +
          " outside [0,1]");
    }
  }
  return Status::OK();
}

Status ApplyDelta(Instance* instance, const InstanceDelta& delta) {
  // Validate the whole tick before mutating anything, so a malformed delta
  // leaves the instance untouched.
  IGEPA_RETURN_IF_ERROR(
      ValidateDelta(instance->num_events(), instance->num_users(), delta));
  for (const UserUpdate& up : delta.user_updates) {
    IGEPA_RETURN_IF_ERROR(
        instance->UpdateUser(up.user, up.capacity, up.bids));
  }
  for (const EventCapacityUpdate& up : delta.event_updates) {
    IGEPA_RETURN_IF_ERROR(
        instance->UpdateEventCapacity(up.event, up.capacity));
  }
  for (const GraphEdgeUpdate& up : delta.graph_updates) {
    IGEPA_RETURN_IF_ERROR(instance->ApplyGraphEdge(up.a, up.b, up.add));
  }
  for (const InterestUpdate& up : delta.interest_updates) {
    IGEPA_RETURN_IF_ERROR(
        instance->UpdateInterest(up.event, up.user, up.value));
  }
  return Status::OK();
}

std::vector<UserId> TouchedUsers(const InstanceDelta& delta) {
  std::vector<UserId> users;
  users.reserve(delta.user_updates.size());
  for (const UserUpdate& up : delta.user_updates) users.push_back(up.user);
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

std::vector<UserId> WeightTouchedUsers(const InstanceDelta& delta) {
  std::vector<UserId> users;
  users.reserve(delta.graph_updates.size() * 2 +
                delta.interest_updates.size());
  for (const GraphEdgeUpdate& up : delta.graph_updates) {
    users.push_back(up.a);
    users.push_back(up.b);
  }
  for (const InterestUpdate& up : delta.interest_updates) {
    users.push_back(up.user);
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

std::vector<UserId> AllTouchedUsers(const InstanceDelta& delta) {
  std::vector<UserId> users = TouchedUsers(delta);
  const std::vector<UserId> weight = WeightTouchedUsers(delta);
  users.insert(users.end(), weight.begin(), weight.end());
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

std::vector<UserId> WarmTouchedUsers(const Instance& instance,
                                     const InstanceDelta& delta) {
  std::vector<UserId> users = TouchedUsers(delta);
  for (const GraphEdgeUpdate& up : delta.graph_updates) {
    users.push_back(up.a);
    users.push_back(up.b);
  }
  for (const InterestUpdate& up : delta.interest_updates) {
    if (up.user >= 0 && up.user < instance.num_users() &&
        instance.HasBid(up.user, up.event)) {
      users.push_back(up.user);
    }
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

std::vector<EventId> TouchedEvents(const InstanceDelta& delta) {
  std::vector<EventId> events;
  events.reserve(delta.event_updates.size());
  for (const EventCapacityUpdate& up : delta.event_updates) {
    events.push_back(up.event);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return events;
}

}  // namespace core
}  // namespace igepa
