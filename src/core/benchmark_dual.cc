#include "core/benchmark_dual.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/cache_line.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace igepa {
namespace core {

namespace {

/// Users per oracle shard. The shard partition is a function of |U| only —
/// never of the thread count — so the shard-order merge below reduces in the
/// same order no matter how many lanes executed the shards (DESIGN.md §5,
/// S14).
constexpr int32_t kUserShardSize = 64;

/// Below this many users the pool spawn outweighs the oracle sweep.
constexpr int32_t kMinParallelUsers = 128;

}  // namespace

void DualWarmStart::Remap(const std::vector<int32_t>& column_remap,
                          uint64_t new_ids_revision) {
  for (size_t u = 0; u < choice.size(); ++u) {
    const int32_t j = choice[u];
    if (j < 0) continue;
    choice[u] = (static_cast<size_t>(j) < column_remap.size())
                    ? column_remap[static_cast<size_t>(j)]
                    : -1;
  }
  catalog_revision = new_ids_revision;
}

Result<lp::LpSolution> SolveBenchmarkLpStructured(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const StructuredDualOptions& options, DualWarmStart* warm_out) {
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  const int32_t cols = catalog.num_columns();
  if (catalog.num_users() != nu) {
    return Status::InvalidArgument("catalog size mismatch");
  }

  // Hot-loop views straight into the catalog CSR — no per-solve copies.
  // Column-indexed vectors span every allocated id (tombstones included);
  // every loop below walks live per-user ranges in user-major order, so dead
  // columns are never visited and the solve is bit-identical on dirty
  // (delta-mutated) and canonical catalogs alike.
  const std::vector<double>& weight = catalog.weights();
  const std::vector<UserId>& col_user = catalog.col_users();
  const std::vector<int64_t>& col_begin = catalog.col_begin();
  const EventId* pool = catalog.pool().data();

  std::vector<double> capacity(static_cast<size_t>(nv), 0.0);
  for (EventId v = 0; v < nv; ++v) {
    capacity[static_cast<size_t>(v)] =
        static_cast<double>(instance.event_capacity(v));
  }

  double wmax = 0.0;
  for (UserId u = 0; u < nu; ++u) {
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      wmax = std::max(wmax, weight[static_cast<size_t>(j)]);
    }
  }
  lp::LpSolution sol;
  sol.x.assign(static_cast<size_t>(cols), 0.0);
  sol.duals.assign(static_cast<size_t>(nu) + static_cast<size_t>(nv), 0.0);
  if (catalog.num_live_columns() == 0 || wmax <= 0.0) {
    sol.status = lp::SolveStatus::kOptimal;
    if (warm_out != nullptr) {
      warm_out->mu.assign(static_cast<size_t>(nv), 0.0);
      warm_out->choice.assign(static_cast<size_t>(nu), -1);
      warm_out->choice_value.assign(static_cast<size_t>(nu), 0.0);
      warm_out->stale.clear();
      warm_out->catalog_revision = catalog.ids_revision();
    }
    return sol;
  }

  // Live columns sorted by descending weight for the greedy polish pass.
  // Ties break by (owner, id): within a user both ids sit in one contiguous
  // range, so this order is invariant under delta renumbering — a dirty
  // catalog polishes in exactly the order its compacted twin would.
  std::vector<int32_t> by_weight;
  by_weight.reserve(static_cast<size_t>(catalog.num_live_columns()));
  for (UserId u = 0; u < nu; ++u) {
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      by_weight.push_back(j);
    }
  }
  std::sort(by_weight.begin(), by_weight.end(), [&](int32_t a, int32_t b) {
    if (weight[static_cast<size_t>(a)] != weight[static_cast<size_t>(b)]) {
      return weight[static_cast<size_t>(a)] > weight[static_cast<size_t>(b)];
    }
    const UserId ua = col_user[static_cast<size_t>(a)];
    const UserId ub = col_user[static_cast<size_t>(b)];
    if (ua != ub) return ua < ub;
    return a < b;
  });
  const int32_t live_cols = static_cast<int32_t>(by_weight.size());

  // Warm start: μ seeds the trajectory; cached per-user choices are honored
  // at the first iteration only (where μ still equals the warm μ) and only
  // for users whose column ranges did not change — the "re-shard only the
  // touched users" half of S15.
  const DualWarmStart* warm = options.warm;
  const bool warm_mu_ok =
      warm != nullptr && static_cast<int32_t>(warm->mu.size()) == nv;
  const bool warm_choices_ok =
      warm != nullptr && warm_mu_ok &&
      warm->catalog_revision == catalog.ids_revision() &&
      static_cast<int32_t>(warm->choice.size()) == nu &&
      static_cast<int32_t>(warm->choice_value.size()) == nu &&
      (warm->stale.empty() ||
       static_cast<int32_t>(warm->stale.size()) == nu);

  std::vector<double> mu(static_cast<size_t>(nv), 0.0);
  if (warm_mu_ok) {
    for (EventId v = 0; v < nv; ++v) {
      mu[static_cast<size_t>(v)] = std::max(0.0, warm->mu[static_cast<size_t>(v)]);
    }
  }
  std::vector<double> best_mu = mu;
  std::vector<double> usage(static_cast<size_t>(nv), 0.0);
  std::vector<double> ext_usage(static_cast<size_t>(nv), 0.0);
  std::vector<int64_t> chosen_count(static_cast<size_t>(cols), 0);
  std::vector<int32_t> current_choice(static_cast<size_t>(nu), -1);
  std::vector<double> current_value(static_cast<size_t>(nu), 0.0);
  std::vector<int32_t> best_choice(static_cast<size_t>(nu), -1);
  std::vector<double> best_value(static_cast<size_t>(nu), 0.0);
  std::vector<double> xtry(static_cast<size_t>(cols), 0.0);
  std::vector<double> factor(static_cast<size_t>(cols), 1.0);
  std::vector<double> user_mass(static_cast<size_t>(nu), 0.0);
  std::vector<double> best_x(static_cast<size_t>(cols), 0.0);
  double best_primal = 0.0;
  double best_ub = lp::kInf;
  int64_t avg_started_at = 1;
  int64_t avg_count = 0;

  // Builds a feasible primal from the averaged oracle choices: scale columns
  // through overloaded events (found via the inverted event→column index),
  // then greedily refill leftover event capacity and user mass by descending
  // weight. Returns its objective value.
  auto extract_primal = [&]() -> double {
    const double inv =
        1.0 / static_cast<double>(std::max<int64_t>(1, avg_count));
    std::fill(ext_usage.begin(), ext_usage.end(), 0.0);
    for (UserId u = 0; u < nu; ++u) {
      for (int32_t j = catalog.user_columns_begin(u);
           j < catalog.user_columns_end(u); ++j) {
        const double xj =
            static_cast<double>(chosen_count[static_cast<size_t>(j)]) * inv;
        xtry[static_cast<size_t>(j)] = xj;
        if (xj <= 0.0) continue;
        for (int64_t e = col_begin[static_cast<size_t>(j)];
             e < col_begin[static_cast<size_t>(j) + 1]; ++e) {
          ext_usage[static_cast<size_t>(pool[e])] += xj;
        }
      }
    }
    // Scale down through overloaded events: walk each overloaded event's
    // column list instead of re-scanning every column's events.
    std::fill(factor.begin(), factor.end(), 1.0);
    bool any_overload = false;
    for (EventId v = 0; v < nv; ++v) {
      const double cap = capacity[static_cast<size_t>(v)];
      const double used = ext_usage[static_cast<size_t>(v)];
      if (used <= cap) continue;
      any_overload = true;
      const double f = cap <= 0.0 ? 0.0 : cap / used;
      catalog.ForEachColumnOfEvent(v, [&](int32_t j) {
        if (xtry[static_cast<size_t>(j)] <= 0.0) return;
        factor[static_cast<size_t>(j)] =
            std::min(factor[static_cast<size_t>(j)], f);
      });
    }
    if (any_overload) {
      for (int32_t jj = 0; jj < live_cols; ++jj) {
        const int32_t j = by_weight[static_cast<size_t>(jj)];
        if (xtry[static_cast<size_t>(j)] > 0.0) {
          xtry[static_cast<size_t>(j)] *= factor[static_cast<size_t>(j)];
        }
      }
    }
    // Exact activities and user masses of the scaled point.
    std::fill(ext_usage.begin(), ext_usage.end(), 0.0);
    std::fill(user_mass.begin(), user_mass.end(), 0.0);
    for (UserId u = 0; u < nu; ++u) {
      for (int32_t j = catalog.user_columns_begin(u);
           j < catalog.user_columns_end(u); ++j) {
        const double xj = xtry[static_cast<size_t>(j)];
        if (xj <= 0.0) continue;
        user_mass[static_cast<size_t>(u)] += xj;
        for (int64_t e = col_begin[static_cast<size_t>(j)];
             e < col_begin[static_cast<size_t>(j) + 1]; ++e) {
          ext_usage[static_cast<size_t>(pool[e])] += xj;
        }
      }
    }
    // Greedy polish: refill by descending weight, respecting both the user's
    // residual mass (constraint (2)) and the events' residual capacity (3).
    double value = 0.0;
    for (int32_t jj = 0; jj < live_cols; ++jj) {
      const int32_t j = by_weight[static_cast<size_t>(jj)];
      double& xj = xtry[static_cast<size_t>(j)];
      const int32_t u = col_user[static_cast<size_t>(j)];
      double room = std::min(1.0 - xj, 1.0 - user_mass[static_cast<size_t>(u)]);
      if (room > 1e-12) {
        for (int64_t e = col_begin[static_cast<size_t>(j)];
             e < col_begin[static_cast<size_t>(j) + 1]; ++e) {
          const EventId v = pool[e];
          room = std::min(room, capacity[static_cast<size_t>(v)] -
                                    ext_usage[static_cast<size_t>(v)]);
          if (room <= 1e-12) break;
        }
        if (room > 1e-12) {
          xj += room;
          user_mass[static_cast<size_t>(u)] += room;
          for (int64_t e = col_begin[static_cast<size_t>(j)];
               e < col_begin[static_cast<size_t>(j) + 1]; ++e) {
            ext_usage[static_cast<size_t>(pool[e])] += room;
          }
        }
      }
      value += weight[static_cast<size_t>(j)] * xj;
    }
    return value;
  };

  // ---- Shard-parallel oracle plumbing. -------------------------------------
  // Users are partitioned into fixed-size shards; each shard accumulates its
  // own usage vector and Lagrangian partial, merged serially in shard order
  // after the join. Shard outputs are otherwise disjoint (current_choice is
  // per-user; every chosen_count column belongs to exactly one user), so any
  // lane schedule computes the same bits, and threads=1 runs the identical
  // shard structure inline.
  const int32_t num_shards = (nu + kUserShardSize - 1) / kUserShardSize;
  ThreadPool* workers = options.workers;
  std::unique_ptr<ThreadPool> owned_workers;
  if (workers == nullptr && nu >= kMinParallelUsers &&
      ThreadPool::ResolveThreadCount(options.num_threads, num_shards) > 1) {
    owned_workers = std::make_unique<ThreadPool>(
        ThreadPool::ResolveThreadCount(options.num_threads, num_shards));
    workers = owned_workers.get();
  }
  const int32_t num_lanes = workers ? workers->num_threads() : 1;
  // Scratch sizing: the Lagrangian partials are order-sensitive doubles, so
  // they get one slot per *shard* (fixed partition, merged in shard order) —
  // cache-line padded, since adjacent shards usually run on different lanes
  // and eight plain doubles per line would false-share on every write. The
  // usage accumulators are integer-valued counts — exact in any order — so
  // one buffer per *lane* suffices, keeping scratch memory and the
  // per-iteration zero+merge at O(threads·|V|), not O(|U|/64·|V|); lanes are
  // strided to whole cache lines so no two lanes touch the same line.
  std::vector<util::CachePadded<double>> shard_lagrangian(
      static_cast<size_t>(num_shards));
  const size_t usage_stride =
      util::PaddedStride(static_cast<size_t>(nv), sizeof(double));
  std::vector<double> lane_usage(
      static_cast<size_t>(num_lanes) * usage_stride, 0.0);
  // Per-lane reduced-cost scratch for the vectorized oracle scan: the
  // per-column μ-sums of one user's block, computed in batch by
  // util::simd::SumColumnLanes before the scalar argmax walk.
  int32_t max_user_cols = 0;
  for (UserId u = 0; u < nu; ++u) {
    max_user_cols = std::max(
        max_user_cols, catalog.user_columns_end(u) - catalog.user_columns_begin(u));
  }
  const size_t musum_stride = util::PaddedStride(
      static_cast<size_t>(std::max(max_user_cols, 1)), sizeof(double));
  std::vector<double> lane_musum(
      static_cast<size_t>(num_lanes) * musum_stride, 0.0);

  const double step0 = options.step_scale * wmax;
  int64_t t = 1;
  std::vector<double> grad(static_cast<size_t>(nv), 0.0);
  for (; t <= options.max_iterations; ++t) {
    // ---- Oracle: best admissible set per user under reduced weights. ------
    // At t=1 of a warm restart, users whose column ranges are unchanged reuse
    // the cached argmax from the previous solve (μ is still the warm μ, so
    // the cached value IS the scan result, bit for bit); only stale users
    // rescan. The ownership check below additionally rejects any cached
    // column id that no longer sits in the user's current range (delta
    // re-enumeration always moves the range), so a forgotten stale flag on a
    // user with a cached set degrades to a rescan; a cached "no set" (-1)
    // has nothing to range-check, which is why the stale mask is part of the
    // warm-start contract rather than a hint.
    const bool reuse_choices = warm_choices_ok && t == 1;
    const auto oracle_chunk = [&](int32_t lane, int64_t sb, int64_t se) {
      double* lu = lane_usage.data() + static_cast<size_t>(lane) * usage_stride;
      double* musum =
          lane_musum.data() + static_cast<size_t>(lane) * musum_stride;
      for (int64_t s = sb; s < se; ++s) {
        const UserId shard_begin = static_cast<UserId>(s) * kUserShardSize;
        const UserId shard_end =
            std::min<UserId>(nu, shard_begin + kUserShardSize);
        double lagr = 0.0;
        for (UserId u = shard_begin; u < shard_end; ++u) {
          const int32_t begin = catalog.user_columns_begin(u);
          const int32_t end = catalog.user_columns_end(u);
          double best = 0.0;
          int32_t best_col = -1;
          bool reused = false;
          if (reuse_choices &&
              (warm->stale.empty() ||
               warm->stale[static_cast<size_t>(u)] == 0)) {
            const int32_t cached = warm->choice[static_cast<size_t>(u)];
            if (cached < 0 || (cached >= begin && cached < end)) {
              best_col = cached;
              best = warm->choice_value[static_cast<size_t>(u)];
              reused = true;
            }
          }
          if (!reused && begin < end) {
            // Batched reduced costs: the per-column Σμ over each span is one
            // SumColumnLanes call (AVX2 when available — μ is already a
            // dense event-indexed lane, no gather setup needed), then a
            // scalar argmax walk. The reduction order w − (μ₁+…+μₖ) is fixed
            // and schedule-independent, so every thread count, warm/cold
            // restart and dirty/canonical catalog computes the same bits.
            const int32_t count = end - begin;
            util::simd::SumColumnLanes(mu.data(), pool,
                                       col_begin.data() + begin, count, musum);
            for (int32_t k = 0; k < count; ++k) {
              const double reduced =
                  weight[static_cast<size_t>(begin + k)] - musum[k];
              if (reduced > best) {
                best = reduced;
                best_col = begin + k;
              }
            }
          }
          current_choice[static_cast<size_t>(u)] = best_col;
          current_value[static_cast<size_t>(u)] = best;
          if (best_col >= 0) {
            lagr += best;
            ++chosen_count[static_cast<size_t>(best_col)];
            for (int64_t e = col_begin[static_cast<size_t>(best_col)];
                 e < col_begin[static_cast<size_t>(best_col) + 1]; ++e) {
              lu[pool[e]] += 1.0;
            }
          }
        }
        shard_lagrangian[static_cast<size_t>(s)].value = lagr;
      }
    };
    std::fill(lane_usage.begin(), lane_usage.end(), 0.0);
    if (workers) {
      workers->ParallelFor(0, num_shards, /*grain=*/1, oracle_chunk);
    } else {
      oracle_chunk(0, 0, num_shards);
    }
    // Deterministic merge: event duals' base term, then the Lagrangian shard
    // partials in fixed shard order; usage sums are integer-valued doubles
    // (counts of 1.0), hence exact in any lane order and under any schedule.
    double lagrangian = 0.0;
    for (EventId v = 0; v < nv; ++v) {
      lagrangian += capacity[static_cast<size_t>(v)] * mu[static_cast<size_t>(v)];
    }
    for (int32_t s = 0; s < num_shards; ++s) {
      lagrangian += shard_lagrangian[static_cast<size_t>(s)].value;
    }
    std::fill(usage.begin(), usage.end(), 0.0);
    for (int32_t lane = 0; lane < num_lanes; ++lane) {
      const double* lu =
          lane_usage.data() + static_cast<size_t>(lane) * usage_stride;
      for (EventId v = 0; v < nv; ++v) usage[static_cast<size_t>(v)] += lu[v];
    }
    ++avg_count;
    if (lagrangian < best_ub) {
      best_ub = lagrangian;
      best_mu = mu;
      best_choice = current_choice;
      best_value = current_value;
    }

    // ---- Periodic primal extraction & certified-gap check. ----------------
    // A warm start front-loads one extra check right after the first oracle
    // sweep: with a near-optimal μ the gap usually certifies immediately, so
    // a small-delta re-solve costs one sweep over the stale users plus one
    // primal extraction instead of `check_every` full iterations.
    if (t % options.check_every == 0 || t == options.max_iterations ||
        (warm_mu_ok && t == 1)) {
      const double value = extract_primal();
      if (value > best_primal) {
        best_primal = value;
        best_x = xtry;
      }
      const double gap =
          (best_ub - best_primal) / std::max(1.0, std::abs(best_ub));
      if (gap <= options.target_gap) break;
    }

    // ---- Suffix averaging with doubling restarts. --------------------------
    if (t + 1 >= 2 * avg_started_at) {
      std::fill(chosen_count.begin(), chosen_count.end(), 0);
      avg_count = 0;
      avg_started_at = t + 1;
    }

    // ---- Projected subgradient step on μ. ----------------------------------
    double gnorm2 = 0.0;
    for (EventId v = 0; v < nv; ++v) {
      const double g =
          capacity[static_cast<size_t>(v)] - usage[static_cast<size_t>(v)];
      grad[static_cast<size_t>(v)] = g;
      gnorm2 += g * g;
    }
    if (gnorm2 <= 1e-18) {
      // Every event is exactly at capacity under the current oracle choice:
      // that choice is primal-feasible with value Σ_u w(S*_u) = L(μ) (the
      // complementary-slackness identity), hence OPTIMAL. Replace the
      // averaging window with this single iterate and extract it.
      std::fill(chosen_count.begin(), chosen_count.end(), 0);
      for (UserId u = 0; u < nu; ++u) {
        const int32_t j = current_choice[static_cast<size_t>(u)];
        if (j >= 0) chosen_count[static_cast<size_t>(j)] = 1;
      }
      avg_count = 1;
      const double value = extract_primal();
      if (value > best_primal) {
        best_primal = value;
        best_x = xtry;
      }
      break;
    }
    const double step = step0 / std::sqrt(static_cast<double>(t) * gnorm2);
    for (EventId v = 0; v < nv; ++v) {
      mu[static_cast<size_t>(v)] = std::max(
          0.0, mu[static_cast<size_t>(v)] - step * grad[static_cast<size_t>(v)]);
    }
  }

  sol.x = best_x;
  sol.objective = best_primal;
  sol.upper_bound = best_ub;
  sol.iterations = std::min<int64_t>(t, options.max_iterations);
  // Duals: μ on event rows; π_u (the oracle value at best μ) on user rows —
  // tracked alongside best_ub, so no extra oracle sweep is needed here.
  for (UserId u = 0; u < nu; ++u) {
    sol.duals[static_cast<size_t>(u)] = best_value[static_cast<size_t>(u)];
  }
  for (EventId v = 0; v < nv; ++v) {
    sol.duals[static_cast<size_t>(nu) + static_cast<size_t>(v)] =
        best_mu[static_cast<size_t>(v)];
  }
  if (warm_out != nullptr) {
    warm_out->mu = best_mu;
    warm_out->choice = std::move(best_choice);
    warm_out->choice_value = std::move(best_value);
    warm_out->stale.clear();
    warm_out->catalog_revision = catalog.ids_revision();
  }
  const double gap = sol.RelativeGap();
  sol.status = gap <= options.target_gap ? lp::SolveStatus::kApproximate
                                         : lp::SolveStatus::kIterationLimit;
  return sol;
}

}  // namespace core
}  // namespace igepa
