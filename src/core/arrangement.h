#ifndef IGEPA_CORE_ARRANGEMENT_H_
#define IGEPA_CORE_ARRANGEMENT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/status.h"

namespace igepa {
namespace core {

/// Decomposition of an arrangement's utility into its two terms
/// (Definition 7): Utility = β·interest_total + (1-β)·degree_total.
struct UtilityBreakdown {
  double total = 0.0;
  double interest_total = 0.0;  // Σ SI(l_v, l_u), unweighted
  double degree_total = 0.0;    // Σ D(G, u), unweighted
};

/// An event-participant arrangement M ⊆ V × U (Definition 4), stored as a
/// pair list with per-user and per-event indexes built on demand.
class Arrangement {
 public:
  Arrangement() = default;

  /// Creates an arrangement sized for the instance's id ranges.
  Arrangement(int32_t num_events, int32_t num_users);

  int32_t num_events() const { return num_events_; }
  int32_t num_users() const { return num_users_; }

  /// Adds the pair (v, u). Duplicate pairs are rejected with AlreadyExists;
  /// out-of-range ids with InvalidArgument. Feasibility against an instance
  /// is NOT checked here — use CheckFeasible.
  Status Add(EventId v, UserId u);

  /// Removes the pair (v, u); NotFound if absent.
  Status Remove(EventId v, UserId u);

  bool Contains(EventId v, UserId u) const;

  /// Number of pairs |M|.
  int64_t size() const { return static_cast<int64_t>(pairs_.size()); }
  bool empty() const { return pairs_.empty(); }

  /// All pairs in insertion order.
  const std::vector<std::pair<EventId, UserId>>& pairs() const {
    return pairs_;
  }

  /// Events assigned to user u (sorted).
  const std::vector<EventId>& EventsOf(UserId u) const {
    return by_user_[static_cast<size_t>(u)];
  }

  /// Users assigned to event v (sorted).
  const std::vector<UserId>& UsersOf(EventId v) const {
    return by_event_[static_cast<size_t>(v)];
  }

  /// Utility(M) per Definition 7, as the active kernel's PAIR utility
  /// Σ_{(v,u)∈M} PairWeight(v, u). Identical to KernelUtility for
  /// pair-decomposable kernels (all defaults).
  double Utility(const Instance& instance) const;

  /// The active kernel's SET objective Σ_u w(u, M(u)) — each user's assigned
  /// set scored through UtilityKernel::ScoreColumns, so non-pair-decomposable
  /// kernels (cohesion) report the value the LP actually optimized. Equals
  /// Utility (up to summation-order rounding) under pair-decomposable
  /// kernels.
  double KernelUtility(const Instance& instance) const;

  /// Utility with the interest/degree split.
  UtilityBreakdown Breakdown(const Instance& instance) const;

  /// Verifies the three feasibility constraints of Definition 4 — bid,
  /// capacity (both sides) and conflict — plus id-range/duplicate sanity.
  /// Returns OK or a FailedPrecondition naming the first violation.
  Status CheckFeasible(const Instance& instance) const;

 private:
  int32_t num_events_ = 0;
  int32_t num_users_ = 0;
  std::vector<std::pair<EventId, UserId>> pairs_;
  std::vector<std::vector<EventId>> by_user_;
  std::vector<std::vector<UserId>> by_event_;
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_ARRANGEMENT_H_
