#ifndef IGEPA_CORE_ADMISSIBLE_CATALOG_H_
#define IGEPA_CORE_ADMISSIBLE_CATALOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/catalog_lanes.h"
#include "core/instance.h"
#include "core/instance_delta.h"
#include "core/types.h"
#include "util/result.h"

namespace igepa {

class ThreadPool;

namespace core {

/// Options for admissible-set enumeration.
struct AdmissibleOptions {
  /// Cap on |A_u| per user. The paper argues |A_u| stays reasonable because
  /// users bid few events; the cap guards adversarial inputs. When the cap
  /// binds, enumeration prioritizes sets containing high-weight events (bids
  /// are explored in descending kernel pair-weight order, include-branch
  /// first), so the dropped sets are the least valuable ones.
  int32_t max_sets_per_user = 4096;
  /// Worker threads for AdmissibleCatalog::Build (users are independent, so
  /// enumeration parallelizes by contiguous user chunks; the result is
  /// deterministic for any thread count). 0 = hardware concurrency.
  int32_t num_threads = 0;
};

/// One user's admissible sets in nested form — the exchange type of
/// AdmissibleCatalog::FromSets for callers (tests, external enumerators)
/// that produce sets outside the catalog's own arena enumeration.
struct EnumeratedUserSets {
  std::vector<std::vector<EventId>> sets;
  bool truncated = false;
};

/// Options for AdmissibleCatalog::ApplyDelta.
struct CatalogDeltaOptions {
  /// Enumeration knobs for the re-enumerated users (cap, threads ignored —
  /// delta re-enumeration is serial; deltas are small by assumption).
  AdmissibleOptions admissible;
  /// Compact when tombstoned columns exceed this fraction of all columns…
  double compact_tombstone_fraction = 0.25;
  /// …and at least this many columns are dead (avoids thrashing on tiny
  /// catalogs where a single user update crosses the fraction).
  int32_t compact_min_dead_columns = 256;
};

/// What one ApplyDelta call did to the catalog.
struct CatalogDeltaResult {
  /// Users whose column ranges were re-enumerated (ascending, deduplicated):
  /// the registration half of the delta.
  std::vector<UserId> touched_users;
  /// Users whose columns were re-scored through the kernel without
  /// re-enumeration (ascending, deduplicated): the weight half — graph-edge
  /// endpoints and interest-drift users, minus any user already
  /// re-enumerated. touched_users ∪ rescored_users is what a warm dual
  /// restart must rescan.
  std::vector<UserId> rescored_users;
  int32_t columns_tombstoned = 0;
  int32_t columns_appended = 0;
  /// Live columns whose weight slot was rewritten by the kernel re-score
  /// path (excludes appended columns, which are scored at append time). A
  /// graph-edge update re-scores every column of both endpoints; an
  /// interest-drift update re-scores only the user's columns containing the
  /// drifted event.
  int32_t columns_rescored = 0;
  /// True when tombstone density crossed the threshold and the catalog
  /// compacted itself; live column ids were renumbered per `column_remap`.
  bool compacted = false;
  /// Filled iff `compacted`: old column id → new column id, or -1 for
  /// tombstoned columns. Callers holding column ids (warm starts, rounding
  /// state) remap through this.
  std::vector<int32_t> column_remap;
};

/// Flat CSR catalog of every admissible set (LP column) of an instance — the
/// shared substrate of the whole Algorithm-1 pipeline (enumeration →
/// benchmark LP → rounding → repair → post-processing).
///
/// Every enumerated set lives as one contiguous span inside a single EventId
/// pool — three flat arrays plus per-user offset ranges instead of nested
/// per-user vectors. Consumers operate on views:
///
///   * column j (a global id over all users) covers events
///     `set(j)` = pool[col_begin[j], col_begin[j+1]), sorted ascending;
///   * user u owns the contiguous column range
///     [user_columns_begin(u), user_columns_end(u)), in the same order the
///     legacy enumerator emitted its sets;
///   * `weight(j)` is the precomputed LP objective coefficient w(u, S),
///     scored by the instance's UtilityKernel over the ascending-sorted span
///     at build/delta time;
///   * `ForEachColumnOfEvent(v, fn)` is the inverted event→column index:
///     every LIVE column whose set contains v, ascending by column id. The
///     capacity repair sweep and the structured dual oracle both need this
///     reverse view.
///
/// Columns double as LP columns of the benchmark LP (1)-(4): the catalog IS
/// the constraint matrix in block-CSR form (one +1 in the owner's user row,
/// +1 in each event row of the span), so the structured solver consumes it
/// directly with no materialization step.
///
/// ## Delta maintenance (DESIGN.md S15)
///
/// `ApplyDelta` keeps the catalog in sync with an instance mutated by an
/// `InstanceDelta` without re-enumerating untouched users: a touched user's
/// current columns are tombstoned in place (a per-column dead bit; the arena
/// keeps their bytes) and the user's new admissible sets are appended at the
/// end of the arena, so every surviving column keeps its id. The inverted
/// event→column index is patched in place: appended columns go to per-event
/// overflow lists and tombstones are filtered by the dead bit on read. When
/// tombstone density crosses the configured threshold the catalog compacts —
/// live columns are rewritten in user-major order, which reproduces
/// `Build(mutated_instance)` bit for bit — and reports an old→new id remap.
///
/// A catalog with tombstones or overflow entries is *dirty*
/// (`canonical() == false`). Per-user column ranges stay contiguous and
/// live-only in either state, so every consumer that walks user ranges and
/// the ForEach inverted index (structured dual, rounding/repair, baselines,
/// exact solver) works unchanged on dirty catalogs; only the materialized
/// facade LP requires a canonical catalog (it assumes model column k ==
/// catalog column k).
class AdmissibleCatalog {
 public:
  /// An empty catalog (zero users, events and columns); assign a built one.
  AdmissibleCatalog() = default;

  /// Enumerates every user's admissible sets straight into the arena.
  /// Per-user enumeration is independent, so `options.num_threads` > 1 (or
  /// 0 = hardware concurrency) splits users into contiguous chunks enumerated
  /// in parallel; the result is deterministic and identical for every thread
  /// count.
  static AdmissibleCatalog Build(const Instance& instance,
                                 const AdmissibleOptions& options = {});

  /// Builds a catalog from externally enumerated per-user sets (one entry
  /// per user, sets in the order they should become columns). Weights are
  /// scored through the instance's kernel exactly like Build — the
  /// equivalence tests feed a reference enumerator through here.
  static AdmissibleCatalog FromSets(
      const Instance& instance,
      const std::vector<EnumeratedUserSets>& admissible);

  /// Re-enumerates exactly the users the delta touches against the
  /// already-mutated `instance` (call core::ApplyDelta on the instance
  /// first): tombstones their current columns, appends their new ones, and
  /// patches the inverted index in place. Event-capacity updates are free —
  /// admissibility does not depend on c_v. Weight-only updates (graph
  /// edges, interest drift) never re-enumerate: the touched columns are
  /// re-scored in place through the instance's kernel (spans, ids and the
  /// inverted index are untouched, so the catalog stays canonical if it
  /// was). Compacts automatically per `options` and reports what happened.
  /// O(Σ_{touched u} enumeration(u) + Σ_{rescored u} score(u)) plus
  /// O(catalog) only when compaction triggers.
  Result<CatalogDeltaResult> ApplyDelta(const Instance& instance,
                                        const InstanceDelta& delta,
                                        const CatalogDeltaOptions& options = {});

  /// Drops tombstoned columns and rewrites the arena in user-major order —
  /// bit-identical to `Build` on the equivalent instance. Returns the old→new
  /// column id remap (-1 for dead columns) and bumps `ids_revision`.
  std::vector<int32_t> Compact();

  /// Re-scores every live column through the instance's *current* kernel —
  /// the objective-swap entry point (set_kernel on the instance, then
  /// Rescore on its catalogs): structure is reused wholesale, only the
  /// weight array is rewritten. Returns the number of columns re-scored and
  /// bumps `weight_revision`. Users re-score independently (disjoint weight
  /// slots), so `num_threads` > 1 shards them across a pool with bit-identical
  /// results; the default stays serial. Note: enumeration *emit order* under
  /// a cap depends on the kernel's bid ordering, so a truncated catalog
  /// re-scored for kernel B can differ from Build under B; uncapped catalogs
  /// are identical because admissibility is kernel-independent.
  int32_t Rescore(const Instance& instance, int32_t num_threads = 1);

  int32_t num_users() const {
    return static_cast<int32_t>(user_range_.size() / 2);
  }
  int32_t num_events() const {
    return static_cast<int32_t>(event_begin_.size()) - 1;
  }
  /// Total column ids ever allocated, including tombstones — the size every
  /// column-indexed vector (LP x, weights) must have.
  int32_t num_columns() const { return static_cast<int32_t>(weight_.size()); }
  int32_t num_dead_columns() const { return dead_columns_; }
  int32_t num_live_columns() const { return num_columns() - dead_columns_; }
  /// Total (user, event) incidences Σ_j |S_j| over all column ids (dead
  /// included) — the arena footprint.
  int64_t num_pairs() const { return static_cast<int64_t>(pool_.size()); }
  int64_t num_live_pairs() const {
    return static_cast<int64_t>(pool_.size()) - dead_pairs_;
  }

  /// True when the catalog has no tombstones or overflow entries — i.e. the
  /// flat arrays are exactly what Build on the current instance produces.
  bool canonical() const { return canonical_; }
  /// Bumped every time live column ids are invalidated (only Compact does).
  /// Holders of column ids (DualWarmStart, RoundingState) compare this to
  /// decide whether their ids are still addressable.
  uint64_t ids_revision() const { return ids_revision_; }
  /// Bumped every time any column weight changes after the initial build
  /// (delta re-enumeration/re-score, Rescore). Weight caches (per-user
  /// argmax, snapshots) compare this to detect stale scores; tests assert
  /// weight-only deltas bump it without moving `ids_revision`.
  uint64_t weight_revision() const { return weight_revision_; }

  /// The events of column j, ascending. Valid for dead columns too (the
  /// arena keeps tombstoned bytes until compaction) — callers retiring stale
  /// samples rely on that.
  std::span<const EventId> set(int32_t j) const {
    const size_t b = static_cast<size_t>(col_begin_[static_cast<size_t>(j)]);
    const size_t e =
        static_cast<size_t>(col_begin_[static_cast<size_t>(j) + 1]);
    return {pool_.data() + b, e - b};
  }
  /// Precomputed w(u, S) of column j.
  double weight(int32_t j) const { return weight_[static_cast<size_t>(j)]; }
  /// The user owning column j.
  UserId user_of(int32_t j) const { return col_user_[static_cast<size_t>(j)]; }
  /// False once column j has been tombstoned by ApplyDelta.
  bool live(int32_t j) const { return dead_[static_cast<size_t>(j)] == 0; }

  /// Column range [begin, end) of user u — always contiguous and live-only,
  /// in canonical and dirty states alike.
  int32_t user_columns_begin(UserId u) const {
    return user_range_[static_cast<size_t>(u) * 2];
  }
  int32_t user_columns_end(UserId u) const {
    return user_range_[static_cast<size_t>(u) * 2 + 1];
  }
  int32_t num_sets(UserId u) const {
    return user_columns_end(u) - user_columns_begin(u);
  }

  /// True when user u's enumeration hit the per-user cap.
  bool truncated(UserId u) const {
    return truncated_[static_cast<size_t>(u)] != 0;
  }
  /// True when any user's enumeration was truncated.
  bool any_truncated() const { return truncated_users_ > 0; }

  /// Inverted index over the *base* CSR only: every column of the last
  /// canonical layout whose set contains v, ascending, including tombstones.
  /// Only meaningful on a canonical catalog — dirty-state consumers must use
  /// ForEachColumnOfEvent, which filters tombstones and covers appends.
  std::span<const int32_t> columns_of_event(EventId v) const {
    const size_t b = static_cast<size_t>(event_begin_[static_cast<size_t>(v)]);
    const size_t e =
        static_cast<size_t>(event_begin_[static_cast<size_t>(v) + 1]);
    return {event_cols_.data() + b, e - b};
  }

  /// Visits every live column whose set contains v, in ascending column id
  /// order (base CSR first, then the overflow appends — appended ids are
  /// always larger, so the concatenation stays sorted). The canonical-state
  /// fast path is exactly the old span walk.
  template <typename Fn>
  void ForEachColumnOfEvent(EventId v, Fn&& fn) const {
    const size_t b = static_cast<size_t>(event_begin_[static_cast<size_t>(v)]);
    const size_t e =
        static_cast<size_t>(event_begin_[static_cast<size_t>(v) + 1]);
    for (size_t p = b; p < e; ++p) {
      const int32_t j = event_cols_[p];
      if (dead_[static_cast<size_t>(j)] == 0) fn(j);
    }
    if (overflow_entries_ == 0) return;
    for (int32_t j : overflow_cols_[static_cast<size_t>(v)]) {
      if (dead_[static_cast<size_t>(j)] == 0) fn(j);
    }
  }

  /// Raw CSR arrays for hot loops (the structured dual solver iterates these
  /// directly). `user_begin` reflects the last canonical layout; in dirty
  /// state use the user_columns_begin/end accessors instead.
  const std::vector<EventId>& pool() const { return pool_; }
  const std::vector<int64_t>& col_begin() const { return col_begin_; }
  const std::vector<int32_t>& user_begin() const { return user_begin_; }
  const std::vector<double>& weights() const { return weight_; }
  const std::vector<UserId>& col_users() const { return col_user_; }

  /// Borrowing raw-pointer view of the flat arrays in the CatalogLanes lane
  /// contract shared with the mmap-backed io::CatalogView. Only meaningful on
  /// a canonical() catalog (no tombstones, no overflow appends) — exactly the
  /// state a freshly built shard catalog is in; this is the export half of
  /// the spill path (DESIGN.md §8).
  CatalogLanes Lanes() const {
    CatalogLanes lanes;
    lanes.num_users = num_users();
    lanes.num_events = num_events();
    lanes.num_columns = num_columns();
    lanes.num_pairs = num_pairs();
    lanes.pool = pool_.data();
    lanes.col_begin = col_begin_.data();
    lanes.user_begin = user_begin_.data();
    lanes.weight = weight_.data();
    lanes.col_user = col_user_.data();
    lanes.event_begin = event_begin_.data();
    lanes.event_cols = event_cols_.data();
    return lanes;
  }

 private:
  /// Sorts each span, computes weights, derives col_user_, truncation summary
  /// and the inverted index, and resets all delta state (canonical). Called
  /// by both builders after the pool is laid out. Span sorting and kernel
  /// scoring run per user (disjoint slots) across `workers` when non-null —
  /// deterministic for any lane count; Build reuses its enumeration pool.
  void FinalizeFromPool(const Instance& instance, ThreadPool* workers);
  /// Rebuilds event_begin_/event_cols_ from the current pool by counting
  /// sort (ascending column order ⇒ each event's list sorted).
  void RebuildInvertedIndex(int32_t num_events);

  std::vector<EventId> pool_;                // all sets, concatenated
  std::vector<int64_t> col_begin_ = {0};     // size num_columns+1
  std::vector<int32_t> user_begin_ = {0};    // size num_users+1 (column ids,
                                             // last canonical layout)
  std::vector<int32_t> user_range_;  // 2 per user: current [begin, end)
  std::vector<double> weight_;       // per column, w(u, S)
  std::vector<UserId> col_user_;     // per column owner
  std::vector<uint8_t> dead_;        // per column tombstone bit
  std::vector<uint8_t> truncated_;   // per user
  int32_t truncated_users_ = 0;
  int32_t dead_columns_ = 0;
  int64_t dead_pairs_ = 0;
  std::vector<int64_t> event_begin_ = {0};  // size num_events+1 (base CSR)
  std::vector<int32_t> event_cols_;   // base inverted index
  std::vector<std::vector<int32_t>> overflow_cols_;  // per event, appended ids
  int64_t overflow_entries_ = 0;
  bool canonical_ = true;
  uint64_t ids_revision_ = 0;
  uint64_t weight_revision_ = 0;
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_ADMISSIBLE_CATALOG_H_
