#ifndef IGEPA_CORE_ADMISSIBLE_CATALOG_H_
#define IGEPA_CORE_ADMISSIBLE_CATALOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/admissible.h"
#include "core/instance.h"
#include "core/types.h"

namespace igepa {
namespace core {

/// Flat CSR catalog of every admissible set (LP column) of an instance — the
/// shared substrate of the whole Algorithm-1 pipeline (enumeration →
/// benchmark LP → rounding → repair → post-processing).
///
/// Every enumerated set lives as one contiguous span inside a single EventId
/// pool, so the catalog replaces the legacy nested
/// `std::vector<std::vector<EventId>>` (`AdmissibleSets`) with three flat
/// arrays plus per-user offset ranges. Consumers operate on views:
///
///   * column j (a global id over all users) covers events
///     `set(j)` = pool[col_begin[j], col_begin[j+1]), sorted ascending;
///   * user u owns the contiguous column range
///     [user_columns_begin(u), user_columns_end(u)), in the same order the
///     legacy enumerator emitted its sets;
///   * `weight(j)` is the precomputed LP objective coefficient w(u, S)
///     (summed over the ascending-sorted span, bit-identical to the legacy
///     per-call `SetWeight`);
///   * `columns_of_event(v)` is the inverted event→column index: every
///     column whose set contains v, ascending by column id. The capacity
///     repair sweep and the structured dual oracle both need this reverse
///     view.
///
/// Columns double as LP columns of the benchmark LP (1)-(4): the catalog IS
/// the constraint matrix in block-CSR form (one +1 in the owner's user row,
/// +1 in each event row of the span), so the structured solver consumes it
/// directly with no materialization step.
class AdmissibleCatalog {
 public:
  /// An empty catalog (zero users, events and columns); assign a built one.
  AdmissibleCatalog() = default;

  /// Enumerates every user's admissible sets straight into the arena.
  /// Per-user enumeration is independent, so `options.num_threads` > 1 (or
  /// 0 = hardware concurrency) splits users into contiguous chunks enumerated
  /// in parallel; the result is deterministic and identical for every thread
  /// count.
  static AdmissibleCatalog Build(const Instance& instance,
                                 const AdmissibleOptions& options = {});

  /// Converts legacy nested AdmissibleSets (compatibility path; also the
  /// reference implementation the equivalence tests compare against).
  static AdmissibleCatalog FromLegacy(
      const Instance& instance, const std::vector<AdmissibleSets>& admissible);

  /// Converts back to the deprecated nested representation.
  std::vector<AdmissibleSets> ToLegacy() const;

  int32_t num_users() const {
    return static_cast<int32_t>(user_begin_.size()) - 1;
  }
  int32_t num_events() const {
    return static_cast<int32_t>(event_begin_.size()) - 1;
  }
  int32_t num_columns() const { return static_cast<int32_t>(weight_.size()); }
  /// Total (user, event) incidences Σ_j |S_j| — the LP's event-row nnz.
  int64_t num_pairs() const { return static_cast<int64_t>(pool_.size()); }

  /// The events of column j, ascending.
  std::span<const EventId> set(int32_t j) const {
    const size_t b = static_cast<size_t>(col_begin_[static_cast<size_t>(j)]);
    const size_t e =
        static_cast<size_t>(col_begin_[static_cast<size_t>(j) + 1]);
    return {pool_.data() + b, e - b};
  }
  /// Precomputed w(u, S) of column j.
  double weight(int32_t j) const { return weight_[static_cast<size_t>(j)]; }
  /// The user owning column j.
  UserId user_of(int32_t j) const { return col_user_[static_cast<size_t>(j)]; }

  /// Column range [begin, end) of user u.
  int32_t user_columns_begin(UserId u) const {
    return user_begin_[static_cast<size_t>(u)];
  }
  int32_t user_columns_end(UserId u) const {
    return user_begin_[static_cast<size_t>(u) + 1];
  }
  int32_t num_sets(UserId u) const {
    return user_columns_end(u) - user_columns_begin(u);
  }

  /// True when user u's enumeration hit the per-user cap.
  bool truncated(UserId u) const {
    return truncated_[static_cast<size_t>(u)] != 0;
  }
  /// True when any user's enumeration was truncated.
  bool any_truncated() const { return any_truncated_; }

  /// Inverted index: ids of every column whose set contains v, ascending.
  std::span<const int32_t> columns_of_event(EventId v) const {
    const size_t b = static_cast<size_t>(event_begin_[static_cast<size_t>(v)]);
    const size_t e =
        static_cast<size_t>(event_begin_[static_cast<size_t>(v) + 1]);
    return {event_cols_.data() + b, e - b};
  }

  /// Raw CSR arrays for hot loops (the structured dual solver iterates these
  /// directly).
  const std::vector<EventId>& pool() const { return pool_; }
  const std::vector<int64_t>& col_begin() const { return col_begin_; }
  const std::vector<int32_t>& user_begin() const { return user_begin_; }
  const std::vector<double>& weights() const { return weight_; }
  const std::vector<UserId>& col_users() const { return col_user_; }

 private:
  /// Sorts each span, computes weights, derives col_user_, truncation summary
  /// and the inverted index. Called by both builders after the pool is laid
  /// out.
  void FinalizeFromPool(const Instance& instance);

  std::vector<EventId> pool_;                // all sets, concatenated
  std::vector<int64_t> col_begin_ = {0};     // size num_columns+1
  std::vector<int32_t> user_begin_ = {0};    // size num_users+1 (column ids)
  std::vector<double> weight_;       // per column, w(u, S)
  std::vector<UserId> col_user_;     // per column owner
  std::vector<uint8_t> truncated_;   // per user
  bool any_truncated_ = false;
  std::vector<int64_t> event_begin_ = {0};  // size num_events+1
  std::vector<int32_t> event_cols_;   // inverted index, size == pool size
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_ADMISSIBLE_CATALOG_H_
