#include "core/admissible.h"

#include <algorithm>

namespace igepa {
namespace core {
namespace {

/// DFS over the user's bids (pre-sorted by descending weight), emitting every
/// conflict-free subset of size <= capacity until the cap is hit. Exploring
/// the include-branch first makes high-weight sets surface before the cap.
class SetEnumerator {
 public:
  SetEnumerator(const Instance& instance, std::vector<EventId> ordered_bids,
                int32_t capacity, int32_t max_sets)
      : instance_(instance),
        bids_(std::move(ordered_bids)),
        capacity_(capacity),
        max_sets_(max_sets) {}

  AdmissibleSets Run() {
    AdmissibleSets out;
    if (capacity_ <= 0 || bids_.empty() || max_sets_ <= 0) return out;
    current_.clear();
    Dfs(0, &out);
    // Canonical order inside each set: ascending event id.
    for (auto& s : out.sets) std::sort(s.begin(), s.end());
    return out;
  }

 private:
  void Dfs(size_t index, AdmissibleSets* out) {
    if (static_cast<int32_t>(out->sets.size()) >= max_sets_) {
      out->truncated = true;
      return;
    }
    if (index == bids_.size()) return;
    const EventId v = bids_[index];
    // Include v when it fits and does not conflict with the chosen prefix.
    if (static_cast<int32_t>(current_.size()) < capacity_ &&
        CompatibleWithCurrent(v)) {
      current_.push_back(v);
      out->sets.push_back(current_);
      Dfs(index + 1, out);
      current_.pop_back();
    }
    // Exclude v.
    Dfs(index + 1, out);
  }

  bool CompatibleWithCurrent(EventId v) const {
    for (EventId chosen : current_) {
      if (instance_.Conflicts(chosen, v)) return false;
    }
    return true;
  }

  const Instance& instance_;
  std::vector<EventId> bids_;
  int32_t capacity_;
  int32_t max_sets_;
  std::vector<EventId> current_;
};

}  // namespace

AdmissibleSets EnumerateAdmissibleSetsForUser(
    const Instance& instance, UserId u, const AdmissibleOptions& options) {
  std::vector<EventId> ordered = instance.bids(u);
  // Descending weight; ties broken by event id for determinism.
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](EventId a, EventId b) {
                     const double wa = instance.Weight(a, u);
                     const double wb = instance.Weight(b, u);
                     if (wa != wb) return wa > wb;
                     return a < b;
                   });
  SetEnumerator enumerator(instance, std::move(ordered),
                           instance.user_capacity(u),
                           options.max_sets_per_user);
  return enumerator.Run();
}

std::vector<AdmissibleSets> EnumerateAdmissibleSets(
    const Instance& instance, const AdmissibleOptions& options) {
  std::vector<AdmissibleSets> out;
  out.reserve(static_cast<size_t>(instance.num_users()));
  for (UserId u = 0; u < instance.num_users(); ++u) {
    out.push_back(EnumerateAdmissibleSetsForUser(instance, u, options));
  }
  return out;
}

double SetWeight(const Instance& instance, UserId u,
                 const std::vector<EventId>& set) {
  double w = 0.0;
  for (EventId v : set) w += instance.Weight(v, u);
  return w;
}

}  // namespace core
}  // namespace igepa
