#include "core/admissible_catalog.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "util/thread_pool.h"

namespace igepa {
namespace core {
namespace {

/// DFS over one user's bids (pre-sorted by descending weight), emitting every
/// conflict-free subset of size <= capacity straight into a flat arena.
/// Mirrors the legacy SetEnumerator exactly (same emit order, same truncation
/// semantics) so catalog and legacy paths stay bit-identical.
class ArenaEnumerator {
 public:
  ArenaEnumerator(const Instance& instance, std::vector<EventId> ordered_bids,
                  int32_t capacity, int32_t max_sets,
                  std::vector<EventId>* pool, std::vector<int32_t>* set_size)
      : instance_(instance),
        bids_(std::move(ordered_bids)),
        capacity_(capacity),
        max_sets_(max_sets),
        pool_(pool),
        set_size_(set_size) {}

  /// Returns the number of sets emitted; `truncated()` reports cap pressure.
  int32_t Run() {
    if (capacity_ <= 0 || bids_.empty() || max_sets_ <= 0) return 0;
    current_.clear();
    Dfs(0);
    return count_;
  }

  bool truncated() const { return truncated_; }

 private:
  void Dfs(size_t index) {
    if (count_ >= max_sets_) {
      truncated_ = true;
      return;
    }
    if (index == bids_.size()) return;
    const EventId v = bids_[index];
    // Include v when it fits and does not conflict with the chosen prefix.
    if (static_cast<int32_t>(current_.size()) < capacity_ &&
        CompatibleWithCurrent(v)) {
      current_.push_back(v);
      pool_->insert(pool_->end(), current_.begin(), current_.end());
      set_size_->push_back(static_cast<int32_t>(current_.size()));
      ++count_;
      Dfs(index + 1);
      current_.pop_back();
    }
    // Exclude v.
    Dfs(index + 1);
  }

  bool CompatibleWithCurrent(EventId v) const {
    for (EventId chosen : current_) {
      if (instance_.Conflicts(chosen, v)) return false;
    }
    return true;
  }

  const Instance& instance_;
  std::vector<EventId> bids_;
  int32_t capacity_;
  int32_t max_sets_;
  std::vector<EventId>* pool_;
  std::vector<int32_t>* set_size_;
  std::vector<EventId> current_;
  int32_t count_ = 0;
  bool truncated_ = false;
};

/// The canonical bid order: descending kernel pair weight, ties by event id
/// (under the default kernel, exactly the legacy descending-w(u,v) order).
/// Weights are fetched once per bid through one PairWeightLane batch call
/// (per-user kernel terms hoisted), rather than twice per comparison inside
/// the sort.
std::vector<EventId> OrderedBids(const Instance& instance, UserId u) {
  const std::vector<EventId>& bids = instance.bids(u);
  std::vector<double> lane(bids.size());
  instance.kernel().PairWeightLane(instance, u, bids.data(),
                                   static_cast<int32_t>(bids.size()),
                                   lane.data());
  std::vector<std::pair<double, EventId>> keyed;
  keyed.reserve(bids.size());
  for (size_t i = 0; i < bids.size(); ++i) {
    keyed.emplace_back(lane[i], bids[i]);
  }
  // The (weight desc, id asc) key is total, so plain sort is deterministic.
  std::sort(keyed.begin(), keyed.end(),
            [](const std::pair<double, EventId>& a,
               const std::pair<double, EventId>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<EventId> ordered;
  ordered.reserve(keyed.size());
  for (const auto& [w, v] : keyed) ordered.push_back(v);
  return ordered;
}

/// Reusable scratch of the SoA scoring fast path (one per scoring lane): a
/// dense per-event weight lane with fill markers cleared through the touched
/// list, plus compacted CSR buffers for the scattered-column path. The lane
/// is what turns scoring from one (hash-overlay-backed) PairWeight call per
/// (set, event) incidence into one per *distinct* event of the batch.
struct ScoreScratch {
  std::vector<double> lane;       // event id → PairWeight(v, u), when filled
  std::vector<uint8_t> filled;    // per event: lane slot valid for current u
  std::vector<EventId> touched;   // filled slots to clear after the batch
  std::vector<double> lane_vals;  // PairWeightLane output, touched order
  std::vector<EventId> cpool;     // scattered-column path: compacted spans
  std::vector<int64_t> cbegin;    //   …and their offsets
  std::vector<double> scores;     //   …and the scored weights to scatter back
};

/// Gathers PairWeight lanes for every distinct event in
/// pool[pool_begin, pool_end) — walking the spans themselves (not bids), so
/// externally enumerated sets (FromSets) are covered too.
void GatherLane(const Instance& instance, UserId u, const EventId* pool,
                int64_t pool_begin, int64_t pool_end, ScoreScratch* scratch) {
  const auto nv = static_cast<size_t>(instance.num_events());
  if (scratch->lane.size() < nv) {
    scratch->lane.assign(nv, 0.0);
    scratch->filled.assign(nv, 0);
  }
  scratch->touched.clear();
  for (int64_t p = pool_begin; p < pool_end; ++p) {
    const EventId v = pool[p];
    if (scratch->filled[static_cast<size_t>(v)] == 0) {
      scratch->filled[static_cast<size_t>(v)] = 1;
      scratch->touched.push_back(v);
    }
  }
  // One batch call for the whole lane: the kernel hoists its per-user terms
  // (and the virtual dispatch) out of the per-event loop, then the values
  // scatter back into dense event-id slots.
  const int32_t n = static_cast<int32_t>(scratch->touched.size());
  scratch->lane_vals.resize(static_cast<size_t>(n));
  instance.kernel().PairWeightLane(instance, u, scratch->touched.data(), n,
                                   scratch->lane_vals.data());
  for (int32_t i = 0; i < n; ++i) {
    scratch->lane[static_cast<size_t>(scratch->touched[i])] =
        scratch->lane_vals[i];
  }
}

void ClearLane(ScoreScratch* scratch) {
  for (EventId v : scratch->touched) {
    scratch->filled[static_cast<size_t>(v)] = 0;
  }
}

/// Scores the contiguous column range [begin, end) of user u through the
/// instance's kernel, writing into weight[begin..end). The one place column
/// weights are ever computed — Build, delta re-enumeration and delta
/// re-scoring all funnel through here. SoA form: the per-event weight lane is
/// gathered once (one PairWeight per distinct event), then the kernel reduces
/// the CSR columns in batch — bit-identical to the span path, since the same
/// doubles are summed in the same left-to-right order.
void ScoreUserColumns(const Instance& instance, UserId u, int32_t begin,
                      int32_t end, const std::vector<EventId>& pool,
                      const std::vector<int64_t>& col_begin,
                      std::vector<double>* weight, ScoreScratch* scratch) {
  if (begin >= end) return;
  GatherLane(instance, u, pool.data(), col_begin[static_cast<size_t>(begin)],
             col_begin[static_cast<size_t>(end)], scratch);
  instance.kernel().ScoreColumnsSoA(
      instance, u, scratch->lane.data(), pool.data(),
      col_begin.data() + begin, end - begin, weight->data() + begin);
  ClearLane(scratch);
}

/// Like ScoreUserColumns but over a scattered (ascending) column-id list —
/// the weight-delta path re-scores exactly the touched columns, wherever
/// they live in the arena. Spans are compacted into a contiguous scratch CSR
/// so the same SoA kernel entry point serves both paths.
void ScoreColumnIds(const Instance& instance, UserId u,
                    const std::vector<int32_t>& cols,
                    const std::vector<EventId>& pool,
                    const std::vector<int64_t>& col_begin,
                    std::vector<double>* weight, ScoreScratch* scratch) {
  if (cols.empty()) return;
  scratch->cpool.clear();
  scratch->cbegin.clear();
  scratch->cbegin.push_back(0);
  for (int32_t j : cols) {
    const size_t b = static_cast<size_t>(col_begin[static_cast<size_t>(j)]);
    const size_t e =
        static_cast<size_t>(col_begin[static_cast<size_t>(j) + 1]);
    scratch->cpool.insert(scratch->cpool.end(), pool.data() + b,
                          pool.data() + e);
    scratch->cbegin.push_back(static_cast<int64_t>(scratch->cpool.size()));
  }
  GatherLane(instance, u, scratch->cpool.data(), 0,
             static_cast<int64_t>(scratch->cpool.size()), scratch);
  scratch->scores.resize(cols.size());
  instance.kernel().ScoreColumnsSoA(
      instance, u, scratch->lane.data(), scratch->cpool.data(),
      scratch->cbegin.data(), static_cast<int32_t>(cols.size()),
      scratch->scores.data());
  ClearLane(scratch);
  for (size_t k = 0; k < cols.size(); ++k) {
    (*weight)[static_cast<size_t>(cols[k])] = scratch->scores[k];
  }
}

/// Per-thread enumeration output for one contiguous user chunk.
struct Shard {
  std::vector<EventId> pool;
  std::vector<int32_t> set_size;       // per emitted column
  std::vector<int32_t> sets_per_user;  // per user in the chunk
  std::vector<uint8_t> truncated;      // per user in the chunk
};

void EnumerateChunk(const Instance& instance, UserId begin, UserId end,
                    const AdmissibleOptions& options, Shard* shard) {
  shard->sets_per_user.reserve(static_cast<size_t>(end - begin));
  shard->truncated.reserve(static_cast<size_t>(end - begin));
  for (UserId u = begin; u < end; ++u) {
    ArenaEnumerator enumerator(instance, OrderedBids(instance, u),
                               instance.user_capacity(u),
                               options.max_sets_per_user, &shard->pool,
                               &shard->set_size);
    shard->sets_per_user.push_back(enumerator.Run());
    shard->truncated.push_back(enumerator.truncated() ? 1 : 0);
  }
}

}  // namespace

void AdmissibleCatalog::RebuildInvertedIndex(int32_t num_events) {
  const int32_t cols = static_cast<int32_t>(col_begin_.size()) - 1;
  // Counting sort over the pool. Filling in ascending column order leaves
  // each event's column list sorted.
  event_begin_.assign(static_cast<size_t>(num_events) + 1, 0);
  for (EventId v : pool_) ++event_begin_[static_cast<size_t>(v) + 1];
  for (int32_t v = 0; v < num_events; ++v) {
    event_begin_[static_cast<size_t>(v) + 1] +=
        event_begin_[static_cast<size_t>(v)];
  }
  event_cols_.resize(pool_.size());
  std::vector<int64_t> cursor(event_begin_.begin(), event_begin_.end() - 1);
  for (int32_t j = 0; j < cols; ++j) {
    for (int64_t p = col_begin_[static_cast<size_t>(j)];
         p < col_begin_[static_cast<size_t>(j) + 1]; ++p) {
      const EventId v = pool_[static_cast<size_t>(p)];
      event_cols_[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = j;
    }
  }
}

void AdmissibleCatalog::FinalizeFromPool(const Instance& instance,
                                         ThreadPool* workers) {
  const int32_t nu = static_cast<int32_t>(user_begin_.size()) - 1;
  const int32_t nv = instance.num_events();
  const int32_t cols = static_cast<int32_t>(col_begin_.size()) - 1;

  // Owners, canonical span order and precomputed weights. Spans are sorted
  // ascending, then each user's block is scored in one batch through the
  // instance's utility kernel (the default kernel's left-to-right pair sum
  // reproduces the historical fused loop bit for bit). Users are independent
  // — every sort and weight write lands in that user's own slots — so the
  // sort+score sweep shards across the build pool with identical results for
  // any lane count.
  col_user_.resize(static_cast<size_t>(cols));
  weight_.resize(static_cast<size_t>(cols));
  for (UserId u = 0; u < nu; ++u) {
    for (int32_t j = user_begin_[static_cast<size_t>(u)];
         j < user_begin_[static_cast<size_t>(u) + 1]; ++j) {
      col_user_[static_cast<size_t>(j)] = u;
    }
  }
  const auto finalize_users = [&](int64_t ub, int64_t ue,
                                  ScoreScratch* scratch) {
    for (int64_t uu = ub; uu < ue; ++uu) {
      const auto u = static_cast<UserId>(uu);
      for (int32_t j = user_begin_[static_cast<size_t>(u)];
           j < user_begin_[static_cast<size_t>(u) + 1]; ++j) {
        EventId* b = pool_.data() + col_begin_[static_cast<size_t>(j)];
        EventId* e = pool_.data() + col_begin_[static_cast<size_t>(j) + 1];
        std::sort(b, e);
      }
      ScoreUserColumns(instance, u, user_begin_[static_cast<size_t>(u)],
                       user_begin_[static_cast<size_t>(u) + 1], pool_,
                       col_begin_, &weight_, scratch);
    }
  };
  if (workers != nullptr && workers->num_threads() > 1) {
    std::vector<ScoreScratch> scratches(
        static_cast<size_t>(workers->num_threads()));
    workers->ParallelFor(0, nu, /*grain=*/16,
                         [&](int32_t lane, int64_t b, int64_t e) {
                           finalize_users(b, e,
                                          &scratches[static_cast<size_t>(lane)]);
                         });
  } else {
    ScoreScratch scratch;
    finalize_users(0, nu, &scratch);
  }

  // Canonical state: current per-user ranges mirror the cumulative layout and
  // every delta structure is empty.
  user_range_.resize(static_cast<size_t>(nu) * 2);
  for (UserId u = 0; u < nu; ++u) {
    user_range_[static_cast<size_t>(u) * 2] =
        user_begin_[static_cast<size_t>(u)];
    user_range_[static_cast<size_t>(u) * 2 + 1] =
        user_begin_[static_cast<size_t>(u) + 1];
  }
  dead_.assign(static_cast<size_t>(cols), 0);
  dead_columns_ = 0;
  dead_pairs_ = 0;
  overflow_cols_.assign(static_cast<size_t>(nv), {});
  overflow_entries_ = 0;
  canonical_ = true;
  weight_revision_ = 0;

  truncated_users_ = 0;
  for (uint8_t t : truncated_) truncated_users_ += (t != 0) ? 1 : 0;

  RebuildInvertedIndex(nv);
}

AdmissibleCatalog AdmissibleCatalog::Build(const Instance& instance,
                                           const AdmissibleOptions& options) {
  const int32_t nu = instance.num_users();
  int32_t threads = ThreadPool::ResolveThreadCount(options.num_threads, nu);
  // Pool spawn cost dwarfs enumeration on small instances.
  if (nu < 256) threads = 1;

  // One chunk per lane; the deterministic concatenation below is in user
  // order regardless of chunking, so any thread count yields the same
  // catalog.
  std::vector<Shard> shards(static_cast<size_t>(threads));
  std::vector<UserId> chunk_begin(static_cast<size_t>(threads) + 1);
  for (int32_t c = 0; c <= threads; ++c) {
    chunk_begin[static_cast<size_t>(c)] =
        static_cast<UserId>(static_cast<int64_t>(nu) * c / threads);
  }
  // One pool serves enumeration AND the finalize sort+score sweep below —
  // the spawn is paid once per build.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  if (pool == nullptr) {
    EnumerateChunk(instance, 0, nu, options, &shards[0]);
  } else {
    pool->ParallelFor(0, threads, /*grain=*/1,
                      [&](int32_t, int64_t begin, int64_t end) {
                        for (int64_t c = begin; c < end; ++c) {
                          EnumerateChunk(instance,
                                         chunk_begin[static_cast<size_t>(c)],
                                         chunk_begin[static_cast<size_t>(c) + 1],
                                         options,
                                         &shards[static_cast<size_t>(c)]);
                        }
                      });
  }

  // Deterministic concatenation in user order, independent of thread count.
  AdmissibleCatalog out;
  size_t total_pool = 0;
  size_t total_cols = 0;
  for (const Shard& s : shards) {
    total_pool += s.pool.size();
    total_cols += s.set_size.size();
  }
  out.pool_.reserve(total_pool);
  out.col_begin_.reserve(total_cols + 1);  // already holds the leading 0
  out.user_begin_.reserve(static_cast<size_t>(nu) + 1);
  out.truncated_.reserve(static_cast<size_t>(nu));
  for (const Shard& s : shards) {
    out.pool_.insert(out.pool_.end(), s.pool.begin(), s.pool.end());
    for (int32_t size : s.set_size) {
      out.col_begin_.push_back(out.col_begin_.back() + size);
    }
    for (int32_t count : s.sets_per_user) {
      out.user_begin_.push_back(out.user_begin_.back() + count);
    }
    out.truncated_.insert(out.truncated_.end(), s.truncated.begin(),
                          s.truncated.end());
  }
  out.FinalizeFromPool(instance, pool.get());
  return out;
}

AdmissibleCatalog AdmissibleCatalog::FromSets(
    const Instance& instance,
    const std::vector<EnumeratedUserSets>& admissible) {
  AdmissibleCatalog out;
  size_t total_pool = 0;
  size_t total_cols = 0;
  for (const EnumeratedUserSets& a : admissible) {
    total_cols += a.sets.size();
    for (const auto& s : a.sets) total_pool += s.size();
  }
  out.pool_.reserve(total_pool);
  out.col_begin_.reserve(total_cols + 1);  // already holds the leading 0
  out.user_begin_.reserve(admissible.size() + 1);
  out.truncated_.reserve(admissible.size());
  for (const EnumeratedUserSets& a : admissible) {
    for (const auto& s : a.sets) {
      out.pool_.insert(out.pool_.end(), s.begin(), s.end());
      out.col_begin_.push_back(out.col_begin_.back() +
                               static_cast<int64_t>(s.size()));
    }
    out.user_begin_.push_back(out.user_begin_.back() +
                              static_cast<int32_t>(a.sets.size()));
    out.truncated_.push_back(a.truncated ? 1 : 0);
  }
  out.FinalizeFromPool(instance, /*workers=*/nullptr);
  return out;
}

Result<CatalogDeltaResult> AdmissibleCatalog::ApplyDelta(
    const Instance& instance, const InstanceDelta& delta,
    const CatalogDeltaOptions& options) {
  const int32_t nu = num_users();
  const int32_t nv = num_events();
  if (instance.num_users() != nu || instance.num_events() != nv) {
    return Status::InvalidArgument(
        "ApplyDelta: instance shape does not match catalog (deltas cannot "
        "add or remove user/event slots)");
  }
  CatalogDeltaResult result;
  result.touched_users = TouchedUsers(delta);
  IGEPA_RETURN_IF_ERROR(ValidateDelta(nv, nu, delta));

  ScoreScratch scratch;
  for (UserId u : result.touched_users) {
    // Tombstone the user's current block; the arena keeps the bytes so stale
    // column ids remain readable (set/weight) until compaction.
    const size_t r = static_cast<size_t>(u) * 2;
    for (int32_t j = user_range_[r]; j < user_range_[r + 1]; ++j) {
      dead_[static_cast<size_t>(j)] = 1;
      ++dead_columns_;
      dead_pairs_ += static_cast<int64_t>(set(j).size());
      ++result.columns_tombstoned;
    }

    // Re-enumerate against the mutated instance (same enumerator, same emit
    // order as Build) and append the new block at the arena end.
    std::vector<EventId> block_pool;
    std::vector<int32_t> block_sizes;
    ArenaEnumerator enumerator(instance, OrderedBids(instance, u),
                               instance.user_capacity(u),
                               options.admissible.max_sets_per_user,
                               &block_pool, &block_sizes);
    const int32_t count = enumerator.Run();
    if (truncated_[static_cast<size_t>(u)] != 0) --truncated_users_;
    truncated_[static_cast<size_t>(u)] = enumerator.truncated() ? 1 : 0;
    if (truncated_[static_cast<size_t>(u)] != 0) ++truncated_users_;

    const int32_t new_begin = num_columns();
    size_t cursor = 0;
    for (int32_t k = 0; k < count; ++k) {
      const auto size = static_cast<size_t>(block_sizes[static_cast<size_t>(k)]);
      const int32_t j = num_columns();
      pool_.insert(pool_.end(), block_pool.begin() + cursor,
                   block_pool.begin() + cursor + size);
      cursor += size;
      col_begin_.push_back(col_begin_.back() + static_cast<int64_t>(size));
      // Canonical span order, identical to FinalizeFromPool; the weight slot
      // is filled by the batch kernel call after the block is laid out.
      EventId* b = pool_.data() + col_begin_[static_cast<size_t>(j)];
      EventId* e = pool_.data() + col_begin_[static_cast<size_t>(j) + 1];
      std::sort(b, e);
      weight_.push_back(0.0);
      col_user_.push_back(u);
      dead_.push_back(0);
      // Patch the inverted index in place: appended ids are strictly
      // increasing, so each event's overflow list stays sorted.
      for (const EventId* p = b; p != e; ++p) {
        overflow_cols_[static_cast<size_t>(*p)].push_back(j);
        ++overflow_entries_;
      }
      ++result.columns_appended;
    }
    ScoreUserColumns(instance, u, new_begin, num_columns(), pool_, col_begin_,
                     &weight_, &scratch);
    user_range_[r] = new_begin;
    user_range_[r + 1] = num_columns();
  }

  if (!result.touched_users.empty()) canonical_ = false;

  // Weight half (graph edges, interest drift): kernel re-scores in place.
  // Structure — spans, ids, user ranges, inverted index — is untouched, so
  // this never dirties the catalog. A degree move (graph edge) invalidates
  // every pair weight of both endpoints; interest drift on (v, u)
  // invalidates only u's columns whose span contains v.
  if (delta.has_weight_updates()) {
    // Sorted endpoint list rather than an O(num_users) flag vector: the
    // documented delta complexity is touched-only, and a typical weight
    // delta names a handful of users.
    std::vector<UserId> full_rescore;
    full_rescore.reserve(delta.graph_updates.size() * 2);
    for (const GraphEdgeUpdate& up : delta.graph_updates) {
      full_rescore.push_back(up.a);
      full_rescore.push_back(up.b);
    }
    std::sort(full_rescore.begin(), full_rescore.end());
    std::vector<std::pair<UserId, EventId>> drifts;
    drifts.reserve(delta.interest_updates.size());
    for (const InterestUpdate& up : delta.interest_updates) {
      drifts.emplace_back(up.user, up.event);
    }
    std::sort(drifts.begin(), drifts.end());
    drifts.erase(std::unique(drifts.begin(), drifts.end()), drifts.end());

    std::vector<int32_t> cols;
    for (UserId u : WeightTouchedUsers(delta)) {
      // Re-enumerated users were already scored fresh against the mutated
      // instance (which includes the weight updates) at append time.
      if (std::binary_search(result.touched_users.begin(),
                             result.touched_users.end(), u)) {
        continue;
      }
      const size_t r = static_cast<size_t>(u) * 2;
      cols.clear();
      if (std::binary_search(full_rescore.begin(), full_rescore.end(), u)) {
        for (int32_t j = user_range_[r]; j < user_range_[r + 1]; ++j) {
          cols.push_back(j);
        }
      } else {
        const auto first = std::lower_bound(
            drifts.begin(), drifts.end(), std::make_pair(u, EventId{0}));
        for (int32_t j = user_range_[r]; j < user_range_[r + 1]; ++j) {
          const auto span = set(j);
          for (auto it = first; it != drifts.end() && it->first == u; ++it) {
            if (std::binary_search(span.begin(), span.end(), it->second)) {
              cols.push_back(j);
              break;
            }
          }
        }
      }
      if (cols.empty()) continue;  // e.g. interest drift on a non-bid pair
      ScoreColumnIds(instance, u, cols, pool_, col_begin_, &weight_, &scratch);
      result.columns_rescored += static_cast<int32_t>(cols.size());
      result.rescored_users.push_back(u);
    }
  }
  if (result.columns_appended > 0 || result.columns_rescored > 0) {
    ++weight_revision_;
  }

  if (dead_columns_ >= options.compact_min_dead_columns &&
      static_cast<double>(dead_columns_) >
          options.compact_tombstone_fraction *
              static_cast<double>(num_columns())) {
    result.column_remap = Compact();
    result.compacted = true;
  }
  return result;
}

std::vector<int32_t> AdmissibleCatalog::Compact() {
  const int32_t nu = num_users();
  const int32_t nv = num_events();
  const int32_t old_cols = num_columns();
  const int32_t live_cols = num_live_columns();

  std::vector<int32_t> remap(static_cast<size_t>(old_cols), -1);
  std::vector<EventId> new_pool;
  new_pool.reserve(static_cast<size_t>(num_live_pairs()));
  std::vector<int64_t> new_col_begin;
  new_col_begin.reserve(static_cast<size_t>(live_cols) + 1);
  new_col_begin.push_back(0);
  std::vector<double> new_weight;
  new_weight.reserve(static_cast<size_t>(live_cols));
  std::vector<UserId> new_col_user;
  new_col_user.reserve(static_cast<size_t>(live_cols));

  // Live columns rewritten in user-major order, per-user order preserved —
  // exactly the layout Build emits for the mutated instance (spans are
  // already sorted and weights already summed in canonical order, so copying
  // them is bit-identical to recomputation).
  user_begin_.assign(1, 0);
  user_begin_.reserve(static_cast<size_t>(nu) + 1);
  for (UserId u = 0; u < nu; ++u) {
    const size_t r = static_cast<size_t>(u) * 2;
    for (int32_t j = user_range_[r]; j < user_range_[r + 1]; ++j) {
      const int32_t nj = static_cast<int32_t>(new_weight.size());
      remap[static_cast<size_t>(j)] = nj;
      const auto span = set(j);
      new_pool.insert(new_pool.end(), span.begin(), span.end());
      new_col_begin.push_back(new_col_begin.back() +
                              static_cast<int64_t>(span.size()));
      new_weight.push_back(weight_[static_cast<size_t>(j)]);
      new_col_user.push_back(u);
    }
    user_range_[r] = user_begin_.back();
    user_begin_.push_back(static_cast<int32_t>(new_weight.size()));
    user_range_[r + 1] = user_begin_.back();
  }

  pool_ = std::move(new_pool);
  col_begin_ = std::move(new_col_begin);
  weight_ = std::move(new_weight);
  col_user_ = std::move(new_col_user);
  dead_.assign(static_cast<size_t>(live_cols), 0);
  dead_columns_ = 0;
  dead_pairs_ = 0;
  overflow_cols_.assign(static_cast<size_t>(nv), {});
  overflow_entries_ = 0;
  canonical_ = true;
  ++ids_revision_;
  RebuildInvertedIndex(nv);
  return remap;
}

int32_t AdmissibleCatalog::Rescore(const Instance& instance,
                                   int32_t num_threads) {
  const int32_t nu = num_users();
  const auto rescore_users = [&](int64_t ub, int64_t ue,
                                 ScoreScratch* scratch) {
    for (int64_t uu = ub; uu < ue; ++uu) {
      const size_t r = static_cast<size_t>(uu) * 2;
      ScoreUserColumns(instance, static_cast<UserId>(uu), user_range_[r],
                       user_range_[r + 1], pool_, col_begin_, &weight_,
                       scratch);
    }
  };
  const int32_t threads =
      nu >= 256 ? ThreadPool::ResolveThreadCount(
                      num_threads > 0 ? num_threads : 1, nu)
                : 1;
  if (threads > 1) {
    ThreadPool pool(threads);
    std::vector<ScoreScratch> scratches(static_cast<size_t>(threads));
    pool.ParallelFor(0, nu, /*grain=*/16,
                     [&](int32_t lane, int64_t b, int64_t e) {
                       rescore_users(b, e,
                                     &scratches[static_cast<size_t>(lane)]);
                     });
  } else {
    ScoreScratch scratch;
    rescore_users(0, nu, &scratch);
  }
  int32_t rescored = 0;
  for (UserId u = 0; u < nu; ++u) {
    const size_t r = static_cast<size_t>(u) * 2;
    rescored += user_range_[r + 1] - user_range_[r];
  }
  if (rescored > 0) ++weight_revision_;
  return rescored;
}

}  // namespace core
}  // namespace igepa
