#ifndef IGEPA_CORE_BENCHMARK_LP_H_
#define IGEPA_CORE_BENCHMARK_LP_H_

#include <utility>
#include <vector>

#include "core/admissible.h"
#include "core/instance.h"
#include "lp/model.h"

namespace igepa {
namespace core {

/// The paper's benchmark LP (1)-(4) in solver form, plus the bookkeeping to
/// map LP columns back to (user, admissible-set) pairs.
///
/// Row layout: rows [0, |U|) are the per-user convexity constraints (2) with
/// rhs 1; rows [|U|, |U|+|V|) are the per-event capacity constraints (3) with
/// rhs c_v. Column j corresponds to x_{u,S} for (u, S) = column_map[j]:
/// objective w(u, S), bounds [0, 1] (4), +1 entries in u's row and in each
/// event row of S.
struct BenchmarkLp {
  lp::LpModel model;
  /// column j -> (user, index into admissible[user].sets).
  std::vector<std::pair<UserId, int32_t>> column_map;
  /// First column of each user's block, size num_users+1 (columns of user u
  /// are [user_col_begin[u], user_col_begin[u+1])).
  std::vector<int32_t> user_col_begin;

  int32_t UserRow(UserId u) const { return u; }
  int32_t EventRow(const Instance& instance, EventId v) const {
    return instance.num_users() + v;
  }
};

/// Builds the benchmark LP for `instance` over the given admissible sets
/// (as produced by EnumerateAdmissibleSets).
BenchmarkLp BuildBenchmarkLp(const Instance& instance,
                             const std::vector<AdmissibleSets>& admissible);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_BENCHMARK_LP_H_
