#ifndef IGEPA_CORE_BENCHMARK_LP_H_
#define IGEPA_CORE_BENCHMARK_LP_H_

#include <utility>
#include <vector>

#include "core/admissible_catalog.h"
#include "core/instance.h"
#include "lp/model.h"

namespace igepa {
namespace core {

/// The paper's benchmark LP (1)-(4) in solver form, plus the bookkeeping to
/// map LP columns back to (user, admissible-set) pairs.
///
/// Row layout: rows [0, |U|) are the per-user convexity constraints (2) with
/// rhs 1; rows [|U|, |U|+|V|) are the per-event capacity constraints (3) with
/// rhs c_v. Column j corresponds to x_{u,S} for (u, S) = column_map[j]:
/// objective w(u, S), bounds [0, 1] (4), +1 entries in u's row and in each
/// event row of S.
struct BenchmarkLp {
  lp::LpModel model;
  /// column j -> (user, index into admissible[user].sets).
  std::vector<std::pair<UserId, int32_t>> column_map;
  /// First column of each user's block, size num_users+1 (columns of user u
  /// are [user_col_begin[u], user_col_begin[u+1])).
  std::vector<int32_t> user_col_begin;

  int32_t UserRow(UserId u) const { return u; }
  int32_t EventRow(const Instance& instance, EventId v) const {
    return instance.num_users() + v;
  }
};

/// Materializes the benchmark LP from catalog views — needed only when the
/// generic lp:: facade (dense/revised simplex, generic packing dual) solves
/// line 1; the structured solver (benchmark_dual.h) consumes the catalog CSR
/// directly. Column j of the model is catalog column j: objective
/// `catalog.weight(j)`, +1 in the owner's user row and in each event row of
/// `catalog.set(j)`.
BenchmarkLp BuildBenchmarkLp(const Instance& instance,
                             const AdmissibleCatalog& catalog);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_BENCHMARK_LP_H_
