#ifndef IGEPA_CORE_INSTANCE_H_
#define IGEPA_CORE_INSTANCE_H_

#include <memory>
#include <vector>

#include "conflict/conflict.h"
#include "core/types.h"
#include "graph/interaction_model.h"
#include "interest/interest.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// A complete IGEPA problem instance (Definition 8): events V with
/// capacities, users U with capacities and bids, the conflict function σ, the
/// interest function SI, the social-interaction model D(G, ·), and the
/// balance parameter β.
///
/// The instance owns shared, immutable handles to its functional components
/// so that cheap copies can be taken by algorithms and experiment harnesses.
class Instance {
 public:
  /// Builds an instance. Call Validate() before use; algorithms assume a
  /// validated instance (in-range bids, consistent component sizes).
  Instance(std::vector<EventDef> events, std::vector<UserDef> users,
           std::shared_ptr<const conflict::ConflictFn> conflicts,
           std::shared_ptr<const interest::InterestFn> interest,
           std::shared_ptr<const graph::InteractionModel> interaction,
           double beta);

  int32_t num_events() const { return static_cast<int32_t>(events_.size()); }
  int32_t num_users() const { return static_cast<int32_t>(users_.size()); }
  double beta() const { return beta_; }

  int32_t event_capacity(EventId v) const {
    return events_[static_cast<size_t>(v)].capacity;
  }
  int32_t user_capacity(UserId u) const {
    return users_[static_cast<size_t>(u)].capacity;
  }

  /// The user's bid set N_u (sorted, deduplicated at validation).
  const std::vector<EventId>& bids(UserId u) const {
    return users_[static_cast<size_t>(u)].bids;
  }

  /// The event's bidder set N_v (derived from user bids at validation).
  const std::vector<UserId>& bidders(EventId v) const {
    return bidders_[static_cast<size_t>(v)];
  }

  /// True when user u bid for event v (binary search over sorted bids).
  bool HasBid(UserId u, EventId v) const;

  /// σ(l_v, l_v').
  bool Conflicts(EventId a, EventId b) const {
    return conflicts_->Conflicts(a, b);
  }

  /// SI(l_v, l_u) in [0, 1].
  double Interest(EventId v, UserId u) const {
    return interest_->Interest(v, u);
  }

  /// D(G, u) in [0, 1].
  double Degree(UserId u) const { return interaction_->Degree(u); }

  /// Pair weight w(u, v) = β·SI(l_v, l_u) + (1-β)·D(G, u) — the per-pair
  /// utility contribution the algorithms optimize.
  double Weight(EventId v, UserId u) const {
    return beta_ * Interest(v, u) + (1.0 - beta_) * Degree(u);
  }

  const conflict::ConflictFn& conflict_fn() const { return *conflicts_; }
  const interest::InterestFn& interest_fn() const { return *interest_; }
  const graph::InteractionModel& interaction_model() const {
    return *interaction_;
  }
  std::shared_ptr<const conflict::ConflictFn> conflict_ptr() const {
    return conflicts_;
  }
  std::shared_ptr<const interest::InterestFn> interest_ptr() const {
    return interest_;
  }
  std::shared_ptr<const graph::InteractionModel> interaction_ptr() const {
    return interaction_;
  }

  /// Checks structural consistency (component sizes, bid ranges, capacities,
  /// β ∈ [0,1]); sorts and deduplicates bids and materializes the per-event
  /// bidder lists. Must be called (and return OK) before running algorithms.
  Status Validate();

  /// Replaces user u's capacity and bid set (sorted and deduplicated like
  /// Validate), patching the per-event bidder lists incrementally — the
  /// instance-side half of the incremental arrangement engine
  /// (core/instance_delta.h). Requires a validated instance; the instance
  /// stays validated on success and is untouched on failure.
  Status UpdateUser(UserId u, int32_t capacity, std::vector<EventId> bids);

  /// Replaces event v's attendance capacity c_v. Requires a validated
  /// instance.
  Status UpdateEventCapacity(EventId v, int32_t capacity);

  /// Total bid pairs Σ_u |N_u| (after validation).
  int64_t TotalBids() const;

 private:
  std::vector<EventDef> events_;
  std::vector<UserDef> users_;
  std::vector<std::vector<UserId>> bidders_;
  std::shared_ptr<const conflict::ConflictFn> conflicts_;
  std::shared_ptr<const interest::InterestFn> interest_;
  std::shared_ptr<const graph::InteractionModel> interaction_;
  double beta_;
  bool validated_ = false;
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_INSTANCE_H_
