#ifndef IGEPA_CORE_INSTANCE_H_
#define IGEPA_CORE_INSTANCE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "conflict/conflict.h"
#include "core/types.h"
#include "core/utility_kernel.h"
#include "graph/interaction_model.h"
#include "interest/interest.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// A complete IGEPA problem instance (Definition 8): events V with
/// capacities, users U with capacities and bids, the conflict function σ, the
/// interest function SI, the social-interaction model D(G, ·), and the
/// balance parameter β.
///
/// The instance owns shared, immutable handles to its functional components
/// so that cheap copies can be taken by algorithms and experiment harnesses.
class Instance {
 public:
  /// Builds an instance. Call Validate() before use; algorithms assume a
  /// validated instance (in-range bids, consistent component sizes).
  Instance(std::vector<EventDef> events, std::vector<UserDef> users,
           std::shared_ptr<const conflict::ConflictFn> conflicts,
           std::shared_ptr<const interest::InterestFn> interest,
           std::shared_ptr<const graph::InteractionModel> interaction,
           double beta);

  int32_t num_events() const { return static_cast<int32_t>(events_.size()); }
  int32_t num_users() const { return static_cast<int32_t>(users_.size()); }
  double beta() const { return beta_; }

  int32_t event_capacity(EventId v) const {
    return events_[static_cast<size_t>(v)].capacity;
  }
  int32_t user_capacity(UserId u) const {
    return users_[static_cast<size_t>(u)].capacity;
  }

  /// The user's bid set N_u (sorted, deduplicated at validation).
  const std::vector<EventId>& bids(UserId u) const {
    return users_[static_cast<size_t>(u)].bids;
  }

  /// The event's bidder set N_v (derived from user bids at validation).
  const std::vector<UserId>& bidders(EventId v) const {
    return bidders_[static_cast<size_t>(v)];
  }

  /// True when user u bid for event v (binary search over sorted bids).
  bool HasBid(UserId u, EventId v) const;

  /// σ(l_v, l_v').
  bool Conflicts(EventId a, EventId b) const {
    return conflicts_->Conflicts(a, b);
  }

  /// SI(l_v, l_u) in [0, 1]. Interest-drift deltas (UpdateInterest) overlay
  /// the base model per pair; an untouched instance pays one empty() branch.
  double Interest(EventId v, UserId u) const {
    if (!interest_overrides_.empty()) {
      const auto it = interest_overrides_.find(InterestKey(v, u));
      if (it != interest_overrides_.end()) return it->second;
    }
    return interest_->Interest(v, u);
  }

  /// D(G, u) in [0, 1]. Graph-edge deltas (ApplyGraphEdge) overlay the base
  /// model per user.
  double Degree(UserId u) const {
    if (!degree_overrides_.empty()) {
      const auto it = degree_overrides_.find(u);
      if (it != degree_overrides_.end()) return it->second;
    }
    return interaction_->Degree(u);
  }

  /// The paper's Definition-6 pair weight
  /// w(u, v) = β·SI(l_v, l_u) + (1-β)·D(G, u) — the base utility the default
  /// kernel (InteractionInterestKernel) scores columns with. Algorithms
  /// should use PairWeight(), which routes through the active kernel.
  double Weight(EventId v, UserId u) const {
    return beta_ * Interest(v, u) + (1.0 - beta_) * Degree(u);
  }

  /// The active kernel's per-pair utility w(u, v) — what every pair-shaped
  /// consumer (bid ordering, online/greedy, local search, Utility(M))
  /// optimizes. Identical to Weight() under the default kernel.
  double PairWeight(EventId v, UserId u) const {
    return kernel_->PairWeight(*this, v, u);
  }

  /// The utility kernel scoring this instance's columns. Never null;
  /// defaults to InteractionInterestKernel.
  const UtilityKernel& kernel() const { return *kernel_; }
  /// Swaps the objective. Catalogs built before the swap keep their old
  /// weights — rebuild or re-score them (the CLI sets the kernel before any
  /// catalog exists).
  void set_kernel(std::shared_ptr<const UtilityKernel> kernel) {
    if (kernel != nullptr) kernel_ = std::move(kernel);
  }

  const conflict::ConflictFn& conflict_fn() const { return *conflicts_; }
  const interest::InterestFn& interest_fn() const { return *interest_; }
  const graph::InteractionModel& interaction_model() const {
    return *interaction_;
  }
  std::shared_ptr<const conflict::ConflictFn> conflict_ptr() const {
    return conflicts_;
  }
  std::shared_ptr<const interest::InterestFn> interest_ptr() const {
    return interest_;
  }
  std::shared_ptr<const graph::InteractionModel> interaction_ptr() const {
    return interaction_;
  }

  /// Checks structural consistency (component sizes, bid ranges, capacities,
  /// β ∈ [0,1]); sorts and deduplicates bids and materializes the per-event
  /// bidder lists. Must be called (and return OK) before running algorithms.
  Status Validate();

  /// Replaces user u's capacity and bid set (sorted and deduplicated like
  /// Validate), patching the per-event bidder lists incrementally — the
  /// instance-side half of the incremental arrangement engine
  /// (core/instance_delta.h). Requires a validated instance; the instance
  /// stays validated on success and is untouched on failure.
  Status UpdateUser(UserId u, int32_t capacity, std::vector<EventId> bids);

  /// Replaces event v's attendance capacity c_v. Requires a validated
  /// instance.
  Status UpdateEventCapacity(EventId v, int32_t capacity);

  /// Interest drift: overrides SI(l_v, l_u) for one pair with `value` in
  /// [0, 1]. Requires a validated instance; part of the weight-delta half of
  /// the incremental engine (the catalog re-scores, never re-enumerates).
  Status UpdateInterest(EventId v, UserId u, double value);

  /// Graph drift: adds (add=true) or removes a friendship edge {a, b},
  /// shifting both endpoints' degree centrality by ±1/(|U|−1), clamped to
  /// [0, 1]. Applied at the degree level — the interaction model's D(G, u)
  /// is all the utility observes (DESIGN.md S6) — so the instance keeps no
  /// edge set and cannot reject a duplicate add or a remove of an absent
  /// edge. Streams derived from a real graph should do that bookkeeping;
  /// the synthetic generators deliberately skip it and emit *memoryless*
  /// edge mutations (a bounded random walk on the touched degrees), which
  /// exercises the same re-score machinery.
  Status ApplyGraphEdge(UserId a, UserId b, bool add);

  /// Total bid pairs Σ_u |N_u| (after validation).
  int64_t TotalBids() const;

 private:
  static uint64_t InterestKey(EventId v, UserId u) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(v)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(u));
  }

  std::vector<EventDef> events_;
  std::vector<UserDef> users_;
  std::vector<std::vector<UserId>> bidders_;
  std::shared_ptr<const conflict::ConflictFn> conflicts_;
  std::shared_ptr<const interest::InterestFn> interest_;
  std::shared_ptr<const graph::InteractionModel> interaction_;
  std::shared_ptr<const UtilityKernel> kernel_;
  /// Weight-delta overlays on the shared immutable models. Plain members, so
  /// instance copies stay independent (mutating one never leaks into the
  /// other — the same semantics UpdateUser has for bids).
  std::unordered_map<uint64_t, double> interest_overrides_;
  std::unordered_map<UserId, double> degree_overrides_;
  double beta_;
  bool validated_ = false;
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_INSTANCE_H_
