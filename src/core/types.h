#ifndef IGEPA_CORE_TYPES_H_
#define IGEPA_CORE_TYPES_H_

#include <cstdint>
#include <vector>

namespace igepa {
namespace core {

/// Dense event identifier, [0, num_events).
using EventId = int32_t;
/// Dense user identifier, [0, num_users).
using UserId = int32_t;

/// Static description of an event (Definition 1): its attendance capacity
/// c_v. Attribute-vector content (time, categories) lives in the conflict and
/// interest functions, which are the paper's σ(l_v, ·) and SI(l_v, ·).
struct EventDef {
  int32_t capacity = 0;
};

/// Static description of a user (Definition 2): capacity c_u (maximum number
/// of events attendable) and the bid set N_u.
struct UserDef {
  int32_t capacity = 0;
  std::vector<EventId> bids;
};

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_TYPES_H_
