#ifndef IGEPA_CORE_ADMISSIBLE_H_
#define IGEPA_CORE_ADMISSIBLE_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// Options for admissible-set enumeration.
struct AdmissibleOptions {
  /// Cap on |A_u| per user. The paper argues |A_u| stays reasonable because
  /// users bid few events; the cap guards adversarial inputs. When the cap
  /// binds, enumeration prioritizes sets containing high-weight events (bids
  /// are explored in descending w(u,v) order, include-branch first), so the
  /// dropped sets are the least valuable ones.
  int32_t max_sets_per_user = 4096;
};

/// The admissible event sets A_u of one user: every non-empty S ⊆ N_u with
/// |S| ≤ c_u and no conflicting pair inside S (§III). `sets[k]` is sorted by
/// event id; `truncated` reports whether the cap bound.
struct AdmissibleSets {
  std::vector<std::vector<EventId>> sets;
  bool truncated = false;
};

/// Enumerates A_u for one user.
AdmissibleSets EnumerateAdmissibleSetsForUser(const Instance& instance,
                                              UserId u,
                                              const AdmissibleOptions& options);

/// Enumerates A_u for every user.
std::vector<AdmissibleSets> EnumerateAdmissibleSets(
    const Instance& instance, const AdmissibleOptions& options = {});

/// Σ_v∈S w(u, v) — the LP objective coefficient w(u, S).
double SetWeight(const Instance& instance, UserId u,
                 const std::vector<EventId>& set);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_ADMISSIBLE_H_
