#ifndef IGEPA_CORE_ADMISSIBLE_H_
#define IGEPA_CORE_ADMISSIBLE_H_

#include <cstdint>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace core {

/// Options for admissible-set enumeration.
struct AdmissibleOptions {
  /// Cap on |A_u| per user. The paper argues |A_u| stays reasonable because
  /// users bid few events; the cap guards adversarial inputs. When the cap
  /// binds, enumeration prioritizes sets containing high-weight events (bids
  /// are explored in descending w(u,v) order, include-branch first), so the
  /// dropped sets are the least valuable ones.
  int32_t max_sets_per_user = 4096;
  /// Worker threads for AdmissibleCatalog::Build (users are independent, so
  /// enumeration parallelizes by contiguous user chunks; the result is
  /// deterministic for any thread count). 0 = hardware concurrency. The
  /// legacy per-user enumerators below ignore this field.
  int32_t num_threads = 0;
};

/// DEPRECATED: the nested per-user representation of the admissible sets A_u.
/// New code should use core::AdmissibleCatalog (admissible_catalog.h), which
/// stores every set as a span in one flat CSR arena with precomputed weights
/// and an inverted event→column index; this struct survives as the reference
/// implementation for equivalence tests and for callers not yet migrated.
///
/// The admissible event sets A_u of one user: every non-empty S ⊆ N_u with
/// |S| ≤ c_u and no conflicting pair inside S (§III). `sets[k]` is sorted by
/// event id; `truncated` reports whether the cap bound.
struct AdmissibleSets {
  std::vector<std::vector<EventId>> sets;
  bool truncated = false;
};

/// Enumerates A_u for one user (still the right tool for streaming/online
/// settings where no global catalog exists).
AdmissibleSets EnumerateAdmissibleSetsForUser(const Instance& instance,
                                              UserId u,
                                              const AdmissibleOptions& options);

/// DEPRECATED: enumerates A_u for every user into the nested representation.
/// Prefer AdmissibleCatalog::Build, which emits into a flat arena and powers
/// the whole Algorithm-1 pipeline without re-copying.
std::vector<AdmissibleSets> EnumerateAdmissibleSets(
    const Instance& instance, const AdmissibleOptions& options = {});

/// DEPRECATED: Σ_v∈S w(u, v) — the LP objective coefficient w(u, S). The
/// catalog precomputes this per column (AdmissibleCatalog::weight).
double SetWeight(const Instance& instance, UserId u,
                 const std::vector<EventId>& set);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_ADMISSIBLE_H_
