#include "core/utility_kernel.h"

#include <cmath>

#include "core/instance.h"
#include "util/string_util.h"

namespace igepa {
namespace core {

void UtilityKernel::ScoreColumns(const Instance& instance, UserId u,
                                 std::span<const std::span<const EventId>> sets,
                                 std::span<double> out_weights) const {
  for (size_t k = 0; k < sets.size(); ++k) {
    // Left-to-right over the ascending-sorted span — the exact summation
    // order the pre-kernel catalog used, so the default kernel reproduces
    // historical weights bit for bit.
    double w = 0.0;
    for (EventId v : sets[k]) w += PairWeight(instance, v, u);
    out_weights[k] = w;
  }
}

double UtilityKernel::ScoreSet(const Instance& instance, UserId u,
                               std::span<const EventId> set) const {
  double w = 0.0;
  ScoreColumns(instance, u, std::span<const std::span<const EventId>>(&set, 1),
               std::span<double>(&w, 1));
  return w;
}

const std::string& InteractionInterestKernel::id() const {
  static const std::string kId = "interaction_interest";
  return kId;
}

double InteractionInterestKernel::PairWeight(const Instance& instance,
                                             EventId v, UserId u) const {
  return instance.Weight(v, u);
}

void InteractionInterestKernel::ScoreColumns(
    const Instance& instance, UserId u,
    std::span<const std::span<const EventId>> sets,
    std::span<double> out_weights) const {
  for (size_t k = 0; k < sets.size(); ++k) {
    double w = 0.0;
    for (EventId v : sets[k]) w += instance.Weight(v, u);
    out_weights[k] = w;
  }
}

const std::string& InterestOnlyKernel::id() const {
  static const std::string kId = "interest_only";
  return kId;
}

double InterestOnlyKernel::PairWeight(const Instance& instance, EventId v,
                                      UserId u) const {
  return instance.Interest(v, u);
}

CohesionKernel::CohesionKernel(double gamma)
    : gamma_(gamma),
      id_(gamma == 0.25 ? "cohesion"
                        : "cohesion:" + FormatDouble(gamma, 17)) {}

const std::string& CohesionKernel::id() const { return id_; }

double CohesionKernel::PairWeight(const Instance& instance, EventId v,
                                  UserId u) const {
  return instance.Weight(v, u);
}

void CohesionKernel::ScoreColumns(
    const Instance& instance, UserId u,
    std::span<const std::span<const EventId>> sets,
    std::span<double> out_weights) const {
  for (size_t k = 0; k < sets.size(); ++k) {
    if (sets[k].empty()) {
      out_weights[k] = 0.0;
      continue;
    }
    double w = 0.0;
    for (EventId v : sets[k]) w += PairWeight(instance, v, u);
    const double size_bonus =
        1.0 + gamma_ * static_cast<double>(sets[k].size() - 1);
    out_weights[k] = w * size_bonus;
  }
}

const std::shared_ptr<const UtilityKernel>& DefaultUtilityKernel() {
  static const std::shared_ptr<const UtilityKernel> kDefault =
      std::make_shared<InteractionInterestKernel>();
  return kDefault;
}

Result<std::shared_ptr<const UtilityKernel>> MakeUtilityKernel(
    const std::string& id) {
  if (id == "interaction_interest") {
    return DefaultUtilityKernel();
  }
  if (id == "interest_only") {
    static const std::shared_ptr<const UtilityKernel> kKernel =
        std::make_shared<InterestOnlyKernel>();
    return kKernel;
  }
  if (id == "cohesion") {
    static const std::shared_ptr<const UtilityKernel> kKernel =
        std::make_shared<CohesionKernel>();
    return kKernel;
  }
  if (id.rfind("cohesion:", 0) == 0) {
    double gamma = 0.0;
    if (!ParseDouble(id.substr(9), &gamma) || !(gamma >= 0.0) ||
        !std::isfinite(gamma)) {
      return Status::InvalidArgument(
          "bad cohesion gamma in kernel id '" + id +
          "' (want cohesion:<finite gamma >= 0>)");
    }
    return std::shared_ptr<const UtilityKernel>(
        std::make_shared<CohesionKernel>(gamma));
  }
  std::string known;
  for (const std::string& k : UtilityKernelIds()) {
    if (!known.empty()) known += " | ";
    known += k;
  }
  return Status::InvalidArgument("unknown utility kernel '" + id + "' (" +
                                 known + ")");
}

std::vector<std::string> UtilityKernelIds() {
  return {"interaction_interest", "interest_only", "cohesion"};
}

}  // namespace core
}  // namespace igepa
