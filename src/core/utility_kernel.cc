#include "core/utility_kernel.h"

#include <cmath>

#include "core/instance.h"
#include "util/simd.h"
#include "util/string_util.h"

namespace igepa {
namespace core {

void UtilityKernel::ScoreColumns(const Instance& instance, UserId u,
                                 std::span<const std::span<const EventId>> sets,
                                 std::span<double> out_weights) const {
  for (size_t k = 0; k < sets.size(); ++k) {
    // Left-to-right over the ascending-sorted span — the exact summation
    // order the pre-kernel catalog used, so the default kernel reproduces
    // historical weights bit for bit.
    double w = 0.0;
    for (EventId v : sets[k]) w += PairWeight(instance, v, u);
    out_weights[k] = w;
  }
}

void UtilityKernel::ScoreColumnsSoA(const Instance& instance, UserId u,
                                    const double* /*event_weight*/,
                                    const EventId* pool,
                                    const int64_t* col_begin,
                                    int32_t num_columns,
                                    double* out_weights) const {
  // Generic fallback: rebuild the span batch and defer to the kernel's
  // ScoreColumns — correct for any override, at AoS cost. The built-in
  // kernels shadow this with lane reductions.
  std::vector<std::span<const EventId>> sets;
  sets.reserve(static_cast<size_t>(num_columns));
  for (int32_t k = 0; k < num_columns; ++k) {
    const int64_t b = col_begin[k];
    const int64_t e = col_begin[k + 1];
    sets.emplace_back(pool + b, static_cast<size_t>(e - b));
  }
  ScoreColumns(instance, u, sets,
               std::span<double>(out_weights, static_cast<size_t>(num_columns)));
}

void UtilityKernel::PairWeightLane(const Instance& instance, UserId u,
                                   const EventId* events, int32_t num_events,
                                   double* out_weights) const {
  for (int32_t i = 0; i < num_events; ++i) {
    out_weights[i] = PairWeight(instance, events[i], u);
  }
}

double UtilityKernel::ScoreSet(const Instance& instance, UserId u,
                               std::span<const EventId> set) const {
  double w = 0.0;
  ScoreColumns(instance, u, std::span<const std::span<const EventId>>(&set, 1),
               std::span<double>(&w, 1));
  return w;
}

const std::string& InteractionInterestKernel::id() const {
  static const std::string kId = "interaction_interest";
  return kId;
}

double InteractionInterestKernel::PairWeight(const Instance& instance,
                                             EventId v, UserId u) const {
  return instance.Weight(v, u);
}

void InteractionInterestKernel::PairWeightLane(const Instance& instance,
                                               UserId u, const EventId* events,
                                               int32_t num_events,
                                               double* out_weights) const {
  // Instance::Weight is β·SI(v, u) + (1−β)·D(G, u); the second product only
  // depends on u, so it is computed once for the lane. Identical operands,
  // identical order — every entry carries the same bits as Weight(v, u).
  const double beta = instance.beta();
  const double degree_term = (1.0 - beta) * instance.Degree(u);
  for (int32_t i = 0; i < num_events; ++i) {
    out_weights[i] = beta * instance.Interest(events[i], u) + degree_term;
  }
}

void InteractionInterestKernel::ScoreColumns(
    const Instance& instance, UserId u,
    std::span<const std::span<const EventId>> sets,
    std::span<double> out_weights) const {
  for (size_t k = 0; k < sets.size(); ++k) {
    double w = 0.0;
    for (EventId v : sets[k]) w += instance.Weight(v, u);
    out_weights[k] = w;
  }
}

void InteractionInterestKernel::ScoreColumnsSoA(
    const Instance& /*instance*/, UserId /*u*/, const double* event_weight,
    const EventId* pool, const int64_t* col_begin, int32_t num_columns,
    double* out_weights) const {
  util::simd::SumColumnLanes(event_weight, pool, col_begin, num_columns,
                             out_weights);
}

const std::string& InterestOnlyKernel::id() const {
  static const std::string kId = "interest_only";
  return kId;
}

double InterestOnlyKernel::PairWeight(const Instance& instance, EventId v,
                                      UserId u) const {
  return instance.Interest(v, u);
}

void InterestOnlyKernel::PairWeightLane(const Instance& instance, UserId u,
                                        const EventId* events,
                                        int32_t num_events,
                                        double* out_weights) const {
  for (int32_t i = 0; i < num_events; ++i) {
    out_weights[i] = instance.Interest(events[i], u);
  }
}

void InterestOnlyKernel::ScoreColumnsSoA(const Instance& /*instance*/,
                                         UserId /*u*/,
                                         const double* event_weight,
                                         const EventId* pool,
                                         const int64_t* col_begin,
                                         int32_t num_columns,
                                         double* out_weights) const {
  util::simd::SumColumnLanes(event_weight, pool, col_begin, num_columns,
                             out_weights);
}

CohesionKernel::CohesionKernel(double gamma)
    : gamma_(gamma),
      id_(gamma == 0.25 ? "cohesion"
                        : "cohesion:" + FormatDouble(gamma, 17)) {}

const std::string& CohesionKernel::id() const { return id_; }

double CohesionKernel::PairWeight(const Instance& instance, EventId v,
                                  UserId u) const {
  return instance.Weight(v, u);
}

void CohesionKernel::PairWeightLane(const Instance& instance, UserId u,
                                    const EventId* events, int32_t num_events,
                                    double* out_weights) const {
  // Same hoist as the default kernel — cohesion pairs ARE Instance::Weight.
  const double beta = instance.beta();
  const double degree_term = (1.0 - beta) * instance.Degree(u);
  for (int32_t i = 0; i < num_events; ++i) {
    out_weights[i] = beta * instance.Interest(events[i], u) + degree_term;
  }
}

void CohesionKernel::ScoreColumns(
    const Instance& instance, UserId u,
    std::span<const std::span<const EventId>> sets,
    std::span<double> out_weights) const {
  for (size_t k = 0; k < sets.size(); ++k) {
    if (sets[k].empty()) {
      out_weights[k] = 0.0;
      continue;
    }
    // Non-virtual Instance::Weight, same devirtualization as the default
    // kernel: PairWeight here IS instance.Weight, and the virtual hop per
    // (set, event) incidence was the dominant cost of cohesion re-scores.
    double w = 0.0;
    for (EventId v : sets[k]) w += instance.Weight(v, u);
    const double size_bonus =
        1.0 + gamma_ * static_cast<double>(sets[k].size() - 1);
    out_weights[k] = w * size_bonus;
  }
}

void CohesionKernel::ScoreColumnsSoA(const Instance& /*instance*/,
                                     UserId /*u*/, const double* event_weight,
                                     const EventId* pool,
                                     const int64_t* col_begin,
                                     int32_t num_columns,
                                     double* out_weights) const {
  util::simd::SumColumnLanes(event_weight, pool, col_begin, num_columns,
                             out_weights);
  for (int32_t k = 0; k < num_columns; ++k) {
    const int64_t size = col_begin[k + 1] - col_begin[k];
    if (size == 0) continue;  // lane sum already wrote the exact 0.0
    out_weights[k] *= 1.0 + gamma_ * static_cast<double>(size - 1);
  }
}

const std::shared_ptr<const UtilityKernel>& DefaultUtilityKernel() {
  static const std::shared_ptr<const UtilityKernel> kDefault =
      std::make_shared<InteractionInterestKernel>();
  return kDefault;
}

Result<std::shared_ptr<const UtilityKernel>> MakeUtilityKernel(
    const std::string& id) {
  if (id == "interaction_interest") {
    return DefaultUtilityKernel();
  }
  if (id == "interest_only") {
    static const std::shared_ptr<const UtilityKernel> kKernel =
        std::make_shared<InterestOnlyKernel>();
    return kKernel;
  }
  if (id == "cohesion") {
    static const std::shared_ptr<const UtilityKernel> kKernel =
        std::make_shared<CohesionKernel>();
    return kKernel;
  }
  if (id.rfind("cohesion:", 0) == 0) {
    double gamma = 0.0;
    if (!ParseDouble(id.substr(9), &gamma) || !(gamma >= 0.0) ||
        !std::isfinite(gamma)) {
      return Status::InvalidArgument(
          "bad cohesion gamma in kernel id '" + id +
          "' (want cohesion:<finite gamma >= 0>)");
    }
    return std::shared_ptr<const UtilityKernel>(
        std::make_shared<CohesionKernel>(gamma));
  }
  std::string known;
  for (const std::string& k : UtilityKernelIds()) {
    if (!known.empty()) known += " | ";
    known += k;
  }
  return Status::InvalidArgument("unknown utility kernel '" + id + "' (" +
                                 known + ")");
}

std::vector<std::string> UtilityKernelIds() {
  return {"interaction_interest", "interest_only", "cohesion"};
}

}  // namespace core
}  // namespace igepa
