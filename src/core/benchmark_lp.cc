#include "core/benchmark_lp.h"

namespace igepa {
namespace core {

BenchmarkLp BuildBenchmarkLp(const Instance& instance,
                             const AdmissibleCatalog& catalog) {
  BenchmarkLp out;
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  // Constraint (2): one admissible set per user.
  for (UserId u = 0; u < nu; ++u) {
    out.model.AddRow(lp::Sense::kLe, 1.0);
  }
  // Constraint (3): event capacities.
  for (EventId v = 0; v < nv; ++v) {
    out.model.AddRow(lp::Sense::kLe,
                     static_cast<double>(instance.event_capacity(v)));
  }
  out.column_map.reserve(static_cast<size_t>(catalog.num_live_columns()));
  out.user_col_begin.assign(static_cast<size_t>(nu) + 1, 0);
  for (UserId u = 0; u < nu; ++u) {
    out.user_col_begin[static_cast<size_t>(u) + 1] =
        out.user_col_begin[static_cast<size_t>(u)] + catalog.num_sets(u);
  }
  for (UserId u = 0; u < nu; ++u) {
    for (int32_t j = catalog.user_columns_begin(u);
         j < catalog.user_columns_end(u); ++j) {
      const auto set = catalog.set(j);
      std::vector<lp::ColumnEntry> entries;
      entries.reserve(set.size() + 1);
      entries.push_back({out.UserRow(u), 1.0});
      for (EventId v : set) {
        entries.push_back({out.EventRow(instance, v), 1.0});
      }
      out.model.AddColumn(catalog.weight(j), 0.0, 1.0, std::move(entries));
      out.column_map.emplace_back(u, j - catalog.user_columns_begin(u));
    }
  }
  return out;
}

}  // namespace core
}  // namespace igepa
