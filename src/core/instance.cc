#include "core/instance.h"

#include <algorithm>
#include <string>

namespace igepa {
namespace core {

Instance::Instance(std::vector<EventDef> events, std::vector<UserDef> users,
                   std::shared_ptr<const conflict::ConflictFn> conflicts,
                   std::shared_ptr<const interest::InterestFn> interest,
                   std::shared_ptr<const graph::InteractionModel> interaction,
                   double beta)
    : events_(std::move(events)),
      users_(std::move(users)),
      conflicts_(std::move(conflicts)),
      interest_(std::move(interest)),
      interaction_(std::move(interaction)),
      beta_(beta) {}

bool Instance::HasBid(UserId u, EventId v) const {
  const auto& b = users_[static_cast<size_t>(u)].bids;
  return std::binary_search(b.begin(), b.end(), v);
}

Status Instance::Validate() {
  if (beta_ < 0.0 || beta_ > 1.0) {
    return Status::InvalidArgument("beta must be in [0,1], got " +
                                   std::to_string(beta_));
  }
  if (conflicts_ == nullptr || interest_ == nullptr ||
      interaction_ == nullptr) {
    return Status::InvalidArgument("instance component is null");
  }
  const int32_t nv = num_events();
  const int32_t nu = num_users();
  if (conflicts_->num_events() != nv) {
    return Status::InvalidArgument("conflict function covers " +
                                   std::to_string(conflicts_->num_events()) +
                                   " events, instance has " +
                                   std::to_string(nv));
  }
  if (interest_->num_events() != nv || interest_->num_users() != nu) {
    return Status::InvalidArgument("interest function dimensions mismatch");
  }
  if (interaction_->num_users() != nu) {
    return Status::InvalidArgument("interaction model covers " +
                                   std::to_string(interaction_->num_users()) +
                                   " users, instance has " +
                                   std::to_string(nu));
  }
  for (int32_t v = 0; v < nv; ++v) {
    if (events_[static_cast<size_t>(v)].capacity < 0) {
      return Status::InvalidArgument("event " + std::to_string(v) +
                                     " has negative capacity");
    }
  }
  bidders_.assign(static_cast<size_t>(nv), {});
  for (int32_t u = 0; u < nu; ++u) {
    auto& def = users_[static_cast<size_t>(u)];
    if (def.capacity < 0) {
      return Status::InvalidArgument("user " + std::to_string(u) +
                                     " has negative capacity");
    }
    std::sort(def.bids.begin(), def.bids.end());
    def.bids.erase(std::unique(def.bids.begin(), def.bids.end()),
                   def.bids.end());
    for (EventId v : def.bids) {
      if (v < 0 || v >= nv) {
        return Status::InvalidArgument("user " + std::to_string(u) +
                                       " bids for out-of-range event " +
                                       std::to_string(v));
      }
      bidders_[static_cast<size_t>(v)].push_back(u);
    }
  }
  validated_ = true;
  return Status::OK();
}

int64_t Instance::TotalBids() const {
  int64_t total = 0;
  for (const auto& u : users_) total += static_cast<int64_t>(u.bids.size());
  return total;
}

}  // namespace core
}  // namespace igepa
