#include "core/instance.h"

#include <algorithm>
#include <string>

namespace igepa {
namespace core {

Instance::Instance(std::vector<EventDef> events, std::vector<UserDef> users,
                   std::shared_ptr<const conflict::ConflictFn> conflicts,
                   std::shared_ptr<const interest::InterestFn> interest,
                   std::shared_ptr<const graph::InteractionModel> interaction,
                   double beta)
    : events_(std::move(events)),
      users_(std::move(users)),
      conflicts_(std::move(conflicts)),
      interest_(std::move(interest)),
      interaction_(std::move(interaction)),
      kernel_(DefaultUtilityKernel()),
      beta_(beta) {}

bool Instance::HasBid(UserId u, EventId v) const {
  const auto& b = users_[static_cast<size_t>(u)].bids;
  return std::binary_search(b.begin(), b.end(), v);
}

Status Instance::Validate() {
  if (beta_ < 0.0 || beta_ > 1.0) {
    return Status::InvalidArgument("beta must be in [0,1], got " +
                                   std::to_string(beta_));
  }
  if (conflicts_ == nullptr || interest_ == nullptr ||
      interaction_ == nullptr) {
    return Status::InvalidArgument("instance component is null");
  }
  const int32_t nv = num_events();
  const int32_t nu = num_users();
  if (conflicts_->num_events() != nv) {
    return Status::InvalidArgument("conflict function covers " +
                                   std::to_string(conflicts_->num_events()) +
                                   " events, instance has " +
                                   std::to_string(nv));
  }
  if (interest_->num_events() != nv || interest_->num_users() != nu) {
    return Status::InvalidArgument("interest function dimensions mismatch");
  }
  if (interaction_->num_users() != nu) {
    return Status::InvalidArgument("interaction model covers " +
                                   std::to_string(interaction_->num_users()) +
                                   " users, instance has " +
                                   std::to_string(nu));
  }
  for (int32_t v = 0; v < nv; ++v) {
    if (events_[static_cast<size_t>(v)].capacity < 0) {
      return Status::InvalidArgument("event " + std::to_string(v) +
                                     " has negative capacity");
    }
  }
  bidders_.assign(static_cast<size_t>(nv), {});
  for (int32_t u = 0; u < nu; ++u) {
    auto& def = users_[static_cast<size_t>(u)];
    if (def.capacity < 0) {
      return Status::InvalidArgument("user " + std::to_string(u) +
                                     " has negative capacity");
    }
    std::sort(def.bids.begin(), def.bids.end());
    def.bids.erase(std::unique(def.bids.begin(), def.bids.end()),
                   def.bids.end());
    for (EventId v : def.bids) {
      if (v < 0 || v >= nv) {
        return Status::InvalidArgument("user " + std::to_string(u) +
                                       " bids for out-of-range event " +
                                       std::to_string(v));
      }
      bidders_[static_cast<size_t>(v)].push_back(u);
    }
  }
  validated_ = true;
  return Status::OK();
}

Status Instance::UpdateUser(UserId u, int32_t capacity,
                            std::vector<EventId> bids) {
  if (!validated_) {
    return Status::FailedPrecondition("UpdateUser requires Validate() first");
  }
  if (u < 0 || u >= num_users()) {
    return Status::InvalidArgument("UpdateUser: user " + std::to_string(u) +
                                   " out of range");
  }
  if (capacity < 0) {
    return Status::InvalidArgument("UpdateUser: negative capacity");
  }
  std::sort(bids.begin(), bids.end());
  bids.erase(std::unique(bids.begin(), bids.end()), bids.end());
  for (EventId v : bids) {
    if (v < 0 || v >= num_events()) {
      return Status::InvalidArgument("UpdateUser: bid for out-of-range event " +
                                     std::to_string(v));
    }
  }
  UserDef& def = users_[static_cast<size_t>(u)];
  // Patch the bidder lists: drop u from events no longer bid, insert (keeping
  // the list sorted by user id) into newly bid events. Both lists are sorted,
  // so one merge walk finds the symmetric difference.
  size_t i = 0;
  size_t k = 0;
  const std::vector<EventId>& old_bids = def.bids;
  while (i < old_bids.size() || k < bids.size()) {
    if (k == bids.size() ||
        (i < old_bids.size() && old_bids[i] < bids[k])) {
      std::vector<UserId>& list = bidders_[static_cast<size_t>(old_bids[i])];
      list.erase(std::lower_bound(list.begin(), list.end(), u));
      ++i;
    } else if (i == old_bids.size() || bids[k] < old_bids[i]) {
      std::vector<UserId>& list = bidders_[static_cast<size_t>(bids[k])];
      list.insert(std::lower_bound(list.begin(), list.end(), u), u);
      ++k;
    } else {
      ++i;
      ++k;
    }
  }
  def.capacity = capacity;
  def.bids = std::move(bids);
  return Status::OK();
}

Status Instance::UpdateEventCapacity(EventId v, int32_t capacity) {
  if (!validated_) {
    return Status::FailedPrecondition(
        "UpdateEventCapacity requires Validate() first");
  }
  if (v < 0 || v >= num_events()) {
    return Status::InvalidArgument("UpdateEventCapacity: event " +
                                   std::to_string(v) + " out of range");
  }
  if (capacity < 0) {
    return Status::InvalidArgument("UpdateEventCapacity: negative capacity");
  }
  events_[static_cast<size_t>(v)].capacity = capacity;
  return Status::OK();
}

Status Instance::UpdateInterest(EventId v, UserId u, double value) {
  if (!validated_) {
    return Status::FailedPrecondition(
        "UpdateInterest requires Validate() first");
  }
  if (v < 0 || v >= num_events() || u < 0 || u >= num_users()) {
    return Status::InvalidArgument("UpdateInterest: pair (" +
                                   std::to_string(v) + "," +
                                   std::to_string(u) + ") out of range");
  }
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument("UpdateInterest: value " +
                                   std::to_string(value) +
                                   " outside [0,1]");
  }
  interest_overrides_[InterestKey(v, u)] = value;
  return Status::OK();
}

Status Instance::ApplyGraphEdge(UserId a, UserId b, bool add) {
  if (!validated_) {
    return Status::FailedPrecondition(
        "ApplyGraphEdge requires Validate() first");
  }
  if (a < 0 || a >= num_users() || b < 0 || b >= num_users()) {
    return Status::InvalidArgument("ApplyGraphEdge: edge {" +
                                   std::to_string(a) + "," +
                                   std::to_string(b) + "} out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("ApplyGraphEdge: self edge on user " +
                                   std::to_string(a));
  }
  if (num_users() <= 1) return Status::OK();  // D is identically 0
  const double step =
      1.0 / static_cast<double>(num_users() - 1) * (add ? 1.0 : -1.0);
  for (UserId endpoint : {a, b}) {
    const double shifted =
        std::clamp(Degree(endpoint) + step, 0.0, 1.0);
    degree_overrides_[endpoint] = shifted;
  }
  return Status::OK();
}

int64_t Instance::TotalBids() const {
  int64_t total = 0;
  for (const auto& u : users_) total += static_cast<int64_t>(u.bids.size());
  return total;
}

}  // namespace core
}  // namespace igepa
