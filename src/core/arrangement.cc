#include "core/arrangement.h"

#include <algorithm>
#include <span>

namespace igepa {
namespace core {

Arrangement::Arrangement(int32_t num_events, int32_t num_users)
    : num_events_(num_events), num_users_(num_users) {
  by_user_.resize(static_cast<size_t>(num_users));
  by_event_.resize(static_cast<size_t>(num_events));
}

Status Arrangement::Add(EventId v, UserId u) {
  if (v < 0 || v >= num_events_ || u < 0 || u >= num_users_) {
    return Status::InvalidArgument("pair (" + std::to_string(v) + "," +
                                   std::to_string(u) + ") out of range");
  }
  auto& events = by_user_[static_cast<size_t>(u)];
  const auto it = std::lower_bound(events.begin(), events.end(), v);
  if (it != events.end() && *it == v) {
    return Status::AlreadyExists("pair (" + std::to_string(v) + "," +
                                 std::to_string(u) + ") already present");
  }
  events.insert(it, v);
  auto& users = by_event_[static_cast<size_t>(v)];
  users.insert(std::lower_bound(users.begin(), users.end(), u), u);
  pairs_.emplace_back(v, u);
  return Status::OK();
}

Status Arrangement::Remove(EventId v, UserId u) {
  if (v < 0 || v >= num_events_ || u < 0 || u >= num_users_) {
    return Status::InvalidArgument("pair out of range");
  }
  auto& events = by_user_[static_cast<size_t>(u)];
  const auto it = std::lower_bound(events.begin(), events.end(), v);
  if (it == events.end() || *it != v) {
    return Status::NotFound("pair (" + std::to_string(v) + "," +
                            std::to_string(u) + ") not present");
  }
  events.erase(it);
  auto& users = by_event_[static_cast<size_t>(v)];
  users.erase(std::lower_bound(users.begin(), users.end(), u));
  pairs_.erase(std::find(pairs_.begin(), pairs_.end(), std::make_pair(v, u)));
  return Status::OK();
}

bool Arrangement::Contains(EventId v, UserId u) const {
  if (v < 0 || v >= num_events_ || u < 0 || u >= num_users_) return false;
  const auto& events = by_user_[static_cast<size_t>(u)];
  return std::binary_search(events.begin(), events.end(), v);
}

double Arrangement::Utility(const Instance& instance) const {
  double total = 0.0;
  for (const auto& [v, u] : pairs_) total += instance.PairWeight(v, u);
  return total;
}

double Arrangement::KernelUtility(const Instance& instance) const {
  double total = 0.0;
  for (UserId u = 0; u < num_users_; ++u) {
    const std::vector<EventId>& held = by_user_[static_cast<size_t>(u)];
    if (held.empty()) continue;
    total += instance.kernel().ScoreSet(
        instance, u, std::span<const EventId>(held.data(), held.size()));
  }
  return total;
}

UtilityBreakdown Arrangement::Breakdown(const Instance& instance) const {
  UtilityBreakdown out;
  for (const auto& [v, u] : pairs_) {
    out.interest_total += instance.Interest(v, u);
    out.degree_total += instance.Degree(u);
  }
  out.total = instance.beta() * out.interest_total +
              (1.0 - instance.beta()) * out.degree_total;
  return out;
}

Status Arrangement::CheckFeasible(const Instance& instance) const {
  if (num_events_ != instance.num_events() ||
      num_users_ != instance.num_users()) {
    return Status::FailedPrecondition("arrangement/instance size mismatch");
  }
  // Bid constraint: {v | (v,u) ∈ M} ⊆ N_u.
  for (const auto& [v, u] : pairs_) {
    if (!instance.HasBid(u, v)) {
      return Status::FailedPrecondition(
          "bid constraint violated: user " + std::to_string(u) +
          " did not bid for event " + std::to_string(v));
    }
  }
  // Capacity constraints.
  for (EventId v = 0; v < num_events_; ++v) {
    const auto& users = by_event_[static_cast<size_t>(v)];
    if (static_cast<int64_t>(users.size()) > instance.event_capacity(v)) {
      return Status::FailedPrecondition(
          "event capacity violated: event " + std::to_string(v) + " has " +
          std::to_string(users.size()) + " attendees, capacity " +
          std::to_string(instance.event_capacity(v)));
    }
  }
  for (UserId u = 0; u < num_users_; ++u) {
    const auto& events = by_user_[static_cast<size_t>(u)];
    if (static_cast<int64_t>(events.size()) > instance.user_capacity(u)) {
      return Status::FailedPrecondition(
          "user capacity violated: user " + std::to_string(u) +
          " attends " + std::to_string(events.size()) + " events, capacity " +
          std::to_string(instance.user_capacity(u)));
    }
    // Conflict constraint within the user's assigned events.
    for (size_t i = 0; i < events.size(); ++i) {
      for (size_t j = i + 1; j < events.size(); ++j) {
        if (instance.Conflicts(events[i], events[j])) {
          return Status::FailedPrecondition(
              "conflict constraint violated: user " + std::to_string(u) +
              " assigned conflicting events " + std::to_string(events[i]) +
              " and " + std::to_string(events[j]));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace igepa
