#ifndef IGEPA_CORE_WARM_TICK_H_
#define IGEPA_CORE_WARM_TICK_H_

#include <cstdint>

#include "core/admissible_catalog.h"
#include "core/arrangement.h"
#include "core/benchmark_dual.h"
#include "core/instance.h"
#include "core/instance_delta.h"
#include "core/lp_packing.h"
#include "util/result.h"
#include "util/rng.h"

namespace igepa {
namespace core {

/// What one warm tick reports besides mutating the engine state.
struct WarmTickReport {
  Arrangement arrangement;
  /// Users re-sampled this tick: registration-touched ∪ weight-touched.
  int32_t touched_users = 0;
  int32_t event_updates = 0;
  /// Live columns the catalog re-scored through the kernel for the delta's
  /// graph-edge/interest-drift half (0 for pure registration ticks).
  int32_t columns_rescored = 0;
  bool compacted = false;
};

/// One warm tick of the incremental engine (DESIGN.md §5 S15) over a single
/// InstanceDelta — the canonical sequencing both the replay driver
/// (exp::RunReplay, one tick per stream entry) and the serving layer
/// (serve::ArrangementService, one tick per coalesced epoch batch) execute.
/// Having exactly one implementation is what keeps the two paths
/// bit-identical by construction: an epoch over a coalesced batch IS a
/// replay tick.
///
/// Steps, in the order that matters:
///   1. validate the delta's ids against the instance (before any state is
///      indexed);
///   2. RetireSamples for the touched users while their column ids still
///      resolve, folding in capacity-touched events (the dirty-event set of
///      the localized re-round);
///   3. core::ApplyDelta on the instance, then AdmissibleCatalog::ApplyDelta
///      (remapping the cached rounding/warm state if the catalog compacted);
///   4. warm-started structured dual solve with exactly the touched users
///      marked stale (result into fractional->lp; the new warm-start state
///      replaces *warm only after the whole tick succeeds);
///   5. RoundFractionalDelta over the touched users/dirty events, and a
///      feasibility check of the produced arrangement.
///
/// On success every borrowed pointer holds the post-tick state. On error the
/// tick aborts mid-pipeline and the engine state must be considered
/// poisoned (both callers stop consuming; ids are validated up front, so
/// errors only arise from genuine solver/rounding failures).
Result<WarmTickReport> ApplyWarmTick(Instance* instance,
                                     AdmissibleCatalog* catalog,
                                     DualWarmStart* warm,
                                     RoundingState* rounding_state,
                                     FractionalSolution* fractional,
                                     const InstanceDelta& delta, Rng* rng,
                                     const StructuredDualOptions& dual,
                                     const CatalogDeltaOptions& delta_options,
                                     const LpPackingOptions& round_options);

}  // namespace core
}  // namespace igepa

#endif  // IGEPA_CORE_WARM_TICK_H_
