#include "core/lp_packing.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>

#include "util/cache_line.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace igepa {
namespace core {
namespace {

/// Users per chunk of the sampling/demand sweeps.
constexpr int64_t kRoundGrain = 256;

/// Below this many users the rounding stage stays serial (pool spawn costs
/// more than the sweeps; results are identical either way).
constexpr int32_t kMinParallelUsers = 512;

}  // namespace

Result<Arrangement> LpPacking(const Instance& instance, Rng* rng,
                              const LpPackingOptions& options,
                              LpPackingStats* stats) {
  const AdmissibleCatalog catalog =
      AdmissibleCatalog::Build(instance, options.admissible);
  return LpPackingWithCatalog(instance, catalog, rng, options, stats);
}

Result<Arrangement> LpPackingWithCatalog(const Instance& instance,
                                         const AdmissibleCatalog& catalog,
                                         Rng* rng,
                                         const LpPackingOptions& options,
                                         LpPackingStats* stats) {
  IGEPA_ASSIGN_OR_RETURN(
      FractionalSolution fractional,
      SolveBenchmarkLpForPacking(instance, catalog, options));
  return RoundFractional(instance, catalog, fractional, rng, options, stats);
}

Result<FractionalSolution> SolveBenchmarkLpForPacking(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const LpPackingOptions& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (catalog.num_users() != instance.num_users()) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  FractionalSolution fractional;
  bool structured = false;
  switch (options.benchmark_solver) {
    case BenchmarkSolverKind::kLpFacade:
      structured = false;
      break;
    case BenchmarkSolverKind::kStructuredDual:
      structured = true;
      break;
    case BenchmarkSolverKind::kAuto: {
      // Same cell count the legacy path derived from the materialized model
      // (rows = |U|+|V|), computed here without materializing anything.
      const int64_t cells =
          (static_cast<int64_t>(instance.num_users()) + instance.num_events()) *
          catalog.num_columns();
      structured = cells > options.solver.dense_cell_limit;
      break;
    }
  }
  // The materialized facade model assumes model column k == catalog column k,
  // which only holds on a canonical catalog; a delta-mutated one routes to
  // the structured solver, which walks live ranges directly.
  if (!catalog.canonical()) {
    if (options.benchmark_solver == BenchmarkSolverKind::kLpFacade) {
      return Status::FailedPrecondition(
          "kLpFacade requires a canonical (compacted) catalog");
    }
    structured = true;
  }
  if (structured) {
    IGEPA_ASSIGN_OR_RETURN(
        fractional.lp,
        SolveBenchmarkLpStructured(instance, catalog, options.structured));
    fractional.structured = true;
  } else {
    fractional.bench = BuildBenchmarkLp(instance, catalog);
    IGEPA_ASSIGN_OR_RETURN(fractional.lp,
                           lp::SolveLp(fractional.bench.model, options.solver));
  }
  if (fractional.lp.status != lp::SolveStatus::kOptimal &&
      fractional.lp.status != lp::SolveStatus::kApproximate &&
      fractional.lp.status != lp::SolveStatus::kIterationLimit) {
    return Status::Internal(std::string("benchmark LP solve failed: ") +
                            lp::SolveStatusToString(fractional.lp.status));
  }
  return fractional;
}

Result<Arrangement> RoundFractional(const Instance& instance,
                                    const AdmissibleCatalog& catalog,
                                    const FractionalSolution& fractional,
                                    Rng* rng, const LpPackingOptions& options,
                                    LpPackingStats* stats,
                                    RoundingState* state_out) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (catalog.num_users() != instance.num_users()) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  if (state_out != nullptr && options.repair_order != RepairOrder::kUserIndex) {
    return Status::InvalidArgument(
        "RoundingState export requires RepairOrder::kUserIndex");
  }
  const lp::LpSolution& lp_sol = fractional.lp;
  if (static_cast<int32_t>(lp_sol.x.size()) != catalog.num_columns()) {
    return Status::InvalidArgument("fractional solution size mismatch");
  }
  if (stats != nullptr) {
    stats->lp_objective = lp_sol.objective;
    stats->lp_upper_bound = lp_sol.upper_bound;
    stats->lp_iterations = lp_sol.iterations;
    stats->used_structured_dual = fractional.structured;
    if (!fractional.structured) {
      stats->solver_used = lp::ChooseSolver(fractional.bench.model,
                                            options.solver);
    }
    stats->num_columns = catalog.num_live_columns();
    stats->admissible_truncated = catalog.any_truncated();
  }

  // ---- Lines 2-3: sample one admissible set per user with prob α·x*. ------
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  // Randomness is pre-drawn serially — one NextDouble per user, in user
  // order, exactly the stream the serial sweep consumed — so the sampling
  // sweep itself can shard across users without touching the RNG.
  std::vector<double> draw(static_cast<size_t>(nu), 0.0);
  for (UserId u = 0; u < nu; ++u) {
    draw[static_cast<size_t>(u)] = rng->NextDouble();
  }
  ThreadPool* workers = options.workers;
  std::unique_ptr<ThreadPool> owned_workers;
  if (workers == nullptr && nu >= kMinParallelUsers &&
      ThreadPool::ResolveThreadCount(options.num_threads,
                                     nu / kRoundGrain) > 1) {
    owned_workers = std::make_unique<ThreadPool>(ThreadPool::ResolveThreadCount(
        options.num_threads, nu / kRoundGrain));
    workers = owned_workers.get();
  }
  const int32_t num_lanes = workers != nullptr ? workers->num_threads() : 1;

  std::vector<int32_t> sampled_col(static_cast<size_t>(nu), -1);
  ParallelForRanges(
      workers, 0, nu, kRoundGrain, [&](int64_t ub, int64_t ue) {
        for (int64_t uu = ub; uu < ue; ++uu) {
          const UserId u = static_cast<UserId>(uu);
          const int32_t begin = catalog.user_columns_begin(u);
          const int32_t end = catalog.user_columns_end(u);
          double r = draw[static_cast<size_t>(u)];
          for (int32_t j = begin; j < end; ++j) {
            const double mass =
                options.alpha *
                std::clamp(lp_sol.x[static_cast<size_t>(j)], 0.0, 1.0);
            if (r < mass) {
              sampled_col[static_cast<size_t>(u)] = j;
              break;
            }
            r -= mass;
          }
          // Remaining mass: no set sampled for u.
        }
      });
  if (stats != nullptr) {
    stats->users_sampled = static_cast<int32_t>(
        std::count_if(sampled_col.begin(), sampled_col.end(),
                      [](int32_t j) { return j >= 0; }));
  }

  // ---- Lines 4-7: repair event capacity violations. ------------------------
  // Tentative per-event demand of the sampled sets decides which events can
  // overflow at all; the inverted event→column index then narrows the checked
  // path to the users actually contending for those events. Everyone else is
  // emitted in bulk — identical output to the full legacy sweep, since an
  // event whose demand fits its capacity can never reject a pair. Each lane
  // counts into its own cache-line-strided buffer, merged serially in lane
  // order afterwards — integer increments commute, so the totals are
  // identical for every thread schedule, and the sweep writes no shared
  // lines (the old per-event relaxed atomics false-shared 16 counters per
  // line, which inverted the thread-scaling curve).
  const size_t demand_stride =
      util::PaddedStride(static_cast<size_t>(nv), sizeof(int32_t));
  std::vector<int32_t> lane_demand(
      static_cast<size_t>(num_lanes) * demand_stride, 0);
  const auto demand_chunk = [&](int32_t lane, int64_t ub, int64_t ue) {
    int32_t* d = lane_demand.data() + static_cast<size_t>(lane) * demand_stride;
    for (int64_t uu = ub; uu < ue; ++uu) {
      const int32_t j = sampled_col[static_cast<size_t>(uu)];
      if (j < 0) continue;
      for (EventId v : catalog.set(j)) ++d[static_cast<size_t>(v)];
    }
  };
  if (workers != nullptr) {
    workers->ParallelFor(0, nu, kRoundGrain, demand_chunk);
  } else {
    demand_chunk(0, 0, nu);
  }
  std::vector<int32_t> demand(static_cast<size_t>(nv), 0);
  for (int32_t lane = 0; lane < num_lanes; ++lane) {
    const int32_t* d =
        lane_demand.data() + static_cast<size_t>(lane) * demand_stride;
    for (EventId v = 0; v < nv; ++v) demand[static_cast<size_t>(v)] += d[v];
  }
  std::vector<uint8_t> hot(static_cast<size_t>(nv), 0);
  std::vector<EventId> hot_events;
  for (EventId v = 0; v < nv; ++v) {
    if (demand[static_cast<size_t>(v)] > instance.event_capacity(v)) {
      hot[static_cast<size_t>(v)] = 1;
      hot_events.push_back(v);
    }
  }
  const bool any_hot = !hot_events.empty();
  std::vector<uint8_t> contended(static_cast<size_t>(nu), 0);
  if (any_hot) {
    for (EventId v : hot_events) {
      catalog.ForEachColumnOfEvent(v, [&](int32_t j) {
        const UserId u = catalog.user_of(j);
        if (sampled_col[static_cast<size_t>(u)] == j) {
          contended[static_cast<size_t>(u)] = 1;
        }
      });
    }
  }

  std::vector<UserId> order(static_cast<size_t>(nu));
  std::iota(order.begin(), order.end(), 0);
  switch (options.repair_order) {
    case RepairOrder::kUserIndex:
      break;
    case RepairOrder::kRandom:
      rng->Shuffle(&order);
      break;
    case RepairOrder::kWeightDesc: {
      std::vector<double> weight(static_cast<size_t>(nu), 0.0);
      for (UserId u = 0; u < nu; ++u) {
        const int32_t j = sampled_col[static_cast<size_t>(u)];
        if (j >= 0) weight[static_cast<size_t>(u)] = catalog.weight(j);
      }
      std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
        return weight[static_cast<size_t>(a)] > weight[static_cast<size_t>(b)];
      });
      break;
    }
  }

  // Event-ownership sharding of the sweep: a user keeps a hot event v iff
  // fewer than c_v contenders precede them in the sweep order — exactly the
  // pairs the sequential load-counting sweep kept, because dropping v from
  // S_u never affects u's other events. Each hot event therefore resolves
  // independently: collect its contenders' sweep ranks (ascending column id,
  // via the inverted index) and cut at the c_v-th smallest. Ranks are a
  // permutation (distinct), so the cutoff is unambiguous and deterministic.
  constexpr int32_t kNoCutoff = kNoRepairCutoff;
  std::vector<int32_t> rank;
  std::vector<int32_t> cutoff;
  if (any_hot) {
    rank.resize(static_cast<size_t>(nu));
    for (int32_t i = 0; i < nu; ++i) {
      rank[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
    }
    cutoff.assign(static_cast<size_t>(nv), kNoCutoff);
    // Contender scratch lives per lane, not per chunk: the nth_element arena
    // grows once to the largest contender set a lane sees and is reused
    // across every chunk that lane claims (the per-chunk vector was one
    // malloc/free per 4 hot events, all hammering the same heap lock).
    std::vector<std::vector<int32_t>> lane_contenders(
        static_cast<size_t>(num_lanes));
    const auto repair_chunk = [&](int32_t lane, int64_t hb, int64_t he) {
      std::vector<int32_t>& contender_ranks =
          lane_contenders[static_cast<size_t>(lane)];
      for (int64_t h = hb; h < he; ++h) {
        const EventId v = hot_events[static_cast<size_t>(h)];
        contender_ranks.clear();
        catalog.ForEachColumnOfEvent(v, [&](int32_t j) {
          const UserId u = catalog.user_of(j);
          if (sampled_col[static_cast<size_t>(u)] == j) {
            contender_ranks.push_back(rank[static_cast<size_t>(u)]);
          }
        });
        const auto cap =
            static_cast<size_t>(std::max(0, instance.event_capacity(v)));
        if (contender_ranks.size() > cap) {
          std::nth_element(contender_ranks.begin(),
                           contender_ranks.begin() + static_cast<int64_t>(cap),
                           contender_ranks.end());
          cutoff[static_cast<size_t>(v)] = contender_ranks[cap];
        }
      }
    };
    if (workers != nullptr) {
      workers->ParallelFor(0, static_cast<int64_t>(hot_events.size()),
                           /*grain=*/4, repair_chunk);
    } else {
      repair_chunk(0, 0, static_cast<int64_t>(hot_events.size()));
    }
  }

  Arrangement arrangement(nv, nu);
  int32_t repaired = 0;
  for (UserId u : order) {
    const int32_t j = sampled_col[static_cast<size_t>(u)];
    if (j < 0) continue;
    const auto set = catalog.set(j);
    if (!contended[static_cast<size_t>(u)]) {
      for (EventId v : set) {
        IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
      }
      continue;
    }
    for (EventId v : set) {
      if (hot[static_cast<size_t>(v)] &&
          rank[static_cast<size_t>(u)] >= cutoff[static_cast<size_t>(v)]) {
        ++repaired;  // line 7: drop v from S_u
        continue;
      }
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  if (stats != nullptr) stats->pairs_repaired = repaired;
  if (state_out != nullptr) {
    // Under kUserIndex, rank[u] == u, so the exported cutoffs are directly
    // comparable to user ids (the RoundingState contract).
    state_out->sampled_col = sampled_col;
    state_out->demand = demand;
    if (any_hot) {
      state_out->cutoff = cutoff;
    } else {
      state_out->cutoff.assign(static_cast<size_t>(nv), kNoCutoff);
    }
    state_out->catalog_revision = catalog.ids_revision();
  }
  return arrangement;
}

void RoundingState::Remap(const std::vector<int32_t>& column_remap,
                          uint64_t new_ids_revision) {
  for (size_t u = 0; u < sampled_col.size(); ++u) {
    const int32_t j = sampled_col[u];
    if (j < 0) continue;
    sampled_col[u] = (static_cast<size_t>(j) < column_remap.size())
                         ? column_remap[static_cast<size_t>(j)]
                         : -1;
  }
  catalog_revision = new_ids_revision;
}

namespace {

/// Repair cutoff of one event from the current samples: the (c_v)-th
/// smallest contender user id when demand exceeds capacity, else "never
/// rejects". Contender ids are distinct, so the cutoff is unambiguous.
int32_t ComputeEventCutoff(const Instance& instance,
                           const AdmissibleCatalog& catalog,
                           const std::vector<int32_t>& sampled_col, EventId v,
                           int32_t event_demand,
                           std::vector<int32_t>* scratch) {
  const int32_t cap = instance.event_capacity(v);
  if (event_demand <= cap) return kNoRepairCutoff;
  scratch->clear();
  catalog.ForEachColumnOfEvent(v, [&](int32_t j) {
    const UserId u = catalog.user_of(j);
    if (sampled_col[static_cast<size_t>(u)] == j) scratch->push_back(u);
  });
  const auto capn = static_cast<size_t>(std::max(0, cap));
  if (scratch->size() <= capn) return kNoRepairCutoff;
  std::nth_element(scratch->begin(),
                   scratch->begin() + static_cast<int64_t>(capn),
                   scratch->end());
  return (*scratch)[capn];
}

/// Emits the arrangement the per-event cutoffs define: pair (v, u) survives
/// iff u < cutoff[v]. User-index sweep order.
Result<Arrangement> EmitFromCutoffs(const Instance& instance,
                                    const AdmissibleCatalog& catalog,
                                    const std::vector<int32_t>& sampled_col,
                                    const std::vector<int32_t>& cutoff,
                                    int32_t* repaired_out) {
  const int32_t nu = instance.num_users();
  Arrangement arrangement(instance.num_events(), nu);
  int32_t repaired = 0;
  for (UserId u = 0; u < nu; ++u) {
    const int32_t j = sampled_col[static_cast<size_t>(u)];
    if (j < 0) continue;
    for (EventId v : catalog.set(j)) {
      if (u >= cutoff[static_cast<size_t>(v)]) {
        ++repaired;  // line 7: drop v from S_u
        continue;
      }
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  if (repaired_out != nullptr) *repaired_out = repaired;
  return arrangement;
}

}  // namespace

Result<Arrangement> RepairSampledColumns(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const std::vector<int32_t>& sampled_col) {
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  if (catalog.num_users() != nu) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  if (static_cast<int32_t>(sampled_col.size()) != nu) {
    return Status::InvalidArgument("sampled_col size mismatch");
  }
  for (UserId u = 0; u < nu; ++u) {
    const int32_t j = sampled_col[static_cast<size_t>(u)];
    if (j < 0) continue;
    if (j >= catalog.num_columns() || !catalog.live(j) ||
        catalog.user_of(j) != u) {
      return Status::InvalidArgument("sampled_col[" + std::to_string(u) +
                                     "] is not a live column of that user");
    }
  }
  std::vector<int32_t> demand(static_cast<size_t>(nv), 0);
  for (UserId u = 0; u < nu; ++u) {
    const int32_t j = sampled_col[static_cast<size_t>(u)];
    if (j < 0) continue;
    for (EventId v : catalog.set(j)) ++demand[static_cast<size_t>(v)];
  }
  std::vector<int32_t> cutoff(static_cast<size_t>(nv), kNoRepairCutoff);
  std::vector<int32_t> scratch;
  for (EventId v = 0; v < nv; ++v) {
    cutoff[static_cast<size_t>(v)] = ComputeEventCutoff(
        instance, catalog, sampled_col, v, demand[static_cast<size_t>(v)],
        &scratch);
  }
  return EmitFromCutoffs(instance, catalog, sampled_col, cutoff, nullptr);
}

std::vector<EventId> RetireSamples(const AdmissibleCatalog& catalog,
                                   const std::vector<UserId>& users,
                                   RoundingState* state) {
  std::vector<UserId> unique_users = users;
  std::sort(unique_users.begin(), unique_users.end());
  unique_users.erase(std::unique(unique_users.begin(), unique_users.end()),
                     unique_users.end());
  std::vector<EventId> touched;
  for (UserId u : unique_users) {
    int32_t& j = state->sampled_col[static_cast<size_t>(u)];
    if (j < 0) continue;
    for (EventId v : catalog.set(j)) {
      --state->demand[static_cast<size_t>(v)];
      touched.push_back(v);
    }
    j = -1;
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

Result<Arrangement> RoundFractionalDelta(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const FractionalSolution& fractional,
    const std::vector<UserId>& resample_users,
    const std::vector<EventId>& touched_events, Rng* rng, RoundingState* state,
    const LpPackingOptions& options, LpPackingStats* stats) {
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (options.repair_order != RepairOrder::kUserIndex) {
    return Status::InvalidArgument(
        "RoundFractionalDelta requires RepairOrder::kUserIndex");
  }
  if (catalog.num_users() != nu) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  const lp::LpSolution& lp_sol = fractional.lp;
  if (static_cast<int32_t>(lp_sol.x.size()) != catalog.num_columns()) {
    return Status::InvalidArgument("fractional solution size mismatch");
  }
  if (state == nullptr ||
      static_cast<int32_t>(state->sampled_col.size()) != nu ||
      static_cast<int32_t>(state->demand.size()) != nv ||
      static_cast<int32_t>(state->cutoff.size()) != nv) {
    return Status::InvalidArgument("rounding state shape mismatch");
  }
  if (state->catalog_revision != catalog.ids_revision()) {
    return Status::FailedPrecondition(
        "rounding state addresses a different catalog layout (remap after "
        "compaction)");
  }
  for (EventId v : touched_events) {
    if (v < 0 || v >= nv) {
      return Status::InvalidArgument("touched event out of range");
    }
  }

  std::vector<UserId> resample = resample_users;
  std::sort(resample.begin(), resample.end());
  resample.erase(std::unique(resample.begin(), resample.end()),
                 resample.end());
  for (UserId u : resample) {
    if (u < 0 || u >= nu) {
      return Status::InvalidArgument("resample user out of range");
    }
  }

  std::vector<uint8_t> touched(static_cast<size_t>(nv), 0);
  for (EventId v : touched_events) touched[static_cast<size_t>(v)] = 1;

  // Re-sample exactly the listed users from the new fractional solution —
  // one draw per user in ascending user order, so the RNG stream (and thus
  // the result) is independent of how the caller ordered the list. Samples
  // not retired beforehand are retired here (valid when no compaction
  // intervened, since tombstoned spans stay readable).
  for (UserId u : resample) {
    int32_t& slot = state->sampled_col[static_cast<size_t>(u)];
    if (slot >= 0) {
      for (EventId v : catalog.set(slot)) {
        --state->demand[static_cast<size_t>(v)];
        touched[static_cast<size_t>(v)] = 1;
      }
      slot = -1;
    }
    const int32_t begin = catalog.user_columns_begin(u);
    const int32_t end = catalog.user_columns_end(u);
    double r = rng->NextDouble();
    for (int32_t j = begin; j < end; ++j) {
      const double mass =
          options.alpha * std::clamp(lp_sol.x[static_cast<size_t>(j)], 0.0, 1.0);
      if (r < mass) {
        slot = j;
        break;
      }
      r -= mass;
    }
    if (slot >= 0) {
      for (EventId v : catalog.set(slot)) {
        ++state->demand[static_cast<size_t>(v)];
        touched[static_cast<size_t>(v)] = 1;
      }
    }
  }

  // Event-local repair: only touched events can have a different contender
  // set than last time, so only they need a fresh cutoff. Untouched events'
  // contenders are untouched users whose samples did not change — their
  // stored cutoffs remain exact.
  std::vector<int32_t> scratch;
  for (EventId v = 0; v < nv; ++v) {
    if (touched[static_cast<size_t>(v)] == 0) continue;
    state->cutoff[static_cast<size_t>(v)] = ComputeEventCutoff(
        instance, catalog, state->sampled_col, v,
        state->demand[static_cast<size_t>(v)], &scratch);
  }

  int32_t repaired = 0;
  auto arrangement = EmitFromCutoffs(instance, catalog, state->sampled_col,
                                     state->cutoff, &repaired);
  if (!arrangement.ok()) return arrangement;
  if (stats != nullptr) {
    stats->lp_objective = lp_sol.objective;
    stats->lp_upper_bound = lp_sol.upper_bound;
    stats->lp_iterations = lp_sol.iterations;
    stats->used_structured_dual = fractional.structured;
    stats->num_columns = catalog.num_live_columns();
    stats->admissible_truncated = catalog.any_truncated();
    stats->users_sampled = static_cast<int32_t>(std::count_if(
        state->sampled_col.begin(), state->sampled_col.end(),
        [](int32_t j) { return j >= 0; }));
    stats->pairs_repaired = repaired;
  }
  return arrangement;
}

}  // namespace core
}  // namespace igepa
