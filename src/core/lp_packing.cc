#include "core/lp_packing.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <numeric>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace igepa {
namespace core {
namespace {

/// Users per chunk of the sampling/demand sweeps.
constexpr int64_t kRoundGrain = 256;

/// Below this many users the rounding stage stays serial (pool spawn costs
/// more than the sweeps; results are identical either way).
constexpr int32_t kMinParallelUsers = 512;

}  // namespace

Result<Arrangement> LpPacking(const Instance& instance, Rng* rng,
                              const LpPackingOptions& options,
                              LpPackingStats* stats) {
  const AdmissibleCatalog catalog =
      AdmissibleCatalog::Build(instance, options.admissible);
  return LpPackingWithCatalog(instance, catalog, rng, options, stats);
}

Result<Arrangement> LpPackingWithCatalog(const Instance& instance,
                                         const AdmissibleCatalog& catalog,
                                         Rng* rng,
                                         const LpPackingOptions& options,
                                         LpPackingStats* stats) {
  IGEPA_ASSIGN_OR_RETURN(
      FractionalSolution fractional,
      SolveBenchmarkLpForPacking(instance, catalog, options));
  return RoundFractional(instance, catalog, fractional, rng, options, stats);
}

Result<Arrangement> LpPackingWithSets(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    Rng* rng, const LpPackingOptions& options, LpPackingStats* stats) {
  IGEPA_ASSIGN_OR_RETURN(
      FractionalSolution fractional,
      SolveBenchmarkLpForPacking(instance, admissible, options));
  return RoundFractional(instance, admissible, fractional, rng, options,
                         stats);
}

Result<FractionalSolution> SolveBenchmarkLpForPacking(
    const Instance& instance, const AdmissibleCatalog& catalog,
    const LpPackingOptions& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (catalog.num_users() != instance.num_users()) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  FractionalSolution fractional;
  bool structured = false;
  switch (options.benchmark_solver) {
    case BenchmarkSolverKind::kLpFacade:
      structured = false;
      break;
    case BenchmarkSolverKind::kStructuredDual:
      structured = true;
      break;
    case BenchmarkSolverKind::kAuto: {
      // Same cell count the legacy path derived from the materialized model
      // (rows = |U|+|V|), computed here without materializing anything.
      const int64_t cells =
          (static_cast<int64_t>(instance.num_users()) + instance.num_events()) *
          catalog.num_columns();
      structured = cells > options.solver.dense_cell_limit;
      break;
    }
  }
  if (structured) {
    IGEPA_ASSIGN_OR_RETURN(
        fractional.lp,
        SolveBenchmarkLpStructured(instance, catalog, options.structured));
    fractional.structured = true;
  } else {
    fractional.bench = BuildBenchmarkLp(instance, catalog);
    IGEPA_ASSIGN_OR_RETURN(fractional.lp,
                           lp::SolveLp(fractional.bench.model, options.solver));
  }
  if (fractional.lp.status != lp::SolveStatus::kOptimal &&
      fractional.lp.status != lp::SolveStatus::kApproximate &&
      fractional.lp.status != lp::SolveStatus::kIterationLimit) {
    return Status::Internal(std::string("benchmark LP solve failed: ") +
                            lp::SolveStatusToString(fractional.lp.status));
  }
  return fractional;
}

Result<Arrangement> RoundFractional(const Instance& instance,
                                    const AdmissibleCatalog& catalog,
                                    const FractionalSolution& fractional,
                                    Rng* rng, const LpPackingOptions& options,
                                    LpPackingStats* stats) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (catalog.num_users() != instance.num_users()) {
    return Status::InvalidArgument("catalog size mismatch");
  }
  const lp::LpSolution& lp_sol = fractional.lp;
  if (static_cast<int32_t>(lp_sol.x.size()) != catalog.num_columns()) {
    return Status::InvalidArgument("fractional solution size mismatch");
  }
  if (stats != nullptr) {
    stats->lp_objective = lp_sol.objective;
    stats->lp_upper_bound = lp_sol.upper_bound;
    stats->lp_iterations = lp_sol.iterations;
    stats->used_structured_dual = fractional.structured;
    if (!fractional.structured) {
      stats->solver_used = lp::ChooseSolver(fractional.bench.model,
                                            options.solver);
    }
    stats->num_columns = catalog.num_columns();
    stats->admissible_truncated = catalog.any_truncated();
  }

  // ---- Lines 2-3: sample one admissible set per user with prob α·x*. ------
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  // Randomness is pre-drawn serially — one NextDouble per user, in user
  // order, exactly the stream the serial sweep consumed — so the sampling
  // sweep itself can shard across users without touching the RNG.
  std::vector<double> draw(static_cast<size_t>(nu), 0.0);
  for (UserId u = 0; u < nu; ++u) {
    draw[static_cast<size_t>(u)] = rng->NextDouble();
  }
  std::unique_ptr<ThreadPool> workers;
  if (nu >= kMinParallelUsers &&
      ThreadPool::ResolveThreadCount(options.num_threads,
                                     nu / kRoundGrain) > 1) {
    workers = std::make_unique<ThreadPool>(ThreadPool::ResolveThreadCount(
        options.num_threads, nu / kRoundGrain));
  }

  std::vector<int32_t> sampled_col(static_cast<size_t>(nu), -1);
  ParallelForRanges(
      workers.get(), 0, nu, kRoundGrain, [&](int64_t ub, int64_t ue) {
        for (int64_t uu = ub; uu < ue; ++uu) {
          const UserId u = static_cast<UserId>(uu);
          const int32_t begin = catalog.user_columns_begin(u);
          const int32_t end = catalog.user_columns_end(u);
          double r = draw[static_cast<size_t>(u)];
          for (int32_t j = begin; j < end; ++j) {
            const double mass =
                options.alpha *
                std::clamp(lp_sol.x[static_cast<size_t>(j)], 0.0, 1.0);
            if (r < mass) {
              sampled_col[static_cast<size_t>(u)] = j;
              break;
            }
            r -= mass;
          }
          // Remaining mass: no set sampled for u.
        }
      });
  if (stats != nullptr) {
    stats->users_sampled = static_cast<int32_t>(
        std::count_if(sampled_col.begin(), sampled_col.end(),
                      [](int32_t j) { return j >= 0; }));
  }

  // ---- Lines 4-7: repair event capacity violations. ------------------------
  // Tentative per-event demand of the sampled sets decides which events can
  // overflow at all; the inverted event→column index then narrows the checked
  // path to the users actually contending for those events. Everyone else is
  // emitted in bulk — identical output to the full legacy sweep, since an
  // event whose demand fits its capacity can never reject a pair. Demand
  // counting uses relaxed per-event atomics: integer increments commute, so
  // the totals are identical for every thread schedule.
  std::vector<std::atomic<int32_t>> demand(static_cast<size_t>(nv));
  ParallelForRanges(workers.get(), 0, nu, kRoundGrain,
                    [&](int64_t ub, int64_t ue) {
                      for (int64_t uu = ub; uu < ue; ++uu) {
                        const int32_t j = sampled_col[static_cast<size_t>(uu)];
                        if (j < 0) continue;
                        for (EventId v : catalog.set(j)) {
                          demand[static_cast<size_t>(v)].fetch_add(
                              1, std::memory_order_relaxed);
                        }
                      }
                    });
  std::vector<uint8_t> hot(static_cast<size_t>(nv), 0);
  std::vector<EventId> hot_events;
  for (EventId v = 0; v < nv; ++v) {
    if (demand[static_cast<size_t>(v)].load(std::memory_order_relaxed) >
        instance.event_capacity(v)) {
      hot[static_cast<size_t>(v)] = 1;
      hot_events.push_back(v);
    }
  }
  const bool any_hot = !hot_events.empty();
  std::vector<uint8_t> contended(static_cast<size_t>(nu), 0);
  if (any_hot) {
    for (EventId v : hot_events) {
      for (int32_t j : catalog.columns_of_event(v)) {
        const UserId u = catalog.user_of(j);
        if (sampled_col[static_cast<size_t>(u)] == j) {
          contended[static_cast<size_t>(u)] = 1;
        }
      }
    }
  }

  std::vector<UserId> order(static_cast<size_t>(nu));
  std::iota(order.begin(), order.end(), 0);
  switch (options.repair_order) {
    case RepairOrder::kUserIndex:
      break;
    case RepairOrder::kRandom:
      rng->Shuffle(&order);
      break;
    case RepairOrder::kWeightDesc: {
      std::vector<double> weight(static_cast<size_t>(nu), 0.0);
      for (UserId u = 0; u < nu; ++u) {
        const int32_t j = sampled_col[static_cast<size_t>(u)];
        if (j >= 0) weight[static_cast<size_t>(u)] = catalog.weight(j);
      }
      std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
        return weight[static_cast<size_t>(a)] > weight[static_cast<size_t>(b)];
      });
      break;
    }
  }

  // Event-ownership sharding of the sweep: a user keeps a hot event v iff
  // fewer than c_v contenders precede them in the sweep order — exactly the
  // pairs the sequential load-counting sweep kept, because dropping v from
  // S_u never affects u's other events. Each hot event therefore resolves
  // independently: collect its contenders' sweep ranks (ascending column id,
  // via the inverted index) and cut at the c_v-th smallest. Ranks are a
  // permutation (distinct), so the cutoff is unambiguous and deterministic.
  constexpr int32_t kNoCutoff = std::numeric_limits<int32_t>::max();
  std::vector<int32_t> rank;
  std::vector<int32_t> cutoff;
  if (any_hot) {
    rank.resize(static_cast<size_t>(nu));
    for (int32_t i = 0; i < nu; ++i) {
      rank[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
    }
    cutoff.assign(static_cast<size_t>(nv), kNoCutoff);
    ParallelForRanges(
        workers.get(), 0, static_cast<int64_t>(hot_events.size()), /*grain=*/4,
        [&](int64_t hb, int64_t he) {
          std::vector<int32_t> contender_ranks;
          for (int64_t h = hb; h < he; ++h) {
            const EventId v = hot_events[static_cast<size_t>(h)];
            contender_ranks.clear();
            for (int32_t j : catalog.columns_of_event(v)) {
              const UserId u = catalog.user_of(j);
              if (sampled_col[static_cast<size_t>(u)] == j) {
                contender_ranks.push_back(rank[static_cast<size_t>(u)]);
              }
            }
            const auto cap =
                static_cast<size_t>(std::max(0, instance.event_capacity(v)));
            if (contender_ranks.size() > cap) {
              std::nth_element(contender_ranks.begin(),
                               contender_ranks.begin() +
                                   static_cast<int64_t>(cap),
                               contender_ranks.end());
              cutoff[static_cast<size_t>(v)] = contender_ranks[cap];
            }
          }
        });
  }

  Arrangement arrangement(nv, nu);
  int32_t repaired = 0;
  for (UserId u : order) {
    const int32_t j = sampled_col[static_cast<size_t>(u)];
    if (j < 0) continue;
    const auto set = catalog.set(j);
    if (!contended[static_cast<size_t>(u)]) {
      for (EventId v : set) {
        IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
      }
      continue;
    }
    for (EventId v : set) {
      if (hot[static_cast<size_t>(v)] &&
          rank[static_cast<size_t>(u)] >= cutoff[static_cast<size_t>(v)]) {
        ++repaired;  // line 7: drop v from S_u
        continue;
      }
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  if (stats != nullptr) stats->pairs_repaired = repaired;
  return arrangement;
}

Result<FractionalSolution> SolveBenchmarkLpForPacking(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    const LpPackingOptions& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (static_cast<int32_t>(admissible.size()) != instance.num_users()) {
    return Status::InvalidArgument("admissible sets size mismatch");
  }
  FractionalSolution fractional;
  fractional.bench = BuildBenchmarkLp(instance, admissible);
  bool structured = false;
  switch (options.benchmark_solver) {
    case BenchmarkSolverKind::kLpFacade:
      structured = false;
      break;
    case BenchmarkSolverKind::kStructuredDual:
      structured = true;
      break;
    case BenchmarkSolverKind::kAuto: {
      const int64_t cells =
          static_cast<int64_t>(fractional.bench.model.num_rows()) *
          fractional.bench.model.num_cols();
      structured = cells > options.solver.dense_cell_limit;
      break;
    }
  }
  if (structured) {
    IGEPA_ASSIGN_OR_RETURN(
        fractional.lp,
        SolveBenchmarkLpStructured(instance, admissible, fractional.bench,
                                   options.structured));
    fractional.structured = true;
  } else {
    IGEPA_ASSIGN_OR_RETURN(fractional.lp,
                           lp::SolveLp(fractional.bench.model, options.solver));
  }
  if (fractional.lp.status != lp::SolveStatus::kOptimal &&
      fractional.lp.status != lp::SolveStatus::kApproximate &&
      fractional.lp.status != lp::SolveStatus::kIterationLimit) {
    return Status::Internal(std::string("benchmark LP solve failed: ") +
                            lp::SolveStatusToString(fractional.lp.status));
  }
  return fractional;
}

Result<Arrangement> RoundFractional(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    const FractionalSolution& fractional, Rng* rng,
    const LpPackingOptions& options, LpPackingStats* stats) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (static_cast<int32_t>(admissible.size()) != instance.num_users()) {
    return Status::InvalidArgument("admissible sets size mismatch");
  }
  const BenchmarkLp& bench = fractional.bench;
  const lp::LpSolution& lp_sol = fractional.lp;
  if (stats != nullptr) {
    stats->lp_objective = lp_sol.objective;
    stats->lp_upper_bound = lp_sol.upper_bound;
    stats->lp_iterations = lp_sol.iterations;
    stats->used_structured_dual = fractional.structured;
    stats->solver_used = lp::ChooseSolver(bench.model, options.solver);
    stats->num_columns = bench.model.num_cols();
    stats->admissible_truncated = false;
    for (const auto& a : admissible) {
      if (a.truncated) {
        stats->admissible_truncated = true;
        break;
      }
    }
  }

  // ---- Lines 2-3: sample one admissible set per user with prob α·x*. ------
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  std::vector<int32_t> sampled_set(static_cast<size_t>(nu), -1);
  for (UserId u = 0; u < nu; ++u) {
    const int32_t begin = bench.user_col_begin[static_cast<size_t>(u)];
    const int32_t end = bench.user_col_begin[static_cast<size_t>(u) + 1];
    double r = rng->NextDouble();
    for (int32_t j = begin; j < end; ++j) {
      const double mass =
          options.alpha *
          std::clamp(lp_sol.x[static_cast<size_t>(j)], 0.0, 1.0);
      if (r < mass) {
        sampled_set[static_cast<size_t>(u)] =
            bench.column_map[static_cast<size_t>(j)].second;
        break;
      }
      r -= mass;
    }
    // Remaining mass: no set sampled for u.
  }
  if (stats != nullptr) {
    stats->users_sampled = static_cast<int32_t>(
        std::count_if(sampled_set.begin(), sampled_set.end(),
                      [](int32_t s) { return s >= 0; }));
  }

  // ---- Lines 4-7: repair event capacity violations. ------------------------
  std::vector<UserId> order(static_cast<size_t>(nu));
  std::iota(order.begin(), order.end(), 0);
  switch (options.repair_order) {
    case RepairOrder::kUserIndex:
      break;
    case RepairOrder::kRandom:
      rng->Shuffle(&order);
      break;
    case RepairOrder::kWeightDesc: {
      std::vector<double> weight(static_cast<size_t>(nu), 0.0);
      for (UserId u = 0; u < nu; ++u) {
        const int32_t k = sampled_set[static_cast<size_t>(u)];
        if (k >= 0) {
          weight[static_cast<size_t>(u)] =
              SetWeight(instance, u,
                        admissible[static_cast<size_t>(u)].sets
                            [static_cast<size_t>(k)]);
        }
      }
      std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
        return weight[static_cast<size_t>(a)] >
               weight[static_cast<size_t>(b)];
      });
      break;
    }
  }

  Arrangement arrangement(nv, nu);
  std::vector<int32_t> load(static_cast<size_t>(nv), 0);
  int32_t repaired = 0;
  for (UserId u : order) {
    const int32_t k = sampled_set[static_cast<size_t>(u)];
    if (k < 0) continue;
    const auto& set =
        admissible[static_cast<size_t>(u)].sets[static_cast<size_t>(k)];
    for (EventId v : set) {
      if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) {
        ++repaired;  // line 7: drop v from S_u
        continue;
      }
      ++load[static_cast<size_t>(v)];
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  if (stats != nullptr) stats->pairs_repaired = repaired;
  return arrangement;
}

}  // namespace core
}  // namespace igepa
