#include "core/lp_packing.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace igepa {
namespace core {

Result<Arrangement> LpPacking(const Instance& instance, Rng* rng,
                              const LpPackingOptions& options,
                              LpPackingStats* stats) {
  const std::vector<AdmissibleSets> admissible =
      EnumerateAdmissibleSets(instance, options.admissible);
  return LpPackingWithSets(instance, admissible, rng, options, stats);
}

Result<Arrangement> LpPackingWithSets(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    Rng* rng, const LpPackingOptions& options, LpPackingStats* stats) {
  IGEPA_ASSIGN_OR_RETURN(
      FractionalSolution fractional,
      SolveBenchmarkLpForPacking(instance, admissible, options));
  return RoundFractional(instance, admissible, fractional, rng, options,
                         stats);
}

Result<FractionalSolution> SolveBenchmarkLpForPacking(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    const LpPackingOptions& options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (static_cast<int32_t>(admissible.size()) != instance.num_users()) {
    return Status::InvalidArgument("admissible sets size mismatch");
  }
  FractionalSolution fractional;
  fractional.bench = BuildBenchmarkLp(instance, admissible);
  bool structured = false;
  switch (options.benchmark_solver) {
    case BenchmarkSolverKind::kLpFacade:
      structured = false;
      break;
    case BenchmarkSolverKind::kStructuredDual:
      structured = true;
      break;
    case BenchmarkSolverKind::kAuto: {
      const int64_t cells =
          static_cast<int64_t>(fractional.bench.model.num_rows()) *
          fractional.bench.model.num_cols();
      structured = cells > options.solver.dense_cell_limit;
      break;
    }
  }
  if (structured) {
    IGEPA_ASSIGN_OR_RETURN(
        fractional.lp,
        SolveBenchmarkLpStructured(instance, admissible, fractional.bench,
                                   options.structured));
    fractional.structured = true;
  } else {
    IGEPA_ASSIGN_OR_RETURN(fractional.lp,
                           lp::SolveLp(fractional.bench.model, options.solver));
  }
  if (fractional.lp.status != lp::SolveStatus::kOptimal &&
      fractional.lp.status != lp::SolveStatus::kApproximate &&
      fractional.lp.status != lp::SolveStatus::kIterationLimit) {
    return Status::Internal(std::string("benchmark LP solve failed: ") +
                            lp::SolveStatusToString(fractional.lp.status));
  }
  return fractional;
}

Result<Arrangement> RoundFractional(
    const Instance& instance, const std::vector<AdmissibleSets>& admissible,
    const FractionalSolution& fractional, Rng* rng,
    const LpPackingOptions& options, LpPackingStats* stats) {
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (static_cast<int32_t>(admissible.size()) != instance.num_users()) {
    return Status::InvalidArgument("admissible sets size mismatch");
  }
  const BenchmarkLp& bench = fractional.bench;
  const lp::LpSolution& lp_sol = fractional.lp;
  if (stats != nullptr) {
    stats->lp_objective = lp_sol.objective;
    stats->lp_upper_bound = lp_sol.upper_bound;
    stats->lp_iterations = lp_sol.iterations;
    stats->used_structured_dual = fractional.structured;
    stats->solver_used = lp::ChooseSolver(bench.model, options.solver);
    stats->num_columns = bench.model.num_cols();
    stats->admissible_truncated = false;
    for (const auto& a : admissible) {
      if (a.truncated) {
        stats->admissible_truncated = true;
        break;
      }
    }
  }

  // ---- Lines 2-3: sample one admissible set per user with prob α·x*. ------
  const int32_t nu = instance.num_users();
  const int32_t nv = instance.num_events();
  std::vector<int32_t> sampled_set(static_cast<size_t>(nu), -1);
  for (UserId u = 0; u < nu; ++u) {
    const int32_t begin = bench.user_col_begin[static_cast<size_t>(u)];
    const int32_t end = bench.user_col_begin[static_cast<size_t>(u) + 1];
    double r = rng->NextDouble();
    for (int32_t j = begin; j < end; ++j) {
      const double mass =
          options.alpha *
          std::clamp(lp_sol.x[static_cast<size_t>(j)], 0.0, 1.0);
      if (r < mass) {
        sampled_set[static_cast<size_t>(u)] =
            bench.column_map[static_cast<size_t>(j)].second;
        break;
      }
      r -= mass;
    }
    // Remaining mass: no set sampled for u.
  }
  if (stats != nullptr) {
    stats->users_sampled = static_cast<int32_t>(
        std::count_if(sampled_set.begin(), sampled_set.end(),
                      [](int32_t s) { return s >= 0; }));
  }

  // ---- Lines 4-7: repair event capacity violations. ------------------------
  std::vector<UserId> order(static_cast<size_t>(nu));
  std::iota(order.begin(), order.end(), 0);
  switch (options.repair_order) {
    case RepairOrder::kUserIndex:
      break;
    case RepairOrder::kRandom:
      rng->Shuffle(&order);
      break;
    case RepairOrder::kWeightDesc: {
      std::vector<double> weight(static_cast<size_t>(nu), 0.0);
      for (UserId u = 0; u < nu; ++u) {
        const int32_t k = sampled_set[static_cast<size_t>(u)];
        if (k >= 0) {
          weight[static_cast<size_t>(u)] =
              SetWeight(instance, u,
                        admissible[static_cast<size_t>(u)].sets
                            [static_cast<size_t>(k)]);
        }
      }
      std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
        return weight[static_cast<size_t>(a)] >
               weight[static_cast<size_t>(b)];
      });
      break;
    }
  }

  Arrangement arrangement(nv, nu);
  std::vector<int32_t> load(static_cast<size_t>(nv), 0);
  int32_t repaired = 0;
  for (UserId u : order) {
    const int32_t k = sampled_set[static_cast<size_t>(u)];
    if (k < 0) continue;
    const auto& set =
        admissible[static_cast<size_t>(u)].sets[static_cast<size_t>(k)];
    for (EventId v : set) {
      if (load[static_cast<size_t>(v)] >= instance.event_capacity(v)) {
        ++repaired;  // line 7: drop v from S_u
        continue;
      }
      ++load[static_cast<size_t>(v)];
      IGEPA_RETURN_IF_ERROR(arrangement.Add(v, u));
    }
  }
  if (stats != nullptr) stats->pairs_repaired = repaired;
  return arrangement;
}

}  // namespace core
}  // namespace igepa
