#include "core/warm_tick.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace igepa {
namespace core {

Result<WarmTickReport> ApplyWarmTick(Instance* instance,
                                     AdmissibleCatalog* catalog,
                                     DualWarmStart* warm,
                                     RoundingState* rounding_state,
                                     FractionalSolution* fractional,
                                     const InstanceDelta& delta, Rng* rng,
                                     const StructuredDualOptions& dual,
                                     const CatalogDeltaOptions& delta_options,
                                     const LpPackingOptions& round_options) {
  const int32_t nu = instance->num_users();
  // Validate the WHOLE delta up front (the same check core::ApplyDelta
  // repeats): RetireSamples permanently mutates the rounding state below, so
  // a delta that would be rejected mid-tick must be rejected before any
  // state is touched.
  IGEPA_RETURN_IF_ERROR(
      ValidateDelta(instance->num_events(), nu, delta));
  // Registration-touched ∪ weight-touched (with non-bid interest drifts
  // filtered out — they change no column weight): every one of these users
  // gets a fresh sample, so they are also exactly the stale set of the warm
  // dual restart.
  const std::vector<UserId> touched = WarmTouchedUsers(*instance, delta);
  const std::vector<EventId> cap_events = TouchedEvents(delta);

  // Retire touched users' samples while their column ids are still
  // addressable (ApplyDelta may compact).
  std::vector<EventId> dirty_events =
      RetireSamples(*catalog, touched, rounding_state);
  dirty_events.insert(dirty_events.end(), cap_events.begin(),
                      cap_events.end());
  std::sort(dirty_events.begin(), dirty_events.end());
  dirty_events.erase(std::unique(dirty_events.begin(), dirty_events.end()),
                     dirty_events.end());

  IGEPA_RETURN_IF_ERROR(ApplyDelta(instance, delta));
  IGEPA_ASSIGN_OR_RETURN(CatalogDeltaResult delta_result,
                         catalog->ApplyDelta(*instance, delta, delta_options));
  if (delta_result.compacted) {
    // Surviving column ids were renumbered; keep the cached state alive.
    rounding_state->Remap(delta_result.column_remap, catalog->ids_revision());
    warm->Remap(delta_result.column_remap, catalog->ids_revision());
  }
  warm->stale.assign(static_cast<size_t>(nu), 0);
  for (UserId u : touched) warm->stale[static_cast<size_t>(u)] = 1;

  StructuredDualOptions warm_dual = dual;
  warm_dual.warm = warm;
  DualWarmStart warm_next;
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution warm_sol,
      SolveBenchmarkLpStructured(*instance, *catalog, warm_dual, &warm_next));
  fractional->lp = std::move(warm_sol);

  IGEPA_ASSIGN_OR_RETURN(
      Arrangement arrangement,
      RoundFractionalDelta(*instance, *catalog, *fractional, touched,
                           dirty_events, rng, rounding_state, round_options));
  IGEPA_RETURN_IF_ERROR(arrangement.CheckFeasible(*instance));
  *warm = std::move(warm_next);

  WarmTickReport report;
  report.arrangement = std::move(arrangement);
  report.touched_users = static_cast<int32_t>(touched.size());
  report.event_updates = static_cast<int32_t>(delta.event_updates.size());
  report.columns_rescored = delta_result.columns_rescored;
  report.compacted = delta_result.compacted;
  return report;
}

}  // namespace core
}  // namespace igepa
