#include "core/warm_tick.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace igepa {
namespace core {

Result<WarmTickReport> ApplyWarmTick(Instance* instance,
                                     AdmissibleCatalog* catalog,
                                     DualWarmStart* warm,
                                     RoundingState* rounding_state,
                                     FractionalSolution* fractional,
                                     const InstanceDelta& delta, Rng* rng,
                                     const StructuredDualOptions& dual,
                                     const CatalogDeltaOptions& delta_options,
                                     const LpPackingOptions& round_options) {
  const int32_t nu = instance->num_users();
  const std::vector<UserId> touched = TouchedUsers(delta);
  const std::vector<EventId> cap_events = TouchedEvents(delta);
  // Validate ids up front: RetireSamples indexes per-user state before
  // core::ApplyDelta gets a chance to reject the delta.
  for (UserId u : touched) {
    if (u < 0 || u >= nu) {
      return Status::InvalidArgument("warm tick updates out-of-range user " +
                                     std::to_string(u));
    }
  }
  for (EventId v : cap_events) {
    if (v < 0 || v >= instance->num_events()) {
      return Status::InvalidArgument("warm tick updates out-of-range event " +
                                     std::to_string(v));
    }
  }

  // Retire touched users' samples while their column ids are still
  // addressable (ApplyDelta may compact).
  std::vector<EventId> dirty_events =
      RetireSamples(*catalog, touched, rounding_state);
  dirty_events.insert(dirty_events.end(), cap_events.begin(),
                      cap_events.end());
  std::sort(dirty_events.begin(), dirty_events.end());
  dirty_events.erase(std::unique(dirty_events.begin(), dirty_events.end()),
                     dirty_events.end());

  IGEPA_RETURN_IF_ERROR(ApplyDelta(instance, delta));
  IGEPA_ASSIGN_OR_RETURN(CatalogDeltaResult delta_result,
                         catalog->ApplyDelta(*instance, delta, delta_options));
  if (delta_result.compacted) {
    // Surviving column ids were renumbered; keep the cached state alive.
    rounding_state->Remap(delta_result.column_remap, catalog->ids_revision());
    warm->Remap(delta_result.column_remap, catalog->ids_revision());
  }
  warm->stale.assign(static_cast<size_t>(nu), 0);
  for (UserId u : touched) warm->stale[static_cast<size_t>(u)] = 1;

  StructuredDualOptions warm_dual = dual;
  warm_dual.warm = warm;
  DualWarmStart warm_next;
  IGEPA_ASSIGN_OR_RETURN(
      lp::LpSolution warm_sol,
      SolveBenchmarkLpStructured(*instance, *catalog, warm_dual, &warm_next));
  fractional->lp = std::move(warm_sol);

  IGEPA_ASSIGN_OR_RETURN(
      Arrangement arrangement,
      RoundFractionalDelta(*instance, *catalog, *fractional, touched,
                           dirty_events, rng, rounding_state, round_options));
  IGEPA_RETURN_IF_ERROR(arrangement.CheckFeasible(*instance));
  *warm = std::move(warm_next);

  WarmTickReport report;
  report.arrangement = std::move(arrangement);
  report.touched_users = static_cast<int32_t>(touched.size());
  report.event_updates = static_cast<int32_t>(delta.event_updates.size());
  report.compacted = delta_result.compacted;
  return report;
}

}  // namespace core
}  // namespace igepa
