#ifndef IGEPA_IO_DELTA_IO_H_
#define IGEPA_IO_DELTA_IO_H_

#include <istream>
#include <string>
#include <vector>

#include "core/instance_delta.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// Serializes a delta stream to a sectioned CSV file (the replay workload's
/// on-disk format):
///
///   igepa-deltas,<version>,<num_ticks>,<num_events>,<num_users>
///   tick,<index>                          (0-based, strictly increasing)
///   user,<id>,<capacity>,<bid;bid;...>    (empty bid list = cancellation)
///   event,<id>,<capacity>
///   edge,<a>,<b>,<add 0|1>                (v2: friendship edge mutation)
///   interest,<event>,<user>,<value>       (v2: SI drift, value in [0,1])
///
/// Version 2 adds the weight-delta lines (edge/interest); the writer emits
/// the lowest sufficient version, and v1 streams read unchanged. The
/// header's event/user counts record the id space the deltas address, so a
/// stream can be validated against an instance before replaying.
Status WriteDeltaStreamCsv(const std::vector<core::InstanceDelta>& stream,
                           int32_t num_events, int32_t num_users,
                           const std::string& path);

/// Stream-based variant: the serve WAL frames each record's payload as one
/// single-tick delta CSV written through this overload; `label` names the
/// destination in error messages.
Status WriteDeltaStreamCsv(const std::vector<core::InstanceDelta>& stream,
                           int32_t num_events, int32_t num_users,
                           std::ostream& out, const std::string& label);

/// Reads a delta stream written by WriteDeltaStreamCsv, validating ids
/// against the header's ranges.
Result<std::vector<core::InstanceDelta>> ReadDeltaStreamCsv(
    const std::string& path);

/// Stream-based variant (WAL record payloads); `label` names the source in
/// error messages.
Result<std::vector<core::InstanceDelta>> ReadDeltaStreamCsv(
    std::istream& in, const std::string& label);

/// Serializes a timestamped arrival stream (the serving workload's on-disk
/// format — docs/FORMATS.md):
///
///   igepa-arrivals,<version>,<num_arrivals>,<num_events>,<num_users>
///   user,<t_seconds>,<id>,<capacity>,<bid;bid;...>   (empty = cancellation)
///   event,<t_seconds>,<id>,<capacity>
///   edge,<t_seconds>,<a>,<b>,<add 0|1>               (v2)
///   interest,<t_seconds>,<event>,<user>,<value>      (v2)
///
/// One line per arrival, timestamps nondecreasing. Every arrival must carry
/// exactly ONE mutation (one user, event-capacity, edge or interest update —
/// the core::ArrivalEvent convention); the writer rejects anything else with
/// InvalidArgument, since the header promises the line count. Unlike the
/// tick-sectioned delta stream, the arrival format carries continuous time,
/// so the consumer (the epoch loop of serve::ArrangementService) chooses its
/// own batching.
Status WriteArrivalStreamCsv(const std::vector<core::ArrivalEvent>& stream,
                             int32_t num_events, int32_t num_users,
                             const std::string& path);

/// Reads an arrival stream written by WriteArrivalStreamCsv, validating ids
/// against the header's ranges and timestamps for monotonicity.
Result<std::vector<core::ArrivalEvent>> ReadArrivalStreamCsv(
    const std::string& path);

/// Stream-based variant (`igepa serve --arrivals=-` pipes stdin through
/// this); `label` names the source in error messages.
Result<std::vector<core::ArrivalEvent>> ReadArrivalStreamCsv(
    std::istream& in, const std::string& label);

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_DELTA_IO_H_
