#ifndef IGEPA_IO_DELTA_IO_H_
#define IGEPA_IO_DELTA_IO_H_

#include <string>
#include <vector>

#include "core/instance_delta.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// Serializes a delta stream to a sectioned CSV file (the replay workload's
/// on-disk format):
///
///   igepa-deltas,1,<num_ticks>,<num_events>,<num_users>
///   tick,<index>                          (0-based, strictly increasing)
///   user,<id>,<capacity>,<bid;bid;...>    (empty bid list = cancellation)
///   event,<id>,<capacity>
///
/// The header's event/user counts record the id space the deltas address, so
/// a stream can be validated against an instance before replaying.
Status WriteDeltaStreamCsv(const std::vector<core::InstanceDelta>& stream,
                           int32_t num_events, int32_t num_users,
                           const std::string& path);

/// Reads a delta stream written by WriteDeltaStreamCsv, validating ids
/// against the header's ranges.
Result<std::vector<core::InstanceDelta>> ReadDeltaStreamCsv(
    const std::string& path);

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_DELTA_IO_H_
