#ifndef IGEPA_IO_BINARY_INSTANCE_H_
#define IGEPA_IO_BINARY_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// The `igepa-bin,3` memory-mapped binary instance format (FORMATS.md §8):
/// a 64-byte little-endian header, fixed-width sections (event capacities,
/// user capacities, bid offsets, bid pool, per-bid interest, per-user degree,
/// sorted conflict pairs) and a CRC-32 trailer in the PR-7 checkpoint style.
/// Every section starts 8-byte aligned, so an `InstanceView` can serve reads
/// straight out of the mapping with zero parsing or allocation — the scale
/// path for instances whose dense CSV representation no longer fits.

/// Fixed per-file metadata the writer needs up front: section offsets are a
/// pure function of these counts, which is what lets both the streaming
/// generator and the CSV converter emit the file in one sequential pass.
struct BinaryInstanceHeader {
  int32_t num_events = 0;
  int32_t num_users = 0;
  int64_t num_bids = 0;       // total bid pairs across all users
  int64_t num_conflicts = 0;  // unordered conflicting event pairs
  double beta = 0.0;
  /// Utility-kernel id (core::MakeUtilityKernel vocabulary). Unlike CSV v1/v2
  /// there is no version split: the id is always stored.
  std::string kernel_id;
};

/// Streaming writer: records are appended strictly in id order (all events,
/// then all users, then all conflicts) and land in their sections through
/// per-section buffered cursors, so peak memory is O(buffering) no matter how
/// large the instance is. `Finish()` re-reads the file once to compute the
/// CRC-32 trailer. The produced file is byte-deterministic: identical record
/// sequences produce identical files.
class BinaryInstanceWriter {
 public:
  /// Creates `path` (truncating) and writes the header. The declared counts
  /// are binding: Finish() fails unless exactly that many records arrived.
  static Result<BinaryInstanceWriter> Create(const std::string& path,
                                             const BinaryInstanceHeader& header);

  BinaryInstanceWriter(BinaryInstanceWriter&& other) noexcept;
  BinaryInstanceWriter& operator=(BinaryInstanceWriter&& other) noexcept;
  BinaryInstanceWriter(const BinaryInstanceWriter&) = delete;
  BinaryInstanceWriter& operator=(const BinaryInstanceWriter&) = delete;
  ~BinaryInstanceWriter();

  /// Event `next_event_id` gets this capacity.
  Status AddEvent(int32_t capacity);

  /// User `next_user_id`: capacity, strictly ascending in-range bids, one
  /// interest value per bid (SI of that pair) and the user's degree D(G, u).
  Status AddUser(int32_t capacity, std::span<const core::EventId> bids,
                 std::span<const double> interest, double degree);

  /// One conflicting pair, a < b, strictly ascending lexicographically.
  Status AddConflict(core::EventId a, core::EventId b);

  /// Flushes, CRC-sweeps the file and appends the trailer. Must be called
  /// exactly once; the destructor aborts (deletes nothing, file stays
  /// truncated mid-write) if skipped — a finished file always has a trailer.
  Status Finish();

 private:
  struct Impl;
  explicit BinaryInstanceWriter(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Read-only, memory-mapped view of one `igepa-bin,3` file with the same
/// accessor surface as core::Instance, so weight/kernel code is
/// format-agnostic. `Open` maps the file and validates everything eagerly —
/// magic, version, exact size, CRC trailer, offset monotonicity, id ranges —
/// so accessors can be unchecked array reads. Move-only; callers that hand
/// sub-views to adapters wrap it in a shared_ptr.
class InstanceView {
 public:
  /// Maps and fully validates `path`. Truncated, tampered or foreign files
  /// are refused with IOError before any accessor can observe them.
  static Result<InstanceView> Open(const std::string& path);

  InstanceView(InstanceView&& other) noexcept;
  InstanceView& operator=(InstanceView&& other) noexcept;
  InstanceView(const InstanceView&) = delete;
  InstanceView& operator=(const InstanceView&) = delete;
  ~InstanceView();

  int32_t num_events() const { return num_events_; }
  int32_t num_users() const { return num_users_; }
  int64_t num_bids() const { return num_bids_; }
  int64_t num_conflicts() const { return num_conflicts_; }
  double beta() const { return beta_; }
  const std::string& kernel_id() const { return kernel_id_; }

  int32_t event_capacity(core::EventId v) const { return event_cap_[v]; }
  int32_t user_capacity(core::UserId u) const { return user_cap_[u]; }

  /// The user's bid set N_u (ascending), straight out of the mapping.
  std::span<const core::EventId> bids(core::UserId u) const {
    const int64_t b = bid_off_[u];
    return {pool_ + b, static_cast<size_t>(bid_off_[u + 1] - b)};
  }

  bool HasBid(core::UserId u, core::EventId v) const;

  /// σ(l_v, l_v'): binary search over the sorted conflict-pair section.
  bool Conflicts(core::EventId a, core::EventId b) const;

  /// SI(l_v, l_u): the stored per-bid value, 0 for non-bid pairs — the same
  /// sparse semantics as the CSV format (§1), whose interest lines cover bid
  /// pairs only.
  double Interest(core::EventId v, core::UserId u) const;

  /// D(G, u).
  double Degree(core::UserId u) const { return degree_[u]; }

  /// Definition-6 pair weight β·SI + (1-β)·D (the default kernel's value).
  double Weight(core::EventId v, core::UserId u) const {
    return beta_ * Interest(v, u) + (1.0 - beta_) * Degree(u);
  }

 private:
  InstanceView() = default;

  void* map_ = nullptr;
  size_t map_size_ = 0;
  int32_t num_events_ = 0;
  int32_t num_users_ = 0;
  int64_t num_bids_ = 0;
  int64_t num_conflicts_ = 0;
  double beta_ = 0.0;
  std::string kernel_id_;
  // Typed section pointers into the mapping.
  const int32_t* event_cap_ = nullptr;
  const int32_t* user_cap_ = nullptr;
  const int64_t* bid_off_ = nullptr;   // size num_users + 1
  const int32_t* pool_ = nullptr;      // size num_bids
  const double* interest_ = nullptr;   // size num_bids, parallel to pool_
  const double* degree_ = nullptr;     // size num_users
  const int32_t* conflicts_ = nullptr; // 2 * num_conflicts, (a, b) pairs
};

/// Builds a solvable core::Instance over the view: users and bids are
/// materialized (O(total bids) memory), interest/degree/conflicts stay
/// mmap-backed adapters, and the stored kernel id is installed. No dense
/// |V|×|U| table is ever allocated — the difference that lets million-user
/// instances load where the CSV reader cannot.
Result<core::Instance> MaterializeInstance(
    std::shared_ptr<const InstanceView> view);

/// True when `path` starts with the v3 magic (how the CLI auto-detects the
/// input format). IO errors read as "not binary".
bool SniffBinaryInstance(const std::string& path);

/// Streams `instance` into the binary format (id order, sorted conflicts).
Status WriteInstanceBinary(const core::Instance& instance,
                           const std::string& path);

/// CSV → binary, streaming: three passes over the CSV (count, structure,
/// values) against flat O(|U| + bids + conflicts) arrays — never the CSV
/// reader's dense interest table. User bid lists are normalized (sorted,
/// deduplicated), which is a no-op for files written by this repo.
Status ConvertCsvToBinary(const std::string& csv_path,
                          const std::string& bin_path);

/// Binary → CSV via the mmap view; produces exactly the bytes
/// io::WriteInstanceCsv would for the same instance, so CSV → binary → CSV
/// round-trips byte-identically on files this repo generates.
Status ConvertBinaryToCsv(const std::string& bin_path,
                          const std::string& csv_path);

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_BINARY_INSTANCE_H_
