#ifndef IGEPA_IO_INSTANCE_IO_H_
#define IGEPA_IO_INSTANCE_IO_H_

#include <string>

#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// Serializes an instance to a sectioned CSV file:
///
///   igepa,<version>,<num_events>,<num_users>,<beta>
///   kernel,<id>                            (v2: the utility kernel scoring
///                                           this instance's columns)
///   event,<id>,<capacity>
///   user,<id>,<capacity>,<bid;bid;...>
///   conflict,<a>,<b>                       (one line per conflicting pair)
///   interest,<event>,<user>,<value>        (bid pairs only — the only pairs
///                                           algorithms ever evaluate)
///   degree,<user>,<value>
///
/// Functional components are materialized: conflicts become an explicit
/// matrix, interest a table over bid pairs, interaction a degree table. The
/// re-read instance is therefore *algorithm-equivalent* to the original (all
/// reachable σ/SI/D evaluations agree) even when the original used implicit
/// representations (hash interest, interval conflicts). Live drift state
/// (UpdateInterest / ApplyGraphEdge overlays) is folded into the tables.
///
/// Version 2 (docs/FORMATS.md) additionally pins the objective: a `kernel`
/// record naming the core::UtilityKernel the instance scores columns with.
/// The writer emits the lowest sufficient version — instances on the default
/// kernel keep producing byte-identical v1 files — and v1 files read back
/// onto the default kernel, so pre-kernel instances solve exactly as before.
Status WriteInstanceCsv(const core::Instance& instance,
                        const std::string& path);

/// Reads an instance written by WriteInstanceCsv.
Result<core::Instance> ReadInstanceCsv(const std::string& path);

/// Serializes an arrangement: header line "arrangement,<nv>,<nu>" then one
/// "pair,<event>,<user>" line per pair.
Status WriteArrangementCsv(const core::Arrangement& arrangement,
                           const std::string& path);

/// Reads an arrangement written by WriteArrangementCsv.
Result<core::Arrangement> ReadArrangementCsv(const std::string& path);

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_INSTANCE_IO_H_
