#ifndef IGEPA_IO_INSTANCE_IO_H_
#define IGEPA_IO_INSTANCE_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// Serializes an instance to a sectioned CSV file:
///
///   igepa,<version>,<num_events>,<num_users>,<beta>
///   kernel,<id>                            (v2: the utility kernel scoring
///                                           this instance's columns)
///   event,<id>,<capacity>
///   user,<id>,<capacity>,<bid;bid;...>
///   conflict,<a>,<b>                       (one line per conflicting pair)
///   interest,<event>,<user>,<value>        (bid pairs only — the only pairs
///                                           algorithms ever evaluate)
///   degree,<user>,<value>
///
/// Functional components are materialized: conflicts become an explicit
/// matrix, interest a table over bid pairs, interaction a degree table. The
/// re-read instance is therefore *algorithm-equivalent* to the original (all
/// reachable σ/SI/D evaluations agree) even when the original used implicit
/// representations (hash interest, interval conflicts). Live drift state
/// (UpdateInterest / ApplyGraphEdge overlays) is folded into the tables.
///
/// Version 2 (docs/FORMATS.md) additionally pins the objective: a `kernel`
/// record naming the core::UtilityKernel the instance scores columns with.
/// The writer emits the lowest sufficient version — instances on the default
/// kernel keep producing byte-identical v1 files — and v1 files read back
/// onto the default kernel, so pre-kernel instances solve exactly as before.
Status WriteInstanceCsv(const core::Instance& instance,
                        const std::string& path);

/// Stream-based variant (serve checkpoints embed the instance through this);
/// `label` names the destination in error messages.
///
/// `dense_interest` writes an interest line for EVERY (event, user) pair
/// instead of just the current bid pairs. The bid-pair default is all any
/// solve of the *frozen* instance can evaluate, but a served instance is
/// live: a later re-registration delta adds bids whose SI must read the same
/// value the original interest model would have produced — a sparse snapshot
/// would silently turn them into 0. Deterministic crash recovery therefore
/// snapshots densely (docs/FORMATS.md). Dense files also format every double
/// round-trip exactly ("%.17g") instead of the sparse format's historical
/// fixed-17 digits, which lose ulps below 0.1.
Status WriteInstanceCsv(const core::Instance& instance, std::ostream& out,
                        const std::string& label,
                        bool dense_interest = false);

/// Reads an instance written by WriteInstanceCsv.
Result<core::Instance> ReadInstanceCsv(const std::string& path);

/// Stream-based variant (checkpoint loading); `label` names the source in
/// error messages.
Result<core::Instance> ReadInstanceCsv(std::istream& in,
                                       const std::string& label);

/// Serializes an arrangement: header line "arrangement,<nv>,<nu>" then one
/// "pair,<event>,<user>" line per pair.
Status WriteArrangementCsv(const core::Arrangement& arrangement,
                           const std::string& path);

/// Reads an arrangement written by WriteArrangementCsv.
Result<core::Arrangement> ReadArrangementCsv(const std::string& path);

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_INSTANCE_IO_H_
