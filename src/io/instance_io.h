#ifndef IGEPA_IO_INSTANCE_IO_H_
#define IGEPA_IO_INSTANCE_IO_H_

#include <string>

#include "core/arrangement.h"
#include "core/instance.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// Serializes an instance to a sectioned CSV file:
///
///   igepa,1,<num_events>,<num_users>,<beta>
///   event,<id>,<capacity>
///   user,<id>,<capacity>,<bid;bid;...>
///   conflict,<a>,<b>                       (one line per conflicting pair)
///   interest,<event>,<user>,<value>        (bid pairs only — the only pairs
///                                           algorithms ever evaluate)
///   degree,<user>,<value>
///
/// Functional components are materialized: conflicts become an explicit
/// matrix, interest a table over bid pairs, interaction a degree table. The
/// re-read instance is therefore *algorithm-equivalent* to the original (all
/// reachable σ/SI/D evaluations agree) even when the original used implicit
/// representations (hash interest, interval conflicts).
Status WriteInstanceCsv(const core::Instance& instance,
                        const std::string& path);

/// Reads an instance written by WriteInstanceCsv.
Result<core::Instance> ReadInstanceCsv(const std::string& path);

/// Serializes an arrangement: header line "arrangement,<nv>,<nu>" then one
/// "pair,<event>,<user>" line per pair.
Status WriteArrangementCsv(const core::Arrangement& arrangement,
                           const std::string& path);

/// Reads an arrangement written by WriteArrangementCsv.
Result<core::Arrangement> ReadArrangementCsv(const std::string& path);

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_INSTANCE_IO_H_
