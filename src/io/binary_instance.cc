#include "io/binary_instance.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "conflict/conflict.h"
#include "core/utility_kernel.h"
#include "graph/interaction_model.h"
#include "interest/interest.h"
#include "io/instance_io.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace igepa {
namespace io {

using core::EventId;
using core::UserId;

namespace {

constexpr char kMagic[8] = {'i', 'g', 'e', 'p', 'a', 'b', 'i', 'n'};
constexpr uint32_t kVersion = 3;
/// Trailer end-marker ("IGB3" little-endian) behind the CRC word: a file cut
/// mid-CRC-write still fails loudly instead of validating a torn trailer.
constexpr uint32_t kTrailerMagic = 0x33424749;
constexpr uint64_t kHeaderSize = 64;
constexpr size_t kCursorFlushBytes = 1u << 20;
/// Sanity bound on the header's kernel-id length: ids are short strings, so
/// anything larger is a corrupt length field, not a real kernel.
constexpr uint32_t kMaxKernelIdBytes = 4096;

uint64_t Align8(uint64_t n) { return (n + 7u) & ~uint64_t{7}; }

void PutU32(char* p, uint32_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
  p[2] = static_cast<char>(v >> 16);
  p[3] = static_cast<char>(v >> 24);
}

void PutU64(char* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status WriteFullyAt(int fd, const void* data, size_t size, uint64_t offset,
                    const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed on " + path + ": " +
                             std::strerror(errno));
    }
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Section layout: offsets are a pure function of the header counts. Every
/// section starts 8-byte aligned (int32 sections are padded with zeros).
struct Layout {
  uint64_t kernel_off, event_off, ucap_off, boff_off, pool_off, intr_off,
      deg_off, conf_off, trailer_off, file_size;

  static Layout Of(int32_t nv, int32_t nu, int64_t nbids, int64_t nconf,
                   uint32_t kernel_len) {
    Layout l;
    l.kernel_off = kHeaderSize;
    l.event_off = l.kernel_off + Align8(kernel_len);
    l.ucap_off = l.event_off + Align8(static_cast<uint64_t>(nv) * 4);
    l.boff_off = l.ucap_off + Align8(static_cast<uint64_t>(nu) * 4);
    l.pool_off = l.boff_off + (static_cast<uint64_t>(nu) + 1) * 8;
    l.intr_off = l.pool_off + Align8(static_cast<uint64_t>(nbids) * 4);
    l.deg_off = l.intr_off + static_cast<uint64_t>(nbids) * 8;
    l.conf_off = l.deg_off + static_cast<uint64_t>(nu) * 8;
    l.trailer_off = l.conf_off + static_cast<uint64_t>(nconf) * 8;
    l.file_size = l.trailer_off + 8;
    return l;
  }
};

}  // namespace

// ---- BinaryInstanceWriter ---------------------------------------------------

struct BinaryInstanceWriter::Impl {
  struct Cursor {
    uint64_t next_off = 0;  // file offset of the next flushed byte
    std::string buf;
  };

  std::string path;
  int fd = -1;
  BinaryInstanceHeader header;
  Layout layout;
  Cursor events, ucaps, boffs, pools, intrs, degs, confs;
  int64_t events_added = 0;
  int64_t users_added = 0;
  int64_t bids_added = 0;
  int64_t conflicts_added = 0;
  EventId last_conflict_a = -1;
  EventId last_conflict_b = -1;
  bool finished = false;
  /// First IO failure; later Add calls short-circuit on it so a caller that
  /// only checks Finish() still sees the original error.
  Status deferred;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  Status Flush(Cursor* c) {
    if (c->buf.empty()) return Status::OK();
    IGEPA_RETURN_IF_ERROR(
        WriteFullyAt(fd, c->buf.data(), c->buf.size(), c->next_off, path));
    c->next_off += c->buf.size();
    c->buf.clear();
    return Status::OK();
  }

  void Append(Cursor* c, const char* data, size_t size) {
    if (!deferred.ok()) return;
    c->buf.append(data, size);
    if (c->buf.size() >= kCursorFlushBytes) deferred = Flush(c);
  }

  void AppendU32(Cursor* c, uint32_t v) {
    char b[4];
    PutU32(b, v);
    Append(c, b, 4);
  }

  void AppendU64(Cursor* c, uint64_t v) {
    char b[8];
    PutU64(b, v);
    Append(c, b, 8);
  }

  void AppendF64(Cursor* c, double v) {
    AppendU64(c, std::bit_cast<uint64_t>(v));
  }
};

BinaryInstanceWriter::BinaryInstanceWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
BinaryInstanceWriter::BinaryInstanceWriter(BinaryInstanceWriter&&) noexcept =
    default;
BinaryInstanceWriter& BinaryInstanceWriter::operator=(
    BinaryInstanceWriter&&) noexcept = default;
BinaryInstanceWriter::~BinaryInstanceWriter() = default;

Result<BinaryInstanceWriter> BinaryInstanceWriter::Create(
    const std::string& path, const BinaryInstanceHeader& header) {
  if (header.num_events < 0 || header.num_users < 0 || header.num_bids < 0 ||
      header.num_conflicts < 0) {
    return Status::InvalidArgument("binary instance counts must be >= 0");
  }
  if (header.beta < 0.0 || header.beta > 1.0 || !std::isfinite(header.beta)) {
    return Status::InvalidArgument("beta must be in [0, 1]");
  }
  if (header.kernel_id.empty() || header.kernel_id.size() > kMaxKernelIdBytes) {
    return Status::InvalidArgument("kernel id must be non-empty and short");
  }
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->header = header;
  impl->layout =
      Layout::Of(header.num_events, header.num_users, header.num_bids,
                 header.num_conflicts,
                 static_cast<uint32_t>(header.kernel_id.size()));
  // O_RDWR, not O_WRONLY: Finish() reads the file back for the CRC sweep.
  impl->fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (impl->fd < 0) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }

  // Header + kernel id + the (<= 7-byte) inter-section alignment pads, all of
  // which are known now. Everything after is cursor-streamed.
  char head[kHeaderSize] = {};
  std::memcpy(head, kMagic, sizeof(kMagic));
  PutU32(head + 8, kVersion);
  PutU32(head + 12, static_cast<uint32_t>(header.kernel_id.size()));
  PutU32(head + 16, static_cast<uint32_t>(header.num_events));
  PutU32(head + 20, static_cast<uint32_t>(header.num_users));
  PutU64(head + 24, static_cast<uint64_t>(header.num_bids));
  PutU64(head + 32, static_cast<uint64_t>(header.num_conflicts));
  PutU64(head + 40, std::bit_cast<uint64_t>(header.beta));
  IGEPA_RETURN_IF_ERROR(WriteFullyAt(impl->fd, head, kHeaderSize, 0, path));
  IGEPA_RETURN_IF_ERROR(WriteFullyAt(impl->fd, header.kernel_id.data(),
                                     header.kernel_id.size(),
                                     impl->layout.kernel_off, path));
  const Layout& l = impl->layout;
  const uint64_t pad_from[] = {l.kernel_off + header.kernel_id.size(),
                               l.event_off + static_cast<uint64_t>(
                                                 header.num_events) * 4,
                               l.ucap_off +
                                   static_cast<uint64_t>(header.num_users) * 4,
                               l.pool_off +
                                   static_cast<uint64_t>(header.num_bids) * 4};
  const uint64_t pad_to[] = {l.event_off, l.ucap_off, l.boff_off, l.intr_off};
  const char zeros[8] = {};
  for (int i = 0; i < 4; ++i) {
    if (pad_to[i] > pad_from[i]) {
      IGEPA_RETURN_IF_ERROR(WriteFullyAt(
          impl->fd, zeros, pad_to[i] - pad_from[i], pad_from[i], path));
    }
  }

  impl->events.next_off = l.event_off;
  impl->ucaps.next_off = l.ucap_off;
  impl->boffs.next_off = l.boff_off;
  impl->pools.next_off = l.pool_off;
  impl->intrs.next_off = l.intr_off;
  impl->degs.next_off = l.deg_off;
  impl->confs.next_off = l.conf_off;
  return BinaryInstanceWriter(std::move(impl));
}

Status BinaryInstanceWriter::AddEvent(int32_t capacity) {
  Impl* w = impl_.get();
  if (!w->deferred.ok()) return w->deferred;
  if (w->events_added >= w->header.num_events) {
    return Status::InvalidArgument("more events than the header declares");
  }
  if (capacity < 0) return Status::InvalidArgument("event capacity < 0");
  w->AppendU32(&w->events, static_cast<uint32_t>(capacity));
  ++w->events_added;
  return w->deferred;
}

Status BinaryInstanceWriter::AddUser(int32_t capacity,
                                     std::span<const EventId> bids,
                                     std::span<const double> interest,
                                     double degree) {
  Impl* w = impl_.get();
  if (!w->deferred.ok()) return w->deferred;
  if (w->users_added >= w->header.num_users) {
    return Status::InvalidArgument("more users than the header declares");
  }
  if (capacity < 0) return Status::InvalidArgument("user capacity < 0");
  if (bids.size() != interest.size()) {
    return Status::InvalidArgument("one interest value per bid required");
  }
  if (w->bids_added + static_cast<int64_t>(bids.size()) >
      w->header.num_bids) {
    return Status::InvalidArgument("more bids than the header declares");
  }
  EventId prev = -1;
  for (size_t i = 0; i < bids.size(); ++i) {
    const EventId v = bids[i];
    if (v <= prev || v >= w->header.num_events) {
      return Status::InvalidArgument(
          "user bids must be strictly ascending event ids in range");
    }
    if (!(interest[i] >= 0.0 && interest[i] <= 1.0)) {
      return Status::InvalidArgument("interest values must be in [0, 1]");
    }
    prev = v;
  }
  if (!(degree >= 0.0 && degree <= 1.0)) {
    return Status::InvalidArgument("degree must be in [0, 1]");
  }
  w->AppendU32(&w->ucaps, static_cast<uint32_t>(capacity));
  w->AppendU64(&w->boffs, static_cast<uint64_t>(w->bids_added));
  for (size_t i = 0; i < bids.size(); ++i) {
    w->AppendU32(&w->pools, static_cast<uint32_t>(bids[i]));
    w->AppendF64(&w->intrs, interest[i]);
  }
  w->AppendF64(&w->degs, degree);
  w->bids_added += static_cast<int64_t>(bids.size());
  ++w->users_added;
  return w->deferred;
}

Status BinaryInstanceWriter::AddConflict(EventId a, EventId b) {
  Impl* w = impl_.get();
  if (!w->deferred.ok()) return w->deferred;
  if (w->conflicts_added >= w->header.num_conflicts) {
    return Status::InvalidArgument("more conflicts than the header declares");
  }
  if (a < 0 || b >= w->header.num_events || a >= b) {
    return Status::InvalidArgument("conflict pair must satisfy 0 <= a < b < |V|");
  }
  if (a < w->last_conflict_a ||
      (a == w->last_conflict_a && b <= w->last_conflict_b)) {
    return Status::InvalidArgument(
        "conflict pairs must be strictly ascending lexicographically");
  }
  w->AppendU32(&w->confs, static_cast<uint32_t>(a));
  w->AppendU32(&w->confs, static_cast<uint32_t>(b));
  w->last_conflict_a = a;
  w->last_conflict_b = b;
  ++w->conflicts_added;
  return w->deferred;
}

Status BinaryInstanceWriter::Finish() {
  Impl* w = impl_.get();
  if (w->finished) return Status::FailedPrecondition("Finish called twice");
  w->finished = true;
  if (!w->deferred.ok()) return w->deferred;
  if (w->events_added != w->header.num_events ||
      w->users_added != w->header.num_users ||
      w->bids_added != w->header.num_bids ||
      w->conflicts_added != w->header.num_conflicts) {
    return Status::InvalidArgument(
        "record counts do not match the declared header counts");
  }
  // Close the bid-offset section: boff[num_users] = num_bids.
  w->AppendU64(&w->boffs, static_cast<uint64_t>(w->bids_added));
  for (Impl::Cursor* c : {&w->events, &w->ucaps, &w->boffs, &w->pools,
                          &w->intrs, &w->degs, &w->confs}) {
    IGEPA_RETURN_IF_ERROR(w->Flush(c));
  }
  // CRC sweep over everything before the trailer, then the trailer itself.
  uint32_t crc = 0;
  uint64_t off = 0;
  char buf[1 << 16];
  while (off < w->layout.trailer_off) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(sizeof(buf), w->layout.trailer_off - off));
    const ssize_t n = ::pread(w->fd, buf, want, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread failed on " + w->path + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("short file during CRC sweep: " + w->path);
    }
    crc = Crc32Update(crc, buf, static_cast<size_t>(n));
    off += static_cast<uint64_t>(n);
  }
  char trailer[8];
  PutU32(trailer, crc);
  PutU32(trailer + 4, kTrailerMagic);
  IGEPA_RETURN_IF_ERROR(
      WriteFullyAt(w->fd, trailer, 8, w->layout.trailer_off, w->path));
  if (::close(w->fd) != 0) {
    w->fd = -1;
    return Status::IOError("close failed on " + w->path + ": " +
                           std::strerror(errno));
  }
  w->fd = -1;
  return Status::OK();
}

// ---- InstanceView -----------------------------------------------------------

InstanceView::InstanceView(InstanceView&& other) noexcept { *this = std::move(other); }

InstanceView& InstanceView::operator=(InstanceView&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    num_events_ = other.num_events_;
    num_users_ = other.num_users_;
    num_bids_ = other.num_bids_;
    num_conflicts_ = other.num_conflicts_;
    beta_ = other.beta_;
    kernel_id_ = std::move(other.kernel_id_);
    event_cap_ = other.event_cap_;
    user_cap_ = other.user_cap_;
    bid_off_ = other.bid_off_;
    pool_ = other.pool_;
    interest_ = other.interest_;
    degree_ = other.degree_;
    conflicts_ = other.conflicts_;
  }
  return *this;
}

InstanceView::~InstanceView() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Result<InstanceView> InstanceView::Open(const std::string& path) {
  static_assert(std::endian::native == std::endian::little,
                "igepa-bin,3 is pinned little-endian");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IOError("fstat failed on " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kHeaderSize + 8) {
    ::close(fd);
    return Status::IOError("not an igepa-bin,3 file (too short): " + path);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::IOError("mmap failed on " + path + ": " +
                           std::strerror(errno));
  }
  InstanceView view;
  view.map_ = map;
  view.map_size_ = static_cast<size_t>(size);
  const auto* base = static_cast<const unsigned char*>(map);

  const auto refuse = [&](const std::string& why) -> Status {
    return Status::IOError("invalid igepa-bin,3 file " + path + ": " + why);
  };
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return refuse("bad magic");
  }
  if (GetU32(base + 8) != kVersion) return refuse("unsupported version");
  const uint32_t kernel_len = GetU32(base + 12);
  const int32_t nv = static_cast<int32_t>(GetU32(base + 16));
  const int32_t nu = static_cast<int32_t>(GetU32(base + 20));
  const int64_t nbids = static_cast<int64_t>(GetU64(base + 24));
  const int64_t nconf = static_cast<int64_t>(GetU64(base + 32));
  const double beta = std::bit_cast<double>(GetU64(base + 40));
  if (kernel_len == 0 || kernel_len > kMaxKernelIdBytes) {
    return refuse("implausible kernel id length");
  }
  if (nv < 0 || nu < 0 || nbids < 0 || nconf < 0) {
    return refuse("negative section counts");
  }
  if (!(beta >= 0.0 && beta <= 1.0)) return refuse("beta out of [0, 1]");
  const Layout l = Layout::Of(nv, nu, nbids, nconf, kernel_len);
  if (l.file_size != size) {
    return refuse("size mismatch (truncated or trailing garbage)");
  }
  if (GetU32(base + l.trailer_off + 4) != kTrailerMagic) {
    return refuse("missing trailer magic");
  }
  const uint32_t crc = Crc32(base, l.trailer_off);
  if (crc != GetU32(base + l.trailer_off)) {
    return refuse("CRC mismatch (tampered or torn write)");
  }

  view.num_events_ = nv;
  view.num_users_ = nu;
  view.num_bids_ = nbids;
  view.num_conflicts_ = nconf;
  view.beta_ = beta;
  view.kernel_id_.assign(reinterpret_cast<const char*>(base + l.kernel_off),
                         kernel_len);
  view.event_cap_ = reinterpret_cast<const int32_t*>(base + l.event_off);
  view.user_cap_ = reinterpret_cast<const int32_t*>(base + l.ucap_off);
  view.bid_off_ = reinterpret_cast<const int64_t*>(base + l.boff_off);
  view.pool_ = reinterpret_cast<const int32_t*>(base + l.pool_off);
  view.interest_ = reinterpret_cast<const double*>(base + l.intr_off);
  view.degree_ = reinterpret_cast<const double*>(base + l.deg_off);
  view.conflicts_ = reinterpret_cast<const int32_t*>(base + l.conf_off);

  // Structural validation up front so every accessor can be an unchecked
  // read: offsets monotone and closed, bids ascending in range, conflicts
  // sorted, values in [0, 1]. One linear pass over sections the CRC sweep
  // already paged in.
  if (view.bid_off_[0] != 0 || view.bid_off_[nu] != nbids) {
    return refuse("bid offsets do not close over the pool");
  }
  for (UserId u = 0; u < nu; ++u) {
    if (view.user_cap_[u] < 0) return refuse("negative user capacity");
    const int64_t b = view.bid_off_[u];
    const int64_t e = view.bid_off_[u + 1];
    if (b > e) return refuse("bid offsets not monotone");
    EventId prev = -1;
    for (int64_t i = b; i < e; ++i) {
      const EventId v = view.pool_[i];
      if (v <= prev || v >= nv) return refuse("bid pool not ascending in range");
      if (!(view.interest_[i] >= 0.0 && view.interest_[i] <= 1.0)) {
        return refuse("interest out of [0, 1]");
      }
      prev = v;
    }
    if (!(view.degree_[u] >= 0.0 && view.degree_[u] <= 1.0)) {
      return refuse("degree out of [0, 1]");
    }
  }
  for (EventId v = 0; v < nv; ++v) {
    if (view.event_cap_[v] < 0) return refuse("negative event capacity");
  }
  EventId pa = -1, pb = -1;
  for (int64_t i = 0; i < nconf; ++i) {
    const EventId a = view.conflicts_[2 * i];
    const EventId b = view.conflicts_[2 * i + 1];
    if (a < 0 || b >= nv || a >= b) return refuse("bad conflict pair");
    if (a < pa || (a == pa && b <= pb)) return refuse("conflicts not sorted");
    pa = a;
    pb = b;
  }
  return view;
}

bool InstanceView::HasBid(UserId u, EventId v) const {
  const auto span = bids(u);
  return std::binary_search(span.begin(), span.end(), v);
}

double InstanceView::Interest(EventId v, UserId u) const {
  const int64_t b = bid_off_[u];
  const int64_t e = bid_off_[u + 1];
  const int32_t* lo = std::lower_bound(pool_ + b, pool_ + e, v);
  if (lo == pool_ + e || *lo != v) return 0.0;
  return interest_[lo - pool_];
}

bool InstanceView::Conflicts(EventId a, EventId b) const {
  if (a == b) return false;
  const EventId lo = std::min(a, b);
  const EventId hi = std::max(a, b);
  int64_t left = 0;
  int64_t right = num_conflicts_;
  while (left < right) {
    const int64_t mid = left + (right - left) / 2;
    const EventId ma = conflicts_[2 * mid];
    const EventId mb = conflicts_[2 * mid + 1];
    if (ma < lo || (ma == lo && mb < hi)) {
      left = mid + 1;
    } else if (ma == lo && mb == hi) {
      return true;
    } else {
      right = mid;
    }
  }
  return false;
}

// ---- Materialization --------------------------------------------------------

namespace {

/// Interest/interaction/conflict functions that serve reads straight out of a
/// shared mmap view — the glue that makes a view-backed core::Instance cost
/// O(total bids) RAM instead of a dense |V|×|U| table.
class ViewInterestFn final : public interest::InterestFn {
 public:
  explicit ViewInterestFn(std::shared_ptr<const InstanceView> view)
      : view_(std::move(view)) {}
  int32_t num_events() const override { return view_->num_events(); }
  int32_t num_users() const override { return view_->num_users(); }
  double Interest(int32_t event, int32_t user) const override {
    return view_->Interest(event, user);
  }

 private:
  std::shared_ptr<const InstanceView> view_;
};

class ViewInteractionModel final : public graph::InteractionModel {
 public:
  explicit ViewInteractionModel(std::shared_ptr<const InstanceView> view)
      : view_(std::move(view)) {}
  int32_t num_users() const override { return view_->num_users(); }
  double Degree(int32_t user) const override { return view_->Degree(user); }

 private:
  std::shared_ptr<const InstanceView> view_;
};

class ViewConflictFn final : public conflict::ConflictFn {
 public:
  explicit ViewConflictFn(std::shared_ptr<const InstanceView> view)
      : view_(std::move(view)) {}
  conflict::EventId num_events() const override { return view_->num_events(); }
  bool Conflicts(conflict::EventId a, conflict::EventId b) const override {
    return view_->Conflicts(a, b);
  }

 private:
  std::shared_ptr<const InstanceView> view_;
};

}  // namespace

Result<core::Instance> MaterializeInstance(
    std::shared_ptr<const InstanceView> view) {
  if (view == nullptr) return Status::InvalidArgument("null view");
  IGEPA_ASSIGN_OR_RETURN(std::shared_ptr<const core::UtilityKernel> kernel,
                         core::MakeUtilityKernel(view->kernel_id()));
  const int32_t nv = view->num_events();
  const int32_t nu = view->num_users();
  std::vector<core::EventDef> events(static_cast<size_t>(nv));
  for (EventId v = 0; v < nv; ++v) {
    events[static_cast<size_t>(v)].capacity = view->event_capacity(v);
  }
  std::vector<core::UserDef> users(static_cast<size_t>(nu));
  for (UserId u = 0; u < nu; ++u) {
    auto& user = users[static_cast<size_t>(u)];
    user.capacity = view->user_capacity(u);
    const auto bids = view->bids(u);
    user.bids.assign(bids.begin(), bids.end());
  }
  core::Instance instance(std::move(events), std::move(users),
                          std::make_shared<ViewConflictFn>(view),
                          std::make_shared<ViewInterestFn>(view),
                          std::make_shared<ViewInteractionModel>(view),
                          view->beta());
  instance.set_kernel(std::move(kernel));
  IGEPA_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

bool SniffBinaryInstance(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char head[sizeof(kMagic)] = {};
  if (!in.read(head, sizeof(head))) return false;
  return std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

// ---- Instance → binary ------------------------------------------------------

Status WriteInstanceBinary(const core::Instance& instance,
                           const std::string& path) {
  const int32_t nv = instance.num_events();
  const int32_t nu = instance.num_users();
  BinaryInstanceHeader header;
  header.num_events = nv;
  header.num_users = nu;
  header.num_bids = instance.TotalBids();
  header.beta = instance.beta();
  header.kernel_id = instance.kernel().id();
  int64_t nconf = 0;
  for (EventId a = 0; a < nv; ++a) {
    for (EventId b = a + 1; b < nv; ++b) {
      if (instance.Conflicts(a, b)) ++nconf;
    }
  }
  header.num_conflicts = nconf;
  IGEPA_ASSIGN_OR_RETURN(BinaryInstanceWriter writer,
                         BinaryInstanceWriter::Create(path, header));
  for (EventId v = 0; v < nv; ++v) {
    IGEPA_RETURN_IF_ERROR(writer.AddEvent(instance.event_capacity(v)));
  }
  std::vector<double> interest;
  for (UserId u = 0; u < nu; ++u) {
    const std::vector<EventId>& bids = instance.bids(u);
    interest.clear();
    interest.reserve(bids.size());
    for (EventId v : bids) interest.push_back(instance.Interest(v, u));
    IGEPA_RETURN_IF_ERROR(writer.AddUser(instance.user_capacity(u), bids,
                                         interest, instance.Degree(u)));
  }
  for (EventId a = 0; a < nv; ++a) {
    for (EventId b = a + 1; b < nv; ++b) {
      if (instance.Conflicts(a, b)) {
        IGEPA_RETURN_IF_ERROR(writer.AddConflict(a, b));
      }
    }
  }
  return writer.Finish();
}

// ---- CSV ↔ binary conversion ------------------------------------------------

namespace {

struct CsvHeader {
  int32_t num_events = 0;
  int32_t num_users = 0;
  double beta = 0.0;
  bool v2 = false;
};

Status ParseCsvHeader(std::istream& in, const std::string& path,
                      CsvHeader* out) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty instance file: " + path);
  }
  const auto header = Split(Trim(line), ',');
  if (header.size() != 5 || header[0] != "igepa" ||
      (header[1] != "1" && header[1] != "2")) {
    return Status::InvalidArgument("bad instance header in " + path);
  }
  out->v2 = header[1] == "2";
  int64_t nv = 0, nu = 0;
  if (!ParseInt(header[2], &nv) || !ParseInt(header[3], &nu) ||
      !ParseDouble(header[4], &out->beta) || nv < 0 || nu < 0) {
    return Status::InvalidArgument("bad instance header fields in " + path);
  }
  out->num_events = static_cast<int32_t>(nv);
  out->num_users = static_cast<int32_t>(nu);
  return Status::OK();
}

/// Parses a `user` line's bid field into `bids`, normalized (sorted,
/// deduplicated, ids validated against nv).
Status ParseUserBids(const std::string& field, int32_t nv,
                     std::vector<EventId>* bids) {
  bids->clear();
  if (field.empty()) return Status::OK();
  for (const auto& token : Split(field, ';')) {
    int64_t v = 0;
    if (!ParseInt(token, &v) || v < 0 || v >= nv) {
      return Status::InvalidArgument("bad bid id '" + std::string(token) + "'");
    }
    bids->push_back(static_cast<EventId>(v));
  }
  std::sort(bids->begin(), bids->end());
  bids->erase(std::unique(bids->begin(), bids->end()), bids->end());
  return Status::OK();
}

}  // namespace

Status ConvertCsvToBinary(const std::string& csv_path,
                          const std::string& bin_path) {
  // Pass 1 — counts: per-user bid-list sizes (normalized), conflict pairs and
  // the kernel id. Flat arrays only; the dense |V|×|U| interest table the CSV
  // reader allocates never exists on this path.
  std::ifstream in(csv_path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + csv_path);
  }
  CsvHeader header;
  IGEPA_RETURN_IF_ERROR(ParseCsvHeader(in, csv_path, &header));
  const int32_t nv = header.num_events;
  const int32_t nu = header.num_users;
  std::string kernel_id = core::DefaultUtilityKernel()->id();
  std::vector<int64_t> bid_off(static_cast<size_t>(nu) + 1, 0);
  std::vector<EventId> scratch_bids;
  std::vector<std::pair<EventId, EventId>> conflicts;
  std::string line;
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument(why + " in " + csv_path);
  };
  while (std::getline(in, line)) {
    const auto trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = Split(trimmed, ',');
    const auto& kind = fields[0];
    if (kind == "user") {
      if (fields.size() != 4) return bad("bad user line");
      int64_t id = 0;
      if (!ParseInt(fields[1], &id) || id < 0 || id >= nu) {
        return bad("user id out of range");
      }
      IGEPA_RETURN_IF_ERROR(ParseUserBids(fields[3], nv, &scratch_bids));
      bid_off[static_cast<size_t>(id) + 1] =
          static_cast<int64_t>(scratch_bids.size());
    } else if (kind == "conflict") {
      if (fields.size() != 3) return bad("bad conflict line");
      int64_t a = 0, b = 0;
      if (!ParseInt(fields[1], &a) || !ParseInt(fields[2], &b) || a < 0 ||
          b < 0 || a >= nv || b >= nv || a == b) {
        return bad("conflict ids out of range");
      }
      conflicts.emplace_back(static_cast<EventId>(std::min(a, b)),
                             static_cast<EventId>(std::max(a, b)));
    } else if (kind == "kernel") {
      if (!header.v2) return bad("kernel record requires format version 2");
      if (fields.size() != 2 || fields[1].empty()) return bad("bad kernel line");
      kernel_id = fields[1];
    } else if (kind != "event" && kind != "interest" && kind != "degree") {
      return bad("unknown line kind '" + std::string(kind) + "'");
    }
  }
  std::sort(conflicts.begin(), conflicts.end());
  conflicts.erase(std::unique(conflicts.begin(), conflicts.end()),
                  conflicts.end());
  for (UserId u = 0; u < nu; ++u) bid_off[u + 1] += bid_off[u];
  const int64_t num_bids = bid_off[static_cast<size_t>(nu)];

  // Pass 2 — structure: capacities and the bid pool land in flat arrays at
  // their pass-1 offsets.
  std::vector<int32_t> event_cap(static_cast<size_t>(nv), 0);
  std::vector<int32_t> user_cap(static_cast<size_t>(nu), 0);
  std::vector<EventId> pool(static_cast<size_t>(num_bids), 0);
  in.clear();
  in.seekg(0);
  std::getline(in, line);  // header, already parsed
  while (std::getline(in, line)) {
    const auto trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = Split(trimmed, ',');
    const auto& kind = fields[0];
    if (kind == "event") {
      if (fields.size() != 3) return bad("bad event line");
      int64_t id = 0, cap = 0;
      if (!ParseInt(fields[1], &id) || !ParseInt(fields[2], &cap) || id < 0 ||
          id >= nv || cap < 0) {
        return bad("bad event fields");
      }
      event_cap[static_cast<size_t>(id)] = static_cast<int32_t>(cap);
    } else if (kind == "user") {
      int64_t id = 0, cap = 0;
      if (!ParseInt(fields[1], &id) || !ParseInt(fields[2], &cap) || cap < 0) {
        return bad("bad user fields");
      }
      user_cap[static_cast<size_t>(id)] = static_cast<int32_t>(cap);
      IGEPA_RETURN_IF_ERROR(ParseUserBids(fields[3], nv, &scratch_bids));
      std::copy(scratch_bids.begin(), scratch_bids.end(),
                pool.begin() + bid_off[static_cast<size_t>(id)]);
    }
  }

  // Pass 3 — values: interest lands at its pool slot (binary search in the
  // user's bid span); non-bid pairs are unrepresentable in v3 and dropped,
  // which is algorithm-equivalent (only bid pairs are ever evaluated).
  std::vector<double> interest(static_cast<size_t>(num_bids), 0.0);
  std::vector<double> degree(static_cast<size_t>(nu), 0.0);
  in.clear();
  in.seekg(0);
  std::getline(in, line);
  while (std::getline(in, line)) {
    const auto trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = Split(trimmed, ',');
    const auto& kind = fields[0];
    if (kind == "interest") {
      if (fields.size() != 4) return bad("bad interest line");
      int64_t v = 0, u = 0;
      double value = 0.0;
      if (!ParseInt(fields[1], &v) || !ParseInt(fields[2], &u) ||
          !ParseDouble(fields[3], &value) || v < 0 || v >= nv || u < 0 ||
          u >= nu || value < 0.0 || value > 1.0) {
        return bad("bad interest fields");
      }
      const int64_t b = bid_off[static_cast<size_t>(u)];
      const int64_t e = bid_off[static_cast<size_t>(u) + 1];
      const auto it = std::lower_bound(pool.begin() + b, pool.begin() + e,
                                       static_cast<EventId>(v));
      if (it != pool.begin() + e && *it == static_cast<EventId>(v)) {
        interest[static_cast<size_t>(it - pool.begin())] = value;
      }
    } else if (kind == "degree") {
      if (fields.size() != 3) return bad("bad degree line");
      int64_t u = 0;
      double value = 0.0;
      if (!ParseInt(fields[1], &u) || !ParseDouble(fields[2], &value) ||
          u < 0 || u >= nu || value < 0.0 || value > 1.0) {
        return bad("bad degree fields");
      }
      degree[static_cast<size_t>(u)] = value;
    }
  }
  in.close();

  BinaryInstanceHeader bin_header;
  bin_header.num_events = nv;
  bin_header.num_users = nu;
  bin_header.num_bids = num_bids;
  bin_header.num_conflicts = static_cast<int64_t>(conflicts.size());
  bin_header.beta = header.beta;
  bin_header.kernel_id = kernel_id;
  IGEPA_ASSIGN_OR_RETURN(BinaryInstanceWriter writer,
                         BinaryInstanceWriter::Create(bin_path, bin_header));
  for (EventId v = 0; v < nv; ++v) {
    IGEPA_RETURN_IF_ERROR(writer.AddEvent(event_cap[static_cast<size_t>(v)]));
  }
  for (UserId u = 0; u < nu; ++u) {
    const int64_t b = bid_off[static_cast<size_t>(u)];
    const int64_t e = bid_off[static_cast<size_t>(u) + 1];
    IGEPA_RETURN_IF_ERROR(writer.AddUser(
        user_cap[static_cast<size_t>(u)],
        std::span<const EventId>(pool.data() + b, static_cast<size_t>(e - b)),
        std::span<const double>(interest.data() + b,
                                static_cast<size_t>(e - b)),
        degree[static_cast<size_t>(u)]));
  }
  for (const auto& [a, b] : conflicts) {
    IGEPA_RETURN_IF_ERROR(writer.AddConflict(a, b));
  }
  return writer.Finish();
}

Status ConvertBinaryToCsv(const std::string& bin_path,
                          const std::string& csv_path) {
  IGEPA_ASSIGN_OR_RETURN(InstanceView view, InstanceView::Open(bin_path));
  auto shared = std::make_shared<const InstanceView>(std::move(view));
  IGEPA_ASSIGN_OR_RETURN(core::Instance instance, MaterializeInstance(shared));
  return WriteInstanceCsv(instance, csv_path);
}

}  // namespace io
}  // namespace igepa
