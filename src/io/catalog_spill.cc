#include "io/catalog_spill.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "util/crc32.h"

namespace igepa {
namespace io {

namespace {

constexpr char kMagic[8] = {'i', 'g', 'e', 'p', 'a', 'c', 'a', 't'};
constexpr uint32_t kVersion = 1;
/// Trailer end-marker ("IGC1" little-endian) behind the CRC word, same
/// discipline as igepa-bin,3: a file cut mid-CRC-write fails loudly.
constexpr uint32_t kTrailerMagic = 0x31434749;
constexpr uint64_t kHeaderSize = 64;
constexpr uint64_t kDirRecordSize = 48;
/// Sections start page-aligned so each one can be mmapped independently
/// (mmap offsets must be page multiples). 4096 is the smallest page size on
/// every platform this repo targets; a larger runtime page size would only
/// make these offsets non-mappable, which Map reports as an IOError.
constexpr uint64_t kSectionAlign = 4096;

uint64_t Align8(uint64_t n) { return (n + 7u) & ~uint64_t{7}; }
uint64_t AlignSection(uint64_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

void PutU32(char* p, uint32_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
  p[2] = static_cast<char>(v >> 16);
  p[3] = static_cast<char>(v >> 24);
}

void PutU64(char* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const unsigned char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status WriteFullyAt(int fd, const void* data, size_t size, uint64_t offset,
                    const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite failed on " + path + ": " +
                             std::strerror(errno));
    }
    p += n;
    off += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Sub-array offsets inside one catalog section — a pure function of the
/// four counts, every array 8-byte aligned (the section base is
/// page-aligned, so mapped pointers are naturally aligned for their types).
struct SectionLayout {
  uint64_t user_begin_off, col_begin_off, pool_off, weight_off, col_user_off,
      event_begin_off, event_cols_off, bytes;

  static SectionLayout Of(int32_t nu, int32_t nv, int32_t ncols,
                          int64_t npairs) {
    SectionLayout l;
    l.user_begin_off = 0;
    l.col_begin_off =
        Align8(l.user_begin_off + (static_cast<uint64_t>(nu) + 1) * 4);
    l.pool_off = l.col_begin_off + (static_cast<uint64_t>(ncols) + 1) * 8;
    l.weight_off = Align8(l.pool_off + static_cast<uint64_t>(npairs) * 4);
    l.col_user_off = l.weight_off + static_cast<uint64_t>(ncols) * 8;
    l.event_begin_off =
        Align8(l.col_user_off + static_cast<uint64_t>(ncols) * 4);
    l.event_cols_off =
        l.event_begin_off + (static_cast<uint64_t>(nv) + 1) * 8;
    l.bytes = Align8(l.event_cols_off + static_cast<uint64_t>(npairs) * 4);
    return l;
  }
};

struct SectionRecord {
  uint64_t offset = 0;
  uint64_t bytes = 0;
  int32_t num_users = 0;
  int32_t num_events = 0;
  int32_t num_columns = 0;
  uint32_t crc = 0;
  int64_t num_pairs = 0;
};

}  // namespace

struct CatalogSpill::Impl {
  std::string path;
  int fd = -1;
  bool sealed = false;
  std::vector<SectionRecord> records;
  uint64_t next_off = kSectionAlign;  // first section lands page-aligned
  uint64_t total_payload = 0;
  uint64_t max_payload = 0;
  /// Guards records/next_off during Append reservation and the lazy
  /// first-Map CRC validation bitmap.
  mutable std::mutex mutex;
  mutable std::vector<uint8_t> validated;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }
};

CatalogSpill::CatalogSpill(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
CatalogSpill::CatalogSpill(CatalogSpill&&) noexcept = default;
CatalogSpill& CatalogSpill::operator=(CatalogSpill&&) noexcept = default;
CatalogSpill::~CatalogSpill() = default;

Result<CatalogSpill> CatalogSpill::Create(const std::string& path) {
  static_assert(std::endian::native == std::endian::little,
                "igepa-cat,1 is pinned little-endian");
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  // O_RDWR: Map serves reads from this same fd after Seal.
  impl->fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (impl->fd < 0) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  return CatalogSpill(std::move(impl));
}

Result<int32_t> CatalogSpill::Append(const core::CatalogLanes& lanes) {
  Impl* w = impl_.get();
  if (w->sealed) return Status::FailedPrecondition("Append after Seal");
  if (lanes.num_users < 0 || lanes.num_events < 0 || lanes.num_columns < 0 ||
      lanes.num_pairs < 0) {
    return Status::InvalidArgument("catalog lane counts must be >= 0");
  }
  const SectionLayout layout = SectionLayout::Of(
      lanes.num_users, lanes.num_events, lanes.num_columns, lanes.num_pairs);

  SectionRecord record;
  record.bytes = layout.bytes;
  record.num_users = lanes.num_users;
  record.num_events = lanes.num_events;
  record.num_columns = lanes.num_columns;
  record.num_pairs = lanes.num_pairs;

  int32_t index = 0;
  {
    std::lock_guard<std::mutex> lock(w->mutex);
    record.offset = w->next_off;
    w->next_off = AlignSection(record.offset + record.bytes);
    index = static_cast<int32_t>(w->records.size());
    w->records.push_back(record);
    w->total_payload += record.bytes;
    w->max_payload = std::max(w->max_payload, record.bytes);
  }

  // Disjoint-range writes, no lock held. The section CRC is chained over the
  // payload *as it will read back*: each sub-array in order, with the (<= 7
  // byte) alignment gaps as zeros — pwrite leaves those ranges as file holes,
  // which read back as zeros, so stored and recomputed CRCs agree.
  struct Piece {
    uint64_t off;
    const void* data;
    uint64_t size;
  };
  const Piece pieces[] = {
      {layout.user_begin_off, lanes.user_begin,
       (static_cast<uint64_t>(lanes.num_users) + 1) * 4},
      {layout.col_begin_off, lanes.col_begin,
       (static_cast<uint64_t>(lanes.num_columns) + 1) * 8},
      {layout.pool_off, lanes.pool,
       static_cast<uint64_t>(lanes.num_pairs) * 4},
      {layout.weight_off, lanes.weight,
       static_cast<uint64_t>(lanes.num_columns) * 8},
      {layout.col_user_off, lanes.col_user,
       static_cast<uint64_t>(lanes.num_columns) * 4},
      {layout.event_begin_off, lanes.event_begin,
       (static_cast<uint64_t>(lanes.num_events) + 1) * 8},
      {layout.event_cols_off, lanes.event_cols,
       static_cast<uint64_t>(lanes.num_pairs) * 4},
  };
  const char zeros[8] = {};
  uint32_t crc = 0;
  uint64_t covered = 0;
  for (const Piece& piece : pieces) {
    if (piece.off > covered) {  // alignment gap, zeros on read-back
      crc = Crc32Update(crc, zeros, piece.off - covered);
    }
    if (piece.size > 0) {
      IGEPA_RETURN_IF_ERROR(WriteFullyAt(w->fd, piece.data, piece.size,
                                         record.offset + piece.off, w->path));
      crc = Crc32Update(crc, piece.data, piece.size);
    }
    covered = piece.off + piece.size;
  }
  if (layout.bytes > covered) {  // trailing alignment pad
    crc = Crc32Update(crc, zeros, layout.bytes - covered);
  }

  {
    std::lock_guard<std::mutex> lock(w->mutex);
    w->records[static_cast<size_t>(index)].crc = crc;
  }
  return index;
}

Status CatalogSpill::Seal() {
  Impl* w = impl_.get();
  if (w->sealed) return Status::FailedPrecondition("Seal called twice");
  w->sealed = true;

  char head[kHeaderSize] = {};
  std::memcpy(head, kMagic, sizeof(kMagic));
  PutU32(head + 8, kVersion);
  PutU32(head + 12, static_cast<uint32_t>(w->records.size()));
  const uint64_t dir_off = w->records.empty() ? kHeaderSize : w->next_off;
  const uint64_t dir_bytes = w->records.size() * kDirRecordSize;
  PutU64(head + 16, dir_off);
  PutU64(head + 24, dir_bytes);
  IGEPA_RETURN_IF_ERROR(WriteFullyAt(w->fd, head, kHeaderSize, 0, w->path));

  std::string directory(dir_bytes, '\0');
  for (size_t i = 0; i < w->records.size(); ++i) {
    const SectionRecord& r = w->records[i];
    char* p = directory.data() + i * kDirRecordSize;
    PutU64(p, r.offset);
    PutU64(p + 8, r.bytes);
    PutU32(p + 16, static_cast<uint32_t>(r.num_users));
    PutU32(p + 20, static_cast<uint32_t>(r.num_events));
    PutU32(p + 24, static_cast<uint32_t>(r.num_columns));
    PutU32(p + 28, r.crc);
    PutU64(p + 32, static_cast<uint64_t>(r.num_pairs));
    // bytes [40, 48) reserved zero
  }
  if (!directory.empty()) {
    IGEPA_RETURN_IF_ERROR(WriteFullyAt(w->fd, directory.data(),
                                       directory.size(), dir_off, w->path));
  }
  // Trailer CRC covers header + directory only — the sections carry their
  // own CRCs in the directory, so sealing never re-reads the payload.
  uint32_t crc = Crc32(head, kHeaderSize);
  crc = Crc32Update(crc, directory.data(), directory.size());
  char trailer[8];
  PutU32(trailer, crc);
  PutU32(trailer + 4, kTrailerMagic);
  IGEPA_RETURN_IF_ERROR(
      WriteFullyAt(w->fd, trailer, 8, dir_off + dir_bytes, w->path));
  w->validated.assign(w->records.size(), 0);
  return Status::OK();
}

Result<CatalogSpill> CatalogSpill::Open(const std::string& path) {
  static_assert(std::endian::native == std::endian::little,
                "igepa-cat,1 is pinned little-endian");
  const auto refuse = [&](const std::string& why) -> Status {
    return Status::IOError("invalid igepa-cat,1 file " + path + ": " + why);
  };
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->fd = ::open(path.c_str(), O_RDONLY);
  if (impl->fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(impl->fd, &st) != 0) {
    return Status::IOError("fstat failed on " + path + ": " +
                           std::strerror(errno));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kHeaderSize + 8) return refuse("too short");

  unsigned char head[kHeaderSize];
  if (::pread(impl->fd, head, kHeaderSize, 0) !=
      static_cast<ssize_t>(kHeaderSize)) {
    return refuse("short header read");
  }
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    return refuse("bad magic");
  }
  if (GetU32(head + 8) != kVersion) return refuse("unsupported version");
  const uint32_t num_catalogs = GetU32(head + 12);
  const uint64_t dir_off = GetU64(head + 16);
  const uint64_t dir_bytes = GetU64(head + 24);
  if (dir_bytes != static_cast<uint64_t>(num_catalogs) * kDirRecordSize) {
    return refuse("directory length disagrees with the catalog count");
  }
  if (dir_off < kHeaderSize || dir_off > size ||
      dir_off + dir_bytes + 8 != size) {
    return refuse("size mismatch (truncated or trailing garbage)");
  }

  std::vector<unsigned char> tail(dir_bytes + 8);
  if (::pread(impl->fd, tail.data(), tail.size(),
              static_cast<off_t>(dir_off)) !=
      static_cast<ssize_t>(tail.size())) {
    return refuse("short directory read");
  }
  if (GetU32(tail.data() + dir_bytes + 4) != kTrailerMagic) {
    return refuse("missing trailer magic");
  }
  uint32_t crc = Crc32(head, kHeaderSize);
  crc = Crc32Update(crc, tail.data(), dir_bytes);
  if (crc != GetU32(tail.data() + dir_bytes)) {
    return refuse("directory CRC mismatch (tampered or torn write)");
  }

  impl->records.resize(num_catalogs);
  for (uint32_t i = 0; i < num_catalogs; ++i) {
    const unsigned char* p = tail.data() + i * kDirRecordSize;
    SectionRecord& r = impl->records[i];
    r.offset = GetU64(p);
    r.bytes = GetU64(p + 8);
    r.num_users = static_cast<int32_t>(GetU32(p + 16));
    r.num_events = static_cast<int32_t>(GetU32(p + 20));
    r.num_columns = static_cast<int32_t>(GetU32(p + 24));
    r.crc = GetU32(p + 28);
    r.num_pairs = static_cast<int64_t>(GetU64(p + 32));
    if (r.num_users < 0 || r.num_events < 0 || r.num_columns < 0 ||
        r.num_pairs < 0) {
      return refuse("negative section counts");
    }
    if (r.offset % kSectionAlign != 0 || r.offset + r.bytes > dir_off) {
      return refuse("section out of bounds");
    }
    const SectionLayout layout = SectionLayout::Of(
        r.num_users, r.num_events, r.num_columns, r.num_pairs);
    if (layout.bytes != r.bytes) {
      return refuse("section length disagrees with its counts");
    }
    impl->total_payload += r.bytes;
    impl->max_payload = std::max(impl->max_payload, r.bytes);
    impl->next_off = std::max(impl->next_off, AlignSection(r.offset + r.bytes));

    // Eager per-section CRC sweep: a flipped payload byte is refused here,
    // before any accessor, matching the igepa-bin,3 validation discipline.
    uint32_t section_crc = 0;
    uint64_t off = r.offset;
    const uint64_t end = r.offset + r.bytes;
    char buf[1 << 16];
    while (off < end) {
      const size_t want =
          static_cast<size_t>(std::min<uint64_t>(sizeof(buf), end - off));
      const ssize_t n = ::pread(impl->fd, buf, want, static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pread failed on " + path + ": " +
                               std::strerror(errno));
      }
      if (n == 0) return refuse("short section read");
      section_crc = Crc32Update(section_crc, buf, static_cast<size_t>(n));
      off += static_cast<uint64_t>(n);
    }
    if (section_crc != r.crc) {
      return refuse("section CRC mismatch (tampered or torn write)");
    }
  }
  impl->sealed = true;
  impl->validated.assign(num_catalogs, 1);  // the sweep above covered them
  return CatalogSpill(std::move(impl));
}

Result<CatalogView> CatalogSpill::Map(int32_t index) const {
  Impl* w = impl_.get();
  if (!w->sealed) return Status::FailedPrecondition("Map before Seal");
  if (index < 0 || index >= static_cast<int32_t>(w->records.size())) {
    return Status::InvalidArgument("catalog index out of range");
  }
  const SectionRecord r = w->records[static_cast<size_t>(index)];
  IGEPA_ASSIGN_OR_RETURN(
      util::MappedRegion region,
      util::MappedRegion::Map(w->fd, r.offset, static_cast<size_t>(r.bytes),
                              w->path));
  {
    // First-map integrity check (Create-path spills; Open already swept).
    std::lock_guard<std::mutex> lock(w->mutex);
    if (w->validated[static_cast<size_t>(index)] == 0) {
      if (Crc32(region.data(), region.size()) != r.crc) {
        return Status::IOError("invalid igepa-cat,1 file " + w->path +
                               ": section CRC mismatch");
      }
      w->validated[static_cast<size_t>(index)] = 1;
    }
  }

  const SectionLayout layout =
      SectionLayout::Of(r.num_users, r.num_events, r.num_columns, r.num_pairs);
  const unsigned char* base = region.bytes();
  CatalogView view;
  view.lanes_.num_users = r.num_users;
  view.lanes_.num_events = r.num_events;
  view.lanes_.num_columns = r.num_columns;
  view.lanes_.num_pairs = r.num_pairs;
  view.lanes_.user_begin =
      reinterpret_cast<const int32_t*>(base + layout.user_begin_off);
  view.lanes_.col_begin =
      reinterpret_cast<const int64_t*>(base + layout.col_begin_off);
  view.lanes_.pool =
      reinterpret_cast<const core::EventId*>(base + layout.pool_off);
  view.lanes_.weight =
      reinterpret_cast<const double*>(base + layout.weight_off);
  view.lanes_.col_user =
      reinterpret_cast<const core::UserId*>(base + layout.col_user_off);
  view.lanes_.event_begin =
      reinterpret_cast<const int64_t*>(base + layout.event_begin_off);
  view.lanes_.event_cols =
      reinterpret_cast<const int32_t*>(base + layout.event_cols_off);
  view.region_ = std::move(region);
  return view;
}

int32_t CatalogSpill::num_catalogs() const {
  return static_cast<int32_t>(impl_->records.size());
}

uint64_t CatalogSpill::section_bytes(int32_t index) const {
  return impl_->records[static_cast<size_t>(index)].bytes;
}

uint64_t CatalogSpill::total_bytes() const { return impl_->total_payload; }

uint64_t CatalogSpill::max_section_bytes() const { return impl_->max_payload; }

const std::string& CatalogSpill::path() const { return impl_->path; }

}  // namespace io
}  // namespace igepa
