#ifndef IGEPA_IO_CATALOG_SPILL_H_
#define IGEPA_IO_CATALOG_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/catalog_lanes.h"
#include "util/mmap.h"
#include "util/result.h"

namespace igepa {
namespace io {

/// The `igepa-cat,1` spilled-catalog format (FORMATS.md §9): one per-run file
/// holding every shard's canonical catalog arrays — user offsets, CSR column
/// offsets, event-id pool, weight lane, column owners and the inverted
/// event→column index — in the `igepa-bin,3` conventions (little-endian,
/// 64-byte header, aligned sections, CRC-checked). Each catalog section
/// starts page-aligned (4096) so it can be mmapped independently, with its
/// sub-arrays 8-byte aligned inside; the directory carries a CRC-32 per
/// section (computed while writing, so Seal never re-reads the payload) and
/// the trailer CRC covers header + directory.
///
/// Lifecycle: `Create` → concurrent `Append` (one call per shard catalog,
/// thread-safe; disjoint pwrite ranges after a mutex-guarded offset
/// reservation) → `Seal` (directory + trailer) → `Map` served from the kept
/// fd, so the caller may unlink the path right after Seal and a crash never
/// leaks a spill file. `Open` re-opens a sealed file and eagerly validates
/// everything — header, directory, trailer CRC and every section CRC — so a
/// truncated, tampered or foreign file is an IOError before any accessor.

/// Read-only mapping of one catalog section, exposing the same CatalogLanes
/// view AdmissibleCatalog::Lanes() exports — zero rehydration, the SIMD
/// μ-sum scan reads weight lanes straight out of the mapped bytes. Move-only;
/// destruction munmaps (dropping the pages from RSS while the kernel page
/// cache keeps them warm for a cheap repage).
class CatalogView {
 public:
  CatalogView() = default;
  CatalogView(CatalogView&&) noexcept = default;
  CatalogView& operator=(CatalogView&&) noexcept = default;
  CatalogView(const CatalogView&) = delete;
  CatalogView& operator=(const CatalogView&) = delete;

  const core::CatalogLanes& lanes() const { return lanes_; }
  size_t mapped_bytes() const { return region_.size(); }

 private:
  friend class CatalogSpill;
  util::MappedRegion region_;
  core::CatalogLanes lanes_;
};

class CatalogSpill {
 public:
  /// Creates `path` (truncating) for writing.
  static Result<CatalogSpill> Create(const std::string& path);

  /// Opens a sealed file read-only and validates it fully (header, version,
  /// exact size, trailer CRC over header + directory, and every section's
  /// CRC). Refused files are IOError before any accessor.
  static Result<CatalogSpill> Open(const std::string& path);

  CatalogSpill(CatalogSpill&&) noexcept;
  CatalogSpill& operator=(CatalogSpill&&) noexcept;
  CatalogSpill(const CatalogSpill&) = delete;
  CatalogSpill& operator=(const CatalogSpill&) = delete;
  ~CatalogSpill();

  /// Serializes one canonical catalog as the next section and returns its
  /// index. Thread-safe: the offset reservation is mutex-guarded, the writes
  /// land in disjoint ranges without the lock. Only valid before Seal.
  Result<int32_t> Append(const core::CatalogLanes& lanes);

  /// Writes the directory and CRC trailer. Must be called exactly once on a
  /// Create'd spill before Map; the caller may unlink the path afterwards
  /// (maps are served from the kept fd).
  Status Seal();

  /// Maps catalog `index` and returns its lanes view. The section's CRC is
  /// verified on its first Map (Open-path files were already swept).
  /// Thread-safe.
  Result<CatalogView> Map(int32_t index) const;

  int32_t num_catalogs() const;
  /// Payload bytes of one section / summed over all sections / the largest
  /// single section (the "one shard's catalog footprint" a residency budget
  /// is validated against).
  uint64_t section_bytes(int32_t index) const;
  uint64_t total_bytes() const;
  uint64_t max_section_bytes() const;
  const std::string& path() const;

 private:
  struct Impl;
  explicit CatalogSpill(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace io
}  // namespace igepa

#endif  // IGEPA_IO_CATALOG_SPILL_H_
