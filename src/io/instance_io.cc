#include "io/instance_io.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "util/string_util.h"

namespace igepa {
namespace io {

using core::Arrangement;
using core::EventDef;
using core::EventId;
using core::Instance;
using core::UserDef;
using core::UserId;

namespace {

// Round-trip exact for every finite double (17 significant digits). The
// fixed-precision FormatDouble(x, 17) used by the legacy sparse format loses
// ulps below 0.1 — leading zeros consume its digit budget — which recovery
// snapshots (dense_interest mode) cannot afford: a recovered engine must
// reproduce every weight bit for bit.
std::string FormatDoubleExact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

}  // namespace

Status WriteInstanceCsv(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WriteInstanceCsv(instance, out, path, /*dense_interest=*/false);
}

Status WriteInstanceCsv(const Instance& instance, std::ostream& out,
                        const std::string& path, bool dense_interest) {
  // v1 has no kernel record and means "default kernel"; only a non-default
  // objective needs the v2 header, so default-kernel instances keep writing
  // byte-identical v1 files.
  const bool default_kernel =
      instance.kernel().id() == core::DefaultUtilityKernel()->id();
  // dense_interest files are recovery snapshots: every double in them must
  // survive a write/read cycle exactly, so they use the round-trip-exact
  // formatter throughout. Sparse files keep the historical fixed-17 bytes.
  const auto fmt = [dense_interest](double value) {
    return dense_interest ? FormatDoubleExact(value) : FormatDouble(value, 17);
  };
  out << "igepa," << (default_kernel ? 1 : 2) << "," << instance.num_events()
      << "," << instance.num_users() << "," << fmt(instance.beta()) << "\n";
  if (!default_kernel) {
    out << "kernel," << instance.kernel().id() << "\n";
  }
  for (EventId v = 0; v < instance.num_events(); ++v) {
    out << "event," << v << "," << instance.event_capacity(v) << "\n";
  }
  for (UserId u = 0; u < instance.num_users(); ++u) {
    out << "user," << u << "," << instance.user_capacity(u) << ",";
    const auto& bids = instance.bids(u);
    for (size_t i = 0; i < bids.size(); ++i) {
      if (i > 0) out << ";";
      out << bids[i];
    }
    out << "\n";
  }
  for (EventId a = 0; a < instance.num_events(); ++a) {
    for (EventId b = a + 1; b < instance.num_events(); ++b) {
      if (instance.Conflicts(a, b)) {
        out << "conflict," << a << "," << b << "\n";
      }
    }
  }
  if (dense_interest) {
    // Every (event, user) pair, not just bids: a live instance can gain new
    // bid pairs through later re-registration deltas, and their SI must
    // round-trip exactly (see the header comment).
    for (EventId v = 0; v < instance.num_events(); ++v) {
      for (UserId u = 0; u < instance.num_users(); ++u) {
        out << "interest," << v << "," << u << ","
            << fmt(instance.Interest(v, u)) << "\n";
      }
    }
  } else {
    for (UserId u = 0; u < instance.num_users(); ++u) {
      for (EventId v : instance.bids(u)) {
        out << "interest," << v << "," << u << ","
            << fmt(instance.Interest(v, u)) << "\n";
      }
    }
  }
  for (UserId u = 0; u < instance.num_users(); ++u) {
    out << "degree," << u << "," << fmt(instance.Degree(u)) << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Instance> ReadInstanceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ReadInstanceCsv(in, path);
}

Result<Instance> ReadInstanceCsv(std::istream& in, const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty instance file: " + path);
  }
  auto header = Split(Trim(line), ',');
  if (header.size() != 5 || header[0] != "igepa" ||
      (header[1] != "1" && header[1] != "2")) {
    return Status::InvalidArgument("bad instance header in " + path);
  }
  const bool v2 = header[1] == "2";
  int64_t nv = 0, nu = 0;
  double beta = 0.0;
  if (!ParseInt(header[2], &nv) || !ParseInt(header[3], &nu) ||
      !ParseDouble(header[4], &beta) || nv < 0 || nu < 0) {
    return Status::InvalidArgument("bad instance header fields in " + path);
  }

  std::vector<EventDef> events(static_cast<size_t>(nv));
  std::vector<UserDef> users(static_cast<size_t>(nu));
  auto conflicts = std::make_shared<conflict::MatrixConflict>(
      static_cast<conflict::EventId>(nv));
  auto interest = std::make_shared<interest::TableInterest>(
      static_cast<int32_t>(nv), static_cast<int32_t>(nu));
  std::vector<double> degrees(static_cast<size_t>(nu), 0.0);
  std::shared_ptr<const core::UtilityKernel> kernel;

  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fields = Split(Trim(line), ',');
    if (fields.empty() || fields[0].empty()) continue;
    const std::string& kind = fields[0];
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == "event") {
      int64_t id = 0, cap = 0;
      if (fields.size() != 3 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &cap) || id < 0 || id >= nv) {
        return bad("malformed event line");
      }
      events[static_cast<size_t>(id)].capacity = static_cast<int32_t>(cap);
    } else if (kind == "user") {
      int64_t id = 0, cap = 0;
      if (fields.size() != 4 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &cap) || id < 0 || id >= nu) {
        return bad("malformed user line");
      }
      auto& def = users[static_cast<size_t>(id)];
      def.capacity = static_cast<int32_t>(cap);
      if (!fields[3].empty()) {
        for (const auto& tok : Split(fields[3], ';')) {
          int64_t bid = 0;
          if (!ParseInt(tok, &bid) || bid < 0 || bid >= nv) {
            return bad("malformed bid list");
          }
          def.bids.push_back(static_cast<EventId>(bid));
        }
      }
    } else if (kind == "conflict") {
      int64_t a = 0, b = 0;
      if (fields.size() != 3 || !ParseInt(fields[1], &a) ||
          !ParseInt(fields[2], &b) || a < 0 || a >= nv || b < 0 || b >= nv) {
        return bad("malformed conflict line");
      }
      conflicts->Set(static_cast<conflict::EventId>(a),
                     static_cast<conflict::EventId>(b), true);
    } else if (kind == "interest") {
      int64_t v = 0, u = 0;
      double value = 0.0;
      if (fields.size() != 4 || !ParseInt(fields[1], &v) ||
          !ParseInt(fields[2], &u) || !ParseDouble(fields[3], &value) ||
          v < 0 || v >= nv || u < 0 || u >= nu) {
        return bad("malformed interest line");
      }
      interest->Set(static_cast<int32_t>(v), static_cast<int32_t>(u), value);
    } else if (kind == "degree") {
      int64_t u = 0;
      double value = 0.0;
      if (fields.size() != 3 || !ParseInt(fields[1], &u) ||
          !ParseDouble(fields[2], &value) || u < 0 || u >= nu) {
        return bad("malformed degree line");
      }
      degrees[static_cast<size_t>(u)] = value;
    } else if (kind == "kernel" && v2) {
      if (fields.size() != 2 || kernel != nullptr) {
        return bad("malformed or duplicate kernel line");
      }
      auto resolved = core::MakeUtilityKernel(fields[1]);
      if (!resolved.ok()) return bad(resolved.status().message());
      kernel = std::move(resolved).value();
    } else {
      return bad("unknown record kind '" + kind + "'");
    }
  }

  auto interaction =
      std::make_shared<graph::TableInteractionModel>(std::move(degrees));
  Instance instance(std::move(events), std::move(users), std::move(conflicts),
                    std::move(interest), std::move(interaction), beta);
  instance.set_kernel(std::move(kernel));  // nullptr keeps the default
  IGEPA_RETURN_IF_ERROR(instance.Validate());
  return instance;
}

Status WriteArrangementCsv(const Arrangement& arrangement,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << "arrangement," << arrangement.num_events() << ","
      << arrangement.num_users() << "\n";
  for (const auto& [v, u] : arrangement.pairs()) {
    out << "pair," << v << "," << u << "\n";
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Arrangement> ReadArrangementCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty arrangement file: " + path);
  }
  const auto header = Split(Trim(line), ',');
  int64_t nv = 0, nu = 0;
  if (header.size() != 3 || header[0] != "arrangement" ||
      !ParseInt(header[1], &nv) || !ParseInt(header[2], &nu) || nv < 0 ||
      nu < 0) {
    return Status::InvalidArgument("bad arrangement header in " + path);
  }
  Arrangement arrangement(static_cast<int32_t>(nv), static_cast<int32_t>(nu));
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fields = Split(Trim(line), ',');
    if (fields.empty() || fields[0].empty()) continue;
    int64_t v = 0, u = 0;
    if (fields.size() != 3 || fields[0] != "pair" ||
        !ParseInt(fields[1], &v) || !ParseInt(fields[2], &u)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed pair line");
    }
    IGEPA_RETURN_IF_ERROR(arrangement.Add(static_cast<EventId>(v),
                                          static_cast<UserId>(u)));
  }
  return arrangement;
}

}  // namespace io
}  // namespace igepa
