#include "io/delta_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <string>

#include "util/string_util.h"

namespace igepa {
namespace io {

using core::EventCapacityUpdate;
using core::EventId;
using core::GraphEdgeUpdate;
using core::InstanceDelta;
using core::InterestUpdate;
using core::UserUpdate;

/// Ids, dimensions and capacities live in int32 in core; anything a file
/// declares beyond this is rejected rather than silently wrapped by the
/// int64 -> int32 narrowing below (4294967296 would wrap to capacity 0 — a
/// registration misread as a cancellation).
constexpr int64_t kMaxId = std::numeric_limits<int32_t>::max();

Status WriteDeltaStreamCsv(const std::vector<InstanceDelta>& stream,
                           int32_t num_events, int32_t num_users,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  return WriteDeltaStreamCsv(stream, num_events, num_users, out, path);
}

Status WriteDeltaStreamCsv(const std::vector<InstanceDelta>& stream,
                           int32_t num_events, int32_t num_users,
                           std::ostream& out, const std::string& path) {
  // Version 1 carries only registration/capacity lines; weight-delta lines
  // (edge/interest) need version 2. Streams without them keep writing v1 so
  // their bytes — and any older reader — are unaffected.
  bool weighted = false;
  for (const InstanceDelta& delta : stream) {
    weighted = weighted || delta.has_weight_updates();
  }
  out.precision(17);  // round-trip exact interest values
  out << "igepa-deltas," << (weighted ? 2 : 1) << "," << stream.size() << ","
      << num_events << "," << num_users << "\n";
  for (size_t t = 0; t < stream.size(); ++t) {
    out << "tick," << t << "\n";
    for (const UserUpdate& up : stream[t].user_updates) {
      out << "user," << up.user << "," << up.capacity << ",";
      for (size_t i = 0; i < up.bids.size(); ++i) {
        if (i > 0) out << ";";
        out << up.bids[i];
      }
      out << "\n";
    }
    for (const EventCapacityUpdate& up : stream[t].event_updates) {
      out << "event," << up.event << "," << up.capacity << "\n";
    }
    for (const GraphEdgeUpdate& up : stream[t].graph_updates) {
      out << "edge," << up.a << "," << up.b << "," << (up.add ? 1 : 0)
          << "\n";
    }
    for (const InterestUpdate& up : stream[t].interest_updates) {
      out << "interest," << up.event << "," << up.user << "," << up.value
          << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<InstanceDelta>> ReadDeltaStreamCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ReadDeltaStreamCsv(in, path);
}

Result<std::vector<InstanceDelta>> ReadDeltaStreamCsv(std::istream& in,
                                                      const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty delta stream file: " + path);
  }
  auto header = Split(Trim(line), ',');
  if (header.size() != 5 || header[0] != "igepa-deltas" ||
      (header[1] != "1" && header[1] != "2")) {
    return Status::InvalidArgument("bad delta stream header in " + path);
  }
  const bool v2 = header[1] == "2";
  int64_t ticks = 0, nv = 0, nu = 0;
  if (!ParseInt(header[2], &ticks) || !ParseInt(header[3], &nv) ||
      !ParseInt(header[4], &nu) || ticks < 0 || nv < 0 || nu < 0 ||
      nv > kMaxId || nu > kMaxId) {
    return Status::InvalidArgument("bad delta stream header fields in " + path);
  }

  // Grown one tick at a time as tick lines arrive — the untrusted header
  // count is only a promise to check at the end, never an allocation size.
  std::vector<InstanceDelta> stream;
  int64_t current = -1;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fields = Split(Trim(line), ',');
    if (fields.empty() || fields[0].empty()) continue;
    const std::string& kind = fields[0];
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == "tick") {
      int64_t t = 0;
      if (fields.size() != 2 || !ParseInt(fields[1], &t) || t != current + 1 ||
          t >= ticks) {
        return bad("malformed or out-of-order tick line");
      }
      current = t;
      stream.emplace_back();
    } else if (kind == "user") {
      if (current < 0) return bad("user line before any tick");
      int64_t id = 0, cap = 0;
      if (fields.size() != 4 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &cap) || id < 0 || id >= nu || cap < 0 ||
          cap > kMaxId) {
        return bad("malformed user line");
      }
      UserUpdate up;
      up.user = static_cast<core::UserId>(id);
      up.capacity = static_cast<int32_t>(cap);
      if (!fields[3].empty()) {
        for (const auto& tok : Split(fields[3], ';')) {
          int64_t bid = 0;
          if (!ParseInt(tok, &bid) || bid < 0 || bid >= nv) {
            return bad("malformed bid list");
          }
          up.bids.push_back(static_cast<EventId>(bid));
        }
      }
      stream[static_cast<size_t>(current)].user_updates.push_back(
          std::move(up));
    } else if (kind == "event") {
      if (current < 0) return bad("event line before any tick");
      int64_t id = 0, cap = 0;
      if (fields.size() != 3 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &cap) || id < 0 || id >= nv || cap < 0 ||
          cap > kMaxId) {
        return bad("malformed event line");
      }
      EventCapacityUpdate up;
      up.event = static_cast<EventId>(id);
      up.capacity = static_cast<int32_t>(cap);
      stream[static_cast<size_t>(current)].event_updates.push_back(up);
    } else if (kind == "edge" && v2) {
      if (current < 0) return bad("edge line before any tick");
      int64_t a = 0, b = 0, add = 0;
      if (fields.size() != 4 || !ParseInt(fields[1], &a) ||
          !ParseInt(fields[2], &b) || !ParseInt(fields[3], &add) || a < 0 ||
          a >= nu || b < 0 || b >= nu || a == b || (add != 0 && add != 1)) {
        return bad("malformed edge line");
      }
      GraphEdgeUpdate up;
      up.a = static_cast<core::UserId>(a);
      up.b = static_cast<core::UserId>(b);
      up.add = add == 1;
      stream[static_cast<size_t>(current)].graph_updates.push_back(up);
    } else if (kind == "interest" && v2) {
      if (current < 0) return bad("interest line before any tick");
      int64_t id = 0, uid = 0;
      double value = 0.0;
      if (fields.size() != 4 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &uid) || !ParseDouble(fields[3], &value) ||
          id < 0 || id >= nv || uid < 0 || uid >= nu ||
          !(value >= 0.0 && value <= 1.0)) {
        return bad("malformed interest line");
      }
      InterestUpdate up;
      up.event = static_cast<EventId>(id);
      up.user = static_cast<core::UserId>(uid);
      up.value = value;
      stream[static_cast<size_t>(current)].interest_updates.push_back(up);
    } else {
      return bad("unknown line kind '" + kind + "'");
    }
  }
  if (current + 1 != ticks) {
    return Status::InvalidArgument(path + ": header promises " +
                                   std::to_string(ticks) + " ticks, found " +
                                   std::to_string(current + 1));
  }
  return stream;
}

Status WriteArrivalStreamCsv(const std::vector<core::ArrivalEvent>& stream,
                             int32_t num_events, int32_t num_users,
                             const std::string& path) {
  // Validate everything the reader will check, so a successful write always
  // round-trips: exactly one mutation per arrival (the format is one line
  // per arrival and the header promises the line count), ids inside the
  // declared ranges, capacities nonnegative, and timestamps finite,
  // nonnegative and nondecreasing.
  double last_at = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    const core::ArrivalEvent& arrival = stream[i];
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("arrival " + std::to_string(i) + ": " +
                                     why);
    };
    const size_t mutations = arrival.delta.user_updates.size() +
                             arrival.delta.event_updates.size() +
                             arrival.delta.graph_updates.size() +
                             arrival.delta.interest_updates.size();
    if (mutations != 1) {
      return bad("carries " + std::to_string(mutations) +
                 " mutations; the arrival format requires exactly one");
    }
    if (!std::isfinite(arrival.at_seconds) || arrival.at_seconds < 0 ||
        arrival.at_seconds < last_at) {
      return bad("timestamps must be finite, nonnegative and nondecreasing");
    }
    last_at = arrival.at_seconds;
    for (const UserUpdate& up : arrival.delta.user_updates) {
      if (up.user < 0 || up.user >= num_users || up.capacity < 0) {
        return bad("user id/capacity outside the declared ranges");
      }
      for (EventId v : up.bids) {
        if (v < 0 || v >= num_events) return bad("bid outside event range");
      }
    }
    for (const EventCapacityUpdate& up : arrival.delta.event_updates) {
      if (up.event < 0 || up.event >= num_events || up.capacity < 0) {
        return bad("event id/capacity outside the declared ranges");
      }
    }
    for (const GraphEdgeUpdate& up : arrival.delta.graph_updates) {
      if (up.a < 0 || up.a >= num_users || up.b < 0 || up.b >= num_users ||
          up.a == up.b) {
        return bad("edge endpoints outside the declared ranges");
      }
    }
    for (const InterestUpdate& up : arrival.delta.interest_updates) {
      if (up.event < 0 || up.event >= num_events || up.user < 0 ||
          up.user >= num_users || !(up.value >= 0.0 && up.value <= 1.0)) {
        return bad("interest drift outside the declared ranges");
      }
    }
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  bool weighted = false;
  for (const core::ArrivalEvent& arrival : stream) {
    weighted = weighted || arrival.delta.has_weight_updates();
  }
  out.precision(17);  // round-trip exact doubles
  out << "igepa-arrivals," << (weighted ? 2 : 1) << "," << stream.size()
      << "," << num_events << "," << num_users << "\n";
  for (const core::ArrivalEvent& arrival : stream) {
    for (const UserUpdate& up : arrival.delta.user_updates) {
      out << "user," << arrival.at_seconds << "," << up.user << ","
          << up.capacity << ",";
      for (size_t i = 0; i < up.bids.size(); ++i) {
        if (i > 0) out << ";";
        out << up.bids[i];
      }
      out << "\n";
    }
    for (const EventCapacityUpdate& up : arrival.delta.event_updates) {
      out << "event," << arrival.at_seconds << "," << up.event << ","
          << up.capacity << "\n";
    }
    for (const GraphEdgeUpdate& up : arrival.delta.graph_updates) {
      out << "edge," << arrival.at_seconds << "," << up.a << "," << up.b
          << "," << (up.add ? 1 : 0) << "\n";
    }
    for (const InterestUpdate& up : arrival.delta.interest_updates) {
      out << "interest," << arrival.at_seconds << "," << up.event << ","
          << up.user << "," << up.value << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<core::ArrivalEvent>> ReadArrivalStreamCsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  return ReadArrivalStreamCsv(in, path);
}

Result<std::vector<core::ArrivalEvent>> ReadArrivalStreamCsv(
    std::istream& in, const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty arrival stream file: " + path);
  }
  auto header = Split(Trim(line), ',');
  if (header.size() != 5 || header[0] != "igepa-arrivals" ||
      (header[1] != "1" && header[1] != "2")) {
    return Status::InvalidArgument("bad arrival stream header in " + path);
  }
  const bool v2 = header[1] == "2";
  int64_t count = 0, nv = 0, nu = 0;
  if (!ParseInt(header[2], &count) || !ParseInt(header[3], &nv) ||
      !ParseInt(header[4], &nu) || count < 0 || nv < 0 || nu < 0 ||
      nv > kMaxId || nu > kMaxId) {
    return Status::InvalidArgument("bad arrival stream header fields in " +
                                   path);
  }

  // Grown line by line — the untrusted header count is only a promise to
  // check at the end, never an allocation size.
  std::vector<core::ArrivalEvent> stream;
  double last_at = 0.0;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fields = Split(Trim(line), ',');
    if (fields.empty() || fields[0].empty()) continue;
    const std::string& kind = fields[0];
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    double at = 0.0;
    core::ArrivalEvent arrival;
    // Note the std::isfinite guards: `inf`/`nan` parse as doubles and pass
    // `at < 0` (NaN compares false to everything), but an infinite timestamp
    // would hang any window-advancing consumer.
    if (kind == "user") {
      int64_t id = 0, cap = 0;
      if (fields.size() != 5 || !ParseDouble(fields[1], &at) ||
          !ParseInt(fields[2], &id) || !ParseInt(fields[3], &cap) ||
          !std::isfinite(at) || at < 0 || id < 0 || id >= nu || cap < 0 ||
          cap > kMaxId) {
        return bad("malformed user arrival line");
      }
      UserUpdate up;
      up.user = static_cast<core::UserId>(id);
      up.capacity = static_cast<int32_t>(cap);
      if (!fields[4].empty()) {
        for (const auto& tok : Split(fields[4], ';')) {
          int64_t bid = 0;
          if (!ParseInt(tok, &bid) || bid < 0 || bid >= nv) {
            return bad("malformed bid list");
          }
          up.bids.push_back(static_cast<EventId>(bid));
        }
      }
      arrival.delta.user_updates.push_back(std::move(up));
    } else if (kind == "event") {
      int64_t id = 0, cap = 0;
      if (fields.size() != 4 || !ParseDouble(fields[1], &at) ||
          !ParseInt(fields[2], &id) || !ParseInt(fields[3], &cap) ||
          !std::isfinite(at) || at < 0 || id < 0 || id >= nv || cap < 0 ||
          cap > kMaxId) {
        return bad("malformed event arrival line");
      }
      EventCapacityUpdate up;
      up.event = static_cast<EventId>(id);
      up.capacity = static_cast<int32_t>(cap);
      arrival.delta.event_updates.push_back(up);
    } else if (kind == "edge" && v2) {
      int64_t a = 0, b = 0, add = 0;
      if (fields.size() != 5 || !ParseDouble(fields[1], &at) ||
          !ParseInt(fields[2], &a) || !ParseInt(fields[3], &b) ||
          !ParseInt(fields[4], &add) || !std::isfinite(at) || at < 0 ||
          a < 0 || a >= nu || b < 0 || b >= nu || a == b ||
          (add != 0 && add != 1)) {
        return bad("malformed edge arrival line");
      }
      GraphEdgeUpdate up;
      up.a = static_cast<core::UserId>(a);
      up.b = static_cast<core::UserId>(b);
      up.add = add == 1;
      arrival.delta.graph_updates.push_back(up);
    } else if (kind == "interest" && v2) {
      int64_t id = 0, uid = 0;
      double value = 0.0;
      if (fields.size() != 5 || !ParseDouble(fields[1], &at) ||
          !ParseInt(fields[2], &id) || !ParseInt(fields[3], &uid) ||
          !ParseDouble(fields[4], &value) || !std::isfinite(at) || at < 0 ||
          id < 0 || id >= nv || uid < 0 || uid >= nu ||
          !(value >= 0.0 && value <= 1.0)) {
        return bad("malformed interest arrival line");
      }
      InterestUpdate up;
      up.event = static_cast<EventId>(id);
      up.user = static_cast<core::UserId>(uid);
      up.value = value;
      arrival.delta.interest_updates.push_back(up);
    } else {
      return bad("unknown line kind '" + kind + "'");
    }
    if (at < last_at) return bad("timestamps must be nondecreasing");
    last_at = at;
    arrival.at_seconds = at;
    stream.push_back(std::move(arrival));
  }
  if (static_cast<int64_t>(stream.size()) != count) {
    return Status::InvalidArgument(
        path + ": header promises " + std::to_string(count) +
        " arrivals, found " + std::to_string(stream.size()));
  }
  return stream;
}

}  // namespace io
}  // namespace igepa
