#include "io/delta_io.h"

#include <fstream>
#include <string>

#include "util/string_util.h"

namespace igepa {
namespace io {

using core::EventCapacityUpdate;
using core::EventId;
using core::InstanceDelta;
using core::UserUpdate;

Status WriteDeltaStreamCsv(const std::vector<InstanceDelta>& stream,
                           int32_t num_events, int32_t num_users,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << "igepa-deltas,1," << stream.size() << "," << num_events << ","
      << num_users << "\n";
  for (size_t t = 0; t < stream.size(); ++t) {
    out << "tick," << t << "\n";
    for (const UserUpdate& up : stream[t].user_updates) {
      out << "user," << up.user << "," << up.capacity << ",";
      for (size_t i = 0; i < up.bids.size(); ++i) {
        if (i > 0) out << ";";
        out << up.bids[i];
      }
      out << "\n";
    }
    for (const EventCapacityUpdate& up : stream[t].event_updates) {
      out << "event," << up.event << "," << up.capacity << "\n";
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<InstanceDelta>> ReadDeltaStreamCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("empty delta stream file: " + path);
  }
  auto header = Split(Trim(line), ',');
  if (header.size() != 5 || header[0] != "igepa-deltas" || header[1] != "1") {
    return Status::InvalidArgument("bad delta stream header in " + path);
  }
  int64_t ticks = 0, nv = 0, nu = 0;
  if (!ParseInt(header[2], &ticks) || !ParseInt(header[3], &nv) ||
      !ParseInt(header[4], &nu) || ticks < 0 || nv < 0 || nu < 0) {
    return Status::InvalidArgument("bad delta stream header fields in " + path);
  }

  // Grown one tick at a time as tick lines arrive — the untrusted header
  // count is only a promise to check at the end, never an allocation size.
  std::vector<InstanceDelta> stream;
  int64_t current = -1;
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const auto fields = Split(Trim(line), ',');
    if (fields.empty() || fields[0].empty()) continue;
    const std::string& kind = fields[0];
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + why);
    };
    if (kind == "tick") {
      int64_t t = 0;
      if (fields.size() != 2 || !ParseInt(fields[1], &t) || t != current + 1 ||
          t >= ticks) {
        return bad("malformed or out-of-order tick line");
      }
      current = t;
      stream.emplace_back();
    } else if (kind == "user") {
      if (current < 0) return bad("user line before any tick");
      int64_t id = 0, cap = 0;
      if (fields.size() != 4 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &cap) || id < 0 || id >= nu || cap < 0) {
        return bad("malformed user line");
      }
      UserUpdate up;
      up.user = static_cast<core::UserId>(id);
      up.capacity = static_cast<int32_t>(cap);
      if (!fields[3].empty()) {
        for (const auto& tok : Split(fields[3], ';')) {
          int64_t bid = 0;
          if (!ParseInt(tok, &bid) || bid < 0 || bid >= nv) {
            return bad("malformed bid list");
          }
          up.bids.push_back(static_cast<EventId>(bid));
        }
      }
      stream[static_cast<size_t>(current)].user_updates.push_back(
          std::move(up));
    } else if (kind == "event") {
      if (current < 0) return bad("event line before any tick");
      int64_t id = 0, cap = 0;
      if (fields.size() != 3 || !ParseInt(fields[1], &id) ||
          !ParseInt(fields[2], &cap) || id < 0 || id >= nv || cap < 0) {
        return bad("malformed event line");
      }
      EventCapacityUpdate up;
      up.event = static_cast<EventId>(id);
      up.capacity = static_cast<int32_t>(cap);
      stream[static_cast<size_t>(current)].event_updates.push_back(up);
    } else {
      return bad("unknown line kind '" + kind + "'");
    }
  }
  if (current + 1 != ticks) {
    return Status::InvalidArgument(path + ": header promises " +
                                   std::to_string(ticks) + " ticks, found " +
                                   std::to_string(current + 1));
  }
  return stream;
}

}  // namespace io
}  // namespace igepa
