#ifndef IGEPA_UTIL_THREAD_POOL_H_
#define IGEPA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace igepa {

/// Small work-stealing fork-join pool for data-parallel loops over index
/// ranges — the shared substrate of every shard-parallel pipeline stage
/// (catalog enumeration, sharded structured dual, rounding/repair, scenario
/// driver).
///
/// One ParallelFor call splits [begin, end) into `num_threads()` contiguous
/// blocks, one per lane (the calling thread is lane 0 and participates). Each
/// lane drains its own block in grain-sized chunks through an atomic cursor;
/// a lane whose block is empty steals chunks from the block with the most
/// work remaining. Workers are spawned once and parked on a condition
/// variable between jobs, so repeated ParallelFor calls (e.g. one per dual
/// iteration) cost a wake/notify, not a thread spawn.
///
/// Determinism contract: the pool schedules *where* chunks run, never *what*
/// they compute. Callers that need results bit-identical for every thread
/// count must make chunk outputs either disjoint (per-index writes) or
/// order-independent (integer counting), and do any floating-point reduction
/// over a fixed partition in a fixed order after the join — see the sharded
/// dual merge (DESIGN.md §5, S14).
///
/// Bodies must not throw (a throw escapes a worker and terminates) and must
/// not call ParallelFor on the same pool re-entrantly.
class ThreadPool {
 public:
  /// body(lane, chunk_begin, chunk_end): lane in [0, num_threads()) — stable
  /// per executing thread within one ParallelFor, usable for scratch-buffer
  /// indexing when outputs are order-independent.
  using RangeBody =
      std::function<void(int32_t lane, int64_t begin, int64_t end)>;

  /// Spawns num_threads - 1 workers (lane 0 is the caller).
  /// num_threads <= 0 means hardware concurrency.
  explicit ThreadPool(int32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the calling thread.
  int32_t num_threads() const { return num_lanes_; }

  /// Runs body over [begin, end) in chunks of at most `grain` (clamped to
  /// >= 1). Blocks until every index has been processed. Every index is
  /// covered exactly once. Small ranges (<= grain, or a 1-lane pool) run
  /// inline on the caller with no synchronization.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const RangeBody& body);

  /// max(1, std::thread::hardware_concurrency()).
  static int32_t HardwareThreads();

  /// The effective lane count for a request: `requested` when positive,
  /// hardware concurrency when <= 0, clamped to [1, work_items].
  static int32_t ResolveThreadCount(int32_t requested, int64_t work_items);

 private:
  /// One lane's contiguous block of the active job; lanes fetch_add `next`
  /// to claim chunks (their own block first, then the fullest victim's).
  /// Padded so cursors on different lanes do not share a cache line.
  struct alignas(64) Block {
    std::atomic<int64_t> next{0};
    int64_t end = 0;
  };

  void WorkerLoop(int32_t lane);
  /// Claims and executes chunks until no block has work left.
  void RunJob(int32_t lane);

  int32_t num_lanes_ = 1;
  std::vector<std::thread> workers_;
  std::vector<Block> blocks_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Job-lifecycle state. Always *written* under mutex_ (the cv protocol
  // needs that to not lose wakeups), but atomic so the bounded spin phases
  // can peek without the lock: a worker between jobs spins briefly for the
  // next epoch before parking on start_cv_, and the caller spins for the
  // last worker before sleeping on done_cv_. The spin turns the
  // back-to-back ParallelFor cadence (one call per dual iteration) from two
  // cv round-trips into two cache-line reads; it is enabled only when the
  // pool is not oversubscribed (num_threads() <= HardwareThreads()), since
  // spinning lanes that share a core with the lane they wait on only steal
  // its cycles.
  std::atomic<uint64_t> epoch_{0};  // bumped per job; workers wake on change
  std::atomic<bool> job_open_{false};  // gates late wakers out of done jobs
  std::atomic<int32_t> active_{0};  // lanes currently inside RunJob
  std::atomic<bool> stop_{false};
  bool spin_ = false;  // fixed at construction

  // Active-job state; written under mutex_ before the epoch bump.
  const RangeBody* body_ = nullptr;
  int64_t grain_ = 1;
};

/// Chunked loop helper: runs body(chunk_begin, chunk_end) over [begin, end),
/// spread across `pool` when non-null, inline otherwise. The serial and
/// parallel paths execute the same chunk bodies, so callers keep one code
/// path for both.
inline void ParallelForRanges(
    ThreadPool* pool, int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (pool == nullptr) {
    body(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain,
                    [&body](int32_t, int64_t b, int64_t e) { body(b, e); });
}

}  // namespace igepa

#endif  // IGEPA_UTIL_THREAD_POOL_H_
