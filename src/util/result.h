#ifndef IGEPA_UTIL_RESULT_H_
#define IGEPA_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace igepa {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Mirrors arrow::Result / absl::StatusOr.
///
/// Typical use:
/// \code
///   Result<LpSolution> r = solver.Solve(model);
///   if (!r.ok()) return r.status();
///   const LpSolution& sol = *r;
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating an error status out of the
/// enclosing function, otherwise assigning the value to `lhs`.
#define IGEPA_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  IGEPA_ASSIGN_OR_RETURN_IMPL_(                            \
      IGEPA_RESULT_CONCAT_(_igepa_result__, __COUNTER__), lhs, rexpr)

#define IGEPA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define IGEPA_RESULT_CONCAT_(a, b) IGEPA_RESULT_CONCAT_IMPL_(a, b)
#define IGEPA_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace igepa

#endif  // IGEPA_UTIL_RESULT_H_
