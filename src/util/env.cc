#include "util/env.h"

#include <cstdlib>

#include "util/string_util.h"

namespace igepa {

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  int64_t value = 0;
  return ParseInt(raw, &value) ? value : fallback;
}

double GetEnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = 0.0;
  return ParseDouble(raw, &value) ? value : fallback;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace igepa
