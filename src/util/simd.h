#ifndef IGEPA_UTIL_SIMD_H_
#define IGEPA_UTIL_SIMD_H_

#include <cstdint>

namespace igepa {
namespace util {
namespace simd {

/// Which batch-scoring implementation SumColumnLanes dispatches to.
enum class Level : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

/// The level the running CPU supports with the current build flags:
/// kAvx2 on x86 with AVX2 (unless the build was configured with
/// -DIGEPA_SIMD=off), kScalar everywhere else. Pure CPUID probe — ignores the
/// environment and any test override.
Level DetectedLevel();

/// The level SumColumnLanes will actually use: DetectedLevel() clamped by the
/// IGEPA_SIMD environment variable ("scalar"/"off" forces the fallback;
/// "avx2"/"auto"/unset keep the probe result) and by ForceLevel. Cached after
/// the first call, so it is cheap enough for per-batch dispatch.
Level ActiveLevel();

/// Test/bench hook: pins ActiveLevel() to `level` (clamped to DetectedLevel —
/// forcing AVX2 on a CPU without it stays scalar) until ResetLevel(). The
/// SIMD-vs-scalar property tests and BM_ScoreColumnsSoA flip this to compare
/// both paths in one process.
void ForceLevel(Level level);

/// Drops the ForceLevel override; ActiveLevel() re-derives from CPU + env.
void ResetLevel();

/// The batch column reducer under every ScoreColumnsSoA override: for each of
/// the `num_columns` CSR columns, sums `lane[pool[e]]` left to right over the
/// column's span `pool[col_begin[k] .. col_begin[k+1])` into `out[k]`.
///
/// The AVX2 path vectorizes ACROSS columns — four columns ride one register,
/// each column still accumulating strictly left to right in its own 64-bit
/// lane — so its results are bit-identical to the scalar loop for every
/// input. (Exhausted lanes of a quad keep adding +0.0, which cannot change
/// the bits of a sum of non-negative terms; kernel pair weights are
/// non-negative by the UtilityKernel contract.) That identity is the pinned
/// dispatch policy: there is no fast-but-approximate mode.
///
/// `col_begin` carries `num_columns + 1` absolute offsets into `pool` (the
/// catalog CSR layout); `lane` is indexed by the EventId values stored in the
/// pool. Empty columns write 0.0.
void SumColumnLanes(const double* lane, const int32_t* pool,
                    const int64_t* col_begin, int32_t num_columns,
                    double* out);

}  // namespace simd
}  // namespace util
}  // namespace igepa

#endif  // IGEPA_UTIL_SIMD_H_
