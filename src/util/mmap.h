#ifndef IGEPA_UTIL_MMAP_H_
#define IGEPA_UTIL_MMAP_H_

#include <sys/mman.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "util/result.h"

namespace igepa {
namespace util {

/// RAII read-only, private memory mapping of one file range — the paging
/// primitive under io::CatalogView and core::ShardResidency. munmap on
/// destruction drops the pages from this process's resident set; the kernel
/// page cache keeps the file data, so re-mapping an evicted range later is a
/// soft fault, not a disk read. Move-only.
class MappedRegion {
 public:
  MappedRegion() = default;
  MappedRegion(MappedRegion&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedRegion& operator=(MappedRegion&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;
  ~MappedRegion() { Reset(); }

  /// Maps [offset, offset + size) of `fd` read-only. `offset` must be
  /// page-aligned (mmap's contract); the fd may be closed afterwards — the
  /// mapping holds its own reference to the file.
  static Result<MappedRegion> Map(int fd, uint64_t offset, size_t size,
                                  const std::string& what) {
    MappedRegion region;
    if (size == 0) return region;
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd,
                       static_cast<off_t>(offset));
    if (map == MAP_FAILED) {
      return Status::IOError("mmap failed on " + what + ": " +
                             std::strerror(errno));
    }
    region.data_ = map;
    region.size_ = size;
    return region;
  }

  const void* data() const { return data_; }
  const unsigned char* bytes() const {
    return static_cast<const unsigned char*>(data_);
  }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

  void Reset() {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace util
}  // namespace igepa

#endif  // IGEPA_UTIL_MMAP_H_
