#ifndef IGEPA_UTIL_FLAGS_H_
#define IGEPA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace igepa {

/// Minimal command-line flag parser for the igepa tool: typed flags with
/// defaults and help text, `--name=value` / `--name value` syntax, `--flag`
/// shorthand for booleans, and positional-argument collection. Unknown flags
/// are errors (catches typos).
class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description = "");

  /// Flag definitions; names are given without the leading "--".
  void AddString(const std::string& name, std::string default_value,
                 std::string help);
  void AddInt(const std::string& name, int64_t default_value,
              std::string help);
  void AddDouble(const std::string& name, double default_value,
                 std::string help);
  void AddBool(const std::string& name, bool default_value, std::string help);

  /// Parses `args` (excluding argv[0]). Returns InvalidArgument for unknown
  /// flags, missing values or unparsable numbers.
  Status Parse(const std::vector<std::string>& args);

  /// Typed access; IGEPA_CHECK-fails on unknown names or type mismatches
  /// (programmer error).
  const std::string& GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the flag was explicitly present on the command line.
  bool Provided(const std::string& name) const;

  /// Non-flag arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Help text listing every flag with its default.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    bool provided = false;
  };

  const Flag& Lookup(const std::string& name, Type type) const;
  Status SetValue(Flag* flag, const std::string& name,
                  const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace igepa

#endif  // IGEPA_UTIL_FLAGS_H_
