#ifndef IGEPA_UTIL_ENV_H_
#define IGEPA_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace igepa {

/// Reads an integer environment variable, falling back to `fallback` when the
/// variable is unset or unparsable. Used by benches for IGEPA_REPEATS etc.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Reads a double environment variable with a fallback.
double GetEnvDouble(const char* name, double fallback);

/// Reads a string environment variable with a fallback.
std::string GetEnvString(const char* name, const std::string& fallback);

}  // namespace igepa

#endif  // IGEPA_UTIL_ENV_H_
