#ifndef IGEPA_UTIL_STRING_UTIL_H_
#define IGEPA_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace igepa {

/// Splits `text` on `sep`, keeping empty fields (CSV semantics).
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Fixed-precision double formatting ("%.*f") without locale surprises.
std::string FormatDouble(double value, int precision);

/// Parses a double/int with full-string validation; returns false on junk.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt(std::string_view text, int64_t* out);

/// Left-pads (or right-pads) `text` with spaces up to `width`.
std::string PadLeft(std::string_view text, size_t width);
std::string PadRight(std::string_view text, size_t width);

}  // namespace igepa

#endif  // IGEPA_UTIL_STRING_UTIL_H_
