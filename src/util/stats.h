#ifndef IGEPA_UTIL_STATS_H_
#define IGEPA_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace igepa {

/// Streaming moment accumulator (Welford). Used by the experiment harness to
/// aggregate repeated trials without storing every sample.
class RunningStat {
 public:
  RunningStat() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch descriptive statistics over a sample vector.
struct SampleSummary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Computes a SampleSummary (copies + sorts internally; fine for harness use).
SampleSummary Summarize(const std::vector<double>& samples);

/// Linear-interpolation percentile of a *sorted* sample, q in [0,1].
double SortedPercentile(const std::vector<double>& sorted, double q);

/// Pearson correlation of two equal-length samples; 0 when degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace igepa

#endif  // IGEPA_UTIL_STATS_H_
