#ifndef IGEPA_UTIL_CRC32_H_
#define IGEPA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace igepa {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// framing the serve WAL records and snapshot files (docs/FORMATS.md). Table
/// driven, byte at a time; fast enough for the record sizes involved and,
/// unlike hardware CRC32C, identical on every platform the tests run on.
///
/// `Crc32Update` chains: feed it the previous return value to extend a
/// checksum over multiple buffers. `Crc32` is the one-shot convenience over a
/// whole buffer (equivalent to Crc32Update(0, ...)).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

inline uint32_t Crc32(std::string_view text) {
  return Crc32(text.data(), text.size());
}

}  // namespace igepa

#endif  // IGEPA_UTIL_CRC32_H_
