#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace igepa {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

int InitialLevelFromEnv() {
  const char* env = std::getenv("IGEPA_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  const int v = std::atoi(env);
  if (v < 0) return 0;
  if (v > 3) return 3;
  return v;
}

struct EnvInit {
  EnvInit() { g_log_level.store(InitialLevelFromEnv()); }
};
EnvInit g_env_init;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash == nullptr ? path : slash + 1;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load());
}

namespace internal {

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= g_log_level.load();
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  std::cerr.flush();
  std::abort();
}

}  // namespace internal
}  // namespace igepa
