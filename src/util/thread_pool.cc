#include "util/thread_pool.h"

#include <algorithm>

namespace igepa {
namespace {

/// Bounded handoff spin before parking on a condition variable. Long enough
/// to bridge the gap between back-to-back ParallelFor calls (a few µs),
/// short enough that a pool left idle falls asleep almost immediately.
constexpr int32_t kSpinIterations = 4096;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

int32_t ThreadPool::HardwareThreads() {
  return std::max(1, static_cast<int32_t>(std::thread::hardware_concurrency()));
}

int32_t ThreadPool::ResolveThreadCount(int32_t requested, int64_t work_items) {
  int32_t threads = requested > 0 ? requested : HardwareThreads();
  if (work_items < static_cast<int64_t>(threads)) {
    threads = static_cast<int32_t>(std::max<int64_t>(1, work_items));
  }
  return threads;
}

ThreadPool::ThreadPool(int32_t num_threads) {
  num_lanes_ = num_threads > 0 ? num_threads : HardwareThreads();
  spin_ = num_lanes_ > 1 && num_lanes_ <= HardwareThreads();
  blocks_ = std::vector<Block>(static_cast<size_t>(num_lanes_));
  workers_.reserve(static_cast<size_t>(num_lanes_) - 1);
  for (int32_t lane = 1; lane < num_lanes_; ++lane) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this, lane);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const RangeBody& body) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t total = end - begin;
  if (num_lanes_ == 1 || total <= grain) {
    body(0, begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Contiguous near-equal blocks; lanes beyond the work count get empty
    // blocks and go straight to stealing.
    for (int32_t lane = 0; lane < num_lanes_; ++lane) {
      const int64_t b = begin + total * lane / num_lanes_;
      const int64_t e = begin + total * (lane + 1) / num_lanes_;
      blocks_[static_cast<size_t>(lane)].next.store(b,
                                                    std::memory_order_relaxed);
      blocks_[static_cast<size_t>(lane)].end = e;
    }
    body_ = &body;
    grain_ = grain;
    job_open_ = true;
    active_ = 1;  // the caller's lane
    ++epoch_;
  }
  start_cv_.notify_all();
  RunJob(0);
  if (spin_) {
    // Trailing workers usually finish within the grain they already hold;
    // spin for them so the common case skips the done_cv_ sleep entirely
    // (active_ == 1 means only the caller's own contribution remains).
    for (int32_t i = 0;
         i < kSpinIterations && active_.load(std::memory_order_acquire) != 1;
         ++i) {
      CpuRelax();
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  --active_;
  // A lane leaves RunJob only once every block is fully claimed, and each
  // claimed chunk is executed by its claimant before it exits — so
  // active_ == 0 implies every index ran. Closing the job in the same
  // critical section that observed active_ == 0 keeps late-waking workers
  // from joining a finished job (they re-check job_open_ under the mutex).
  done_cv_.wait(lock, [this] { return active_.load() == 0; });
  job_open_ = false;
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(int32_t lane) {
  uint64_t seen = 0;
  for (;;) {
    if (spin_) {
      // Watch for the next epoch before parking: when ParallelFor calls
      // arrive back to back (one per dual iteration), the bump lands within
      // the spin window and the cv wait below returns without sleeping.
      for (int32_t i = 0; i < kSpinIterations; ++i) {
        if (stop_.load(std::memory_order_acquire) ||
            (epoch_.load(std::memory_order_acquire) != seen &&
             job_open_.load(std::memory_order_acquire))) {
          break;
        }
        CpuRelax();
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_.load() || (epoch_.load() != seen && job_open_.load());
      });
      if (stop_.load()) return;
      seen = epoch_.load();
      ++active_;
    }
    RunJob(lane);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunJob(int32_t lane) {
  const RangeBody& body = *body_;
  const int64_t grain = grain_;
  for (;;) {
    // Own block first; once drained, steal from the victim with the most
    // work remaining.
    int32_t target = -1;
    Block& own = blocks_[static_cast<size_t>(lane)];
    if (own.next.load(std::memory_order_relaxed) < own.end) {
      target = lane;
    } else {
      int64_t best_left = 0;
      for (int32_t b = 0; b < num_lanes_; ++b) {
        const Block& block = blocks_[static_cast<size_t>(b)];
        const int64_t left =
            block.end - block.next.load(std::memory_order_relaxed);
        if (left > best_left) {
          best_left = left;
          target = b;
        }
      }
      if (target < 0) return;  // nothing left anywhere
    }
    Block& block = blocks_[static_cast<size_t>(target)];
    const int64_t start =
        block.next.fetch_add(grain, std::memory_order_relaxed);
    if (start >= block.end) continue;  // lost the race; rescan
    const int64_t stop = std::min(start + grain, block.end);
    body(lane, start, stop);
  }
}

}  // namespace igepa
