#include "util/simd.h"

#include <atomic>
#include <limits>
#include <string>

#include "util/env.h"

// The AVX2 path compiles whenever the toolchain can target it per-function
// (GCC/Clang on x86), independent of the global -march flags — runtime
// dispatch in SumColumnLanes decides whether it ever executes. The cmake
// option -DIGEPA_SIMD=off defines IGEPA_SIMD_DISABLED and removes the path
// entirely (the scalar-fallback CI job builds this way).
#if !defined(IGEPA_SIMD_DISABLED) &&                 \
    (defined(__x86_64__) || defined(__i386__)) &&    \
    (defined(__GNUC__) || defined(__clang__))
#define IGEPA_SIMD_X86_AVX2 1
#include <immintrin.h>
#endif

namespace igepa {
namespace util {
namespace simd {
namespace {

void SumColumnLanesScalar(const double* lane, const int32_t* pool,
                          const int64_t* col_begin, int32_t num_columns,
                          double* out) {
  for (int32_t k = 0; k < num_columns; ++k) {
    double acc = 0.0;
    for (int64_t e = col_begin[static_cast<size_t>(k)];
         e < col_begin[static_cast<size_t>(k) + 1]; ++e) {
      acc += lane[pool[e]];
    }
    out[k] = acc;
  }
}

#if defined(IGEPA_SIMD_X86_AVX2)
/// Four columns per __m256d, one column per 64-bit lane. Each iteration
/// gathers the next event id of every still-active column (masked epi32
/// gather over the block-relative cursors), gathers the corresponding lane
/// weights (masked pd gather), and accumulates. A column that runs out keeps
/// its lane masked — the gather substitutes +0.0 — so every column's partial
/// sums are produced in exactly the scalar left-to-right order and the final
/// bits match SumColumnLanesScalar (see simd.h for why +0.0 padding is
/// harmless here).
__attribute__((target("avx2"))) void SumColumnLanesAvx2(
    const double* lane, const int32_t* pool, const int64_t* col_begin,
    int32_t num_columns, double* out) {
  const int64_t base = col_begin[0];
  const int32_t* block = pool + base;
  const __m128i zero32 = _mm_setzero_si128();
  const __m256d zero64 = _mm256_setzero_pd();
  int32_t k = 0;
  for (; k + 4 <= num_columns; k += 4) {
    alignas(16) int32_t cur[4];
    alignas(16) int32_t stop[4];
    for (int i = 0; i < 4; ++i) {
      cur[i] = static_cast<int32_t>(col_begin[k + i] - base);
      stop[i] = static_cast<int32_t>(col_begin[k + i + 1] - base);
    }
    __m128i vcur = _mm_load_si128(reinterpret_cast<const __m128i*>(cur));
    const __m128i vstop = _mm_load_si128(reinterpret_cast<const __m128i*>(stop));
    __m256d acc = zero64;
    for (;;) {
      const __m128i active = _mm_cmplt_epi32(vcur, vstop);
      if (_mm_testz_si128(active, active)) break;
      const __m128i ids =
          _mm_mask_i32gather_epi32(zero32, block, vcur, active, 4);
      const __m256d mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(active));
      const __m256d w = _mm256_mask_i32gather_pd(zero64, lane, ids, mask, 8);
      acc = _mm256_add_pd(acc, w);
      // Active lanes compare to -1; subtracting advances their cursor by 1.
      vcur = _mm_sub_epi32(vcur, active);
    }
    _mm256_storeu_pd(out + k, acc);
  }
  if (k < num_columns) {
    SumColumnLanesScalar(lane, pool, col_begin + k, num_columns - k, out + k);
  }
}
#endif  // IGEPA_SIMD_X86_AVX2

/// -1 = no override; otherwise the forced Level value.
std::atomic<int> g_forced_level{-1};

Level LevelFromEnv(Level detected) {
  const std::string v = GetEnvString("IGEPA_SIMD", "auto");
  if (v == "scalar" || v == "off" || v == "0") return Level::kScalar;
  // "auto", "avx2" and anything unrecognized trust the CPU probe; requesting
  // avx2 on a CPU without it must still run (scalar), never fault.
  return detected;
}

}  // namespace

Level DetectedLevel() {
#if defined(IGEPA_SIMD_X86_AVX2)
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2");
  return kHasAvx2 ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  const Level detected = DetectedLevel();
  if (forced >= 0) {
    const Level f = static_cast<Level>(forced);
    return static_cast<uint8_t>(f) <= static_cast<uint8_t>(detected) ? f
                                                                     : detected;
  }
  static const Level kEnvLevel = LevelFromEnv(detected);
  return kEnvLevel;
}

void ForceLevel(Level level) {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ResetLevel() { g_forced_level.store(-1, std::memory_order_relaxed); }

void SumColumnLanes(const double* lane, const int32_t* pool,
                    const int64_t* col_begin, int32_t num_columns,
                    double* out) {
  if (num_columns <= 0) return;
#if defined(IGEPA_SIMD_X86_AVX2)
  // Block-relative cursors ride 32-bit gather indices; a single batch wider
  // than 2^31 incidences (never produced by the per-user catalog layout)
  // falls back rather than truncating.
  if (ActiveLevel() == Level::kAvx2 &&
      col_begin[num_columns] - col_begin[0] <=
          static_cast<int64_t>(std::numeric_limits<int32_t>::max())) {
    SumColumnLanesAvx2(lane, pool, col_begin, num_columns, out);
    return;
  }
#endif
  SumColumnLanesScalar(lane, pool, col_begin, num_columns, out);
}

}  // namespace simd
}  // namespace util
}  // namespace igepa
