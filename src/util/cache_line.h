#ifndef IGEPA_UTIL_CACHE_LINE_H_
#define IGEPA_UTIL_CACHE_LINE_H_

#include <cstddef>
#include <cstdint>

namespace igepa {
namespace util {

/// Destructive-interference distance assumed by every per-lane/per-shard
/// accumulator in the parallel pipeline. Hard-coded rather than
/// std::hardware_destructive_interference_size, whose value is a compile-time
/// guess anyway and whose use warns under GCC (-Winterference-size).
inline constexpr size_t kCacheLineSize = 64;

/// A T padded out to its own cache line. Per-shard/per-lane accumulators that
/// different threads write concurrently go through this so neighboring slots
/// never share a line (the false-sharing fix of DESIGN.md §5 S18): a plain
/// std::vector<double> of shard partials puts 8 shards on one line and turns
/// every write into cross-core invalidation traffic.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};
};

/// Rounds `count` elements of size `elem_size` up to a whole number of cache
/// lines, returned in elements — the stride for flat per-lane arrays (lane k
/// starts at k * PaddedStride(...)), so lanes never straddle a shared line.
constexpr size_t PaddedStride(size_t count, size_t elem_size) {
  const size_t bytes = count * elem_size;
  const size_t lines = (bytes + kCacheLineSize - 1) / kCacheLineSize;
  return lines * kCacheLineSize / elem_size;
}

}  // namespace util
}  // namespace igepa

#endif  // IGEPA_UTIL_CACHE_LINE_H_
