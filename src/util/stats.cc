#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace igepa {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_halfwidth() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleSummary Summarize(const std::vector<double>& samples) {
  SampleSummary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  RunningStat rs;
  for (double x : samples) rs.Add(x);
  out.mean = rs.mean();
  out.stddev = rs.stddev();
  out.min = rs.min();
  out.max = rs.max();
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  out.median = SortedPercentile(sorted, 0.5);
  out.p25 = SortedPercentile(sorted, 0.25);
  out.p75 = SortedPercentile(sorted, 0.75);
  return out;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const size_t n = xs.size();
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace igepa
