#ifndef IGEPA_UTIL_RNG_H_
#define IGEPA_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace igepa {

/// Deterministic pseudo-random number generator used by every stochastic
/// component of the library (generators, randomized algorithms, samplers).
///
/// The core engine is xoshiro256** seeded through SplitMix64, which gives
/// platform-independent streams — the same seed reproduces the same
/// instance/arrangement on any machine, unlike std::mt19937 paired with
/// libstdc++ distributions. All distribution code lives here for that reason.
class Rng {
 public:
  /// Seeds the stream. Two Rng instances with equal seeds produce equal
  /// sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Satisfies UniformRandomBitGenerator so the engine can also back
  /// std::shuffle-style utilities when needed.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  uint64_t NextIndex(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli(p) draw; p outside [0,1] is clamped.
  bool Bernoulli(double p);

  /// Binomial(n, p) draw. Exact inversion for small n*min(p,1-p); a
  /// continuity-corrected normal approximation (clamped to [0, n]) for large
  /// ones. The approximation is used only where individual-edge materialization
  /// is infeasible (see graph::DegreeModel) and is documented there.
  int64_t Binomial(int64_t n, double p);

  /// Poisson(mean) draw via inversion (mean < 30) or normal approximation.
  int64_t Poisson(double mean);

  /// Zipf-like draw over ranks {0,..,n-1}: P(k) proportional to (k+1)^-s.
  /// Used by the Meetup simulator for group popularity. Requires n > 0.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index from a non-negative weight vector (linear scan).
  /// Returns weights.size() when the total mass is zero.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of the whole vector.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextIndex(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k > n returns all of [0, n)),
  /// in random order. O(n) via partial Fisher-Yates.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Returns a child generator with a stream derived from this one; used to
  /// give each repetition/component an independent reproducible stream.
  Rng Fork();

  /// The four xoshiro256** state words, for checkpoint serialization
  /// (serve durability). A generator restored via set_state continues the
  /// exact sequence the captured one would have produced.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  uint64_t s_[4];
};

}  // namespace igepa

#endif  // IGEPA_UTIL_RNG_H_
