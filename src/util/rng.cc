#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace igepa {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextIndex(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::Binomial(int64_t n, double p) {
  if (n <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const bool flipped = p > 0.5;
  const double q = flipped ? 1.0 - p : p;
  int64_t draw;
  if (static_cast<double>(n) * q < 64.0) {
    // Inversion by sequential search over the CDF; exact and O(n*q) expected.
    const double log1mq = std::log1p(-q);
    int64_t count = 0;
    int64_t pos = -1;
    // Geometric skips: number of failures before each success.
    for (;;) {
      const double u = NextDouble();
      const int64_t skip =
          static_cast<int64_t>(std::floor(std::log1p(-u) / log1mq));
      pos += skip + 1;
      if (pos >= n) break;
      ++count;
    }
    draw = count;
  } else {
    // Normal approximation with continuity correction. Error is negligible
    // at n*q >= 64; used only for large-scale degree simulation.
    const double mean = static_cast<double>(n) * q;
    const double sd = std::sqrt(mean * (1.0 - q));
    // Box-Muller.
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    double value = std::round(mean + sd * z);
    value = std::clamp(value, 0.0, static_cast<double>(n));
    draw = static_cast<int64_t>(value);
  }
  return flipped ? n - draw : draw;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    int64_t k = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++k;
    }
    return k;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double value = std::max(0.0, std::round(mean + std::sqrt(mean) * z));
  return static_cast<int64_t>(value);
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF over the (small) support; n is at most a few hundred in all
  // call sites, so the linear scan is fine and exact.
  double total = 0.0;
  for (int64_t k = 1; k <= n; ++k) total += std::pow(static_cast<double>(k), -s);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (int64_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    if (target <= acc) return k - 1;
  }
  return n - 1;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (target <= acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  if (k >= n) {
    Shuffle(&pool);
    return pool;
  }
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextIndex(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace igepa
