#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace igepa {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string s(Trim(text));
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(std::string_view text, int64_t* out) {
  const std::string s(Trim(text));
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string PadLeft(std::string_view text, size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out.append(text);
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace igepa
