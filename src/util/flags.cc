#include "util/flags.h"

#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace igepa {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::AddString(const std::string& name, std::string default_value,
                          std::string help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::move(help);
  flag.string_value = std::move(default_value);
  flags_[name] = std::move(flag);
}

void ArgParser::AddInt(const std::string& name, int64_t default_value,
                       std::string help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::move(help);
  flag.int_value = default_value;
  flags_[name] = std::move(flag);
}

void ArgParser::AddDouble(const std::string& name, double default_value,
                          std::string help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::move(help);
  flag.double_value = default_value;
  flags_[name] = std::move(flag);
}

void ArgParser::AddBool(const std::string& name, bool default_value,
                        std::string help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::move(help);
  flag.bool_value = default_value;
  flags_[name] = std::move(flag);
}

Status ArgParser::SetValue(Flag* flag, const std::string& name,
                           const std::string& value) {
  flag->provided = true;
  switch (flag->type) {
    case Type::kString:
      flag->string_value = value;
      return Status::OK();
    case Type::kInt:
      if (!ParseInt(value, &flag->int_value)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      return Status::OK();
    case Type::kDouble:
      if (!ParseDouble(value, &flag->double_value)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      return Status::OK();
    case Type::kBool:
      if (value == "true" || value == "1") {
        flag->bool_value = true;
      } else if (value == "false" || value == "0") {
        flag->bool_value = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
  }
  return Status::Internal("unreachable flag type");
}

Status ArgParser::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body + "\n" +
                                     Usage());
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;  // bare --flag
        flag.provided = true;
        continue;
      }
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag --" + body + " needs a value");
      }
      value = args[++i];
    }
    IGEPA_RETURN_IF_ERROR(SetValue(&flag, body, value));
  }
  return Status::OK();
}

const ArgParser::Flag& ArgParser::Lookup(const std::string& name,
                                         Type type) const {
  auto it = flags_.find(name);
  IGEPA_CHECK(it != flags_.end()) << "undefined flag " << name;
  IGEPA_CHECK(it->second.type == type) << "type mismatch for flag " << name;
  return it->second;
}

const std::string& ArgParser::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).string_value;
}

int64_t ArgParser::GetInt(const std::string& name) const {
  return Lookup(name, Type::kInt).int_value;
}

double ArgParser::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).double_value;
}

bool ArgParser::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).bool_value;
}

bool ArgParser::Provided(const std::string& name) const {
  auto it = flags_.find(name);
  IGEPA_CHECK(it != flags_.end()) << "undefined flag " << name;
  return it->second.provided;
}

std::string ArgParser::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  if (!description_.empty()) os << description_ << "\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kString:
        os << "=<string> (default \"" << flag.string_value << "\")";
        break;
      case Type::kInt:
        os << "=<int> (default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        os << "=<number> (default " << FormatDouble(flag.double_value, 4)
           << ")";
        break;
      case Type::kBool:
        os << " (default " << (flag.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace igepa
