#ifndef IGEPA_UTIL_STAGE_QUEUE_H_
#define IGEPA_UTIL_STAGE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace igepa {

/// Occupancy counters of one StageQueue, for pipeline observability: how much
/// flowed through, how full the stage ran, and how often either side blocked
/// on the other (pushed waits = the producer outran the consumer; pop waits =
/// the consumer starved). Snapshot-consistent: taken under the queue mutex.
struct StageQueueStats {
  int64_t pushed = 0;
  int64_t popped = 0;
  int64_t peak_size = 0;
  /// Push() calls that had to wait for space (backpressure onto the producer
  /// stage — the bounded-capacity guarantee doing its job).
  int64_t push_waits = 0;
  /// Pop() calls that had to wait for an item (the consumer stage idled).
  int64_t pop_waits = 0;
};

/// A bounded blocking MPMC handoff queue between pipeline stages: the
/// reusable primitive under ArrangementService's epoch pipeline (DESIGN.md
/// §7). Items move by value (stage handoffs carry immutable batches — the
/// producer must not retain references into a pushed item), capacity bounds
/// the stage's in-flight work, and Close() drains cleanly: pushes fail
/// immediately, pops keep succeeding until the queue is empty and only then
/// report closed — so a pipeline shuts down by closing queues front to back
/// without losing admitted work.
///
/// All operations are thread-safe. The queue's mutex acquire/release pairs
/// give the usual happens-before: everything the producer wrote before
/// Push() is visible to the consumer after the matching Pop().
template <typename T>
class StageQueue {
 public:
  explicit StageQueue(int64_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  StageQueue(const StageQueue&) = delete;
  StageQueue& operator=(const StageQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) if the
  /// queue is or becomes closed before space frees up.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (static_cast<int64_t>(items_.size()) >= capacity_ && !closed_) {
      ++stats_.push_waits;
      not_full_.wait(lock, [this] {
        return closed_ || static_cast<int64_t>(items_.size()) < capacity_;
      });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushed;
    if (static_cast<int64_t>(items_.size()) > stats_.peak_size) {
      stats_.peak_size = static_cast<int64_t>(items_.size());
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns false only when the queue is
  /// closed AND drained — every successfully pushed item is popped exactly
  /// once, in push order.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_) {
      ++stats_.pop_waits;
      not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Ends the stream: subsequent (and blocked) pushes fail, pops drain what
  /// remains then fail. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(items_.size());
  }

  int64_t capacity() const { return capacity_; }

  StageQueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  StageQueueStats stats_;
};

}  // namespace igepa

#endif  // IGEPA_UTIL_STAGE_QUEUE_H_
