#ifndef IGEPA_UTIL_LOGGING_H_
#define IGEPA_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace igepa {

/// Log severities, in increasing order. The process-wide threshold is set via
/// SetLogLevel or the IGEPA_LOG_LEVEL environment variable (0..3).
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global minimum severity that is emitted.
void SetLogLevel(LogLevel level);

/// Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style single-line logger; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink that swallows disabled log statements with zero formatting cost.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

bool LogEnabled(LogLevel level);

}  // namespace internal
}  // namespace igepa

/// Usage: IGEPA_LOG(INFO) << "solved in " << iters << " iterations";
#define IGEPA_LOG(severity)                                              \
  if (!::igepa::internal::LogEnabled(::igepa::LogLevel::k##severity)) {} \
  else /* NOLINT(readability/braces) */                                  \
    ::igepa::internal::LogMessage(::igepa::LogLevel::k##severity,        \
                                  __FILE__, __LINE__)                    \
        .stream()

/// Fatal invariant check: logs and aborts when `cond` is false. Active in all
/// build types — reserved for programmer errors, not data errors (those
/// return Status).
#define IGEPA_CHECK(cond)                                               \
  if (cond) {}                                                          \
  else /* NOLINT(readability/braces) */                                 \
    ::igepa::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

namespace igepa {
namespace internal {

/// Helper behind IGEPA_CHECK; aborts in the destructor.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace igepa

#endif  // IGEPA_UTIL_LOGGING_H_
