#ifndef IGEPA_UTIL_STATUS_H_
#define IGEPA_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace igepa {

/// Error categories used across the library. Follows the RocksDB/Arrow
/// convention: library boundaries never throw; they return Status (or
/// Result<T>, see result.h) instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  /// LP/ILP model has no feasible point.
  kInfeasible = 9,
  /// LP objective is unbounded above.
  kUnbounded = 10,
  /// Iteration/numerical budget exhausted before convergence.
  kResourceExhausted = 11,
};

/// Returns a short stable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status out of the enclosing function.
#define IGEPA_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::igepa::Status _igepa_status__ = (expr);      \
    if (!_igepa_status__.ok()) return _igepa_status__; \
  } while (0)

}  // namespace igepa

#endif  // IGEPA_UTIL_STATUS_H_
